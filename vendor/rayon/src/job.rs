//! Type-erased jobs.
//!
//! A [`JobRef`] is a raw `(data pointer, execute fn)` pair — the unit the
//! deques and the injector carry. It is deliberately lifetime-erased: the
//! code that creates one guarantees the pointee outlives its execution
//! (`join` and the external-thread bridge both block until the job's
//! latch is set, which keeps every borrowed stack frame alive).
//!
//! Two concrete job kinds:
//!
//! * [`StackJob`] — `join`'s deferred half. Closure, result slot and
//!   completion latch all live on the spawning worker's stack.
//! * [`HeapJob`] — a boxed fire-and-forget job, used to bridge a parallel
//!   region from an external thread into the pool.
//!
//! Every job captures the spawner's *apparent thread count* (see
//! [`crate::current_num_threads`]) and re-establishes it around
//! execution, so nested parallel regions inherit the count of the region
//! that spawned them no matter which worker runs them.

use crate::latch::SpinLatch;
use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

/// A type-erased pointer to a job plus its monomorphised execute shim.
///
/// # Safety contract
///
/// The creator guarantees the pointee stays alive until the job's
/// completion has been observed, and that `execute` runs exactly once.
pub(crate) struct JobRef {
    ptr: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: job refs travel between threads through the deques; the
// closures inside are constrained `Send` at the public API boundary.
unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    ///
    /// `job` must outlive the execution and be executed exactly once.
    pub(crate) unsafe fn new<J: Job>(job: *const J) -> JobRef {
        JobRef {
            ptr: job as *const (),
            exec: execute_erased::<J>,
        }
    }

    /// # Safety
    ///
    /// See [`JobRef::new`]; consumes the single execution permit.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: `ptr` was erased from a live `J` by `new`, and the
        // caller holds the single execution permit.
        unsafe { (self.exec)(self.ptr) }
    }
}

/// # Safety
///
/// `ptr` must be the erased `*const J` a [`JobRef::new`] captured, still
/// live, with its single execution permit (this is `JobRef`'s shim).
unsafe fn execute_erased<J: Job>(ptr: *const ()) {
    // SAFETY: forwarded obligations — see the function's safety docs.
    unsafe { J::execute(ptr as *const J) };
}

/// A job that can be executed through a raw self-pointer.
pub(crate) trait Job {
    /// # Safety
    ///
    /// `this` must point to a live instance and be called exactly once.
    unsafe fn execute(this: *const Self);
}

/// What a completed [`StackJob`] left behind.
pub(crate) enum JobResult<R> {
    /// The job has not run (only observable before its latch is set).
    Pending,
    /// The closure returned normally.
    Ok(R),
    /// The closure unwound; the original payload is preserved so the
    /// joining side can `resume_unwind` it verbatim.
    Panicked(Box<dyn Any + Send>),
}

/// `join`'s deferred half: lives entirely on the spawning worker's stack.
///
/// The spawner pushes a [`JobRef`] to this onto its deque, runs the other
/// half, then waits on `latch` (executing other jobs meanwhile). Whoever
/// ends up running the job — the spawner popping it back, or a thief —
/// writes the result/panic payload into `result` and sets the latch as
/// its very last access.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    /// Apparent thread count inherited from the spawner.
    threads: usize,
    pub(crate) latch: SpinLatch,
}

// SAFETY: accessed from at most two threads with a strict hand-off
// protocol — the executor owns `func`/`result` until it sets the latch;
// the spawner touches them only after observing the latch.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, threads: usize) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
            threads,
            latch: SpinLatch::new(),
        }
    }

    /// # Safety
    ///
    /// `self` must outlive the job's execution (the caller must wait on
    /// `self.latch` before letting it drop).
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        // SAFETY: liveness and single-execution are exactly what this
        // function's own contract demands from its caller.
        unsafe { JobRef::new(self) }
    }

    /// The job's outcome; only meaningful once `latch` is set.
    pub(crate) fn into_result(self) -> JobResult<R> {
        debug_assert!(self.latch.probe(), "result taken before completion");
        self.result.into_inner()
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    // SAFETY: per the `Job` trait contract `this` is live and executed
    // once; until `latch.set()` below, the executor is the only thread
    // touching `func`/`result` (see the `Sync` impl above).
    unsafe fn execute(this: *const Self) {
        // SAFETY: live pointer per the trait contract.
        let this = unsafe { &*this };
        // SAFETY: exclusive access until the latch is set (hand-off
        // protocol); the `expect` enforces the single execution permit.
        let func = unsafe { (*this.func.get()).take() }.expect("stack job executed twice");
        let result = crate::registry::with_apparent_threads(this.threads, || {
            match panic::catch_unwind(AssertUnwindSafe(func)) {
                Ok(value) => JobResult::Ok(value),
                Err(payload) => JobResult::Panicked(payload),
            }
        });
        // SAFETY: still pre-latch, so the result slot is exclusively ours.
        unsafe { *this.result.get() = result };
        // Final access: the spawner may pop this stack frame the moment
        // it observes the latch.
        this.latch.set();
    }
}

/// A boxed fire-and-forget job (the external-thread bridge).
///
/// `func` is responsible for its own panic handling and for signalling
/// completion (the bridge catches unwinds and sets a [`LockLatch`]).
///
/// [`LockLatch`]: crate::latch::LockLatch
pub(crate) struct HeapJob<F> {
    func: F,
    threads: usize,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    pub(crate) fn new(func: F, threads: usize) -> Box<Self> {
        Box::new(HeapJob { func, threads })
    }

    /// # Safety
    ///
    /// Every borrow captured by `func` must outlive the job's execution;
    /// the caller must block until the job signals completion.
    pub(crate) unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        // SAFETY: the leaked box stays live until `execute` reclaims it;
        // single execution is this function's own contract.
        unsafe { JobRef::new(Box::into_raw(self)) }
    }
}

impl<F> Job for HeapJob<F>
where
    F: FnOnce() + Send,
{
    // SAFETY: per the `Job` trait contract `this` is the pointer leaked
    // by `into_job_ref`, executed exactly once — so reclaiming the box
    // here is the unique owner transfer.
    unsafe fn execute(this: *const Self) {
        // SAFETY: unique ownership transfer per the contract above.
        let this = unsafe { Box::from_raw(this as *mut Self) };
        let threads = this.threads;
        crate::registry::with_apparent_threads(threads, this.func);
    }
}
