//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the narrow rayon surface its batched execution engine uses:
//!
//! * [`prelude`] — `par_chunks` / `par_chunks_mut` on slices, plus eager
//!   `zip` / `enumerate` / `for_each` / `map().collect()` combinators;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — enough to pin the
//!   worker count (the determinism tests compare 1-thread vs N-thread runs);
//! * [`current_num_threads`], [`join`], [`scope`].
//!
//! Execution model: a single lazily-started persistent pool of
//! `available_parallelism` workers (overridable with `RAYON_NUM_THREADS`).
//! Work submitted from inside a pool worker runs inline — the engine's
//! nested parallel regions (e.g. an MLP batch forward inside a parallel
//! eval row chunk) degrade gracefully instead of deadlocking. Iterators
//! here are *eager* (items are materialised before dispatch), which is fine
//! at the coarse chunk granularity the engine uses.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Persistent pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

static POOL: OnceLock<Arc<Pool>> = OnceLock::new();

thread_local! {
    /// Set inside pool workers so nested parallel regions run inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// `ThreadPool::install` override for the apparent thread count.
    static THREADS_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .min(64)
    })
}

/// The number of threads parallel work may use right now.
pub fn current_num_threads() -> usize {
    THREADS_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(default_threads)
}

fn pool() -> &'static Arc<Pool> {
    POOL.get_or_init(|| {
        let workers = default_threads().saturating_sub(1).max(1);
        let pool = Arc::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });
        for _ in 0..workers {
            let p = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("i3d-pool".into())
                .spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    loop {
                        let job = {
                            let mut q = p.queue.lock().unwrap();
                            loop {
                                if let Some(j) = q.pop_front() {
                                    break j;
                                }
                                q = p.ready.wait(q).unwrap();
                            }
                        };
                        job();
                    }
                })
                .expect("spawn pool worker");
        }
        pool
    })
}

/// Runs `tasks` to completion, using pool workers when it is worthwhile.
///
/// Each task runs exactly once; the call returns after every task has
/// finished. Side effects must go through the disjoint `&mut` state each
/// task owns, which also makes results independent of the worker count.
fn run_tasks(tasks: Vec<Job>) {
    let inline = current_num_threads() <= 1 || tasks.len() <= 1 || IN_WORKER.with(|f| f.get());
    if inline {
        for t in tasks {
            t();
        }
        return;
    }
    let p = pool();
    let total = tasks.len();
    let done = Arc::new((Mutex::new(0usize), Condvar::new()));
    let panicked = Arc::new(AtomicBool::new(false));
    // Keep one task for the calling thread; offload the rest.
    let mut tasks = tasks.into_iter();
    let first = tasks.next().unwrap();
    {
        let mut q = p.queue.lock().unwrap();
        for t in tasks {
            let done = Arc::clone(&done);
            let panicked = Arc::clone(&panicked);
            q.push_back(Box::new(move || {
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(t)).is_err() {
                    panicked.store(true, Ordering::SeqCst);
                }
                let (lock, cv) = &*done;
                *lock.lock().unwrap() += 1;
                cv.notify_all();
            }));
        }
        p.ready.notify_all();
    }
    // Run the caller's task, but *always* wait for the offloaded tasks
    // before unwinding — scoped borrows must outlive every task.
    let first_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(first));
    {
        let (lock, cv) = &*done;
        let mut n = lock.lock().unwrap();
        while *n < total - 1 {
            n = cv.wait(n).unwrap();
        }
    }
    if let Err(payload) = first_result {
        std::panic::resume_unwind(payload);
    }
    if panicked.load(Ordering::SeqCst) {
        panic!("a rayon task panicked");
    }
}

/// Runs scoped tasks: the borrows inside `tasks` only need to outlive this
/// call, which blocks until every task has completed.
fn run_scoped<'env>(tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    // SAFETY: `run_tasks` joins all tasks before returning, so the
    // 'env borrows the jobs capture strictly outlive their execution.
    let tasks: Vec<Job> = tasks
        .into_iter()
        .map(|t| unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(t) })
        .collect();
    run_tasks(tasks);
}

// ---------------------------------------------------------------------------
// Public pool API
// ---------------------------------------------------------------------------

/// Builder for a [`ThreadPool`] handle (thread-count override only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A fresh builder using the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` apparent threads (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A handle that pins the apparent thread count while a closure runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with [`current_num_threads`] pinned to this pool's size.
    /// The previous value is restored even if `f` unwinds.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREADS_OVERRIDE.with(|o| o.set(self.0));
            }
        }
        let _restore = Restore(THREADS_OVERRIDE.with(|o| o.replace(Some(self.num_threads))));
        f()
    }

    /// The pinned thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs both closures (possibly in parallel) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let ra = &mut ra;
        let rb = &mut rb;
        run_scoped(vec![
            Box::new(move || *ra = Some(a())),
            Box::new(move || *rb = Some(b())),
        ]);
    }
    (ra.unwrap(), rb.unwrap())
}

/// Minimal scope: spawned closures all complete before `scope` returns.
pub struct Scope<'env> {
    tasks: std::cell::RefCell<Vec<Box<dyn FnOnce() + Send + 'env>>>,
}

impl<'env> Scope<'env> {
    /// Queues `f` to run within the scope.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.tasks.borrow_mut().push(Box::new(f));
    }
}

/// Collects spawns from `f`, then runs them all to completion.
pub fn scope<'env, F: FnOnce(&Scope<'env>)>(f: F) {
    let s = Scope {
        tasks: std::cell::RefCell::new(Vec::new()),
    };
    f(&s);
    run_scoped(s.tasks.into_inner());
}

// ---------------------------------------------------------------------------
// Eager parallel iterators
// ---------------------------------------------------------------------------

/// An eager "parallel iterator": a materialised list of work items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs items with another iterator's, truncating to the shorter.
    pub fn zip<J: Send>(self, other: ParIter<J>) -> ParIter<(I, J)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attaches each item's index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Compatibility no-op (chunking is already explicit here).
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Runs `f` once per item, in parallel, returning when all are done.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
            .items
            .into_iter()
            .map(|item| Box::new(move || f(item)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        run_scoped(tasks);
    }

    /// Maps items in parallel; collect with [`ParMap::collect`].
    pub fn map<R: Send, F: Fn(I) -> R + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// The number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Pending parallel map, produced by [`ParIter::map`].
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Runs the map and collects results in item order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let f = &self.f;
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
                .items
                .into_iter()
                .zip(out.iter_mut())
                .map(|(item, slot)| {
                    Box::new(move || *slot = Some(f(item))) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            run_scoped(tasks);
        }
        out.into_iter().map(|s| s.unwrap()).collect()
    }
}

/// `into_par_iter` on owned collections.
pub trait IntoParallelIterator {
    /// The item type handed to each task.
    type Item: Send;

    /// Materialises the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Eager chunked view: `size` elements per chunk (last may be short).
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

/// `par_chunks_mut` / `par_iter_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Eager chunked mutable view (disjoint chunks).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;

    /// One item per element.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

pub mod iter {
    //! Iterator traits, re-exported for `use rayon::prelude::*` parity.
    pub use crate::{ParIter, ParMap};
}

pub mod slice {
    //! Slice traits, re-exported for `use rayon::prelude::*` parity.
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

pub mod prelude {
    //! The workspace's `use rayon::prelude::*` surface.
    pub use crate::{IntoParallelIterator, ParIter, ParMap, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunked_mutation_touches_everything() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[1002], 16);
    }

    #[test]
    fn zip_runs_disjoint_pairs() {
        let src = vec![1.0f32; 256];
        let mut dst = vec![0.0f32; 256];
        dst.par_chunks_mut(32)
            .zip(src.par_chunks(32))
            .for_each(|(d, s)| {
                for (a, b) in d.iter_mut().zip(s) {
                    *a = 2.0 * b;
                }
            });
        assert!(dst.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn map_collect_preserves_order() {
        let items = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let out: Vec<usize> = items.par_chunks(1).map(|c| c[0] * 10).collect();
        assert_eq!(out, vec![30, 10, 40, 10, 50, 90, 20, 60]);
    }

    #[test]
    fn install_pins_apparent_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 1);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn nested_parallelism_completes() {
        let mut outer = [0u32; 8];
        outer.par_chunks_mut(1).for_each(|chunk| {
            let mut inner = vec![0u32; 64];
            inner.par_chunks_mut(8).for_each(|c| {
                for v in c.iter_mut() {
                    *v = 1;
                }
            });
            chunk[0] = inner.iter().sum();
        });
        assert!(outer.iter().all(|&v| v == 64));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 40, || 2);
        assert_eq!(a + b, 42);
    }

    #[test]
    #[should_panic]
    fn task_panics_propagate() {
        let data = [0u8; 4];
        data.par_chunks(1).for_each(|_| panic!("boom"));
    }
}
