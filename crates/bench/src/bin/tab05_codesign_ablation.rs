//! Regenerates the paper's tab05Tab. 05 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::tab05::run(instant3d_bench::quick_requested());
}
