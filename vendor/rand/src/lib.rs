//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact API surface it consumes: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — high-quality, fast, and fully deterministic, which
//! is all the reproduction needs (bit-compatibility with upstream `rand`
//! streams is *not* promised and nothing in the workspace relies on it).

use std::ops::{Range, RangeInclusive};

/// The core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` reachable when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                let v = rng.next_u64() as i128 % span;
                (lo_w + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(hi >= lo, "cannot sample from inverted range");
                // 53 mantissa bits of uniformity, then affine map; the
                // result stays in [lo, hi) up to rounding at the far end.
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + u * (hi as f64 - lo as f64);
                if v as $t >= hi && hi > lo {
                    lo
                } else {
                    v as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample {
    /// A standard sample: uniform `[0,1)` for floats, full-range for ints.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A standard sample (`[0,1)` floats, full-range integers).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let v: f64 = f64::standard_sample(self);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed` (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard deterministic generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let fi = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&fi));
            let u = rng.gen_range(3u32..9);
            assert!((3..9).contains(&u));
            let us = rng.gen_range(0usize..5);
            assert!(us < 5);
            let i = rng.gen_range(-3i32..4);
            assert!((-3..4).contains(&i));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f as f64;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen_range(0.0f32..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let r: &mut StdRng = &mut rng;
        assert!(draw(r) < 1.0);
    }
}
