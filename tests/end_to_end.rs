//! Cross-crate integration: the full pipeline from procedural dataset
//! through training, trace capture, and hardware simulation.

use instant3d::accel::{
    simulate_baseline_reads, simulate_bum, simulate_frm, Accelerator, BumConfig, FeatureSet,
};
use instant3d::core::{GridTopology, PipelineWorkload, TrainConfig, Trainer};
use instant3d::nerf::grid::{AccessPhase, GridBranch};
use instant3d::scenes::SceneLibrary;
use instant3d::trace::TraceCollector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_dataset(seed: u64) -> instant3d::scenes::Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    SceneLibrary::synthetic_scene(0, 16, 4, &mut rng)
}

#[test]
fn training_improves_reconstruction_quality() {
    let ds = tiny_dataset(1);
    let mut rng = StdRng::seed_from_u64(2);
    let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);
    let before = trainer.evaluate(&ds).rgb_psnr;
    for _ in 0..80 {
        trainer.step(&mut rng);
    }
    let after = trainer.evaluate(&ds).rgb_psnr;
    assert!(
        after > before + 3.0,
        "PSNR should improve substantially: {before:.2} -> {after:.2}"
    );
}

#[test]
fn both_topologies_converge_to_similar_quality() {
    // The paper's central algorithmic claim: the decomposed model matches
    // the coupled baseline's quality.
    let ds = tiny_dataset(3);
    let mut psnrs = Vec::new();
    for topo in [GridTopology::Coupled, GridTopology::Decoupled] {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = TrainConfig::fast_preview();
        cfg.topology = topo;
        if topo == GridTopology::Decoupled {
            cfg.color_size_factor = 0.25;
            cfg.color_update_every = 2;
        }
        let mut trainer = Trainer::new(cfg, &ds, &mut rng);
        for _ in 0..120 {
            trainer.step(&mut rng);
        }
        psnrs.push(trainer.evaluate(&ds).rgb_psnr);
    }
    let diff = (psnrs[0] - psnrs[1]).abs();
    assert!(
        diff < 3.0,
        "coupled {:.2} dB vs decoupled {:.2} dB should be comparable",
        psnrs[0],
        psnrs[1]
    );
}

#[test]
fn captured_trace_drives_hardware_simulators() {
    let ds = tiny_dataset(5);
    let mut rng = StdRng::seed_from_u64(6);
    let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);
    for _ in 0..5 {
        trainer.step(&mut rng);
    }
    let mut tc = TraceCollector::new(500_000);
    tc.begin_iteration(5);
    trainer.step_observed(&mut rng, &mut tc);
    let trace = tc.into_trace();
    assert!(!trace.is_empty(), "trace should capture grid accesses");

    // FF stream → FRM: must beat the baseline issue on the real pattern.
    let offsets: Vec<u32> = trainer
        .model()
        .density_grid()
        .levels()
        .iter()
        .map(|l| l.entry_offset)
        .collect();
    let ff: Vec<u32> = trace
        .records
        .iter()
        .filter(|r| r.phase == AccessPhase::FeedForward && r.branch == GridBranch::Density)
        .map(|r| offsets[r.level as usize] + r.addr)
        .collect();
    assert!(!ff.is_empty());
    let frm = simulate_frm(&ff, 8, 16);
    let base = simulate_baseline_reads(&ff, 8, 8);
    assert!(frm.cycles <= base.cycles);
    assert!(frm.utilization > base.utilization);

    // BP stream → BUM: real gradient scatters must show mergeable reuse.
    let bp = trace.bp_stream_level_major();
    let bum = simulate_bum(&bp, BumConfig::default());
    assert!(
        bum.merge_ratio() > 0.05,
        "real BP traffic should have mergeable reuse, got {:.3}",
        bum.merge_ratio()
    );
}

#[test]
fn trace_read_counts_match_workload_accounting() {
    let ds = tiny_dataset(7);
    let mut rng = StdRng::seed_from_u64(8);
    let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);
    let mut tc = TraceCollector::new(2_000_000);
    tc.begin_iteration(0);
    trainer.step_observed(&mut rng, &mut tc);
    let trace = tc.into_trace();
    let stats = trainer.stats();
    let ff_records = trace.phase(AccessPhase::FeedForward).count() as u64;
    let bp_records = trace.phase(AccessPhase::BackProp).count() as u64;
    assert_eq!(
        ff_records,
        stats.grid_reads_ff(),
        "FF accounting must agree"
    );
    assert_eq!(
        bp_records,
        stats.grid_writes_bp(),
        "BP accounting must agree"
    );
}

#[test]
fn accelerator_beats_every_baseline_device() {
    let w_ngp = PipelineWorkload::paper_scale_instant_ngp(400.0);
    let w_i3d = PipelineWorkload::paper_scale_instant3d(400.0);
    let accel_t = Accelerator::default()
        .simulate(&w_i3d, FeatureSet::full())
        .seconds_total;
    for device in instant3d::devices::DeviceModel::all_baselines() {
        let device_t = device.runtime(&w_ngp);
        let speedup = device_t / accel_t;
        assert!(
            (20.0..=400.0).contains(&speedup),
            "{} speedup {speedup:.0}x outside the paper's 41-248x band (with margin)",
            device.spec().name
        );
    }
}

#[test]
fn workload_from_real_training_is_consistent() {
    let ds = tiny_dataset(9);
    let mut rng = StdRng::seed_from_u64(10);
    let cfg = TrainConfig::fast_preview();
    let mut trainer = Trainer::new(cfg.clone(), &ds, &mut rng);
    for _ in 0..4 {
        trainer.step(&mut rng);
    }
    let w = PipelineWorkload::from_stats(
        trainer.stats(),
        cfg.grid.levels as u32,
        cfg.density_grid_config().table_bytes_fp16(),
        cfg.color_grid_config().table_bytes_fp16(),
        4,
    );
    assert_eq!(w.iterations, 4.0);
    assert!(w.points_per_iter > 0.0);
    // Reads per point = 8 corners × levels × 2 branches (decoupled).
    let expect = w.points_per_iter * 8.0 * cfg.grid.levels as f64 * 2.0;
    assert!((w.grid_reads_ff_per_iter - expect).abs() < 1.0);
}
