//! Cross-crate golden tests: the batched engine's trace capture must keep
//! every `crates/trace` analysis valid — the access *multiset* is
//! identical to the scalar reference path's, and within each phase the
//! capture order is identical too (the batched engine only regroups the
//! phases: all feed-forward reads, then all scatter writes). The whole
//! suite runs once per **registered kernel backend**
//! (`kernels::registered_strict()`), so trace capture is pinned on every backend
//! the registry knows — scalar, SIMD and the instrumented co-sim backend
//! alike.

use instant3d::core::{kernels, BackendHandle, TrainConfig, Trainer};
use instant3d::nerf::grid::AccessPhase;
use instant3d::scenes::SceneLibrary;
use instant3d::trace::record::AccessRecord;
use instant3d::trace::TraceCollector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn capture_with(
    batched: bool,
    backend: &BackendHandle,
    iters: u32,
    occupancy_update_every: u32,
    occupancy_subset: u32,
) -> (
    instant3d::trace::record::Trace,
    instant3d::core::WorkloadStats,
) {
    let mut rng = StdRng::seed_from_u64(2);
    let ds = SceneLibrary::synthetic_scene(0, 16, 4, &mut rng);
    let mut seed = StdRng::seed_from_u64(3);
    let mut cfg = TrainConfig::fast_preview();
    cfg.kernel_backend = backend.clone();
    cfg.occupancy_update_every = occupancy_update_every;
    cfg.occupancy_subset = occupancy_subset;
    let mut trainer = Trainer::new(cfg, &ds, &mut seed);
    let mut step_rng = StdRng::seed_from_u64(4);
    let mut tc = TraceCollector::new(4_000_000);
    for i in 0..iters {
        tc.begin_iteration(i);
        if batched {
            trainer.step_observed(&mut step_rng, &mut tc);
        } else {
            trainer.step_scalar_observed(&mut step_rng, &mut tc);
        }
    }
    (tc.into_trace(), *trainer.stats())
}

fn capture(
    batched: bool,
    backend: &BackendHandle,
) -> (
    instant3d::trace::record::Trace,
    instant3d::core::WorkloadStats,
) {
    capture_with(batched, backend, 3, 16, 1)
}

fn phase_key(r: &AccessRecord) -> (u32, instant3d::nerf::grid::GridBranch, u32, u8, u32) {
    (r.iter, r.branch, r.level, r.corner, r.addr)
}

#[test]
fn batched_trace_is_order_normalized_identical_to_scalar() {
    for backend in kernels::registered_strict() {
        let (batched, stats_b) = capture(true, &backend);
        let (scalar, stats_s) = capture(false, &backend);
        assert_eq!(
            stats_b, stats_s,
            "{backend}: workload accounting must agree"
        );
        assert_eq!(
            batched.len(),
            scalar.len(),
            "{backend}: same number of accesses"
        );
        assert_eq!(
            batched.order_normalized(),
            scalar.order_normalized(),
            "{backend}: access multisets must be identical"
        );
    }
}

#[test]
fn batched_trace_preserves_within_phase_capture_order() {
    for backend in kernels::registered_strict() {
        let (batched, _) = capture(true, &backend);
        let (scalar, _) = capture(false, &backend);
        for phase in [AccessPhase::FeedForward, AccessPhase::BackProp] {
            let b: Vec<_> = batched.phase(phase).map(phase_key).collect();
            let s: Vec<_> = scalar.phase(phase).map(phase_key).collect();
            assert_eq!(
                b, s,
                "{backend}/{phase:?} stream order must match the scalar path"
            );
        }
    }
}

#[test]
fn traces_stay_identical_across_amortized_occupancy_refreshes() {
    // Occupancy refreshes fire mid-capture (every 2 iterations, rotating
    // cell subsets). The refresh itself runs unobserved batched kernels —
    // it must leave no accesses in the trace — but the bits it flips
    // change which samples survive culling on later iterations, so the
    // streams only stay equal if batched and scalar paths see identical
    // packed occupancy after every refresh.
    for backend in kernels::registered_strict() {
        let (batched, stats_b) = capture_with(true, &backend, 4, 2, 2);
        let (scalar, stats_s) = capture_with(false, &backend, 4, 2, 2);
        assert_eq!(stats_b, stats_s, "{backend}: stats through refreshes");
        assert!(
            stats_b.occupancy_refreshes >= 2,
            "{backend}: refreshes must have fired during capture"
        );
        assert_eq!(
            batched.order_normalized(),
            scalar.order_normalized(),
            "{backend}: access multisets must survive occupancy refreshes"
        );
        for phase in [AccessPhase::FeedForward, AccessPhase::BackProp] {
            let b: Vec<_> = batched.phase(phase).map(phase_key).collect();
            let s: Vec<_> = scalar.phase(phase).map(phase_key).collect();
            assert_eq!(b, s, "{backend}/{phase:?} stream order through refreshes");
        }
    }
}

#[test]
fn batched_trace_drives_figure_analyses_identically() {
    // The Fig. 8/9/10 inputs derived from the trace must be unchanged —
    // and must not depend on the kernel backend either.
    let (scalar, _) = capture(false, &kernels::scalar());
    for backend in kernels::registered_strict() {
        let (batched, _) = capture(true, &backend);
        assert_eq!(batched.ff_stream(), scalar.ff_stream(), "{backend}");
        assert_eq!(
            batched.bp_stream_level_major(),
            scalar.bp_stream_level_major(),
            "{backend}"
        );
    }
}
