//! In-tree contract conformance suite for the instant3d workspace.
//!
//! Layer 1 of the two-layer contract-verification subsystem described in
//! `crates/nerf/src/kernels/mod.rs` ("Contract enforcement"): a set of
//! lint passes over a hand-rolled lexer ([`lexer`]) that verify the
//! kernel-contract marker grammar workspace-wide:
//!
//! * **fma-strict** — `mul_add` / `fadd_fast` / `fmul_fast` are forbidden
//!   in strict kernel modules unless the enclosing function carries a
//!   `// CONTRACT: lossy-tier` marker.
//! * **unsafe-safety** — every `unsafe` block / fn / impl in `crates/*/src`
//!   and `vendor/rayon/src` must be covered by a `// SAFETY:` comment or a
//!   `# Safety` doc section.
//! * **target-feature-caller** — every `#[target_feature]` function must
//!   carry a `// CALLER:` note naming its runtime-detection guard.
//! * **atomics-ordering** — every `Ordering::Relaxed` must carry an
//!   `// ORDERING:` justification; stronger orderings in `vendor/rayon/src`
//!   are cross-checked against `allowlists/atomics_protocol.txt`.
//! * **determinism** — `HashMap` / `HashSet` / `thread_rng` /
//!   `Instant::now` are forbidden in kernel, trainer, and serving code
//!   paths (`crates/nerf/src`, `crates/core/src`, `crates/serve/src`)
//!   outside `allowlists/determinism.txt` and `#[cfg(test)]` items.
//! * **panic-census** — `unwrap` / `expect` / `panic!` in hot-path
//!   kernel and trainer modules ([`PANIC_CENSUS_FILES`]) must carry a
//!   `// PANICS:` justification; the shipped tree is zero-violation.
//!
//! Marker grammar: a marker is a comment either trailing on the flagged
//! line itself or on a line above it, reachable by walking up through
//! contiguous comment-only and attribute lines; a blank line or an
//! unrelated code line breaks the walk.
//!
//! Beyond the lexical passes, [`run_all`] also runs the **static
//! write-plan prover** ([`prover`], fed by [`plan`]): every parallel
//! dispatch seam in the engine crates declares its per-task write
//! intervals symbolically, and the prover discharges disjointness and
//! exact coverage for *all* shape-parameter values — not just the shapes
//! an execution happened to visit. An unprovable plan is a `write-plan`
//! violation anchored at the dispatch site.
//!
//! Layer 2 (the dynamic disjoint-write race detector) lives in
//! `crates/nerf/src/kernels/checked.rs` as the `checked` backend; its
//! plan-conformance mode cross-checks the recorded writes against the
//! same declared plans the prover verifies.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod plan;
pub mod prover;
use lexer::{lex, Tok, TokKind};

/// Strict-tier kernel modules where FMA contraction is forbidden outside
/// `// CONTRACT: lossy-tier` items.
pub const FMA_STRICT_FILES: &[&str] = &[
    "crates/nerf/src/grid.rs",
    "crates/nerf/src/mlp.rs",
    "crates/nerf/src/render.rs",
    "crates/nerf/src/simd.rs",
    "crates/nerf/src/kernels/builtin.rs",
];

/// Hot-path kernel / trainer / renderer modules where every `unwrap` /
/// `expect` / `panic!` must carry a `// PANICS:` justification: a panic
/// here unwinds through rayon fork-join scopes mid-training-step, so
/// each site must argue why it cannot fire (or why dying loudly beats
/// corrupting a checkpoint).
pub const PANIC_CENSUS_FILES: &[&str] = &[
    "crates/nerf/src/grid.rs",
    "crates/nerf/src/mlp.rs",
    "crates/nerf/src/render.rs",
    "crates/nerf/src/simd.rs",
    "crates/nerf/src/kernels/builtin.rs",
    "crates/nerf/src/kernels/checked.rs",
    "crates/nerf/src/kernels/fast.rs",
    "crates/nerf/src/kernels/instrumented.rs",
    "crates/nerf/src/kernels/plan.rs",
    "crates/core/src/batch.rs",
    "crates/core/src/trainer.rs",
    "crates/core/src/render.rs",
];

const FMA_IDENTS: &[&str] = &["mul_add", "fadd_fast", "fmul_fast"];
const SAFETY_NEEDLES: &[&str] = &["SAFETY:", "# Safety"];
const CALLER_NEEDLES: &[&str] = &["CALLER:"];
const ORDERING_NEEDLES: &[&str] = &["ORDERING:"];
const CONTRACT_NEEDLES: &[&str] = &["CONTRACT: lossy-tier"];
const DETERMINISM_IDENTS: &[&str] = &["HashMap", "HashSet", "thread_rng"];
const PANICS_NEEDLES: &[&str] = &["PANICS:"];
const PANIC_IDENTS: &[&str] = &["unwrap", "expect"];
const STRONG_ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];

/// One lint diagnostic, printable as `file:line: [lint] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// One entry of `allowlists/atomics_protocol.txt`:
/// `path function ordering expected-count`.
#[derive(Debug, Clone)]
pub struct ProtocolEntry {
    pub path: String,
    pub func: String,
    pub ordering: String,
    pub count: usize,
}

/// One entry of `allowlists/determinism.txt`: `path name`.
#[derive(Debug, Clone)]
pub struct DeterminismEntry {
    pub path: String,
    pub name: String,
}

/// Allowlists + baseline the passes consult. `Default` (all empty) is the
/// strictest configuration and what fixture tests use.
#[derive(Debug, Clone, Default)]
pub struct Config {
    pub protocol: Vec<ProtocolEntry>,
    pub determinism: Vec<DeterminismEntry>,
    /// `(lint, path)` pairs whose violations are tolerated (reported but
    /// non-fatal). Checked in from day one as empty.
    pub baseline: Vec<(String, String)>,
}

impl Config {
    /// Loads the checked-in allowlists + baseline under
    /// `<root>/crates/conformance/`.
    pub fn load(root: &Path) -> Config {
        let dir = root.join("crates/conformance");
        let mut cfg = Config::default();
        for line in data_lines(&dir.join("allowlists/atomics_protocol.txt")) {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if let [path, func, ordering, count] = parts[..] {
                cfg.protocol.push(ProtocolEntry {
                    path: path.to_string(),
                    func: func.to_string(),
                    ordering: ordering.to_string(),
                    count: count.parse().unwrap_or(0),
                });
            }
        }
        for line in data_lines(&dir.join("allowlists/determinism.txt")) {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if let [path, name] = parts[..] {
                cfg.determinism.push(DeterminismEntry {
                    path: path.to_string(),
                    name: name.to_string(),
                });
            }
        }
        for line in data_lines(&dir.join("baseline.txt")) {
            if let Some((lint, path)) = line.split_once(char::is_whitespace) {
                cfg.baseline
                    .push((lint.trim().to_string(), path.trim().to_string()));
            }
        }
        cfg
    }
}

/// Non-comment, non-blank lines of an allowlist file (missing file = empty).
fn data_lines(path: &Path) -> Vec<String> {
    fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Result of [`run_all`]: fatal violations, baselined (tolerated) ones,
/// and how many files were scanned.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub baselined: Vec<Violation>,
    pub files_scanned: usize,
    /// Write plans run through the symbolic prover (failures are
    /// `write-plan` violations).
    pub plans_checked: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A function item span, in code-token index space.
struct FnSpan {
    name: String,
    decl_line: u32,
    start: usize,
    end: usize,
}

/// An attribute `#[...]` / `#![...]` span, in code-token index space.
struct AttrSpan {
    end: usize,
    line: u32,
    /// First identifier inside the brackets (`inline`, `target_feature`, …).
    head: String,
}

/// A lexed source file plus the derived per-line / per-item indexes the
/// passes query.
pub struct Source<'a> {
    pub rel: String,
    lines: Vec<&'a str>,
    toks: Vec<Tok<'a>>,
    /// Indices into `toks` of non-comment tokens.
    code: Vec<usize>,
    /// Comment text touching each 1-based line (multi-line block comments
    /// contribute their full text to every line they span).
    comment_text: HashMap<u32, String>,
    /// Lines on which a code token starts.
    code_lines: HashSet<u32>,
    /// Lines covered by attribute syntax.
    attr_lines: HashSet<u32>,
    fns: Vec<FnSpan>,
    attrs: Vec<AttrSpan>,
    /// Line ranges (inclusive) of `#[cfg(test)]` item bodies.
    test_spans: Vec<(u32, u32)>,
}

impl<'a> Source<'a> {
    pub fn parse(rel: &str, src: &'a str) -> Source<'a> {
        let toks = lex(src);
        let mut code = Vec::new();
        let mut comment_text: HashMap<u32, String> = HashMap::new();
        let mut code_lines = HashSet::new();
        for (i, t) in toks.iter().enumerate() {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    let span = t.text.matches('\n').count() as u32;
                    for l in t.line..=t.line + span {
                        comment_text.entry(l).or_default().push_str(t.text);
                    }
                }
                _ => {
                    code.push(i);
                    code_lines.insert(t.line);
                }
            }
        }
        let mut s = Source {
            rel: rel.to_string(),
            lines: src.lines().collect(),
            toks,
            code,
            comment_text,
            code_lines,
            attr_lines: HashSet::new(),
            fns: Vec::new(),
            attrs: Vec::new(),
            test_spans: Vec::new(),
        };
        s.index_attrs();
        s.index_fns();
        s
    }

    /// Token behind code index `ci`.
    fn ct(&self, ci: usize) -> Option<&Tok<'a>> {
        self.code.get(ci).map(|&i| &self.toks[i])
    }

    fn is_punct(&self, ci: usize, ch: &str) -> bool {
        self.ct(ci)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == ch)
    }

    fn is_ident(&self, ci: usize, name: &str) -> bool {
        self.ct(ci)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    }

    /// Matches the `{`…`}` (or `[`…`]`) pair opening at code index `open`,
    /// returning the index of the closer (or the last token on EOF).
    fn match_delim(&self, open: usize, oc: &str, cc: &str) -> usize {
        let mut depth = 0usize;
        let mut ci = open;
        while let Some(t) = self.ct(ci) {
            if t.kind == TokKind::Punct {
                if t.text == oc {
                    depth += 1;
                } else if t.text == cc {
                    depth -= 1;
                    if depth == 0 {
                        return ci;
                    }
                }
            }
            ci += 1;
        }
        self.code.len().saturating_sub(1)
    }

    fn index_attrs(&mut self) {
        let mut ci = 0;
        while ci < self.code.len() {
            if self.is_punct(ci, "#") {
                let mut open = ci + 1;
                if self.is_punct(open, "!") {
                    open += 1;
                }
                if self.is_punct(open, "[") {
                    let close = self.match_delim(open, "[", "]");
                    let head = self
                        .ct(open + 1)
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.to_string())
                        .unwrap_or_default();
                    let cfg_test =
                        head == "cfg" && (open + 1..close).any(|k| self.is_ident(k, "test"));
                    let line = self.ct(ci).map_or(0, |t| t.line);
                    let end_line = self.ct(close).map_or(line, |t| t.line);
                    for l in line..=end_line {
                        self.attr_lines.insert(l);
                    }
                    self.attrs.push(AttrSpan {
                        end: close,
                        line,
                        head,
                    });
                    if cfg_test {
                        if let Some((s, e)) = self.item_body_after(close) {
                            self.test_spans.push((s, e));
                        }
                    }
                    ci = close + 1;
                    continue;
                }
            }
            ci += 1;
        }
    }

    /// Line span of the item body following an attribute's `]` — the first
    /// `{`…`}` before any `;` (a `;` first means no body).
    fn item_body_after(&self, close: usize) -> Option<(u32, u32)> {
        let mut ci = close + 1;
        while let Some(t) = self.ct(ci) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "{" => {
                        let end = self.match_delim(ci, "{", "}");
                        return Some((t.line, self.ct(end)?.line));
                    }
                    ";" => return None,
                    _ => {}
                }
            }
            ci += 1;
        }
        None
    }

    fn index_fns(&mut self) {
        let mut spans = Vec::new();
        for ci in 0..self.code.len() {
            if !self.is_ident(ci, "fn") {
                continue;
            }
            // `fn(` is a function-pointer type, not an item.
            let Some(name_tok) = self.ct(ci + 1) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            let name = name_tok.text.to_string();
            let decl_line = self.ct(ci).map_or(0, |t| t.line);
            // Find the body `{` or the trailing `;` (trait method decl).
            let mut j = ci + 2;
            let mut end = ci + 1;
            while let Some(t) = self.ct(j) {
                if t.kind == TokKind::Punct {
                    if t.text == "{" {
                        end = self.match_delim(j, "{", "}");
                        break;
                    }
                    if t.text == ";" {
                        end = j;
                        break;
                    }
                }
                j += 1;
            }
            spans.push(FnSpan {
                name,
                decl_line,
                start: ci,
                end,
            });
        }
        self.fns = spans;
    }

    /// Innermost function span containing code index `ci`.
    fn enclosing_fn(&self, ci: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start <= ci && ci <= f.end)
            .max_by_key(|f| f.start)
    }

    fn in_test_span(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    fn comment_has(&self, line: u32, needles: &[&str]) -> bool {
        self.comment_text
            .get(&line)
            .is_some_and(|text| needles.iter().any(|n| text.contains(n)))
    }

    /// Marker-grammar coverage check for `line`: a needle in a comment
    /// trailing on the line itself, or found by walking up through
    /// contiguous comment-only / attribute lines. Blank lines and
    /// unrelated code lines break the walk.
    pub fn covered(&self, line: u32, needles: &[&str]) -> bool {
        if self.comment_has(line, needles) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if self.comment_has(l, needles) {
                return true;
            }
            let raw = self.lines.get((l - 1) as usize).copied().unwrap_or("");
            if raw.trim().is_empty() {
                return false;
            }
            let comment_only = self.comment_text.contains_key(&l) && !self.code_lines.contains(&l);
            if comment_only || self.attr_lines.contains(&l) {
                l -= 1;
                continue;
            }
            return false;
        }
        false
    }
}

fn path_matches(rel: &str, pattern: &str) -> bool {
    rel == pattern || rel.ends_with(&format!("/{pattern}"))
}

// ---------------------------------------------------------------------------
// Lint passes
// ---------------------------------------------------------------------------

fn fma_pass(s: &Source<'_>, out: &mut Vec<Violation>) {
    for ci in 0..s.code.len() {
        let Some(t) = s.ct(ci) else { continue };
        if t.kind != TokKind::Ident || !FMA_IDENTS.contains(&t.text) {
            continue;
        }
        // Tests that deliberately pin FMA semantics (e.g. asserting a
        // lane mul_add is correctly rounded) are meta-tests of the
        // contract itself, not shipped kernel math.
        if s.in_test_span(t.line) {
            continue;
        }
        let (anchor, who) = match s.enclosing_fn(ci) {
            Some(f) => (f.decl_line, format!("fn `{}`", f.name)),
            None => (t.line, "enclosing item".to_string()),
        };
        if !s.covered(anchor, CONTRACT_NEEDLES) {
            out.push(Violation {
                file: s.rel.clone(),
                line: t.line,
                lint: "fma-strict",
                message: format!(
                    "`{}` in strict kernel module without `// CONTRACT: lossy-tier` marker on {who}",
                    t.text
                ),
            });
        }
    }
}

fn unsafe_pass(s: &Source<'_>, out: &mut Vec<Violation>) {
    for ci in 0..s.code.len() {
        if !s.is_ident(ci, "unsafe") {
            continue;
        }
        // Classify what follows; `unsafe fn(` / `unsafe extern "C" fn(`
        // are function-pointer *types* and carry no obligation.
        let mut j = ci + 1;
        if s.is_ident(j, "extern") {
            j += 1;
            if s.ct(j).is_some_and(|t| t.kind == TokKind::Str) {
                j += 1;
            }
        }
        let kind = if s.is_ident(j, "fn") {
            if s.is_punct(j + 1, "(") {
                continue; // fn-pointer type
            }
            "fn"
        } else if s.is_punct(j, "{") {
            "block"
        } else if s.is_ident(j, "impl") {
            "impl"
        } else if s.is_ident(j, "trait") {
            "trait"
        } else {
            "item"
        };
        let line = s.ct(ci).map_or(0, |t| t.line);
        if !s.covered(line, SAFETY_NEEDLES) {
            out.push(Violation {
                file: s.rel.clone(),
                line,
                lint: "unsafe-safety",
                message: format!(
                    "`unsafe` {kind} without `// SAFETY:` comment (or `# Safety` doc section)"
                ),
            });
        }
    }
}

fn caller_pass(s: &Source<'_>, out: &mut Vec<Violation>) {
    for attr in &s.attrs {
        if attr.head != "target_feature" {
            continue;
        }
        // The annotated function: first `fn` item token after the `]`
        // (skipping any further attributes).
        let mut ci = attr.end + 1;
        while s.is_punct(ci, "#") {
            let mut open = ci + 1;
            if s.is_punct(open, "!") {
                open += 1;
            }
            ci = s.match_delim(open, "[", "]") + 1;
        }
        let (fn_line, fn_name) = loop {
            match s.ct(ci) {
                Some(t) if t.kind == TokKind::Ident && t.text == "fn" => {
                    let name = s.ct(ci + 1).map(|n| n.text.to_string()).unwrap_or_default();
                    break (t.line, name);
                }
                Some(_) => ci += 1,
                None => break (attr.line, String::new()),
            }
        };
        if !s.covered(attr.line, CALLER_NEEDLES) && !s.covered(fn_line, CALLER_NEEDLES) {
            out.push(Violation {
                file: s.rel.clone(),
                line: fn_line,
                lint: "target-feature-caller",
                message: format!(
                    "#[target_feature] fn `{fn_name}` without `// CALLER:` note naming its runtime-detection guard"
                ),
            });
        }
    }
}

fn atomics_relaxed_pass(s: &Source<'_>, out: &mut Vec<Violation>) {
    for ci in 0..s.code.len() {
        if !s.is_ident(ci, "Relaxed") {
            continue;
        }
        let line = s.ct(ci).map_or(0, |t| t.line);
        if !s.covered(line, ORDERING_NEEDLES) {
            out.push(Violation {
                file: s.rel.clone(),
                line,
                lint: "atomics-ordering",
                message: "`Ordering::Relaxed` without `// ORDERING:` justification".to_string(),
            });
        }
    }
}

/// Stronger-than-Relaxed ordering sites in `vendor/rayon/src` must match
/// the protocol manifest exactly, per `(file, function, ordering)` — both
/// unlisted sites and count drift are violations.
fn atomics_protocol_pass(s: &Source<'_>, cfg: &Config, out: &mut Vec<Violation>) {
    // (fn name, ordering) -> (count, first line)
    let mut found: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for ci in 0..s.code.len() {
        let Some(t) = s.ct(ci) else { continue };
        if t.kind != TokKind::Ident || !STRONG_ORDERINGS.contains(&t.text) {
            continue;
        }
        let func = s
            .enclosing_fn(ci)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<top-level>".to_string());
        let e = found
            .entry((func, t.text.to_string()))
            .or_insert((0, t.line));
        e.0 += 1;
    }
    for ((func, ordering), (count, line)) in &found {
        match cfg
            .protocol
            .iter()
            .find(|p| path_matches(&s.rel, &p.path) && p.func == *func && p.ordering == *ordering)
        {
            None => out.push(Violation {
                file: s.rel.clone(),
                line: *line,
                lint: "atomics-protocol",
                message: format!(
                    "`Ordering::{ordering}` in fn `{func}` is not in the atomics protocol allowlist"
                ),
            }),
            Some(p) if p.count != *count => out.push(Violation {
                file: s.rel.clone(),
                line: *line,
                lint: "atomics-protocol",
                message: format!(
                    "`Ordering::{ordering}` count drift in fn `{func}`: found {count}, manifest expects {}",
                    p.count
                ),
            }),
            Some(_) => {}
        }
    }
    // Reverse direction for entries naming this file: the protocol site
    // must still exist (a silently deleted site is also drift).
    for p in cfg
        .protocol
        .iter()
        .filter(|p| path_matches(&s.rel, &p.path))
    {
        if !found.contains_key(&(p.func.clone(), p.ordering.clone())) {
            out.push(Violation {
                file: s.rel.clone(),
                line: 0,
                lint: "atomics-protocol",
                message: format!(
                    "manifest expects `Ordering::{}` x{} in fn `{}` but none found",
                    p.ordering, p.count, p.func
                ),
            });
        }
    }
}

fn determinism_pass(s: &Source<'_>, cfg: &Config, out: &mut Vec<Violation>) {
    let allowed = |name: &str| {
        cfg.determinism
            .iter()
            .any(|d| path_matches(&s.rel, &d.path) && d.name == name)
    };
    for ci in 0..s.code.len() {
        let Some(t) = s.ct(ci) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = if DETERMINISM_IDENTS.contains(&t.text) {
            t.text.to_string()
        } else if t.text == "Instant"
            && s.is_punct(ci + 1, ":")
            && s.is_punct(ci + 2, ":")
            && s.is_ident(ci + 3, "now")
        {
            "Instant::now".to_string()
        } else {
            continue;
        };
        if s.in_test_span(t.line) || allowed(&name) {
            continue;
        }
        out.push(Violation {
            file: s.rel.clone(),
            line: t.line,
            lint: "determinism",
            message: format!(
                "`{name}` in kernel/trainer code path (add a `{name}`-free alternative, or allowlist in allowlists/determinism.txt)"
            ),
        });
    }
}

/// Every `unwrap` / `expect` call and `panic!` invocation in a
/// [`PANIC_CENSUS_FILES`] module must carry a `// PANICS:` justification
/// (same marker grammar as `SAFETY:` / `CALLER:` / `ORDERING:`).
fn panic_pass(s: &Source<'_>, out: &mut Vec<Violation>) {
    for ci in 0..s.code.len() {
        let Some(t) = s.ct(ci) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = if PANIC_IDENTS.contains(&t.text) {
            format!("`.{}()`", t.text)
        } else if t.text == "panic" && s.is_punct(ci + 1, "!") {
            "`panic!`".to_string()
        } else {
            continue;
        };
        if s.in_test_span(t.line) {
            continue;
        }
        if !s.covered(t.line, PANICS_NEEDLES) {
            out.push(Violation {
                file: s.rel.clone(),
                line: t.line,
                lint: "panic-census",
                message: format!("{what} in hot-path module without `// PANICS:` justification"),
            });
        }
    }
}

/// Runs every pass applicable to `rel` over `src`. This is the seam the
/// fixture tests drive directly with fake paths.
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let s = Source::parse(rel, src);
    let mut out = Vec::new();
    if FMA_STRICT_FILES.iter().any(|f| path_matches(rel, f)) {
        fma_pass(&s, &mut out);
    }
    unsafe_pass(&s, &mut out);
    caller_pass(&s, &mut out);
    atomics_relaxed_pass(&s, &mut out);
    if rel.starts_with("vendor/rayon/src") {
        atomics_protocol_pass(&s, cfg, &mut out);
    }
    if rel.starts_with("crates/nerf/src")
        || rel.starts_with("crates/core/src")
        || rel.starts_with("crates/serve/src")
    {
        determinism_pass(&s, cfg, &mut out);
    }
    if PANIC_CENSUS_FILES.iter().any(|f| path_matches(rel, f)) {
        panic_pass(&s, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

/// Files in scope: every `crates/*/src/**/*.rs` (except this crate) plus
/// `vendor/rayon/src/**/*.rs`, rel-pathed with forward slashes.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() && p.file_name().is_some_and(|n| n != "conformance") {
                walk_rs(&p.join("src"), &mut files);
            }
        }
    }
    walk_rs(&root.join("vendor/rayon/src"), &mut files);
    files.sort();
    files
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Lints the whole tree under `root` against the checked-in allowlists
/// and baseline.
pub fn run_all(root: &Path) -> Report {
    let cfg = Config::load(root);
    let files = collect_files(root);
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut seen_rels: HashSet<String> = HashSet::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        seen_rels.insert(rel.clone());
        let src = match fs::read_to_string(path) {
            Ok(s) => s,
            Err(err) => {
                report.violations.push(Violation {
                    file: rel,
                    line: 0,
                    lint: "io",
                    message: format!("unreadable source file: {err}"),
                });
                continue;
            }
        };
        for v in lint_source(&rel, &src, &cfg) {
            let baselined = cfg
                .baseline
                .iter()
                .any(|(lint, path)| *lint == v.lint && path_matches(&v.file, path));
            if baselined {
                report.baselined.push(v);
            } else {
                report.violations.push(v);
            }
        }
    }
    // Manifest entries pointing at files that are no longer scanned at all.
    for p in &cfg.protocol {
        if !seen_rels.iter().any(|rel| path_matches(rel, &p.path)) {
            report.violations.push(Violation {
                file: p.path.clone(),
                line: 0,
                lint: "atomics-protocol",
                message: format!(
                    "manifest names fn `{}` but the file is not in the scanned tree",
                    p.func
                ),
            });
        }
    }
    // The static write-plan prover: every declared parallel dispatch
    // plan must be disjoint and covering for all shapes.
    let (plans_checked, plan_violations) = plan::prove_all();
    report.plans_checked = plans_checked;
    report.violations.extend(plan_violations);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covered_walks_through_comments_and_attributes() {
        let src = "\
// CALLER: guarded by is_x86_feature_detected
#[inline]
#[target_feature(enable = \"avx2\")]
unsafe fn f() {}
";
        let s = Source::parse("crates/nerf/src/x.rs", src);
        assert!(s.covered(4, CALLER_NEEDLES));
        assert!(!s.covered(4, SAFETY_NEEDLES));
    }

    #[test]
    fn covered_breaks_on_blank_lines_and_code() {
        let src = "\
// SAFETY: stale marker
let y = 1;
unsafe { x() }
// SAFETY: far away

unsafe { z() }
";
        let s = Source::parse("crates/nerf/src/x.rs", src);
        assert!(!s.covered(3, SAFETY_NEEDLES));
        assert!(!s.covered(6, SAFETY_NEEDLES));
    }

    #[test]
    fn trailing_comment_on_the_same_line_counts() {
        let src = "unsafe { x() } // SAFETY: single-line form\n";
        let s = Source::parse("crates/nerf/src/x.rs", src);
        assert!(s.covered(1, SAFETY_NEEDLES));
    }

    #[test]
    fn fn_spans_resolve_innermost_items() {
        let src = "\
fn outer() {
    fn inner() {
        let v = a.mul_add(b, c);
    }
}
";
        let s = Source::parse("crates/nerf/src/grid.rs", src);
        let ci = (0..s.code.len())
            .find(|&ci| s.is_ident(ci, "mul_add"))
            .unwrap();
        assert_eq!(s.enclosing_fn(ci).unwrap().name, "inner");
    }

    #[test]
    fn fn_pointer_types_are_not_fn_items() {
        let src = "struct J { exec: unsafe fn(*const ()) }\n";
        let s = Source::parse("vendor/rayon/src/job.rs", src);
        assert!(s.fns.is_empty());
        let mut v = Vec::new();
        unsafe_pass(&s, &mut v);
        assert!(v.is_empty(), "fn-pointer type flagged: {v:?}");
    }

    #[test]
    fn cfg_test_spans_cover_the_item_body() {
        let src = "\
fn real() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
}
";
        let s = Source::parse("crates/nerf/src/x.rs", src);
        assert!(s.in_test_span(5));
        assert!(!s.in_test_span(1));
    }
}
