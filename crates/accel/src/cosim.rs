//! Live co-simulation: feed the instrumented backend's recorded address
//! streams straight into the FRM/BUM cycle simulators.
//!
//! The trace-driven path (`instant3d-trace` capture → [`crate::frm`] /
//! [`crate::bum`] replay) measures the paper's Fig. 12/13 factors from
//! *captured* streams. This module is the stream-ingestion half of the
//! **online** path: the engine runs real `Trainer::step` iterations on the
//! `"instrumented"` kernel backend
//! ([`instant3d_nerf::kernels::InstrumentedKernels`]), which records the
//! batched engine's actual hash-grid read/update traffic in execution
//! order; [`cosim_grid`] then replays those streams through the FRM (vs
//! the baseline burst issue) and the BUM — no trace files, no synthetic
//! streams, no observer plumbing through the trainer.
//!
//! ```no_run
//! use instant3d_accel::cosim::{cosim_grid, CosimConfig};
//! use instant3d_nerf::kernels::{BackendHandle, InstrumentedKernels};
//!
//! let backend = BackendHandle::new(InstrumentedKernels::new());
//! // ... build a Trainer whose TrainConfig::kernel_backend is `backend`,
//! //     warm it up, then:
//! let rec = backend.downcast_ref::<InstrumentedKernels>().unwrap();
//! rec.start_recording();
//! // trainer.step(&mut rng);
//! rec.stop_recording();
//! # let grid = instant3d_nerf::HashGrid::new(Default::default());
//! let report = cosim_grid(&rec.take_streams(), &grid, &CosimConfig::default());
//! println!("FRM utilisation {:.2}", report.frm.utilization);
//! ```

use crate::bum::{simulate_bum, BumConfig, BumResult};
use crate::frm::{simulate_baseline_reads, simulate_frm, FrmResult};
use instant3d_nerf::kernels::RecordedStreams;
use instant3d_nerf::HashGrid;

/// Microarchitectural parameters of one co-sim run — the Fig. 12/13
/// defaults of the paper's grid core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosimConfig {
    /// SRAM banks per grid core (the paper's B8 view).
    pub banks: u32,
    /// FRM reorder-window depth (the paper uses 16).
    pub frm_window: usize,
    /// Baseline issue burst — one point's 8 corner reads per access group.
    pub baseline_burst: usize,
    /// BUM buffer configuration (16 entries, idle timeout).
    pub bum: BumConfig,
}

impl Default for CosimConfig {
    fn default() -> Self {
        CosimConfig {
            banks: 8,
            frm_window: 16,
            baseline_burst: 8,
            bum: BumConfig::default(),
        }
    }
}

/// What one grid's live streams measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosimReport {
    /// Feed-forward reads replayed.
    pub reads: u64,
    /// Gradient updates replayed.
    pub updates: u64,
    /// FRM replay of the read stream.
    pub frm: FrmResult,
    /// Baseline (no-FRM) replay of the same read stream.
    pub baseline: FrmResult,
    /// BUM replay of the update stream.
    pub bum: BumResult,
}

impl CosimReport {
    /// Read-cycle speedup of the FRM over the baseline issue (1.0 when the
    /// stream is empty).
    pub fn frm_read_speedup(&self) -> f64 {
        if self.frm.cycles == 0 {
            1.0
        } else {
            self.baseline.cycles as f64 / self.frm.cycles as f64
        }
    }

    /// Fraction of gradient updates the BUM absorbed without an SRAM
    /// write.
    pub fn bum_merge_ratio(&self) -> f64 {
        self.bum.merge_ratio()
    }
}

/// Replays the recorded streams of one [`HashGrid`] — selected by the
/// grid's shape tag, see
/// [`StreamSegment`](instant3d_nerf::kernels::StreamSegment) — through the
/// FRM (and the no-FRM baseline) and the BUM.
///
/// The feed-forward stream arrives as flat whole-table entry addresses in
/// the engine's level-major execution order; the update stream as
/// `(level << 32) | addr` keys in the level-ordered scatter order — the
/// hardware-visible shapes the paper's units see.
pub fn cosim_grid(streams: &RecordedStreams, grid: &HashGrid, cfg: &CosimConfig) -> CosimReport {
    let reads = streams.reads_flat_for(grid);
    let updates = streams.updates_for(grid);
    CosimReport {
        reads: reads.len() as u64,
        updates: updates.len() as u64,
        frm: simulate_frm(&reads, cfg.banks, cfg.frm_window),
        baseline: simulate_baseline_reads(&reads, cfg.banks, cfg.baseline_burst),
        bum: simulate_bum(&updates, cfg.bum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_nerf::grid::AccessPhase;
    use instant3d_nerf::kernels::StreamSegment;
    use instant3d_nerf::HashGridConfig;

    fn small_grid() -> HashGrid {
        HashGrid::new(HashGridConfig {
            levels: 2,
            log2_table_size: 8,
            base_resolution: 4,
            max_resolution: 8,
            ..HashGridConfig::default()
        })
    }

    fn seg(grid: &HashGrid, phase: AccessPhase, addrs: Vec<u64>) -> StreamSegment {
        StreamSegment {
            phase,
            grid_levels: grid.levels().len(),
            grid_params: grid.num_params(),
            addrs,
        }
    }

    #[test]
    fn empty_streams_produce_an_empty_report() {
        let grid = small_grid();
        let r = cosim_grid(&RecordedStreams::default(), &grid, &CosimConfig::default());
        assert_eq!(r.reads, 0);
        assert_eq!(r.updates, 0);
        assert_eq!(r.frm.cycles, 0);
        assert_eq!(r.frm_read_speedup(), 1.0);
        assert_eq!(r.bum_merge_ratio(), 0.0);
    }

    #[test]
    fn report_preserves_stream_lengths_and_conservation() {
        let grid = small_grid();
        let streams = RecordedStreams {
            segments: vec![
                seg(
                    &grid,
                    AccessPhase::FeedForward,
                    (0..64).map(|i| (i * 3) % 200).collect(),
                ),
                seg(
                    &grid,
                    AccessPhase::BackProp,
                    (0..48).map(|i| (1u64 << 32) | (i % 6)).collect(),
                ),
            ],
        };
        let r = cosim_grid(&streams, &grid, &CosimConfig::default());
        assert_eq!(r.reads, 64);
        assert_eq!(r.updates, 48);
        assert_eq!(r.frm.reads, 64, "every read serviced");
        // BUM conservation: every update merges or eventually writes.
        assert_eq!(r.bum.merged + r.bum.sram_writes, r.updates);
        assert!(r.bum_merge_ratio() > 0.5, "6 hot addresses should merge");
        assert!(r.frm.utilization > 0.0 && r.frm.utilization <= 1.0);
    }

    #[test]
    fn segments_of_other_grids_are_ignored() {
        let grid = small_grid();
        let other = HashGrid::new(HashGridConfig {
            levels: 3,
            log2_table_size: 8,
            base_resolution: 4,
            max_resolution: 16,
            ..HashGridConfig::default()
        });
        let streams = RecordedStreams {
            segments: vec![seg(&other, AccessPhase::FeedForward, vec![1, 2, 3])],
        };
        let r = cosim_grid(&streams, &grid, &CosimConfig::default());
        assert_eq!(r.reads, 0, "shape tag must filter foreign grids");
        let r2 = cosim_grid(&streams, &other, &CosimConfig::default());
        assert_eq!(r2.reads, 3);
    }
}
