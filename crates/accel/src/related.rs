//! Related-work comparison (§6): the two prior NeRF accelerators —
//! RT-NeRF (ICCAD 2022) and ICARUS (SIGGRAPH Asia 2022) — are
//! *inference-only* designs; Instant-3D is the first to accelerate NeRF
//! *training*. The paper quantifies the rendering-side comparison:
//! real-time (> 30 FPS) rendering at 19.5 % of RT-NeRF's energy per frame
//! and 36 % of its chip area, and a 1,800× speedup over the MLP-based
//! ICARUS.

/// Capabilities and published figures of a NeRF accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct NerfAccelerator {
    /// Design name.
    pub name: &'static str,
    /// Venue shorthand.
    pub venue: &'static str,
    /// Supports NeRF training (the capability gap §6 highlights).
    pub supports_training: bool,
    /// Supports NeRF inference/rendering.
    pub supports_inference: bool,
    /// Chip area in mm² (normalised to each paper's reported node).
    pub area_mm2: f64,
    /// Relative energy per rendered frame (RT-NeRF ≡ 1.0).
    pub relative_energy_per_frame: f64,
    /// Relative rendering throughput (ICARUS ≡ 1.0).
    pub relative_render_speed: f64,
}

/// RT-NeRF: real-time on-device NeRF *inference* accelerator.
pub fn rt_nerf() -> NerfAccelerator {
    NerfAccelerator {
        name: "RT-NeRF",
        venue: "ICCAD'22",
        supports_training: false,
        supports_inference: true,
        area_mm2: 6.8 / 0.36, // Instant-3D is 36 % of RT-NeRF's area (§6)
        relative_energy_per_frame: 1.0,
        relative_render_speed: 1_800.0, // vs ICARUS-class MLP rendering
    }
}

/// ICARUS: a specialized architecture for (vanilla, MLP-based) NeRF
/// rendering.
pub fn icarus() -> NerfAccelerator {
    NerfAccelerator {
        name: "ICARUS",
        venue: "TOG'22",
        supports_training: false,
        supports_inference: true,
        area_mm2: 16.5,
        relative_energy_per_frame: 2.5,
        relative_render_speed: 1.0,
    }
}

/// Instant-3D (this work): the first *training* accelerator; its grid
/// cores double as an inference engine at RT-NeRF-beating efficiency.
pub fn instant3d() -> NerfAccelerator {
    NerfAccelerator {
        name: "Instant-3D",
        venue: "ISCA'23",
        supports_training: true,
        supports_inference: true,
        area_mm2: 6.8,
        relative_energy_per_frame: 0.195, // 19.5 % of RT-NeRF (§6)
        relative_render_speed: 1_800.0,   // 1,800x over ICARUS (§6)
    }
}

/// All three designs, prior work first.
pub fn all() -> Vec<NerfAccelerator> {
    vec![rt_nerf(), icarus(), instant3d()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_instant3d_trains() {
        let designs = all();
        let trainers: Vec<&NerfAccelerator> =
            designs.iter().filter(|d| d.supports_training).collect();
        assert_eq!(trainers.len(), 1);
        assert_eq!(trainers[0].name, "Instant-3D");
        assert!(designs.iter().all(|d| d.supports_inference));
    }

    #[test]
    fn section6_ratios_hold() {
        let i3d = instant3d();
        let rt = rt_nerf();
        let ic = icarus();
        // 36 % of RT-NeRF's area.
        assert!((i3d.area_mm2 / rt.area_mm2 - 0.36).abs() < 0.01);
        // 19.5 % of RT-NeRF's energy per frame.
        assert!(
            (i3d.relative_energy_per_frame / rt.relative_energy_per_frame - 0.195).abs() < 1e-9
        );
        // 1,800× over ICARUS's rendering speed.
        assert!((i3d.relative_render_speed / ic.relative_render_speed - 1800.0).abs() < 1e-6);
    }

    #[test]
    fn instant3d_renders_realtime_class() {
        // > 30 FPS claim is expressed as beating ICARUS by 1,800×; any
        // sane baseline above 0.017 FPS clears 30 FPS at that ratio.
        let i3d = instant3d();
        assert!(i3d.relative_render_speed * 0.017 > 30.0);
    }
}
