//! Model checkpointing: serialize a trained [`NerfModel`]'s parameters to
//! a compact binary blob and restore them later.
//!
//! The paper's AR/VR story depends on shipping reconstructed scenes as
//! small models instead of image sets ("a 20 MB reconstructed model may be
//! used instead of 120 MB jpeg images", §1) — so a real deployment needs
//! (de)serialization. The format is a minimal versioned container: magic,
//! version, per-tensor lengths, then raw little-endian `f32`s. Grid
//! features are stored as fp16 when the grid's config requests it, which
//! roughly halves checkpoint size.

use crate::model::NerfModel;
use instant3d_nerf::fp16::F16;

/// Magic bytes identifying an Instant-3D checkpoint.
pub const MAGIC: &[u8; 4] = b"I3DC";
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors from checkpoint encode/decode.
///
/// A failed [`load`] — whatever the error — leaves the receiving model
/// bitwise untouched (see the transactional guarantee on [`load`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The blob ended before all tensors were read (including a stored
    /// length field that promises more payload bytes than the blob
    /// holds — lengths are validated against the remaining input
    /// *before* any buffer is sized from them).
    Truncated,
    /// A tensor's fp16/f32 coding flag held a value other than 0 or 1.
    BadFlag {
        /// Which tensor carried the flag (in serialization order).
        tensor: usize,
        /// The byte found.
        value: u8,
    },
    /// A tensor's length does not match the receiving model.
    ShapeMismatch {
        /// Which tensor disagreed (in serialization order).
        tensor: usize,
        /// Length stored in the blob.
        stored: usize,
        /// Length the model expects.
        expected: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an Instant-3D checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint data ended unexpectedly"),
            CheckpointError::BadFlag { tensor, value } => {
                write!(f, "tensor {tensor} has unknown coding flag {value:#04x}")
            }
            CheckpointError::ShapeMismatch {
                tensor,
                stored,
                expected,
            } => write!(
                f,
                "tensor {tensor} has {stored} values but the model expects {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32_slice_fp16(&mut self, values: &[f32]) {
        self.u32(values.len() as u32);
        self.buf.push(1); // fp16-coded
        for &v in values {
            self.buf
                .extend_from_slice(&F16::from_f32(v).0.to_le_bytes());
        }
    }
    fn f32_slice(&mut self, values: &[f32]) {
        self.u32(values.len() as u32);
        self.buf.push(0); // f32-coded
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        // `pos <= data.len()` is an invariant of `take`, so this cannot
        // underflow.
        self.data.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        // Subtraction-form bounds test: `pos + n` would wrap for
        // adversarial `n` near `usize::MAX` in release builds and let a
        // corrupt length field read out of bounds.
        if n > self.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Decodes one tensor (length, coding flag, payload) into `out`,
    /// which ends up holding exactly the stored number of values.
    ///
    /// The stored length is validated against the bytes actually left in
    /// the blob *before* any memory is reserved from it: a corrupt or
    /// adversarial length field costs at most `remaining` scratch bytes
    /// and a [`CheckpointError::Truncated`], never an unbounded
    /// allocation (and the OOM abort that follows).
    fn f32_tensor_into(
        &mut self,
        tensor: usize,
        out: &mut Vec<f32>,
    ) -> Result<(), CheckpointError> {
        let n = self.u32()? as usize;
        let flag = self.take(1)?[0];
        let elem = match flag {
            0 => 4,
            1 => 2,
            value => return Err(CheckpointError::BadFlag { tensor, value }),
        };
        if n > self.remaining() / elem {
            return Err(CheckpointError::Truncated);
        }
        let bytes = self.take(n * elem)?;
        out.clear();
        out.reserve(n);
        if elem == 2 {
            for i in 0..n {
                let bits = u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]);
                out.push(F16(bits).to_f32());
            }
        } else {
            for i in 0..n {
                out.push(f32::from_le_bytes(
                    bytes[4 * i..4 * i + 4].try_into().unwrap(),
                ));
            }
        }
        Ok(())
    }
}

/// Serializes a model's parameters (grids fp16, MLPs f32).
pub fn save(model: &NerfModel) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    // Tensor 0: density grid. Tensor 1: color grid (possibly empty).
    w.f32_slice_fp16(model.density_grid().params());
    match model.color_grid() {
        Some(g) => w.f32_slice_fp16(g.params()),
        None => w.f32_slice_fp16(&[]),
    }
    // MLP tensors in visitor order, f32.
    let mut mlp_params: Vec<Vec<f32>> = Vec::new();
    collect_mlp(model.sigma_mlp(), &mut mlp_params);
    collect_mlp(model.color_mlp(), &mut mlp_params);
    w.u32(mlp_params.len() as u32);
    for t in &mlp_params {
        w.f32_slice(t);
    }
    w.buf
}

fn collect_mlp(mlp: &instant3d_nerf::mlp::Mlp, out: &mut Vec<Vec<f32>>) {
    // The visitor needs &mut; clone a scratch copy to read tensors.
    let mut scratch = mlp.clone();
    let grads = mlp.zero_grads();
    scratch.for_each_param_mut(&grads, |params, _| out.push(params.to_vec()));
}

/// The expected MLP tensor lengths in serialization (visitor) order:
/// weights then bias per layer, matching `collect_mlp` /
/// [`instant3d_nerf::mlp::Mlp::for_each_param_mut`].
fn mlp_tensor_shapes(mlp: &instant3d_nerf::mlp::Mlp, out: &mut Vec<usize>) {
    for l in mlp.layers() {
        let s = l.spec();
        out.push(s.in_dim * s.out_dim);
        out.push(s.out_dim);
    }
}

/// Restores parameters into a shape-compatible model (same config).
///
/// The load is **transactional**: the blob is fully decoded into scratch
/// buffers and every tensor shape is validated against `model` *before*
/// the first parameter is written. On any error — bad header, truncated
/// or corrupt data, shape mismatch — the model is left bitwise
/// untouched; a half-restored model (grids from the new blob, MLPs from
/// the old weights) cannot be observed. The serve layer's checkpoint
/// streaming relies on this: a corrupt blob arriving over the wire must
/// not poison a resident job.
///
/// # Errors
///
/// Returns [`CheckpointError`] when the blob is malformed or its tensor
/// shapes do not match `model`.
pub fn load(model: &mut NerfModel, data: &[u8]) -> Result<(), CheckpointError> {
    // Phase 1 — parse the whole blob into scratch, with every stored
    // length bounds-checked against the remaining input before it sizes
    // an allocation.
    let mut r = Reader { data, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let mut density = Vec::new();
    r.f32_tensor_into(0, &mut density)?;
    let mut color = Vec::new();
    r.f32_tensor_into(1, &mut color)?;
    let n_mlp = r.u32()? as usize;
    // Every stored tensor occupies at least 5 bytes (u32 length + coding
    // flag), which bounds a corrupt tensor count before `with_capacity`.
    if n_mlp > r.remaining() / 5 {
        return Err(CheckpointError::Truncated);
    }
    let mut tensors: Vec<Vec<f32>> = Vec::with_capacity(n_mlp);
    for t in 0..n_mlp {
        let mut buf = Vec::new();
        r.f32_tensor_into(2 + t, &mut buf)?;
        tensors.push(buf);
    }

    // Phase 2 — validate every tensor shape against the model.
    let expected_density = model.density_grid().params().len();
    if density.len() != expected_density {
        return Err(CheckpointError::ShapeMismatch {
            tensor: 0,
            stored: density.len(),
            expected: expected_density,
        });
    }
    let expected_color = model.color_grid().map_or(0, |g| g.params().len());
    if color.len() != expected_color {
        return Err(CheckpointError::ShapeMismatch {
            tensor: 1,
            stored: color.len(),
            expected: expected_color,
        });
    }
    let mut shapes: Vec<usize> = Vec::new();
    mlp_tensor_shapes(model.sigma_mlp(), &mut shapes);
    mlp_tensor_shapes(model.color_mlp(), &mut shapes);
    for (i, &expected) in shapes.iter().enumerate() {
        match tensors.get(i) {
            Some(t) if t.len() == expected => {}
            Some(t) => {
                return Err(CheckpointError::ShapeMismatch {
                    tensor: 2 + i,
                    stored: t.len(),
                    expected,
                })
            }
            None => return Err(CheckpointError::Truncated),
        }
    }
    if tensors.len() != shapes.len() {
        return Err(CheckpointError::ShapeMismatch {
            tensor: 2 + shapes.len(),
            stored: tensors.len(),
            expected: shapes.len(),
        });
    }

    // Phase 3 — commit. Every shape was proven above, so nothing below
    // can fail: the model transitions atomically from its old parameter
    // set to the checkpoint's.
    model
        .density_grid_mut()
        .params_mut()
        .copy_from_slice(&density);
    if let Some(g) = model.color_grid_mut() {
        g.params_mut().copy_from_slice(&color);
    }
    let mut idx = 0usize;
    let mut apply = |mlp: &mut instant3d_nerf::mlp::Mlp| {
        let grads = mlp.zero_grads();
        mlp.for_each_param_mut(&grads, |params, _| {
            params.copy_from_slice(&tensors[idx]);
            idx += 1;
        });
    };
    apply(model.sigma_mlp_mut());
    apply(model.color_mlp_mut());
    debug_assert_eq!(idx, tensors.len(), "visitor order drifted from shapes");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GridTopology, TrainConfig};
    use instant3d_nerf::field::RadianceField;
    use instant3d_nerf::math::{Aabb, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64, topo: GridTopology) -> NerfModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = TrainConfig::fast_preview();
        cfg.topology = topo;
        NerfModel::new(&cfg, Aabb::UNIT, &mut rng)
    }

    #[test]
    fn roundtrip_restores_exact_outputs() {
        for topo in [GridTopology::Coupled, GridTopology::Decoupled] {
            let original = model(1, topo);
            let blob = save(&original);
            let mut restored = model(2, topo); // different random init
            let p = Vec3::new(0.3, 0.6, 0.2);
            let d = Vec3::new(0.6, 0.0, 0.8);
            assert_ne!(original.query(p, d), restored.query(p, d));
            load(&mut restored, &blob).expect("load should succeed");
            // Grid features pass through fp16 (lossless: they were already
            // fp16-quantized by storage); MLP weights are exact f32.
            let (s1, c1) = original.query(p, d);
            let (s2, c2) = restored.query(p, d);
            assert!((s1 - s2).abs() < 1e-5, "{topo:?} sigma {s1} vs {s2}");
            assert!((c1 - c2).norm() < 1e-5, "{topo:?} rgb {c1} vs {c2}");
        }
    }

    #[test]
    fn checkpoint_is_compact() {
        let m = model(3, GridTopology::Decoupled);
        let blob = save(&m);
        // Grids dominate and are 2 bytes/param; MLPs 4 bytes/param.
        let upper = m.num_params() * 4 + 64;
        assert!(blob.len() < upper, "blob {} vs bound {upper}", blob.len());
        let grid_params =
            m.density_grid().num_params() + m.color_grid().map_or(0, |g| g.num_params());
        assert!(blob.len() >= grid_params * 2, "fp16 floor");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut m = model(4, GridTopology::Decoupled);
        assert_eq!(load(&mut m, b"NOPE....."), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let m = model(5, GridTopology::Coupled);
        let mut blob = save(&m);
        blob[4] = 99; // corrupt version
        let mut m2 = model(5, GridTopology::Coupled);
        assert_eq!(load(&mut m2, &blob), Err(CheckpointError::BadVersion(99)));
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let m = model(6, GridTopology::Decoupled);
        let blob = save(&m);
        let mut m2 = model(6, GridTopology::Decoupled);
        let err = load(&mut m2, &blob[..blob.len() / 2]).unwrap_err();
        assert!(matches!(err, CheckpointError::Truncated));
    }

    #[test]
    fn topology_mismatch_is_rejected() {
        let coupled = model(7, GridTopology::Coupled);
        let blob = save(&coupled);
        let mut decoupled = model(7, GridTopology::Decoupled);
        assert!(load(&mut decoupled, &blob).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::ShapeMismatch {
            tensor: 3,
            stored: 10,
            expected: 20,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("10") && s.contains("20"));
    }
}
