//! Conformance-suite integration tests: the live tree must lint clean,
//! and seeded-violation fixtures must each fail with a `file:line`
//! diagnostic from the right pass.

use std::path::Path;

use instant3d_conformance::{lint_source, run_all, Config, Violation};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

fn lints<'a>(vs: &'a [Violation], lint: &str) -> Vec<&'a Violation> {
    vs.iter().filter(|v| v.lint == lint).collect()
}

/// The whole workspace lints clean against the checked-in allowlists —
/// the same gate `cargo run -p instant3d-conformance` enforces in CI.
#[test]
fn tree_is_clean() {
    let report = run_all(repo_root());
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
    assert!(
        report.is_clean(),
        "conformance violations in the tree:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>()
    );
}

#[test]
fn unmarked_mul_add_in_strict_module_fails_with_file_line() {
    let src = include_str!("fixtures/fma_unmarked.rs");
    let vs = lint_source("crates/nerf/src/grid.rs", src, &Config::default());
    let fma = lints(&vs, "fma-strict");
    assert_eq!(fma.len(), 1, "expected exactly one fma violation: {vs:?}");
    assert_eq!(fma[0].file, "crates/nerf/src/grid.rs");
    // The unmarked call site; the marked `lossy_helper` below it is clean.
    let line = src
        .lines()
        .position(|l| l.contains("a.mul_add(b, c)"))
        .unwrap() as u32
        + 1;
    assert_eq!(fma[0].line, line);
    assert!(fma[0].message.contains("strict_kernel"));
}

#[test]
fn marked_fixture_is_clean_outside_strict_modules() {
    // The same source linted under a non-strict path: no FMA pass at all.
    let src = include_str!("fixtures/fma_unmarked.rs");
    let vs = lint_source("crates/scenes/src/lib.rs", src, &Config::default());
    assert!(lints(&vs, "fma-strict").is_empty());
}

#[test]
fn undocumented_unsafe_and_missing_caller_fail() {
    let src = include_str!("fixtures/unsafe_undocumented.rs");
    let vs = lint_source("crates/nerf/src/grid.rs", src, &Config::default());

    let safety = lints(&vs, "unsafe-safety");
    // The bare block and the `missing_caller` unsafe fn; `documented`
    // and `guarded` are covered.
    assert_eq!(safety.len(), 2, "unsafe census: {vs:?}");
    let block_line = src
        .lines()
        .position(|l| l.contains("core::ptr::null"))
        .unwrap() as u32
        + 1;
    assert!(safety.iter().any(|v| v.line == block_line));

    let caller = lints(&vs, "target-feature-caller");
    assert_eq!(caller.len(), 1, "caller notes: {vs:?}");
    assert!(caller[0].message.contains("missing_caller"));
}

#[test]
fn unjustified_relaxed_and_unlisted_seqcst_fail() {
    let src = include_str!("fixtures/relaxed_unjustified.rs");
    let vs = lint_source("vendor/rayon/src/fake.rs", src, &Config::default());

    let relaxed = lints(&vs, "atomics-ordering");
    assert_eq!(relaxed.len(), 1, "relaxed audit: {vs:?}");
    assert_eq!(relaxed[0].file, "vendor/rayon/src/fake.rs");
    let line = src
        .lines()
        .position(|l| l.contains("Ordering::Relaxed") && !l.contains("ORDERING:"))
        .unwrap() as u32
        + 1;
    // First unjustified site (the `justified` one two fns down is clean).
    assert_eq!(relaxed[0].line, line);

    let protocol = lints(&vs, "atomics-protocol");
    assert_eq!(protocol.len(), 1, "protocol cross-check: {vs:?}");
    assert!(protocol[0].message.contains("SeqCst"));
    assert!(protocol[0].message.contains("unlisted_protocol"));
}

#[test]
fn protocol_manifest_count_drift_is_flagged() {
    let src = include_str!("fixtures/relaxed_unjustified.rs");
    let mut cfg = Config::default();
    cfg.protocol.push(instant3d_conformance::ProtocolEntry {
        path: "vendor/rayon/src/fake.rs".into(),
        func: "unlisted_protocol".into(),
        ordering: "SeqCst".into(),
        count: 3, // file has 1
    });
    let vs = lint_source("vendor/rayon/src/fake.rs", src, &cfg);
    let protocol = lints(&vs, "atomics-protocol");
    assert_eq!(protocol.len(), 1);
    assert!(protocol[0].message.contains("count drift"));
}

#[test]
fn hashmap_in_kernel_path_fails_but_cfg_test_is_exempt() {
    let src = include_str!("fixtures/determinism_hashmap.rs");
    let vs = lint_source("crates/nerf/src/foo.rs", src, &Config::default());
    let det = lints(&vs, "determinism");
    assert!(!det.is_empty(), "determinism: {vs:?}");
    assert!(det.iter().all(|v| v.message.contains("HashMap")));
    // Nothing flagged inside the #[cfg(test)] module (HashSet there).
    let test_mod_start = src
        .lines()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap() as u32
        + 1;
    assert!(det.iter().all(|v| v.line < test_mod_start));
    // The serve crate is a determinism root too (fleet scheduling must
    // not perturb results), so the same source flags there…
    let vs2 = lint_source("crates/serve/src/foo.rs", src, &Config::default());
    assert!(!lints(&vs2, "determinism").is_empty(), "{vs2:?}");
    // …while outside the kernel/trainer/serve roots the pass does not
    // run at all.
    let vs3 = lint_source("crates/trace/src/foo.rs", src, &Config::default());
    assert!(lints(&vs3, "determinism").is_empty(), "{vs3:?}");
}

#[test]
fn determinism_allowlist_suppresses_named_pairs_only() {
    let src = include_str!("fixtures/determinism_hashmap.rs");
    let mut cfg = Config::default();
    cfg.determinism
        .push(instant3d_conformance::DeterminismEntry {
            path: "crates/nerf/src/foo.rs".into(),
            name: "HashMap".into(),
        });
    let vs = lint_source("crates/nerf/src/foo.rs", src, &cfg);
    assert!(lints(&vs, "determinism").is_empty(), "{vs:?}");
}

#[test]
fn unjustified_panics_in_hot_path_modules_fail() {
    let src = include_str!("fixtures/panic_unjustified.rs");
    let vs = lint_source("crates/nerf/src/mlp.rs", src, &Config::default());
    let census = lints(&vs, "panic-census");
    // The three bare sites in `hot_path`; `justified`, `trailing_marker`
    // and the #[cfg(test)] module are clean.
    assert_eq!(census.len(), 3, "panic census: {vs:?}");
    for (needle, what) in [
        ("v.first().unwrap()", "`.unwrap()`"),
        ("v.last().expect", "`.expect()`"),
        ("panic!(\"batch too large\")", "`panic!`"),
    ] {
        let line = src.lines().position(|l| l.contains(needle)).unwrap() as u32 + 1;
        assert!(
            census
                .iter()
                .any(|v| v.line == line && v.message.contains(what)),
            "missing {what} at line {line}: {census:?}"
        );
    }
    // Outside the census file list the pass does not run.
    let vs2 = lint_source("crates/nerf/src/lib.rs", src, &Config::default());
    assert!(lints(&vs2, "panic-census").is_empty(), "{vs2:?}");
}

/// Every write plan declared at the engine's parallel dispatch seams is
/// proved disjoint-and-covering for all shapes — the `tree_is_clean`
/// analogue for the prover, pinned separately so a plan regression is
/// named even if a lexical lint also fires.
#[test]
fn declared_write_plans_prove_for_all_shapes() {
    let (checked, violations) = instant3d_conformance::plan::prove_all();
    assert!(checked >= 12, "dispatch seams missing plans: {checked}");
    assert!(
        violations.is_empty(),
        "unproven write plans:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>()
    );
}

/// A deliberately overlapping plan (each task claims one extra trailing
/// element) is rejected with a diagnostic naming both clashing tasks and
/// their concrete ranges — the end-to-end negative fixture for the
/// prover surface.
#[test]
fn overlapping_plan_fixture_is_caught_with_both_tasks_named() {
    use instant3d_nerf::kernels::plan::{con, par, WritePlan};
    let mut plan = WritePlan::chunked(
        "crates/nerf/src/grid.rs:1 fixture::overlapping",
        "fixture buffer",
        "n",
        "chunk",
        None,
    );
    plan.end = par(plan.task)
        .add(con(1))
        .mul(par(1))
        .add(con(1))
        .min(par(0));
    let err = instant3d_conformance::prover::prove_plan(&plan)
        .expect_err("overlapping plan must not prove");
    assert!(err.contains("tasks-ordered"), "{err}");
    assert!(err.contains("overlapping task"), "{err}");
    assert!(err.contains("writes ["), "{err}");
}

/// The checked-in manifest matches the real vendor/rayon tree exactly —
/// deleting a protocol site (or adding one) without updating the
/// manifest is caught.
#[test]
fn protocol_manifest_matches_the_live_tree_bidirectionally() {
    let root = repo_root();
    let cfg = Config::load(root);
    assert!(
        cfg.protocol.len() >= 7,
        "protocol manifest unexpectedly small: {}",
        cfg.protocol.len()
    );
    let registry = std::fs::read_to_string(root.join("vendor/rayon/src/registry.rs")).unwrap();
    // Seed a drift: lint a copy of registry.rs with one SeqCst removed.
    let seeded = registry.replacen("Ordering::SeqCst", "Ordering::Acquire", 1);
    let vs = lint_source("vendor/rayon/src/registry.rs", &seeded, &cfg);
    assert!(
        vs.iter().any(|v| v.lint == "atomics-protocol"),
        "weakening a protocol site went unnoticed: {vs:?}"
    );
}
