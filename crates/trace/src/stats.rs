//! Histogram and percentile plumbing for the trace analyses.

/// A fixed-bin histogram over `i64` values with under/overflow buckets.
///
/// # Example
///
/// ```
/// use instant3d_trace::stats::Histogram;
/// let mut h = Histogram::new(-5, 5, 11);
/// for v in [-6, -5, 0, 0, 5, 6] {
///     h.add(v);
/// }
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    lo: i64,
    hi: i64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram of `bins` equal-width buckets covering `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: i64, hi: i64, bins: usize) -> Self {
        assert!(lo < hi, "lo must be below hi");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, v: i64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v > self.hi {
            self.overflow += 1;
        } else {
            let span = (self.hi - self.lo + 1) as u128;
            let idx = ((v - self.lo) as u128 * self.bins.len() as u128 / span) as usize;
            let last = self.bins.len() - 1;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// Adds every value in the slice.
    pub fn extend(&mut self, values: &[i64]) {
        for &v in values {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The inclusive value range `(lo, hi)` of bin `i`.
    pub fn bin_range(&self, i: usize) -> (i64, i64) {
        let span = (self.hi - self.lo + 1) as i128;
        let n = self.bins.len() as i128;
        let lo = self.lo as i128 + span * i as i128 / n;
        let hi = self.lo as i128 + span * (i as i128 + 1) / n - 1;
        (lo as i64, hi as i64)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Fraction of observations inside `[lo, hi]`.
    pub fn in_range_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.bins.iter().sum::<u64>() as f64 / total as f64
    }

    /// Renders a compact ASCII bar chart (one line per bin), for the
    /// experiment binaries' figure output.
    pub fn to_ascii(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut s = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar = "#".repeat((c as usize * width) / max as usize);
            let label = if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}..{hi}")
            };
            let _ = writeln!(s, "{label:>12} | {bar} {c}");
        }
        s
    }
}

/// The `q`-quantile (0..=1) of an unsorted slice, by sorting a copy.
/// Returns `None` for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    Some(v[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_range_evenly() {
        let mut h = Histogram::new(-5, 5, 11);
        for v in -5..=5 {
            h.add(v);
        }
        assert!(h.bins().iter().all(|&c| c == 1), "{:?}", h.bins());
        assert_eq!(h.total(), 11);
        assert_eq!(h.in_range_fraction(), 1.0);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(-5, 5, 11);
        let mut expected_lo = -5i64;
        for i in 0..11 {
            let (lo, hi) = h.bin_range(i);
            assert_eq!(lo, expected_lo);
            assert!(hi >= lo);
            expected_lo = hi + 1;
        }
        assert_eq!(expected_lo, 6);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0, 9, 10);
        h.extend(&[-1, -100, 10, 500, 5]);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 5);
        assert!((h.in_range_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_is_nonempty() {
        let mut h = Histogram::new(0, 3, 4);
        h.extend(&[0, 1, 1, 2, 3, 3, 3]);
        let art = h.to_ascii(20);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('#'));
    }

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        let med = percentile(&v, 0.5).unwrap();
        assert!((49.0..=52.0).contains(&med));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic]
    fn invalid_range_panics() {
        let _ = Histogram::new(5, 5, 3);
    }
}
