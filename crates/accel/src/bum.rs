//! The Back-propagation Update Merger (BUM) — §4.5, Fig. 13.
//!
//! During back-propagation, multiple vertices share the same stored
//! embedding (hash collisions) and nearby samples update the same cube, so
//! the update stream revisits addresses within short windows (Fig. 10).
//! The BUM is a 16-entry buffer in front of the SRAM write port:
//!
//! * **Match** — an incoming update whose address is already buffered is
//!   merged (values accumulated), costing no SRAM write.
//! * **Miss** — the update claims an empty entry; if the buffer is full,
//!   the entry that has gone longest without a merge is evicted and its
//!   accumulated value becomes one SRAM write.
//! * **Timeout** — entries idle for `N` cycles are flushed to SRAM.
//!
//! Without the BUM every update is a read-modify-write on the table.

/// BUM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumConfig {
    /// Buffer entries (the paper uses 16).
    pub entries: usize,
    /// Idle-eviction threshold in cycles (`N` of Fig. 13).
    pub timeout: u64,
}

impl Default for BumConfig {
    fn default() -> Self {
        BumConfig {
            entries: 16,
            timeout: 64,
        }
    }
}

/// Result of replaying an update stream through the BUM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumResult {
    /// Updates presented to the unit.
    pub updates: u64,
    /// Updates merged into an existing entry (saved writes).
    pub merged: u64,
    /// SRAM writes actually performed (evictions + final flush).
    pub sram_writes: u64,
    /// Cycles consumed (one per update, plus drain).
    pub cycles: u64,
}

impl BumResult {
    /// Fraction of updates that were absorbed without an SRAM write.
    pub fn merge_ratio(&self) -> f64 {
        if self.updates == 0 {
            return 0.0;
        }
        self.merged as f64 / self.updates as f64
    }

    /// SRAM writes per incoming update (lower is better; 1.0 = no merging).
    pub fn write_ratio(&self) -> f64 {
        if self.updates == 0 {
            return 0.0;
        }
        self.sram_writes as f64 / self.updates as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    addr: u64,
    last_touch: u64,
}

/// Replays an update-address stream through a BUM. One update arrives per
/// cycle (the unit is pipelined); timeouts are checked as time advances.
///
/// # Panics
///
/// Panics if `cfg.entries` is zero.
pub fn simulate_bum(addrs: &[u64], cfg: BumConfig) -> BumResult {
    assert!(cfg.entries > 0, "BUM needs at least one entry");
    let mut buffer: Vec<Entry> = Vec::with_capacity(cfg.entries);
    let mut merged = 0u64;
    let mut writes = 0u64;
    let mut cycle = 0u64;

    for &addr in addrs {
        cycle += 1;
        // Timeout flush: entries idle longer than N cycles.
        let before = buffer.len();
        buffer.retain(|e| cycle - e.last_touch <= cfg.timeout);
        writes += (before - buffer.len()) as u64;

        // One-to-all match (Fig. 13(b)).
        if let Some(e) = buffer.iter_mut().find(|e| e.addr == addr) {
            e.last_touch = cycle;
            merged += 1;
            continue;
        }
        // Miss: insert, evicting the stalest entry when full.
        if buffer.len() == cfg.entries {
            let stalest = buffer
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(i, _)| i)
                .expect("buffer is non-empty");
            buffer.swap_remove(stalest);
            writes += 1;
        }
        buffer.push(Entry {
            addr,
            last_touch: cycle,
        });
    }
    // Drain: every resident entry becomes one write.
    writes += buffer.len() as u64;
    cycle += buffer.len() as u64;

    BumResult {
        updates: addrs.len() as u64,
        merged,
        sram_writes: writes,
        cycles: cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_address_merges_to_one_write() {
        let addrs = vec![42u64; 100];
        let r = simulate_bum(&addrs, BumConfig::default());
        assert_eq!(r.updates, 100);
        assert_eq!(r.merged, 99);
        assert_eq!(r.sram_writes, 1);
        assert!((r.merge_ratio() - 0.99).abs() < 1e-9);
    }

    #[test]
    fn all_unique_addresses_all_write() {
        let addrs: Vec<u64> = (0..100).collect();
        let r = simulate_bum(&addrs, BumConfig::default());
        assert_eq!(r.merged, 0);
        assert_eq!(r.sram_writes, 100);
        assert_eq!(r.write_ratio(), 1.0);
    }

    #[test]
    fn paper_pattern_five_reuses_merge() {
        // §4.2: "shared embeddings among more than five accesses" — a
        // stream where each address repeats 5× within the window.
        let mut addrs = Vec::new();
        for group in 0..50u64 {
            for _ in 0..5 {
                addrs.push(group);
            }
        }
        let r = simulate_bum(&addrs, BumConfig::default());
        assert_eq!(r.sram_writes, 50, "one write per distinct address");
        assert!((r.write_ratio() - 0.2).abs() < 1e-9, "5× traffic reduction");
    }

    #[test]
    fn interleaved_reuse_within_capacity_merges() {
        // 8 addresses round-robin, well within 16 entries.
        let addrs: Vec<u64> = (0..400).map(|i| (i % 8) as u64).collect();
        let r = simulate_bum(
            &addrs,
            BumConfig {
                entries: 16,
                timeout: 1000,
            },
        );
        assert_eq!(r.sram_writes, 8);
    }

    #[test]
    fn capacity_pressure_causes_evictions() {
        // 32 round-robin addresses overflow a 16-entry buffer: every access
        // misses (its entry was evicted 16 slots ago).
        let addrs: Vec<u64> = (0..320).map(|i| (i % 32) as u64).collect();
        let r = simulate_bum(
            &addrs,
            BumConfig {
                entries: 16,
                timeout: 10_000,
            },
        );
        assert_eq!(r.merged, 0, "thrashing buffer should never merge");
        assert_eq!(r.sram_writes, 320);
    }

    #[test]
    fn timeout_flushes_idle_entries() {
        // Two bursts of the same address separated by a gap of traffic
        // that fits alongside it in the buffer (8 distinct addresses
        // looping): with a small timeout the idle entry flushes between
        // bursts; with a large one it survives and the second burst merges.
        let mut addrs = vec![7u64; 4];
        for i in 0..96 {
            addrs.push(1000 + (i % 8) as u64);
        }
        addrs.extend(vec![7u64; 4]);
        let small = simulate_bum(
            &addrs,
            BumConfig {
                entries: 16,
                timeout: 8,
            },
        );
        let large = simulate_bum(
            &addrs,
            BumConfig {
                entries: 16,
                timeout: 100_000,
            },
        );
        assert!(
            small.sram_writes > large.sram_writes,
            "small-timeout writes {} should exceed large-timeout writes {}",
            small.sram_writes,
            large.sram_writes
        );
    }

    #[test]
    fn empty_stream() {
        let r = simulate_bum(&[], BumConfig::default());
        assert_eq!(r.updates, 0);
        assert_eq!(r.sram_writes, 0);
        assert_eq!(r.merge_ratio(), 0.0);
    }

    #[test]
    fn conservation_updates_equal_merges_plus_writes() {
        // Every update either merges or eventually produces exactly one
        // write of its (possibly accumulated) entry... conservation holds
        // as: writes = distinct "entry lifetimes" = updates − merged.
        let addrs: Vec<u64> = (0..500).map(|i| (i % 13) as u64).collect();
        let r = simulate_bum(&addrs, BumConfig::default());
        assert_eq!(r.sram_writes + r.merged, r.updates);
    }

    #[test]
    #[should_panic]
    fn zero_entries_panics() {
        let _ = simulate_bum(
            &[1],
            BumConfig {
                entries: 0,
                timeout: 4,
            },
        );
    }
}
