// Fixture: linted as if it were crates/nerf/src/mlp.rs. Not compiled.

fn hot_path(v: &[f32]) -> f32 {
    // VIOLATION: bare unwrap in a hot-path module.
    let first = v.first().unwrap();
    // VIOLATION: bare expect.
    let last = v.last().expect("non-empty");
    if v.len() > 1_000_000 {
        // VIOLATION: bare panic!.
        panic!("batch too large");
    }
    first + last
}

fn justified(v: &[f32]) -> f32 {
    // PANICS: callers validate `v` is non-empty at the API boundary.
    let first = v.first().unwrap();
    *first
}

fn trailing_marker(v: &[f32]) -> f32 {
    *v.first().unwrap() // PANICS: guarded by the caller's assert.
}

#[cfg(test)]
mod tests {
    // Exempt: tests may unwrap/panic freely.
    #[test]
    fn uses_unwrap() {
        let v = [1.0f32];
        assert_eq!(*v.first().unwrap(), 1.0);
        if v.is_empty() {
            panic!("unreachable");
        }
    }
}
