//! Property-based tests of the device performance models.

use instant3d_core::PipelineWorkload;
use instant3d_devices::{breakdown::StepBreakdown, DeviceModel};
use proptest::prelude::*;

fn workload(points: f64, iters: f64, table_mb: usize) -> PipelineWorkload {
    let reads = points * 16.0 * 8.0;
    PipelineWorkload {
        iterations: iters,
        rays_per_iter: 4096.0,
        points_per_iter: points,
        levels: 16,
        grid_reads_ff_per_iter: reads,
        grid_writes_bp_per_iter: reads,
        mlp_flops_per_iter: points * 36_000.0,
        density_table_bytes: table_mb << 20,
        color_table_bytes: 0,
        bytes_per_access: 4,
    }
}

proptest! {
    #[test]
    fn runtime_is_monotone_in_points(p1 in 1_000.0f64..500_000.0, scale in 1.01f64..4.0) {
        let m = DeviceModel::xavier_nx();
        let small = m.runtime(&workload(p1, 100.0, 2));
        let large = m.runtime(&workload(p1 * scale, 100.0, 2));
        prop_assert!(large > small);
    }

    #[test]
    fn runtime_scales_linearly_with_iterations(iters in 1.0f64..1000.0, k in 2.0f64..5.0) {
        let m = DeviceModel::jetson_tx2();
        let w1 = workload(100_000.0, iters, 2);
        let wk = workload(100_000.0, iters * k, 2);
        let r = m.runtime(&wk) / m.runtime(&w1);
        prop_assert!((r - k).abs() < 1e-6, "ratio {r} vs {k}");
    }

    #[test]
    fn bigger_tables_never_run_faster(mb1 in 1usize..8, extra in 1usize..8) {
        let m = DeviceModel::xavier_nx();
        let t_small = m.runtime(&workload(200_000.0, 100.0, mb1));
        let t_big = m.runtime(&workload(200_000.0, 100.0, mb1 + extra));
        prop_assert!(t_big >= t_small);
    }

    #[test]
    fn devices_preserve_power_class_ordering(points in 10_000.0f64..400_000.0) {
        let w = workload(points, 100.0, 2);
        let nano = DeviceModel::jetson_nano().runtime(&w);
        let tx2 = DeviceModel::jetson_tx2().runtime(&w);
        let nx = DeviceModel::xavier_nx().runtime(&w);
        prop_assert!(nano > tx2 && tx2 > nx);
    }

    #[test]
    fn energy_equals_power_times_runtime(points in 10_000.0f64..400_000.0) {
        let w = workload(points, 50.0, 2);
        for m in DeviceModel::all_baselines() {
            let e = m.energy(&w);
            let expect = m.runtime(&w) * m.spec().typical_power_w;
            prop_assert!((e - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn breakdown_fractions_sum_to_one(points in 10_000.0f64..400_000.0, mb in 1usize..8) {
        let b = StepBreakdown::compute(&DeviceModel::xavier_nx(), &workload(points, 10.0, mb));
        let sum: f64 = b.steps.iter().map(|(_, _, f)| f).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let grid = b.grid_interpolation_fraction();
        prop_assert!((0.0..=1.0).contains(&grid));
    }

    #[test]
    fn access_cost_factor_is_monotone_and_bounded(b1 in 1usize..64, b2 in 1usize..64) {
        let m = DeviceModel::xavier_nx();
        let (small, large) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let f_small = m.access_cost_factor(small << 20);
        let f_large = m.access_cost_factor(large << 20);
        prop_assert!(f_small <= f_large + 1e-12);
        prop_assert!(f_small >= 1.0 && f_large <= m.miss_penalty);
    }
}
