//! Microbenchmarks of the volume-rendering compositor (Step ④/⑥) and the
//! small MLP heads (Step ③-②).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_nerf::activation::Activation;
use instant3d_nerf::math::Vec3;
use instant3d_nerf::mlp::{Mlp, MlpConfig};
use instant3d_nerf::render::{composite, composite_backward, RaySample, RenderCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn samples(n: usize) -> Vec<RaySample> {
    let dt = 1.0 / n as f32;
    (0..n)
        .map(|i| RaySample {
            t: (i as f32 + 0.5) * dt,
            dt,
            sigma: 0.5 + (i % 7) as f32,
            rgb: Vec3::new(0.3, 0.5, 0.7),
        })
        .collect()
}

fn bench_composite(c: &mut Criterion) {
    let s = samples(64);
    c.bench_function("render/composite_64_samples", |b| {
        b.iter(|| black_box(composite(&s, Vec3::ONE, None)))
    });
    let mut cache = RenderCache::default();
    let out = composite(&s, Vec3::ONE, Some(&mut cache));
    c.bench_function("render/backward_64_samples", |b| {
        b.iter(|| black_box(composite_backward(&s, Vec3::ONE, &cache, &out, Vec3::ONE)))
    });
}

fn bench_mlp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    // The paper's color head: 32 inputs -> 64 hidden -> 3 RGB.
    let mlp = Mlp::new(
        MlpConfig::new(32, &[64], 3, Activation::Relu, Activation::Sigmoid),
        &mut rng,
    );
    let x: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut ws = mlp.workspace();
    c.bench_function("mlp/color_head_forward", |b| {
        b.iter(|| black_box(mlp.forward(&x, &mut ws)[0]))
    });
    let mut grads = mlp.zero_grads();
    let mut d_in = vec![0.0f32; 32];
    c.bench_function("mlp/color_head_backward", |b| {
        b.iter(|| {
            mlp.forward(&x, &mut ws);
            mlp.backward(&[1.0, -0.5, 0.25], &mut ws, &mut grads, &mut d_in);
            black_box(d_in[0])
        })
    });
}

criterion_group!(benches, bench_composite, bench_mlp);
criterion_main!(benches);
