//! A furnished-room scene with a walking camera trajectory, standing in for
//! ScanNet.
//!
//! ScanNet scenes are real RGB-D captures: forward-facing trajectories
//! through cluttered rooms, with sensor noise. This substitute builds a
//! room with furniture primitives, generates a walking trajectory of
//! inward-facing cameras, and (optionally) injects Gaussian pixel noise to
//! mimic real-capture supervision.

use crate::primitives::{Primitive, Shape};
use crate::scene::AnalyticScene;
use instant3d_nerf::camera::Camera;
use instant3d_nerf::math::{Aabb, Vec3};

/// Builds the ScanNet-like furnished room.
pub fn build_room() -> AnalyticScene {
    let half = 1.6f32;
    let wall = Vec3::new(0.8, 0.78, 0.72);
    let mut prims = vec![
        // Floor and three walls (one side open for the camera path).
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(0.0, -0.85, 0.0),
                half: Vec3::new(half, 0.08, half),
            },
            60.0,
            Vec3::new(0.45, 0.38, 0.3),
        ),
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(0.0, 0.2, -half),
                half: Vec3::new(half, 1.0, 0.08),
            },
            60.0,
            wall,
        ),
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(-half, 0.2, 0.0),
                half: Vec3::new(0.08, 1.0, half),
            },
            60.0,
            wall * 0.95,
        ),
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(half, 0.2, 0.0),
                half: Vec3::new(0.08, 1.0, half),
            },
            60.0,
            wall * 0.9,
        ),
        // Table.
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(0.3, -0.35, -0.5),
                half: Vec3::new(0.4, 0.03, 0.25),
            },
            50.0,
            Vec3::new(0.5, 0.33, 0.2),
        ),
        // Sofa: seat + backrest.
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(-0.8, -0.55, 0.4),
                half: Vec3::new(0.3, 0.18, 0.55),
            },
            50.0,
            Vec3::new(0.25, 0.35, 0.55),
        ),
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(-1.05, -0.2, 0.4),
                half: Vec3::new(0.08, 0.3, 0.55),
            },
            50.0,
            Vec3::new(0.22, 0.3, 0.5),
        ),
        // Lamp.
        Primitive::matte(
            Shape::Cylinder {
                center: Vec3::new(1.1, -0.3, 0.9),
                radius: 0.04,
                half_height: 0.5,
            },
            50.0,
            Vec3::new(0.3, 0.3, 0.3),
        ),
        Primitive::glossy(
            Shape::Sphere {
                center: Vec3::new(1.1, 0.3, 0.9),
                radius: 0.15,
            },
            35.0,
            Vec3::new(0.95, 0.9, 0.6),
            0.3,
        ),
        // A plant in the corner (fine geometry).
        Primitive::matte(
            Shape::Blob {
                center: Vec3::new(-1.2, -0.3, -1.2),
                sigma: 0.22,
            },
            25.0,
            Vec3::new(0.15, 0.45, 0.15),
        ),
    ];
    // Table legs.
    for (sx, sz) in [(-1.0, -1.0), (-1.0, 1.0), (1.0, -1.0), (1.0, 1.0)] {
        prims.push(Primitive::matte(
            Shape::Cylinder {
                center: Vec3::new(0.3 + 0.35 * sx, -0.6, -0.5 + 0.2 * sz),
                radius: 0.03,
                half_height: 0.22,
            },
            50.0,
            Vec3::new(0.35, 0.22, 0.12),
        ));
    }
    let aabb = Aabb::new(
        Vec3::new(-(half + 0.2), -1.0, -(half + 0.2)),
        Vec3::new(half + 0.2, 1.3, half + 0.2),
    );
    AnalyticScene::with_aabb("scannet-room", prims, aabb)
}

/// A walking camera trajectory through the room's open side: `count` poses
/// advancing along +z at eye height, each looking at the room center with a
/// gentle sweep — the forward-facing capture pattern of handheld RGB-D.
pub fn walking_trajectory(count: usize, fov_y: f32, width: u32, height: u32) -> Vec<Camera> {
    (0..count)
        .map(|i| {
            let s = i as f32 / count.max(1) as f32;
            let eye = Vec3::new(
                -0.9 + 1.8 * s,              // strafe across the open side
                0.1 + 0.1 * (s * 6.0).sin(), // handheld bob
                1.35,
            );
            let look = Vec3::new(0.4 - 0.8 * s, -0.2, -0.4);
            Camera::look_at(eye, look, Vec3::Y, fov_y, width, height)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_nerf::field::RadianceField;

    #[test]
    fn room_has_floor_walls_and_furniture() {
        let s = build_room();
        assert!(s.density(Vec3::new(0.0, -0.85, 0.0)) > 0.0, "floor");
        assert!(s.density(Vec3::new(0.0, 0.2, -1.6)) > 0.0, "back wall");
        assert!(s.density(Vec3::new(0.3, -0.35, -0.5)) > 0.0, "table");
        assert_eq!(s.density(Vec3::new(0.0, 0.5, 0.5)), 0.0, "open air");
    }

    #[test]
    fn trajectory_cameras_stay_inside_aabb_and_look_inward() {
        let s = build_room();
        let traj = walking_trajectory(12, 1.0, 32, 32);
        assert_eq!(traj.len(), 12);
        for cam in &traj {
            assert!(s.aabb().contains(cam.pose.position), "camera left the room");
            // Forward component towards -z (into the room).
            assert!(cam.pose.forward.z < 0.0);
        }
    }

    #[test]
    fn trajectory_poses_differ() {
        let traj = walking_trajectory(5, 1.0, 16, 16);
        for w in traj.windows(2) {
            assert_ne!(w[0].pose.position, w[1].pose.position);
        }
    }
}
