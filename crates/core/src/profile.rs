//! Workload accounting: operation counts per pipeline step.
//!
//! The trainer counts every primitive operation (grid reads/writes, MLP
//! MACs, compositing ops, sampled rays/points). The device models
//! (`instant3d-devices`) and the accelerator simulator (`instant3d-accel`)
//! consume these counts — measured at laptop scale or pinned at the paper's
//! scale — to produce the runtime/energy numbers behind Figs. 4/7/16/17 and
//! Tabs. 4/5.

/// The six steps of the NeRF training pipeline (Fig. 2), with Step ③ split
/// into its grid-interpolation and MLP halves and the backward pass broken
/// out (matching the paper's Fig. 4 runtime-breakdown buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStep {
    /// Step ① — randomly sample pixels as a batch.
    SamplePixels,
    /// Step ② — map the pixels to rays.
    MapRays,
    /// Step ③-① forward — interpolate embeddings from the embedding grid.
    GridForward,
    /// Step ③-② forward — compute features with the small MLP.
    MlpForward,
    /// Step ④ — volume rendering (predict pixel colors).
    VolumeRender,
    /// Step ⑤ — compute the reconstruction loss.
    ComputeLoss,
    /// Step ③-① backward — gradient scatter into the embedding grid.
    GridBackward,
    /// Step ③-② backward — MLP backward.
    MlpBackward,
}

impl PipelineStep {
    /// All steps in pipeline order (backward steps last, as in Fig. 4).
    pub const ALL: [PipelineStep; 8] = [
        PipelineStep::SamplePixels,
        PipelineStep::MapRays,
        PipelineStep::GridForward,
        PipelineStep::MlpForward,
        PipelineStep::VolumeRender,
        PipelineStep::ComputeLoss,
        PipelineStep::GridBackward,
        PipelineStep::MlpBackward,
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            PipelineStep::SamplePixels => "step1-sample-pixels",
            PipelineStep::MapRays => "step2-map-rays",
            PipelineStep::GridForward => "step3a-grid-interp",
            PipelineStep::MlpForward => "step3b-mlp",
            PipelineStep::VolumeRender => "step4-render",
            PipelineStep::ComputeLoss => "step5-loss",
            PipelineStep::GridBackward => "step3a-grid-backprop",
            PipelineStep::MlpBackward => "step3b-mlp-backprop",
        }
    }

    /// Whether this bucket belongs to the Step ③-① grid-interpolation
    /// bottleneck (forward or backward) the paper identifies.
    pub fn is_grid_interpolation(self) -> bool {
        matches!(self, PipelineStep::GridForward | PipelineStep::GridBackward)
    }
}

/// Cumulative operation counts over a training run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// The registry name of the kernel backend the run was configured
    /// with (reported for provenance — golden tests compare stats across
    /// execution engines, and bench records need to say which kernels
    /// produced a number). Resolved from `TrainConfig::kernel_backend`'s
    /// handle; empty for hand-built stats.
    /// [`WorkloadStats::merge`] keeps the receiver's backend.
    pub backend: &'static str,
    /// The backend's registration tier label (`"strict"` or `"lossy"`,
    /// see `instant3d_nerf::kernels::Tier`) — provenance for perf
    /// records: a lossy-tier number is not bit-comparable to a strict
    /// golden run. Empty for hand-built stats; merge keeps the
    /// receiver's tier like it keeps the backend.
    pub tier: &'static str,
    /// Training iterations executed.
    pub iterations: u64,
    /// Rays (pixels) processed.
    pub rays: u64,
    /// Points queried (after occupancy culling).
    pub points: u64,
    /// Density-grid feed-forward table reads.
    pub density_reads_ff: u64,
    /// Color-grid feed-forward table reads (0 when coupled).
    pub color_reads_ff: u64,
    /// Density-grid back-propagation scatter writes.
    pub density_writes_bp: u64,
    /// Color-grid back-propagation scatter writes.
    pub color_writes_bp: u64,
    /// MLP multiply-accumulates, forward.
    pub mlp_flops_ff: u64,
    /// MLP multiply-accumulates, backward (≈ 2× forward).
    pub mlp_flops_bp: u64,
    /// Compositing operations (one per integrated sample).
    pub render_samples: u64,
    /// Occupancy-grid refreshes executed.
    pub occupancy_refreshes: u64,
    /// Occupancy cells whose density was (re)probed across all refreshes
    /// (`num_cells / occupancy_subset` per refresh).
    pub occupancy_probes: u64,
    /// Hash-table reads occupancy refreshes performed. Thanks to the
    /// per-level embedding cache this counts only levels that actually
    /// re-encoded — it is *not* included in [`WorkloadStats::density_reads_ff`],
    /// which tracks the training pipeline's Step ③-① reads.
    pub occupancy_reads_ff: u64,
    /// Fresh `BatchWorkspace`/`OccupancyWorkspace` allocations. Populated
    /// by the serve layer's fleet telemetry (one per workspace the reuse
    /// pool had to mint); the single-scene trainer leaves it 0 so golden
    /// comparisons between execution engines stay exact — its own lazy
    /// allocation is reported via `Trainer::batch_workspace_allocations`.
    pub workspaces_allocated: u64,
    /// Workspaces handed to a job from the reuse pool instead of being
    /// allocated. After warmup a healthy fleet grows this counter while
    /// [`WorkloadStats::workspaces_allocated`] stays flat — the
    /// zero-steady-state-allocation check.
    pub workspaces_recycled: u64,
}

impl WorkloadStats {
    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &WorkloadStats) {
        self.iterations += other.iterations;
        self.rays += other.rays;
        self.points += other.points;
        self.density_reads_ff += other.density_reads_ff;
        self.color_reads_ff += other.color_reads_ff;
        self.density_writes_bp += other.density_writes_bp;
        self.color_writes_bp += other.color_writes_bp;
        self.mlp_flops_ff += other.mlp_flops_ff;
        self.mlp_flops_bp += other.mlp_flops_bp;
        self.render_samples += other.render_samples;
        self.occupancy_refreshes += other.occupancy_refreshes;
        self.occupancy_probes += other.occupancy_probes;
        self.occupancy_reads_ff += other.occupancy_reads_ff;
        self.workspaces_allocated += other.workspaces_allocated;
        self.workspaces_recycled += other.workspaces_recycled;
    }

    /// All grid feed-forward reads.
    pub fn grid_reads_ff(&self) -> u64 {
        self.density_reads_ff + self.color_reads_ff
    }

    /// All grid back-propagation writes.
    pub fn grid_writes_bp(&self) -> u64 {
        self.density_writes_bp + self.color_writes_bp
    }

    /// Mean points per iteration.
    pub fn points_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.points as f64 / self.iterations as f64
        }
    }
}

/// A per-iteration workload description, either measured
/// ([`PipelineWorkload::from_stats`]) or pinned to the paper's scale.
///
/// All counts are *per training iteration*; `iterations` scales a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineWorkload {
    /// Iterations in the run being modelled.
    pub iterations: f64,
    /// Rays per iteration (batch size).
    pub rays_per_iter: f64,
    /// Queried points per iteration.
    pub points_per_iter: f64,
    /// Hash-grid levels.
    pub levels: u32,
    /// Grid feed-forward reads per iteration (all branches).
    pub grid_reads_ff_per_iter: f64,
    /// Grid back-propagation scatter writes per iteration (averaged over
    /// the update schedule, so a skipped color iteration halves its share).
    pub grid_writes_bp_per_iter: f64,
    /// MLP multiply-accumulates per iteration (forward + backward).
    pub mlp_flops_per_iter: f64,
    /// Density (or shared) hash-table bytes at fp16.
    pub density_table_bytes: usize,
    /// Color hash-table bytes at fp16 (0 when coupled).
    pub color_table_bytes: usize,
    /// Bytes per table access (features/entry × 2 B).
    pub bytes_per_access: usize,
}

impl PipelineWorkload {
    /// Derives the per-iteration workload from measured statistics.
    ///
    /// # Panics
    ///
    /// Panics if `stats.iterations == 0`.
    pub fn from_stats(
        stats: &WorkloadStats,
        levels: u32,
        density_table_bytes: usize,
        color_table_bytes: usize,
        bytes_per_access: usize,
    ) -> Self {
        assert!(stats.iterations > 0, "need at least one measured iteration");
        let it = stats.iterations as f64;
        PipelineWorkload {
            iterations: it,
            rays_per_iter: stats.rays as f64 / it,
            points_per_iter: stats.points as f64 / it,
            levels,
            grid_reads_ff_per_iter: stats.grid_reads_ff() as f64 / it,
            grid_writes_bp_per_iter: stats.grid_writes_bp() as f64 / it,
            mlp_flops_per_iter: (stats.mlp_flops_ff + stats.mlp_flops_bp) as f64 / it,
            density_table_bytes,
            color_table_bytes,
            bytes_per_access,
        }
    }

    /// The paper-scale Instant-NGP workload: ~200 000 embedding
    /// interpolations per iteration (§1), 16 levels, a 2 MB shared table
    /// (2¹⁹ entries × 2 features × fp16), 4096-ray batches.
    pub fn paper_scale_instant_ngp(iterations: f64) -> Self {
        let points = 200_000.0;
        let levels = 16u32;
        let reads = points * levels as f64 * 8.0;
        PipelineWorkload {
            iterations,
            rays_per_iter: 4096.0,
            points_per_iter: points,
            levels,
            grid_reads_ff_per_iter: reads,
            grid_writes_bp_per_iter: reads, // every FF read has a BP scatter
            // Two 3-layer-ish 64-wide heads ≈ 12k MACs/point fwd, 2× bwd.
            mlp_flops_per_iter: points * 12_000.0 * 3.0,
            density_table_bytes: 2 << 20, // 2 MB
            color_table_bytes: 0,
            bytes_per_access: 4, // 2 features × fp16
        }
    }

    /// The paper-scale Instant-3D workload: same point budget, but the grid
    /// is decomposed into a 1 MB density table (2¹⁸ entries) updated every
    /// iteration and a 256 KB color table (2¹⁶ entries) updated every other
    /// iteration (`S_D:S_C = 1:0.25`, `F_D:F_C = 1:0.5`, §5.1).
    ///
    /// Note §5.1 of the paper lists the entry counts as "2^16 and 2^18
    /// respectively" for density/color, which contradicts `S_D > S_C` and
    /// the accelerator's 1 MB-density fusion mode; we use the consistent
    /// assignment (density 2¹⁸, color 2¹⁶).
    pub fn paper_scale_instant3d(iterations: f64) -> Self {
        let points = 200_000.0;
        let levels = 16u32;
        let reads_per_grid = points * levels as f64 * 8.0;
        PipelineWorkload {
            iterations,
            rays_per_iter: 4096.0,
            points_per_iter: points,
            levels,
            // Both branches are read every iteration.
            grid_reads_ff_per_iter: 2.0 * reads_per_grid,
            // Density scattered every iteration; color every 2nd.
            grid_writes_bp_per_iter: reads_per_grid * (1.0 + 0.5),
            mlp_flops_per_iter: points * 12_000.0 * 3.0,
            density_table_bytes: 1 << 20, // 1 MB
            color_table_bytes: 256 << 10, // 256 KB
            bytes_per_access: 4,
        }
    }

    /// Total grid bytes moved per iteration (reads + writes).
    pub fn grid_bytes_per_iter(&self) -> f64 {
        (self.grid_reads_ff_per_iter + self.grid_writes_bp_per_iter) * self.bytes_per_access as f64
    }

    /// Total table bytes across branches.
    pub fn total_table_bytes(&self) -> usize {
        self.density_table_bytes + self.color_table_bytes
    }

    /// Returns a copy with a different iteration count.
    pub fn with_iterations(mut self, iterations: f64) -> Self {
        self.iterations = iterations;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_enumeration_is_complete_and_labelled() {
        assert_eq!(PipelineStep::ALL.len(), 8);
        let mut labels = std::collections::HashSet::new();
        for s in PipelineStep::ALL {
            assert!(labels.insert(s.label()), "duplicate label {}", s.label());
        }
        assert!(PipelineStep::GridForward.is_grid_interpolation());
        assert!(PipelineStep::GridBackward.is_grid_interpolation());
        assert!(!PipelineStep::MlpForward.is_grid_interpolation());
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = WorkloadStats {
            iterations: 1,
            rays: 10,
            points: 100,
            density_reads_ff: 800,
            color_reads_ff: 200,
            density_writes_bp: 800,
            color_writes_bp: 0,
            mlp_flops_ff: 5000,
            mlp_flops_bp: 10000,
            render_samples: 100,
            occupancy_refreshes: 1,
            occupancy_probes: 1728,
            occupancy_reads_ff: 1728 * 8 * 4,
            ..WorkloadStats::default()
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.iterations, 2);
        assert_eq!(a.grid_reads_ff(), 2000);
        assert_eq!(a.grid_writes_bp(), 1600);
        assert_eq!(a.points_per_iter(), 100.0);
        assert_eq!(a.occupancy_refreshes, 2);
        assert_eq!(a.occupancy_probes, 2 * 1728);
        assert_eq!(a.occupancy_reads_ff, 2 * 1728 * 8 * 4);
    }

    #[test]
    fn from_stats_normalises_per_iteration() {
        let stats = WorkloadStats {
            iterations: 4,
            rays: 400,
            points: 4000,
            density_reads_ff: 8000,
            color_reads_ff: 4000,
            density_writes_bp: 8000,
            color_writes_bp: 2000,
            mlp_flops_ff: 40_000,
            mlp_flops_bp: 80_000,
            render_samples: 4000,
            ..WorkloadStats::default()
        };
        let w = PipelineWorkload::from_stats(&stats, 8, 1 << 16, 1 << 14, 4);
        assert_eq!(w.rays_per_iter, 100.0);
        assert_eq!(w.points_per_iter, 1000.0);
        assert_eq!(w.grid_reads_ff_per_iter, 3000.0);
        assert_eq!(w.grid_writes_bp_per_iter, 2500.0);
        assert_eq!(w.mlp_flops_per_iter, 30_000.0);
        assert_eq!(w.total_table_bytes(), (1 << 16) + (1 << 14));
    }

    #[test]
    fn paper_scale_ngp_matches_cited_numbers() {
        let w = PipelineWorkload::paper_scale_instant_ngp(256.0);
        assert_eq!(w.points_per_iter, 200_000.0);
        assert_eq!(w.levels, 16);
        assert_eq!(w.grid_reads_ff_per_iter, 200_000.0 * 128.0);
        assert_eq!(w.density_table_bytes, 2 << 20);
        assert_eq!(w.color_table_bytes, 0);
    }

    #[test]
    fn paper_scale_instant3d_decomposition() {
        let w = PipelineWorkload::paper_scale_instant3d(256.0);
        // 1 MB density + 256 KB color, per §5.1 (with the typo corrected).
        assert_eq!(w.density_table_bytes, 1 << 20);
        assert_eq!(w.color_table_bytes, 256 << 10);
        // Color updates at half frequency → BP writes are 1.5× one grid's.
        let one_grid = 200_000.0 * 16.0 * 8.0;
        assert_eq!(w.grid_writes_bp_per_iter, one_grid * 1.5);
        assert_eq!(w.grid_reads_ff_per_iter, one_grid * 2.0);
    }

    #[test]
    fn grid_bytes_accounting() {
        let w = PipelineWorkload::paper_scale_instant_ngp(1.0);
        let expect = (w.grid_reads_ff_per_iter + w.grid_writes_bp_per_iter) * 4.0;
        assert_eq!(w.grid_bytes_per_iter(), expect);
    }
}
