//! SSIM (structural similarity) image metric.
//!
//! The paper scores reconstructions with PSNR and cites Hore & Ziou's
//! "Image quality metrics: PSNR vs. SSIM" (ref. 13); NeRF evaluations commonly
//! report both, so the library provides SSIM as well. This is the
//! windowed SSIM of Wang et al. (2004) with an 8×8 box window on the
//! luminance channel.

use crate::image::RgbImage;
use crate::math::Vec3;

/// SSIM stabilisation constants for a [0, 1] dynamic range:
/// `C1 = (0.01)²`, `C2 = (0.03)²`.
const C1: f64 = 1e-4;
const C2: f64 = 9e-4;

/// Window side length.
const WIN: u32 = 8;

fn luminance(c: Vec3) -> f64 {
    (0.2126 * c.x + 0.7152 * c.y + 0.0722 * c.z) as f64
}

/// Mean SSIM between two images on their luminance channel, using
/// non-overlapping 8×8 windows (partial windows at the borders included).
///
/// Returns a value in [-1, 1]; 1 means structurally identical.
///
/// # Panics
///
/// Panics if the images' dimensions differ.
pub fn ssim(a: &RgbImage, b: &RgbImage) -> f32 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    let (w, h) = (a.width(), a.height());
    let mut total = 0.0f64;
    let mut windows = 0u32;
    let mut wy = 0;
    while wy < h {
        let mut wx = 0;
        while wx < w {
            let x1 = (wx + WIN).min(w);
            let y1 = (wy + WIN).min(h);
            let n = ((x1 - wx) * (y1 - wy)) as f64;

            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for y in wy..y1 {
                for x in wx..x1 {
                    ma += luminance(a.get(x, y));
                    mb += luminance(b.get(x, y));
                }
            }
            ma /= n;
            mb /= n;

            let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
            for y in wy..y1 {
                for x in wx..x1 {
                    let da = luminance(a.get(x, y)) - ma;
                    let db = luminance(b.get(x, y)) - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            // Sample statistics (n-1 denominator, guarded for 1-px windows).
            let denom = (n - 1.0).max(1.0);
            va /= denom;
            vb /= denom;
            cov /= denom;

            let s = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            total += s;
            windows += 1;
            wx += WIN;
        }
        wy += WIN;
    }
    (total / windows as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(w: u32, h: u32) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            Vec3::new(
                x as f32 / w as f32,
                y as f32 / h as f32,
                (x + y) as f32 / (w + h) as f32,
            )
        })
    }

    #[test]
    fn identical_images_score_one() {
        let img = gradient_image(32, 32);
        let s = ssim(&img, &img);
        assert!((s - 1.0).abs() < 1e-6, "ssim {s}");
    }

    #[test]
    fn structural_noise_lowers_ssim() {
        let a = gradient_image(32, 32);
        let mut noisy = a.clone();
        for (i, p) in noisy.pixels_mut().iter_mut().enumerate() {
            let n = if i % 2 == 0 { 0.15 } else { -0.15 };
            *p = (*p + Vec3::splat(n)).clamp(0.0, 1.0);
        }
        let s = ssim(&a, &noisy);
        assert!(s < 0.95, "noisy ssim {s} should drop");
        assert!(s > -1.0);
    }

    #[test]
    fn worse_corruption_scores_lower() {
        let a = gradient_image(40, 40);
        let corrupt = |amp: f32| {
            let mut img = a.clone();
            for (i, p) in img.pixels_mut().iter_mut().enumerate() {
                let n = if (i / 3) % 2 == 0 { amp } else { -amp };
                *p = (*p + Vec3::splat(n)).clamp(0.0, 1.0);
            }
            img
        };
        let mild = ssim(&a, &corrupt(0.05));
        let harsh = ssim(&a, &corrupt(0.3));
        assert!(mild > harsh, "mild {mild} vs harsh {harsh}");
    }

    #[test]
    fn constant_images_compare_by_mean() {
        let a = RgbImage::from_fn(16, 16, |_, _| Vec3::splat(0.5));
        let b = RgbImage::from_fn(16, 16, |_, _| Vec3::splat(0.5));
        assert!((ssim(&a, &b) - 1.0).abs() < 1e-6);
        let c = RgbImage::from_fn(16, 16, |_, _| Vec3::splat(0.9));
        assert!(ssim(&a, &c) < 1.0);
    }

    #[test]
    fn handles_non_multiple_of_window_sizes() {
        let a = gradient_image(19, 13);
        let s = ssim(&a, &a);
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = gradient_image(8, 8);
        let b = gradient_image(9, 8);
        let _ = ssim(&a, &b);
    }

    // Knife-edge pins for the lossy-tier tolerance gate: the gate
    // compares SSIM values to 1e-3, so the metric itself must be exact
    // and finite on the degenerate inputs small eval renders can hit.

    #[test]
    fn one_by_one_image_is_a_single_partial_window() {
        // A 1×1 image exercises the (n−1)→1 variance guard: identical
        // pixels must score exactly 1, different ones strictly less,
        // and nothing may divide by zero.
        let a = RgbImage::from_fn(1, 1, |_, _| Vec3::splat(0.3));
        let s = ssim(&a, &a);
        assert!((s - 1.0).abs() < 1e-6, "1×1 self ssim {s}");
        let b = RgbImage::from_fn(1, 1, |_, _| Vec3::splat(0.8));
        let s = ssim(&a, &b);
        assert!(s.is_finite() && s < 1.0, "1×1 cross ssim {s}");
    }

    #[test]
    fn signed_zero_pixels_score_like_positive_zero() {
        // IEEE −0.0 luminances flow through means and covariances; the
        // C1/C2 stabilisers must absorb them (no NaN, exact 1 for
        // structurally identical all-zero images).
        let pos = RgbImage::from_fn(8, 8, |_, _| Vec3::splat(0.0));
        let neg = RgbImage::from_fn(8, 8, |_, _| Vec3::splat(-0.0));
        let s = ssim(&pos, &neg);
        assert!((s - 1.0).abs() < 1e-6, "±0 ssim {s}");
        assert!(ssim(&neg, &neg).is_finite());
    }

    #[test]
    fn constant_black_vs_white_hits_the_c1_floor() {
        // Zero variance on both sides: SSIM reduces to the luminance
        // term (2·ma·mb + C1)/(ma² + mb² + C1) = C1/(1 + C1) for
        // black vs white — pin the closed form.
        let black = RgbImage::from_fn(16, 16, |_, _| Vec3::ZERO);
        let white = RgbImage::from_fn(16, 16, |_, _| Vec3::splat(1.0));
        let s = ssim(&black, &white);
        let expect = (C1 / (1.0 + C1)) as f32;
        assert!(
            (s - expect).abs() < 1e-6,
            "black/white ssim {s} vs {expect}"
        );
    }

    #[test]
    fn single_row_and_column_partial_windows() {
        // 9×1 and 1×9: one full-width partial window plus a 1-px
        // remainder — both dimensions' border handling at once.
        for (w, h) in [(9u32, 1u32), (1, 9), (7, 7)] {
            let a = gradient_image(w, h);
            let s = ssim(&a, &a);
            assert!((s - 1.0).abs() < 1e-6, "{w}×{h} self ssim {s}");
        }
    }
}
