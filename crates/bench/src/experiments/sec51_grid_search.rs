//! §5.1 — the operating-point grid search: the paper swept
//! `S_D : S_C ∈ {1:0.125, 1:0.25, 1:0.5, 1:0.75}` (and the analogous
//! frequency ratios) and picked the configuration that "compresses the
//! training cost most but also maintains the same reconstruction quality".
//!
//! This ablation retrains every sweep point and reports measured PSNR plus
//! modelled Xavier-NX runtime, then marks the selected operating point.

use super::common::{mean_of, run_on_dataset, synthetic_dataset};
use crate::table::Table;
use crate::workloads::paper_workload;
use instant3d_core::TrainConfig;
use instant3d_devices::DeviceModel;

/// Runs the size-ratio and frequency-ratio sweeps.
pub fn run(quick: bool) {
    crate::banner(
        "§5.1",
        "Operating-point grid search over S_D:S_C and F_D:F_C",
    );
    let iters = crate::workloads::train_iters(quick);
    let scenes: Vec<usize> = if quick { vec![0] } else { vec![0, 4, 6] };
    let xavier = DeviceModel::xavier_nx();

    let measure = |cfg: &TrainConfig, seed: u64| -> (f32, f64) {
        let cfg = crate::workloads::bench_config(cfg.clone(), quick);
        let runs: Vec<_> = scenes
            .iter()
            .map(|&i| {
                let ds = synthetic_dataset(i, quick, 2500 + i as u64);
                run_on_dataset(&cfg, &ds, iters, 0, seed + i as u64)
            })
            .collect();
        let psnr = mean_of(&runs, |r| r.psnr);
        let runtime = xavier.runtime(&paper_workload(&cfg, iters as f64));
        (psnr, runtime)
    };

    println!("Color-grid size sweep (density fixed at 1.0):");
    let mut t = Table::new(&[
        "S_D : S_C",
        "modelled runtime (s)",
        "measured PSNR (dB)",
        "note",
    ]);
    for (label, factor) in [
        ("1 : 0.125", 0.125),
        ("1 : 0.25", 0.25),
        ("1 : 0.5", 0.5),
        ("1 : 1", 1.0),
    ] {
        let cfg = TrainConfig::decoupled(1.0, factor, 1, 1);
        let (psnr, rt) = measure(&cfg, 2600);
        let note = if (factor - 0.25).abs() < 1e-9 {
            "<- paper's pick"
        } else {
            ""
        };
        t.row_owned(vec![
            label.to_string(),
            format!("{rt:.0}"),
            format!("{psnr:.1}"),
            note.to_string(),
        ]);
    }
    t.print();

    println!("\nColor update-frequency sweep (density updated every iteration):");
    let mut t = Table::new(&[
        "F_D : F_C",
        "modelled runtime (s)",
        "measured PSNR (dB)",
        "note",
    ]);
    for (label, every) in [("1 : 1", 1u32), ("1 : 0.5", 2), ("1 : 0.25", 4)] {
        let cfg = TrainConfig::decoupled(1.0, 0.25, 1, every);
        let (psnr, rt) = measure(&cfg, 2700);
        let note = if every == 2 { "<- paper's pick" } else { "" };
        t.row_owned(vec![
            label.to_string(),
            format!("{rt:.0}"),
            format!("{psnr:.1}"),
            note.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nThe paper selected S_D:S_C = 1:0.25 with F_D:F_C = 1:0.5 — the most\n\
         compressed point that keeps baseline PSNR. The sweep above should show\n\
         PSNR degrading once the color grid is squeezed past ~4x or updated\n\
         less than every other iteration."
    );
}
