//! Microbenchmarks of the Step ③-① kernels: hash-grid encoding (trilinear
//! interpolation over the multi-level table) and its gradient scatter —
//! the operations the paper identifies as 80 % of NeRF training.
//!
//! Batched-kernel bench IDs are stamped with the backend's registry name
//! and the rayon worker count (`…/scalar/t1`), so recorded numbers always
//! say which kernels and how many workers produced them. The backend axis
//! iterates every registered backend (instrumented included — its arm
//! measures the co-sim backend's observation-off overhead).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_nerf::grid::{HashGrid, HashGridConfig, NullObserver};
use instant3d_nerf::hash::spatial_hash;
use instant3d_nerf::kernels::{self, BackendHandle};
use instant3d_nerf::math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `backend/threads` suffix for bench IDs of kernels that run on the
/// rayon pool.
fn stamp(backend: &BackendHandle) -> String {
    format!("{backend}/t{}", rayon::current_num_threads())
}

/// `backend/t1` suffix for direct (single-threaded) kernel benches — the
/// ambient pool size is irrelevant to them and must not be recorded.
fn stamp_serial(backend: &BackendHandle) -> String {
    format!("{backend}/t1")
}

fn bench_spatial_hash(c: &mut Criterion) {
    c.bench_function("hash/eq3_spatial_hash", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(spatial_hash(
                i,
                i.wrapping_mul(3),
                i.wrapping_mul(7),
                1 << 19,
            ))
        })
    });
}

fn bench_encode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let grid = HashGrid::new_random(HashGridConfig::default(), &mut rng);
    let points: Vec<Vec3> = (0..1024)
        .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
        .collect();
    let mut out = vec![0.0f32; grid.output_dim()];
    let mut k = 0usize;
    c.bench_function("grid/encode_point_8level", |b| {
        b.iter(|| {
            k = (k + 1) % points.len();
            grid.encode_into(black_box(points[k]), &mut out, &mut NullObserver);
            black_box(out[0])
        })
    });
}

fn bench_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let grid = HashGrid::new_random(HashGridConfig::default(), &mut rng);
    let points: Vec<Vec3> = (0..1024)
        .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
        .collect();
    let d_out = vec![0.5f32; grid.output_dim()];
    let mut grads = grid.zero_grads();
    let mut k = 0usize;
    c.bench_function("grid/backward_scatter_8level", |b| {
        b.iter(|| {
            k = (k + 1) % points.len();
            grid.backward_into(black_box(points[k]), &d_out, &mut grads, &mut NullObserver);
            black_box(grads.count)
        })
    });
}

fn bench_encode_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let grid = HashGrid::new_random(HashGridConfig::default(), &mut rng);
    let points: Vec<Vec3> = (0..1024)
        .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
        .collect();
    let mut out = vec![0.0f32; points.len() * grid.output_dim()];
    c.bench_function("grid/encode_batch1024_point_major", |b| {
        b.iter(|| {
            grid.encode_batch_into(black_box(&points), &mut out, &mut NullObserver);
            black_box(out[0])
        })
    });
    // The backend axis: the PR 1 level-major kernel (scalar backend) vs
    // the lane-batched SIMD kernel, plus the parallel dispatcher at the
    // ambient worker count.
    for backend in kernels::registered() {
        // Single-chunk serial kernel body, straight through the trait.
        c.bench_function(
            &format!("grid/encode_batch1024/{}", stamp_serial(&backend)),
            |b| {
                b.iter(|| {
                    backend.grid_encode_chunk(&grid, black_box(&points), &mut out);
                    black_box(out[0])
                })
            },
        );
        // Explicit worker-count arms: `install` pins the apparent count
        // and grows the shared work-stealing pool to match.
        for threads in [1, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                c.bench_function(
                    &format!("grid/encode_batch1024_parallel/{}", stamp(&backend)),
                    |b| {
                        b.iter(|| {
                            grid.par_encode_batch_with(&backend, black_box(&points), &mut out);
                            black_box(out[0])
                        })
                    },
                );
            });
        }
    }
}

fn bench_backward_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let grid = HashGrid::new_random(HashGridConfig::default(), &mut rng);
    let points: Vec<Vec3> = (0..1024)
        .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
        .collect();
    let d_out = vec![0.5f32; points.len() * grid.output_dim()];
    let mut grads = grid.zero_grads();
    c.bench_function("grid/backward_batch1024_point_major", |b| {
        b.iter(|| {
            grid.backward_batch_into(black_box(&points), &d_out, &mut grads, &mut NullObserver);
            black_box(grads.count)
        })
    });
    for backend in kernels::registered() {
        for threads in [1, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                c.bench_function(
                    &format!("grid/backward_batch1024_level/{}", stamp(&backend)),
                    |b| {
                        b.iter(|| {
                            grid.par_backward_batch_with(
                                &backend,
                                black_box(&points),
                                &d_out,
                                &mut grads,
                            );
                            black_box(grads.count)
                        })
                    },
                );
            });
        }
    }
}

criterion_group!(
    benches,
    bench_spatial_hash,
    bench_encode,
    bench_backward,
    bench_encode_batch,
    bench_backward_batch
);
criterion_main!(benches);
