//! Trace records and the in-memory trace container.

use instant3d_nerf::grid::{AccessPhase, GridBranch};

/// One hash-table access, in capture order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Global sequence number (capture order).
    pub seq: u64,
    /// Training iteration the access belongs to.
    pub iter: u32,
    /// Density or color table.
    pub branch: GridBranch,
    /// Feed-forward read or back-propagation update.
    pub phase: AccessPhase,
    /// Grid level.
    pub level: u32,
    /// Corner index 0..8 within the interpolation cube
    /// (bit 0 = dx, bit 1 = dy, bit 2 = dz).
    pub corner: u8,
    /// In-level table entry index.
    pub addr: u32,
}

impl AccessRecord {
    /// A key that is unique per (branch, level, addr) — sufficient for
    /// uniqueness analyses across the whole multi-level table.
    #[inline]
    pub fn global_key(&self) -> u64 {
        let b = match self.branch {
            GridBranch::Density => 0u64,
            GridBranch::Color => 1u64,
        };
        (b << 60) | ((self.level as u64) << 32) | self.addr as u64
    }
}

/// An ordered sequence of [`AccessRecord`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Records in capture order.
    pub records: Vec<AccessRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one phase, preserving order.
    pub fn phase(&self, phase: AccessPhase) -> impl Iterator<Item = &AccessRecord> {
        self.records.iter().filter(move |r| r.phase == phase)
    }

    /// Records of one branch, preserving order.
    pub fn branch(&self, branch: GridBranch) -> impl Iterator<Item = &AccessRecord> {
        self.records.iter().filter(move |r| r.branch == branch)
    }

    /// Feed-forward global-key stream in capture order (point-major: the
    /// levels of one point are adjacent — how the forward kernel walks the
    /// table).
    pub fn ff_stream(&self) -> Vec<u64> {
        self.phase(AccessPhase::FeedForward)
            .map(AccessRecord::global_key)
            .collect()
    }

    /// Back-propagation global-key stream reordered level-major within each
    /// iteration: Instant-NGP's grid backward launches one scatter kernel
    /// per level, so the hardware-visible update stream groups all points'
    /// updates of a level together. Stable within groups.
    pub fn bp_stream_level_major(&self) -> Vec<u64> {
        let mut bp: Vec<&AccessRecord> = self.phase(AccessPhase::BackProp).collect();
        bp.sort_by_key(|r| (r.iter, r.branch == GridBranch::Color, r.level, r.seq));
        bp.iter().map(|r| r.global_key()).collect()
    }

    /// In-level addresses of one (phase, branch, level), capture order —
    /// what a single grid core's SRAM sees.
    pub fn level_addrs(&self, phase: AccessPhase, branch: GridBranch, level: u32) -> Vec<u32> {
        self.records
            .iter()
            .filter(|r| r.phase == phase && r.branch == branch && r.level == level)
            .map(|r| r.addr)
            .collect()
    }

    /// Order-normalized view of the trace: every record as a
    /// `(iter, phase-is-backprop, branch-is-color, level, corner, addr)`
    /// tuple, sorted. Two captures of the same workload compare equal here
    /// even when their phases interleave differently (e.g. the batched
    /// engine emits all feed-forward reads before any scatter, while the
    /// scalar path alternates per ray).
    pub fn order_normalized(&self) -> Vec<(u32, bool, bool, u32, u8, u32)> {
        let mut keys: Vec<(u32, bool, bool, u32, u8, u32)> = self
            .records
            .iter()
            .map(|r| {
                (
                    r.iter,
                    r.phase == AccessPhase::BackProp,
                    r.branch == GridBranch::Color,
                    r.level,
                    r.corner,
                    r.addr,
                )
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Iterations covered by the trace (inclusive range), or `None` if empty.
    pub fn iteration_range(&self) -> Option<(u32, u32)> {
        let mut it = self.records.iter().map(|r| r.iter);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        seq: u64,
        iter: u32,
        branch: GridBranch,
        phase: AccessPhase,
        level: u32,
        addr: u32,
    ) -> AccessRecord {
        AccessRecord {
            seq,
            iter,
            branch,
            phase,
            level,
            corner: (seq % 8) as u8,
            addr,
        }
    }

    #[test]
    fn global_key_distinguishes_branch_and_level() {
        let a = rec(0, 0, GridBranch::Density, AccessPhase::FeedForward, 0, 5);
        let b = rec(1, 0, GridBranch::Color, AccessPhase::FeedForward, 0, 5);
        let c = rec(2, 0, GridBranch::Density, AccessPhase::FeedForward, 1, 5);
        assert_ne!(a.global_key(), b.global_key());
        assert_ne!(a.global_key(), c.global_key());
        let a2 = rec(9, 3, GridBranch::Density, AccessPhase::BackProp, 0, 5);
        assert_eq!(
            a.global_key(),
            a2.global_key(),
            "key ignores seq/iter/phase"
        );
    }

    #[test]
    fn phase_and_branch_filters() {
        let t = Trace {
            records: vec![
                rec(0, 0, GridBranch::Density, AccessPhase::FeedForward, 0, 1),
                rec(1, 0, GridBranch::Color, AccessPhase::FeedForward, 0, 2),
                rec(2, 0, GridBranch::Density, AccessPhase::BackProp, 0, 3),
            ],
        };
        assert_eq!(t.phase(AccessPhase::FeedForward).count(), 2);
        assert_eq!(t.branch(GridBranch::Color).count(), 1);
        assert_eq!(t.ff_stream().len(), 2);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn bp_stream_is_level_major_within_iteration() {
        // Two points × two levels, point-major capture order.
        let t = Trace {
            records: vec![
                rec(0, 0, GridBranch::Density, AccessPhase::BackProp, 0, 10),
                rec(1, 0, GridBranch::Density, AccessPhase::BackProp, 1, 20),
                rec(2, 0, GridBranch::Density, AccessPhase::BackProp, 0, 11),
                rec(3, 0, GridBranch::Density, AccessPhase::BackProp, 1, 21),
            ],
        };
        let s = t.bp_stream_level_major();
        // Expected order: level 0 (addr 10, 11), then level 1 (20, 21).
        let addrs: Vec<u32> = s.iter().map(|k| (k & 0xFFFF_FFFF) as u32).collect();
        assert_eq!(addrs, vec![10, 11, 20, 21]);
    }

    #[test]
    fn bp_stream_respects_iteration_boundaries() {
        let t = Trace {
            records: vec![
                rec(0, 1, GridBranch::Density, AccessPhase::BackProp, 1, 99),
                rec(1, 0, GridBranch::Density, AccessPhase::BackProp, 0, 1),
            ],
        };
        let s = t.bp_stream_level_major();
        let addrs: Vec<u32> = s.iter().map(|k| (k & 0xFFFF_FFFF) as u32).collect();
        // Iteration 0 comes first despite its later capture order.
        assert_eq!(addrs, vec![1, 99]);
        assert_eq!(t.iteration_range(), Some((0, 1)));
    }

    #[test]
    fn level_addrs_filters_exactly() {
        let t = Trace {
            records: vec![
                rec(0, 0, GridBranch::Density, AccessPhase::FeedForward, 2, 7),
                rec(1, 0, GridBranch::Density, AccessPhase::FeedForward, 3, 8),
                rec(2, 0, GridBranch::Density, AccessPhase::BackProp, 2, 9),
            ],
        };
        assert_eq!(
            t.level_addrs(AccessPhase::FeedForward, GridBranch::Density, 2),
            vec![7]
        );
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.iteration_range(), None);
        assert!(t.ff_stream().is_empty());
    }
}
