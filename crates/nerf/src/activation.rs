//! Activation functions with analytic derivatives.
//!
//! The trainer uses ReLU in MLP hidden layers, a truncated exponential for
//! the density output (as in Instant-NGP) and the logistic sigmoid for RGB.

/// Activation kinds supported by [`crate::mlp::Mlp`] layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Identity.
    #[default]
    None,
    /// max(0, x).
    Relu,
    /// Logistic sigmoid, 1/(1+e^-x) — used for RGB outputs.
    Sigmoid,
    /// exp(x) clamped to a finite range — Instant-NGP's density activation.
    TruncExp,
    /// ln(1 + e^x) — a softer density activation used in ablations.
    Softplus,
}

/// Clamp bound for [`Activation::TruncExp`]: exp is evaluated on inputs
/// clamped to ±15, keeping fp16-friendly magnitudes (e^15 ≈ 3.3e6).
pub const TRUNC_EXP_BOUND: f32 = 15.0;

impl Activation {
    /// Applies the activation to `x`.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::TruncExp => x.clamp(-TRUNC_EXP_BOUND, TRUNC_EXP_BOUND).exp(),
            Activation::Softplus => {
                // Numerically stable: ln(1+e^x) = max(x,0) + ln(1+e^-|x|).
                x.max(0.0) + (-(x.abs())).exp().ln_1p()
            }
        }
    }

    /// Derivative dy/dx expressed in terms of the *pre-activation* input `x`
    /// and the already-computed output `y` (avoids recomputing exponentials).
    #[inline]
    pub fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            Activation::None => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::TruncExp => {
                if x.abs() >= TRUNC_EXP_BOUND {
                    0.0
                } else {
                    y
                }
            }
            Activation::Softplus => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Applies the activation to a slice in place.
    pub fn apply_slice(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_derivative(act: Activation, x: f32) {
        let eps = 1e-3;
        let y = act.apply(x);
        let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
        let an = act.derivative(x, y);
        assert!(
            (fd - an).abs() < 1e-2 * (1.0 + an.abs()),
            "{act:?} at {x}: fd {fd} vs analytic {an}"
        );
    }

    #[test]
    fn derivatives_match_finite_difference() {
        for act in [
            Activation::None,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::TruncExp,
            Activation::Softplus,
        ] {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7, 3.0] {
                if act == Activation::Relu && x.abs() < 1e-2 {
                    continue; // kink
                }
                check_derivative(act, x);
            }
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
        assert!(Activation::Sigmoid.apply(10.0) > 0.999);
        assert!(Activation::Sigmoid.apply(-10.0) < 0.001);
    }

    #[test]
    fn trunc_exp_saturates() {
        let big = Activation::TruncExp.apply(100.0);
        assert_eq!(big, TRUNC_EXP_BOUND.exp());
        // Gradient dies at the clamp.
        assert_eq!(Activation::TruncExp.derivative(100.0, big), 0.0);
    }

    #[test]
    fn softplus_is_positive_and_asymptotic() {
        assert!(Activation::Softplus.apply(-20.0) > 0.0);
        assert!(Activation::Softplus.apply(-20.0) < 1e-6);
        let x = 20.0;
        assert!((Activation::Softplus.apply(x) - x).abs() < 1e-6);
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut xs = vec![-1.0, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, vec![0.0, 0.0, 2.0]);
    }
}
