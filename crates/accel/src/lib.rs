//! Cycle-level simulator of the Instant-3D accelerator (ISCA 2023, §4).
//!
//! The accelerator is a 28 nm, 800 MHz, 6.8 mm², 1.9 W design built around
//! four **grid cores** (each with 8 SRAM banks holding a slice of the hash
//! table) plus systolic-array / multiplier-adder-tree **MLP units**. Its
//! three headline techniques, all modelled here:
//!
//! * [`frm`] — the **Feed-forward Read Mapper**: a 16-deep reorder window
//!   that packs bank-conflict-free SRAM reads from multiple nearby points
//!   into single cycles (§4.4, Fig. 12).
//! * [`bum`] — the **Back-propagation Update Merger**: a 16-entry
//!   accumulate-before-write buffer that merges gradient updates to the
//!   same hash address, evicting entries idle for `N` cycles (§4.5,
//!   Fig. 13).
//! * [`fusion`] — the **multi-core-fusion reconfigurable scheme**: Level
//!   0/1/2 modes fuse 1/2/4 grid cores with 8/16/32 banks to hold
//!   256 KB / 512 KB / 1 MB hash tables (§4.6, Figs. 11 & 14).
//!
//! Three simulation drivers:
//!
//! * **Trace-driven** ([`frm::simulate_frm`], [`bum::simulate_bum`],
//!   [`sram::BankedSram`]) — replay captured training address streams
//!   cycle by cycle. Used for the Fig. 18 ablations and to measure the
//!   utilisation/merge factors of the real access patterns.
//! * **Live co-sim** ([`cosim`]) — ingest the address streams the
//!   `"instrumented"` kernel backend
//!   ([`instant3d_nerf::kernels::InstrumentedKernels`]) records during
//!   real `Trainer::step` iterations and replay them through the FRM/BUM
//!   online — Fig. 12/13-style utilisation with zero trace files.
//! * **Analytic** ([`accelerator::Accelerator`]) — evaluate a paper-scale
//!   [`instant3d_core::PipelineWorkload`] with the factors measured above.
//!   Used for the Fig. 16/17 and Tab. 5 comparisons.
//!
//! The [`energy`] module carries the 28 nm per-op energy/area constants and
//! produces the Fig. 15 breakdowns.

pub mod accelerator;
pub mod bum;
pub mod config;
pub mod cosim;
pub mod dram;
pub mod energy;
pub mod frm;
pub mod fusion;
pub mod grid_core;
pub mod mlp_unit;
pub mod related;
pub mod sram;

pub use accelerator::{Accelerator, FeatureSet, SimReport};
pub use bum::{simulate_bum, BumConfig, BumResult};
pub use config::AccelConfig;
pub use cosim::{cosim_grid, CosimConfig, CosimReport};
pub use frm::{simulate_baseline_reads, simulate_frm, FrmResult};
pub use fusion::FusionMode;
