//! VR object capture: reconstruct an object from an orbit capture, compare
//! the Instant-NGP baseline against the Instant-3D algorithm, and write
//! the reconstructed views to PPM files for inspection.
//!
//! This is the paper's core motivating workload — "metaverse 3D asset
//! creation" from a handful of phone-style captures.
//!
//! ```text
//! cargo run --release --example object_capture
//! ```

use instant3d::core::eval::render_model_view;
use instant3d::core::{TrainConfig, Trainer};
use instant3d::scenes::SceneLibrary;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let dataset = SceneLibrary::synthetic_scene(6, 48, 20, &mut rng); // "mic"
    println!(
        "scene '{}' captured with {} views",
        dataset.name,
        dataset.train_views.len()
    );

    let configs = [
        ("instant-ngp", TrainConfig::instant_ngp()),
        ("instant-3d", TrainConfig::instant3d()),
    ];
    for (name, cfg) in configs {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut trainer = Trainer::new(cfg, &dataset, &mut rng);
        let t0 = std::time::Instant::now();
        let report = trainer.train_with_eval(250, 0, Some(&dataset), &mut rng);
        println!(
            "{name:>12}: {:.2} dB RGB / {:.2} dB depth after {} iters \
             ({:.1} s wall, {:.0} points/iter)",
            report.final_psnr,
            report.final_depth_psnr,
            report.iterations,
            t0.elapsed().as_secs_f32(),
            report.stats.points_per_iter(),
        );

        // Render a novel view (not in the training set) and save it.
        let cam = dataset.test_views[0].camera;
        let (rgb, depth) = render_model_view(trainer.model(), &cam, 64, dataset.background);
        let rgb_path = format!("/tmp/instant3d_{name}_novel_view.ppm");
        let depth_path = format!("/tmp/instant3d_{name}_novel_depth.pgm");
        std::fs::write(&rgb_path, rgb.to_ppm()).expect("write ppm");
        std::fs::write(&depth_path, depth.to_pgm()).expect("write pgm");
        println!(
            "{:>12}  novel view -> {rgb_path}, depth -> {depth_path}",
            ""
        );
    }
    println!("\nBoth reconstructions should reach similar PSNR — the Instant-3D");
    println!("algorithm's savings show up as reduced grid traffic, not quality.");
}
