//! The observer that records training access streams.

use crate::record::{AccessRecord, Trace};
use instant3d_nerf::grid::{AccessPhase, BranchObserver, GridBranch};

/// Captures every grid access the trainer performs into a [`Trace`].
///
/// Plug into `Trainer::step_observed`; call
/// [`TraceCollector::begin_iteration`] before each step so records carry
/// their iteration index. A `capacity` cap bounds memory — capture stops
/// (silently) once reached, which is fine for the paper's analyses (they
/// need a few hundred thousand contiguous accesses).
///
/// # Example
///
/// ```
/// use instant3d_trace::TraceCollector;
/// use instant3d_nerf::grid::{AccessPhase, BranchObserver, GridBranch};
///
/// let mut tc = TraceCollector::new(1000);
/// tc.begin_iteration(0);
/// tc.on_branch_access(GridBranch::Density, AccessPhase::FeedForward, 0, 0, 42);
/// let trace = tc.into_trace();
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.records[0].addr, 42);
/// ```
#[derive(Debug, Clone)]
pub struct TraceCollector {
    records: Vec<AccessRecord>,
    capacity: usize,
    seq: u64,
    iter: u32,
    dropped: u64,
}

impl TraceCollector {
    /// A collector that keeps at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TraceCollector {
            records: Vec::new(),
            capacity,
            seq: 0,
            iter: 0,
            dropped: 0,
        }
    }

    /// Marks the start of training iteration `iter` for subsequent records.
    pub fn begin_iteration(&mut self, iter: u32) {
        self.iter = iter;
    }

    /// Records captured so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was captured yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Accesses that arrived after the capacity cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finishes capture and returns the trace.
    pub fn into_trace(self) -> Trace {
        Trace {
            records: self.records,
        }
    }

    /// Borrowed view of the trace so far.
    pub fn as_trace(&self) -> Trace {
        Trace {
            records: self.records.clone(),
        }
    }
}

impl BranchObserver for TraceCollector {
    #[inline]
    fn on_branch_access(
        &mut self,
        branch: GridBranch,
        phase: AccessPhase,
        level: u32,
        corner: u8,
        addr: u32,
    ) {
        let seq = self.seq;
        self.seq += 1;
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(AccessRecord {
            seq,
            iter: self.iter,
            branch,
            phase,
            level,
            corner,
            addr,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_in_order_with_iterations() {
        let mut tc = TraceCollector::new(100);
        tc.begin_iteration(0);
        tc.on_branch_access(GridBranch::Density, AccessPhase::FeedForward, 0, 0, 1);
        tc.begin_iteration(1);
        tc.on_branch_access(GridBranch::Color, AccessPhase::BackProp, 2, 5, 9);
        let t = tc.into_trace();
        assert_eq!(t.records[0].iter, 0);
        assert_eq!(t.records[1].iter, 1);
        assert_eq!(t.records[1].level, 2);
        assert_eq!(t.records[1].corner, 5);
        assert!(t.records[0].seq < t.records[1].seq);
    }

    #[test]
    fn capacity_caps_and_counts_drops() {
        let mut tc = TraceCollector::new(3);
        for i in 0..10 {
            tc.on_branch_access(GridBranch::Density, AccessPhase::FeedForward, 0, 0, i);
        }
        assert_eq!(tc.len(), 3);
        assert_eq!(tc.dropped(), 7);
        let t = tc.into_trace();
        assert_eq!(
            t.records.iter().map(|r| r.addr).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn as_trace_is_nondestructive() {
        let mut tc = TraceCollector::new(10);
        tc.on_branch_access(GridBranch::Density, AccessPhase::FeedForward, 0, 0, 7);
        let snapshot = tc.as_trace();
        assert_eq!(snapshot.len(), 1);
        tc.on_branch_access(GridBranch::Density, AccessPhase::FeedForward, 0, 1, 8);
        assert_eq!(tc.len(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = TraceCollector::new(0);
    }
}
