//! Algorithm/hardware co-design walkthrough on the **live co-sim
//! backend**: train on the `"instrumented"` kernel backend, record the
//! engine's real hash-grid address streams during two live training
//! iterations (no trace files, no observer plumbing), replay them through
//! the FRM and BUM units cycle by cycle, and see how the measured
//! microarchitectural factors feed the full-accelerator estimate.
//!
//! ```text
//! cargo run --release --example accelerator_codesign
//! ```

use instant3d::accel::{cosim_grid, Accelerator, CosimConfig, FeatureSet};
use instant3d::core::{PipelineWorkload, TrainConfig, Trainer};
use instant3d::nerf::kernels::{BackendHandle, InstrumentedKernels};
use instant3d::scenes::SceneLibrary;
use rand::SeedableRng;

fn main() {
    // 1. Train on the instrumented co-sim backend. With recording off it
    //    is just the SIMD backend behind one atomic load — bit-identical
    //    results, negligible overhead.
    let backend = BackendHandle::new(InstrumentedKernels::new());
    let mut cfg = TrainConfig::instant3d();
    cfg.kernel_backend = backend.clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dataset = SceneLibrary::synthetic_scene(0, 32, 10, &mut rng);
    let mut trainer = Trainer::new(cfg, &dataset, &mut rng);
    for _ in 0..20 {
        trainer.step(&mut rng);
    }

    // 2. Flip the recorder on for two live iterations: the backend
    //    captures the batched engine's actual level-major reads and
    //    level-ordered gradient updates, in execution order.
    let recorder = backend
        .downcast_ref::<InstrumentedKernels>()
        .expect("instrumented backend");
    recorder.start_recording();
    for _ in 0..2 {
        trainer.step(&mut rng);
    }
    recorder.stop_recording();
    let streams = recorder.take_streams();
    println!(
        "recorded {} grid accesses across {} stream segments over 2 live iterations",
        streams.len(),
        streams.segments.len()
    );

    // 3. Replay the density grid's streams through the FRM (8 banks,
    //    16-deep window, vs the baseline burst issue) and the BUM
    //    (16 entries) — the Fig. 12/13 measurements, online.
    let report = cosim_grid(
        &streams,
        trainer.model().density_grid(),
        &CosimConfig::default(),
    );
    println!(
        "\nFRM on {} density reads:\n  baseline: {} cycles ({:.0}% bank utilisation)\n  \
         with FRM: {} cycles ({:.0}% utilisation) -> {:.2}x fewer read cycles",
        report.reads,
        report.baseline.cycles,
        report.baseline.utilization * 100.0,
        report.frm.cycles,
        report.frm.utilization * 100.0,
        report.frm_read_speedup()
    );
    println!(
        "\nBUM on {} gradient updates:\n  merged {:.0}% of updates; SRAM writes cut to {:.0}%",
        report.updates,
        report.bum_merge_ratio() * 100.0,
        report.bum.write_ratio() * 100.0
    );

    // 4. Full-accelerator estimate with the measured factors.
    let accel = Accelerator {
        frm_utilization: report.frm.utilization,
        baseline_utilization: report.baseline.utilization,
        bum_write_ratio: report.bum.write_ratio(),
        ..Accelerator::default()
    };
    let w = PipelineWorkload::paper_scale_instant3d(256.0);
    let full = accel.simulate(&w, FeatureSet::full());
    let naive = accel.simulate(&w, FeatureSet::none());
    println!(
        "\npaper-scale estimate (256 iterations to PSNR 25):\n  \
         naive accelerator : {:.2} s\n  \
         full Instant-3D   : {:.2} s at {:.2} W ({:.0}x faster, bottleneck: {})",
        naive.seconds_total,
        full.seconds_total,
        full.avg_power_w,
        naive.seconds_total / full.seconds_total,
        full.bottleneck()
    );
}
