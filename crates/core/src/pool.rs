//! The workspace reuse pool: scratch is checked out per unit of work
//! instead of allocated per caller.
//!
//! Introduced for the serve layer's fleet slices, the pool now also backs
//! the tile renderer ([`crate::render`]): every tile job checks a
//! [`BatchWorkspace`] out, renders, and parks it back, so steady-state
//! rendering performs zero workspace allocations — the mint count is
//! bounded by the number of workers that ever held a workspace at once.
//!
//! Two kinds of workspace, with different recycling rules:
//!
//! * [`BatchWorkspace`] is pure scratch (every buffer cleared/resized per
//!   step), so it moves freely between same-shaped users — parked here at
//!   the end of every slice or tile, checked out at the start of the
//!   next, keyed by [`WorkspaceShape`] so a mismatched model never sees
//!   it.
//! * [`OccupancyWorkspace`] carries per-job training state (density EMA,
//!   subset phase, embedding cache). It stays attached for a job's whole
//!   life and is parked here only at retirement, after a
//!   [`reset`](OccupancyWorkspace::reset) — handing live state to a new
//!   job would break the determinism contract.

use crate::batch::{BatchWorkspace, WorkspaceShape};
use crate::model::NerfModel;
use instant3d_nerf::occupancy::OccupancyWorkspace;
use std::collections::HashMap;
use std::sync::Mutex;

/// Shared, shape-keyed reuse pool. All methods take `&self`; the pool is
/// what fleet runners and tile jobs contend on (briefly — checkout/park
/// are O(1) map and vec operations).
#[derive(Debug, Default)]
pub struct WorkspacePool {
    batch: Mutex<HashMap<WorkspaceShape, Vec<BatchWorkspace>>>,
    occ: Mutex<Vec<OccupancyWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a parked batch workspace fitting `model`, if any.
    /// `None` is a pool miss: the caller mints one lazily (a warmup
    /// allocation, counted in the fleet/render telemetry).
    pub fn checkout_batch(&self, model: &NerfModel) -> Option<BatchWorkspace> {
        self.batch
            .lock()
            .unwrap()
            .get_mut(&WorkspaceShape::of(model))
            .and_then(Vec::pop)
    }

    /// Parks a batch workspace for the next same-shaped user.
    pub fn park_batch(&self, ws: BatchWorkspace) {
        self.batch
            .lock()
            .unwrap()
            .entry(ws.shape())
            .or_default()
            .push(ws);
    }

    /// Checks out a (reset) occupancy workspace for a booting job.
    /// Occupancy workspaces are shape-agnostic: their buffers rebuild on
    /// the first refresh against the new job's grid.
    pub fn checkout_occ(&self) -> Option<OccupancyWorkspace> {
        self.occ.lock().unwrap().pop()
    }

    /// Parks a retired job's occupancy workspace, resetting it first so
    /// no training state (EMA, phase, cache) leaks into the next job.
    pub fn park_occ(&self, mut ws: OccupancyWorkspace) {
        ws.reset();
        self.occ.lock().unwrap().push(ws);
    }

    /// Parked batch workspaces across all shapes (diagnostics/tests).
    pub fn parked_batch(&self) -> usize {
        self.batch.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Parked occupancy workspaces (diagnostics/tests).
    pub fn parked_occ(&self) -> usize {
        self.occ.lock().unwrap().len()
    }
}
