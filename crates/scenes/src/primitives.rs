//! Soft density primitives used to compose analytic radiance fields.
//!
//! Each primitive is a signed-distance-like shape whose density falls off
//! smoothly over a configurable shell width, so the resulting fields are
//! learnable by a NeRF (hard binary edges would alias under trilinear
//! embedding interpolation).

use instant3d_nerf::math::{smoothstep, Aabb, Vec3};

/// Geometric shapes with an analytic signed distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// Sphere of `radius` centred at `center`.
    Sphere {
        /// Center.
        center: Vec3,
        /// Radius.
        radius: f32,
    },
    /// Axis-aligned box with `half` extents around `center`.
    Box {
        /// Center.
        center: Vec3,
        /// Half extents per axis.
        half: Vec3,
    },
    /// Torus in the XZ plane around `center`.
    Torus {
        /// Center.
        center: Vec3,
        /// Major (ring) radius.
        major: f32,
        /// Minor (tube) radius.
        minor: f32,
    },
    /// Vertical (y-axis) capped cylinder.
    Cylinder {
        /// Center of the cylinder's axis segment.
        center: Vec3,
        /// Radius in XZ.
        radius: f32,
        /// Half height along Y.
        half_height: f32,
    },
    /// Isotropic Gaussian blob: density scales with `exp(-‖p-c‖²/2s²)`.
    Blob {
        /// Center.
        center: Vec3,
        /// Standard deviation.
        sigma: f32,
    },
}

impl Shape {
    /// Signed distance from `p` to the shape surface (negative inside).
    /// For `Blob`, returns distance to the 1-sigma shell.
    pub fn signed_distance(&self, p: Vec3) -> f32 {
        match *self {
            Shape::Sphere { center, radius } => p.distance(center) - radius,
            Shape::Box { center, half } => {
                let q = (p - center).abs() - half;
                let outside = q.max_elem(Vec3::ZERO).norm();
                let inside = q.max_component().min(0.0);
                outside + inside
            }
            Shape::Torus {
                center,
                major,
                minor,
            } => {
                let d = p - center;
                let ring = ((d.x * d.x + d.z * d.z).sqrt() - major).hypot(d.y);
                ring - minor
            }
            Shape::Cylinder {
                center,
                radius,
                half_height,
            } => {
                let d = p - center;
                let radial = (d.x * d.x + d.z * d.z).sqrt() - radius;
                let axial = d.y.abs() - half_height;
                let outside = Vec3::new(radial.max(0.0), axial.max(0.0), 0.0).norm();
                let inside = radial.max(axial).min(0.0);
                outside + inside
            }
            Shape::Blob { center, sigma } => p.distance(center) - sigma,
        }
    }

    /// A conservative bounding box of the non-zero-density region, given
    /// the density shell width `shell`.
    pub fn bounds(&self, shell: f32) -> Aabb {
        let pad = Vec3::splat(shell);
        match *self {
            Shape::Sphere { center, radius } => Aabb::new(
                center - Vec3::splat(radius) - pad,
                center + Vec3::splat(radius) + pad,
            ),
            Shape::Box { center, half } => Aabb::new(center - half - pad, center + half + pad),
            Shape::Torus {
                center,
                major,
                minor,
            } => {
                let r = major + minor;
                Aabb::new(
                    center - Vec3::new(r, minor, r) - pad,
                    center + Vec3::new(r, minor, r) + pad,
                )
            }
            Shape::Cylinder {
                center,
                radius,
                half_height,
            } => Aabb::new(
                center - Vec3::new(radius, half_height, radius) - pad,
                center + Vec3::new(radius, half_height, radius) + pad,
            ),
            Shape::Blob { center, sigma } => {
                // 3 sigma captures ~all the mass.
                Aabb::cube(center, 3.0 * sigma + shell)
            }
        }
    }
}

/// A shape with appearance: peak density, albedo, soft shell width and a
/// small view-dependent gloss term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive {
    /// Geometry.
    pub shape: Shape,
    /// Peak volume density inside the shape.
    pub density: f32,
    /// Base RGB albedo.
    pub albedo: Vec3,
    /// Width of the smooth density falloff shell (world units).
    pub shell: f32,
    /// View-dependent gloss in [0, 1]: 0 = pure Lambertian.
    pub gloss: f32,
}

impl Primitive {
    /// A matte primitive with a default shell width.
    pub fn matte(shape: Shape, density: f32, albedo: Vec3) -> Self {
        Primitive {
            shape,
            density,
            albedo,
            shell: 0.04,
            gloss: 0.0,
        }
    }

    /// A glossy variant (mild specular-like view dependence).
    pub fn glossy(shape: Shape, density: f32, albedo: Vec3, gloss: f32) -> Self {
        Primitive {
            shape,
            density,
            albedo,
            shell: 0.04,
            gloss: gloss.clamp(0.0, 1.0),
        }
    }

    /// Density contribution at `p`: full inside, smooth falloff across the
    /// shell, zero outside. Blobs use their Gaussian profile directly.
    pub fn density_at(&self, p: Vec3) -> f32 {
        match self.shape {
            Shape::Blob { center, sigma } => {
                let r2 = (p - center).norm_squared();
                // Hard cutoff at 3σ keeps the field compactly supported
                // (matches the 3σ bounding box and occupancy culling).
                if r2 > 9.0 * sigma * sigma {
                    return 0.0;
                }
                self.density * (-r2 / (2.0 * sigma * sigma)).exp()
            }
            _ => {
                let d = self.shape.signed_distance(p);
                if d <= 0.0 {
                    self.density
                } else if d >= self.shell {
                    0.0
                } else {
                    self.density * (1.0 - smoothstep(d / self.shell))
                }
            }
        }
    }

    /// Emitted color at `p` viewed along `dir`: albedo modulated by a cheap
    /// positional shading term plus the gloss view response. Deterministic
    /// and view-consistent, which is all NeRF training needs.
    pub fn color_at(&self, p: Vec3, dir: Vec3) -> Vec3 {
        // Fake "lighting" from a fixed key-light direction gives the scene
        // shading detail the color grid must learn.
        let light = Vec3::new(0.5, 0.8, 0.33).normalized();
        let grad = self.density_gradient(p);
        let n = if grad.norm_squared() > 1e-12 {
            (-grad).normalized()
        } else {
            Vec3::Y
        };
        let diffuse = 0.35 + 0.65 * n.dot(light).max(0.0);
        let mut c = self.albedo * diffuse;
        if self.gloss > 0.0 {
            // Blinn-ish highlight along the half vector.
            let h = (light - dir).normalized();
            let spec = n.dot(h).max(0.0).powi(16);
            c += Vec3::splat(self.gloss * spec);
        }
        c.clamp(0.0, 1.0)
    }

    fn density_gradient(&self, p: Vec3) -> Vec3 {
        let e = 1e-3;
        let dx = self.density_at(p + Vec3::X * e) - self.density_at(p - Vec3::X * e);
        let dy = self.density_at(p + Vec3::Y * e) - self.density_at(p - Vec3::Y * e);
        let dz = self.density_at(p + Vec3::Z * e) - self.density_at(p - Vec3::Z * e);
        Vec3::new(dx, dy, dz) / (2.0 * e)
    }

    /// Conservative bounds of non-zero density.
    pub fn bounds(&self) -> Aabb {
        self.shape.bounds(self.shell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_signed_distance() {
        let s = Shape::Sphere {
            center: Vec3::ZERO,
            radius: 1.0,
        };
        assert_eq!(s.signed_distance(Vec3::new(2.0, 0.0, 0.0)), 1.0);
        assert_eq!(s.signed_distance(Vec3::ZERO), -1.0);
        assert!(s.signed_distance(Vec3::X).abs() < 1e-6);
    }

    #[test]
    fn box_signed_distance_inside_outside() {
        let b = Shape::Box {
            center: Vec3::ZERO,
            half: Vec3::splat(1.0),
        };
        assert!(b.signed_distance(Vec3::ZERO) < 0.0);
        assert!((b.signed_distance(Vec3::new(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-6);
        // Corner distance is the Euclidean distance to the corner.
        let d = b.signed_distance(Vec3::splat(2.0));
        assert!((d - 3f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn torus_distance_on_ring() {
        let t = Shape::Torus {
            center: Vec3::ZERO,
            major: 1.0,
            minor: 0.25,
        };
        // On the ring centerline the distance is -minor.
        assert!((t.signed_distance(Vec3::X) + 0.25).abs() < 1e-5);
        // Center of the torus hole is major - minor away.
        assert!((t.signed_distance(Vec3::ZERO) - 0.75).abs() < 1e-5);
    }

    #[test]
    fn cylinder_distance() {
        let c = Shape::Cylinder {
            center: Vec3::ZERO,
            radius: 0.5,
            half_height: 1.0,
        };
        assert!(c.signed_distance(Vec3::ZERO) < 0.0);
        assert!((c.signed_distance(Vec3::new(1.5, 0.0, 0.0)) - 1.0).abs() < 1e-5);
        assert!((c.signed_distance(Vec3::new(0.0, 2.0, 0.0)) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn primitive_density_profile() {
        let p = Primitive::matte(
            Shape::Sphere {
                center: Vec3::ZERO,
                radius: 0.5,
            },
            10.0,
            Vec3::ONE,
        );
        assert_eq!(p.density_at(Vec3::ZERO), 10.0);
        assert_eq!(p.density_at(Vec3::new(0.6, 0.0, 0.0)), 0.0);
        // Within the shell: strictly between 0 and peak.
        let mid = p.density_at(Vec3::new(0.52, 0.0, 0.0));
        assert!(mid > 0.0 && mid < 10.0);
    }

    #[test]
    fn blob_density_is_gaussian() {
        let p = Primitive::matte(
            Shape::Blob {
                center: Vec3::ZERO,
                sigma: 0.2,
            },
            8.0,
            Vec3::ONE,
        );
        assert_eq!(p.density_at(Vec3::ZERO), 8.0);
        let one_sigma = p.density_at(Vec3::new(0.2, 0.0, 0.0));
        assert!((one_sigma - 8.0 * (-0.5f32).exp()).abs() < 1e-4);
    }

    #[test]
    fn color_is_deterministic_and_in_range() {
        let p = Primitive::glossy(
            Shape::Sphere {
                center: Vec3::ZERO,
                radius: 0.5,
            },
            10.0,
            Vec3::new(0.8, 0.3, 0.2),
            0.5,
        );
        let pos = Vec3::new(0.45, 0.1, 0.0);
        let dir = Vec3::new(-1.0, 0.0, 0.0);
        let c1 = p.color_at(pos, dir);
        let c2 = p.color_at(pos, dir);
        assert_eq!(c1, c2);
        for k in 0..3 {
            assert!((0.0..=1.0).contains(&c1[k]));
        }
    }

    #[test]
    fn gloss_adds_view_dependence() {
        let matte = Primitive::matte(
            Shape::Sphere {
                center: Vec3::ZERO,
                radius: 0.5,
            },
            10.0,
            Vec3::splat(0.5),
        );
        let glossy = Primitive::glossy(matte.shape, 10.0, Vec3::splat(0.5), 1.0);
        let pos = Vec3::new(0.0, 0.49, 0.0);
        let d1 = Vec3::new(0.0, -1.0, 0.0);
        let d2 = Vec3::new(1.0, 0.0, 0.0);
        // Matte color ignores direction.
        assert_eq!(matte.color_at(pos, d1), matte.color_at(pos, d2));
        // Glossy differs between directions.
        assert_ne!(glossy.color_at(pos, d1), glossy.color_at(pos, d2));
    }

    #[test]
    fn bounds_contain_dense_region() {
        let p = Primitive::matte(
            Shape::Torus {
                center: Vec3::new(1.0, 0.0, 0.0),
                major: 0.5,
                minor: 0.1,
            },
            5.0,
            Vec3::ONE,
        );
        let b = p.bounds();
        // Sample a few points with density > 0 and check containment.
        for i in 0..50 {
            let a = i as f32 / 50.0 * std::f32::consts::TAU;
            let pt = Vec3::new(1.0 + 0.5 * a.cos(), 0.0, 0.5 * a.sin());
            assert!(p.density_at(pt) > 0.0);
            assert!(b.contains(pt));
        }
    }
}
