//! The fleet's checkpoint cache: latest blob per job, LRU-capped.
//!
//! The store is the serving side of checkpoint streaming — the artifact
//! a client polls while its reconstruction trains. Every write refreshes
//! the entry's recency; once the cap is exceeded the least-recently
//! *written* entry is evicted, which in practice means idle jobs: a
//! retired job stops refreshing, so its blob ages out as active jobs
//! keep checkpointing. (Final checkpoints are returned in each job's
//! [`JobReport`](crate::fleet::JobReport) regardless, so eviction only
//! affects the cache, never the training result.)

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct StoreInner {
    blobs: HashMap<String, Vec<u8>>,
    /// Names from least- to most-recently written.
    recency: VecDeque<String>,
    evicted: u64,
}

/// Thread-safe LRU checkpoint cache, keyed by job name.
#[derive(Debug)]
pub struct CheckpointStore {
    cap: usize,
    inner: Mutex<StoreInner>,
}

impl CheckpointStore {
    /// A store holding at most `cap` checkpoints (`cap == 0` disables
    /// caching entirely — every put is immediately evicted).
    pub fn new(cap: usize) -> Self {
        CheckpointStore {
            cap,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    /// Inserts (or refreshes) `name`'s checkpoint, evicting the least
    /// recently written entries above the cap.
    pub fn put(&self, name: &str, blob: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.blobs.insert(name.to_owned(), blob).is_some() {
            inner.recency.retain(|n| n != name);
        }
        inner.recency.push_back(name.to_owned());
        while inner.blobs.len() > self.cap {
            if let Some(old) = inner.recency.pop_front() {
                inner.blobs.remove(&old);
                inner.evicted += 1;
            } else {
                break;
            }
        }
    }

    /// The latest checkpoint for `name`, if still resident.
    pub fn get(&self, name: &str) -> Option<Vec<u8>> {
        self.inner.lock().unwrap().blobs.get(name).cloned()
    }

    /// Resident job names, least- to most-recently written.
    pub fn resident(&self) -> Vec<String> {
        self.inner.lock().unwrap().recency.iter().cloned().collect()
    }

    /// Checkpoints evicted so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_written() {
        let store = CheckpointStore::new(2);
        store.put("a", vec![1]);
        store.put("b", vec![2]);
        store.put("a", vec![3]); // refresh: b is now oldest
        store.put("c", vec![4]); // evicts b
        assert_eq!(store.get("a"), Some(vec![3]));
        assert_eq!(store.get("b"), None);
        assert_eq!(store.get("c"), Some(vec![4]));
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.resident(), vec!["a".to_string(), "c".to_string()]);
    }

    #[test]
    fn zero_capacity_store_caches_nothing() {
        let store = CheckpointStore::new(0);
        store.put("a", vec![1]);
        assert_eq!(store.get("a"), None);
        assert_eq!(store.evictions(), 1);
    }
}
