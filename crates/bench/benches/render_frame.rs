//! End-to-end frame-rendering benches for the tile-streaming renderer
//! (`instant3d_core::render`): the monolithic row-chunk reference vs the
//! tile scheduler at full budget, a budgeted progressive frame (the
//! serve-preview shape), and occupancy-guided vs uniform eval sampling.
//!
//! Bench IDs are stamped `…/{backend}/tile{S}/t{N}` (backend registry
//! name, tile size, rayon worker count) following the `grid_interp` /
//! `occupancy_refresh` convention, so recorded numbers always say which
//! kernels, tiling, and worker count produced them. The full-budget tiled
//! arm reuses one scheduler + workspace pool across iterations, so it
//! measures the zero-steady-state-allocation path the golden tests pin.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_core::eval::{evaluate, evaluate_with, render_model_view_monolithic};
use instant3d_core::pool::WorkspacePool;
use instant3d_core::render::{FrameBudget, FrameScheduler, RenderOptions, DEFAULT_TILE_SIZE};
use instant3d_core::{kernels, BackendHandle, TrainConfig, Trainer};
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Frame resolution (test-view cameras are square at the scene size).
const RESOLUTION: u32 = 48;
const SAMPLES_PER_RAY: usize = 24;
/// Enough training that occupancy has culled real empty space and frames
/// have content, cheap enough for `--quick` CI smoke runs.
const TRAIN_STEPS: usize = 24;

/// `backend/tile/threads` suffix for bench IDs.
fn stamp(backend: &BackendHandle, tile: u32) -> String {
    format!("{backend}/tile{tile}/t{}", rayon::current_num_threads())
}

fn fixture(backend: &BackendHandle) -> (Dataset, Trainer) {
    let mut rng = StdRng::seed_from_u64(17);
    let ds = SceneLibrary::synthetic_scene(0, RESOLUTION, 4, &mut rng);
    let mut cfg = TrainConfig::fast_preview();
    cfg.kernel_backend = backend.clone();
    let mut trainer = Trainer::new(cfg, &ds, &mut rng);
    let mut train_rng = StdRng::seed_from_u64(23);
    for _ in 0..TRAIN_STEPS {
        trainer.step(&mut train_rng);
    }
    (ds, trainer)
}

/// Monolithic row-chunk reference vs the tile scheduler at full budget,
/// plus a tiles-budgeted progressive frame (the fleet-preview shape).
fn bench_render_frame(c: &mut Criterion) {
    for backend in kernels::registered() {
        let (ds, trainer) = fixture(&backend);
        let cam = ds.test_views[0].camera;
        let model = trainer.model();

        c.bench_function(
            &format!(
                "render_frame/monolithic/{backend}/t{}",
                rayon::current_num_threads()
            ),
            |b| {
                b.iter(|| {
                    black_box(render_model_view_monolithic(
                        model,
                        &cam,
                        SAMPLES_PER_RAY,
                        ds.background,
                    ))
                })
            },
        );

        for tile in [8u32, DEFAULT_TILE_SIZE] {
            let pool = WorkspacePool::new();
            let mut sched = FrameScheduler::new(
                cam,
                RenderOptions {
                    samples_per_ray: SAMPLES_PER_RAY,
                    background: ds.background,
                    tile_size: tile,
                },
            );
            c.bench_function(
                &format!("render_frame/tiled_full/{}", stamp(&backend, tile)),
                |b| {
                    b.iter(|| {
                        sched.invalidate_all();
                        let p = sched.render_frame(model, None, FrameBudget::full(), &pool);
                        black_box(p.tiles_rendered)
                    })
                },
            );
            // Budgeted: 4 tiles per frame — the per-slice preview cost a
            // fleet pays, including the cache/invalidation bookkeeping.
            c.bench_function(
                &format!("render_frame/budget4/{}", stamp(&backend, tile)),
                |b| {
                    b.iter(|| {
                        sched.invalidate_all();
                        let p = sched.render_frame(model, None, FrameBudget::tiles(4), &pool);
                        black_box(p.tiles_rendered)
                    })
                },
            );
        }
    }
}

/// Uniform eval marching vs occupancy-guided sampling on the trained
/// grid: the guided arm must be measurably faster — the culled points do
/// not hit the encode/MLP pipeline at all.
fn bench_eval_occupancy(c: &mut Criterion) {
    for backend in kernels::registered() {
        let (ds, trainer) = fixture(&backend);
        let model = trainer.model();
        let t = rayon::current_num_threads();
        c.bench_function(&format!("eval/uniform/{backend}/t{t}"), |b| {
            b.iter(|| black_box(evaluate(model, &ds, SAMPLES_PER_RAY).rgb_psnr))
        });
        let occ = trainer
            .occupancy_grid()
            .expect("fast_preview enables occupancy");
        c.bench_function(&format!("eval/occupancy/{backend}/t{t}"), |b| {
            b.iter(|| black_box(evaluate_with(model, &ds, SAMPLES_PER_RAY, Some(occ)).rgb_psnr))
        });
    }
}

criterion_group!(benches, bench_render_frame, bench_eval_occupancy);
criterion_main!(benches);
