//! Regenerates the paper's Fig. 05fig05 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig05::run(instant3d_bench::quick_requested());
}
