//! Multi-bank SRAM with bank-conflict semantics.
//!
//! The hash table is interleaved across banks by `addr % n_banks`; each
//! bank services one access per cycle. A group of simultaneous requests
//! therefore takes as many cycles as the most-loaded bank.

/// A banked SRAM array with access accounting.
#[derive(Debug, Clone)]
pub struct BankedSram {
    n_banks: u32,
    reads: u64,
    writes: u64,
    cycles: u64,
    conflict_cycles: u64,
    bank_scratch: Vec<u32>,
}

impl BankedSram {
    /// Creates an array of `n_banks` single-ported banks.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks` is zero.
    pub fn new(n_banks: u32) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        BankedSram {
            n_banks,
            reads: 0,
            writes: 0,
            cycles: 0,
            conflict_cycles: 0,
            bank_scratch: vec![0; n_banks as usize],
        }
    }

    /// Number of banks.
    pub fn n_banks(&self) -> u32 {
        self.n_banks
    }

    /// The bank an address maps to.
    #[inline]
    pub fn bank_of(&self, addr: u32) -> u32 {
        addr % self.n_banks
    }

    /// Issues a group of simultaneous reads; returns the cycles consumed
    /// (the max per-bank load; minimum 1 for a non-empty group).
    pub fn issue_reads(&mut self, addrs: &[u32]) -> u64 {
        let c = self.issue(addrs);
        self.reads += addrs.len() as u64;
        c
    }

    /// Issues a group of simultaneous writes; returns cycles consumed.
    pub fn issue_writes(&mut self, addrs: &[u32]) -> u64 {
        let c = self.issue(addrs);
        self.writes += addrs.len() as u64;
        c
    }

    fn issue(&mut self, addrs: &[u32]) -> u64 {
        if addrs.is_empty() {
            return 0;
        }
        self.bank_scratch.fill(0);
        for &a in addrs {
            self.bank_scratch[(a % self.n_banks) as usize] += 1;
        }
        let max = *self.bank_scratch.iter().max().unwrap() as u64;
        self.cycles += max;
        self.conflict_cycles += max - 1;
        max
    }

    /// Total accesses serviced.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Cycles consumed by all issued groups.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Extra cycles lost to bank conflicts (cycles beyond 1 per group).
    pub fn conflict_cycles(&self) -> u64 {
        self.conflict_cycles
    }

    /// Achieved bandwidth utilisation: accesses / (cycles × banks).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.accesses() as f64 / (self.cycles as f64 * self.n_banks as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_group_takes_one_cycle() {
        let mut s = BankedSram::new(8);
        let c = s.issue_reads(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(c, 1);
        assert_eq!(s.reads(), 8);
        assert_eq!(s.conflict_cycles(), 0);
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn full_conflict_serialises() {
        let mut s = BankedSram::new(8);
        // All map to bank 0.
        let c = s.issue_reads(&[0, 8, 16, 24]);
        assert_eq!(c, 4);
        assert_eq!(s.conflict_cycles(), 3);
        assert!(s.utilization() < 0.2);
    }

    #[test]
    fn mixed_group_takes_max_bank_load() {
        let mut s = BankedSram::new(4);
        // bank0: {0,4}, bank1: {1}, bank2: {2} → max load 2.
        let c = s.issue_reads(&[0, 4, 1, 2]);
        assert_eq!(c, 2);
    }

    #[test]
    fn empty_group_is_free() {
        let mut s = BankedSram::new(8);
        assert_eq!(s.issue_reads(&[]), 0);
        assert_eq!(s.cycles(), 0);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn write_accounting_is_separate() {
        let mut s = BankedSram::new(8);
        s.issue_reads(&[0, 1]);
        s.issue_writes(&[2, 3, 4]);
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 3);
        assert_eq!(s.accesses(), 5);
        assert_eq!(s.cycles(), 2);
    }

    #[test]
    fn bank_of_is_modular() {
        let s = BankedSram::new(8);
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(9), 1);
        assert_eq!(s.bank_of(31), 7);
    }

    #[test]
    #[should_panic]
    fn zero_banks_panics() {
        let _ = BankedSram::new(0);
    }
}
