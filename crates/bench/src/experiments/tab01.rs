//! Tab. 1 — PSNR vs training runtime for different grid-size ratios
//! `S_D : S_C`: shrinking the *color* grid is nearly free; shrinking the
//! *density* grid costs quality.

use super::common::{mean_of, run_on_dataset, synthetic_dataset};
use crate::table::Table;
use crate::workloads::paper_workload;
use instant3d_core::TrainConfig;
use instant3d_devices::DeviceModel;

/// Trains the three Tab. 1 configurations and prints measured PSNR plus
/// modelled Xavier-NX runtime.
pub fn run(quick: bool) {
    crate::banner(
        "Tab. 1",
        "Grid-size ratios S_D : S_C — PSNR vs training runtime (Xavier NX model)",
    );
    let rows: Vec<(&str, TrainConfig)> = vec![
        ("1:1 (Instant-NGP)", TrainConfig::instant_ngp()),
        ("0.25:1", TrainConfig::decoupled(0.25, 1.0, 1, 1)),
        ("1:0.25", TrainConfig::decoupled(1.0, 0.25, 1, 1)),
    ];
    let iters = crate::workloads::train_iters(quick);
    let scenes = crate::workloads::scene_indices(quick);
    let xavier = DeviceModel::xavier_nx();

    let mut t = Table::new(&[
        "S_D : S_C",
        "avg runtime (s, modelled)",
        "avg test PSNR (dB, measured)",
        "paper runtime",
        "paper PSNR",
    ]);
    let paper = [("72", "26.0"), ("65", "25.4"), ("63", "26.0")];
    for ((label, cfg), (p_rt, p_psnr)) in rows.into_iter().zip(paper) {
        let cfg = crate::workloads::bench_config(cfg, quick);
        let runs: Vec<_> = scenes
            .iter()
            .map(|&i| {
                let ds = synthetic_dataset(i, quick, 300 + i as u64);
                run_on_dataset(&cfg, &ds, iters, 0, 400 + i as u64)
            })
            .collect();
        let psnr = mean_of(&runs, |r| r.psnr);
        let runtime = xavier.runtime(&paper_workload(&cfg, iters as f64));
        t.row_owned(vec![
            label.to_string(),
            format!("{runtime:.0}"),
            format!("{psnr:.1}"),
            p_rt.to_string(),
            p_psnr.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: 1:0.25 keeps the baseline PSNR at reduced runtime;\n\
         0.25:1 (shrunk density grid) loses PSNR — color features are the less\n\
         sensitive branch. Runtime column uses the calibrated Xavier-NX model at\n\
         a fixed {iters}-iteration budget; PSNR is measured from real training."
    );
}
