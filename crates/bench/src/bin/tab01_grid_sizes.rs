//! Regenerates the paper's tab01Tab. 01 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::tab01::run(instant3d_bench::quick_requested());
}
