//! Declarative write plans for the parallel dispatch seams.
//!
//! Every parallel dispatch in the engine (grid encode chunks, grid
//! gradient scatter, the MLP forward/backward sweeps, per-ray compositing
//! cache slices, the tile renderer's frame decomposition) promises the
//! same thing: its tasks write **pairwise disjoint** intervals whose
//! union covers the output **exactly** — the disjoint-write half of the
//! kernel contract (see the [contract-enforcement
//! docs](super#contract-enforcement)). PR 9's [`WriteLedger`] checks that
//! promise dynamically, but only for the shapes a run happens to produce.
//! A [`WritePlan`] states the promise *symbolically*: per-task write
//! intervals as affine/min expressions of shape parameters (point count,
//! chunk size, level offsets, layer rows, tile edges) with declared
//! bounds, so the conformance crate's prover
//! (`instant3d-conformance/src/prover.rs`) can verify disjointness and
//! coverage for **all** in-bounds parameter values.
//!
//! The same plan closes the loop at runtime: dispatchers instantiate it
//! at their concrete shape ([`WritePlan::instantiate`]) and register the
//! result with the [`WriteLedger`] when the backend opts into
//! [`Kernels::plan_conformance`](super::Kernels::plan_conformance), so
//! every write range the `checked` backend records is asserted to fall
//! inside the statically proven plan — the code cannot drift from the
//! proof without panicking.
//!
//! # Plan grammar
//!
//! * A plan has **parameters** ([`ParamDecl`]): nonnegative integers with
//!   declared inclusive bounds. A parameter is either *free* (supplied by
//!   the dispatch site: point count, row width, chunk size) or *derived*
//!   ([`Derive::DivCeil`] — the task count of a uniform chunking).
//! * One parameter is the **task index** `t`, bounded `[0, count−1]`.
//! * Task `t` writes the element interval
//!   `[scale·start(t), scale·end(t))` where `start`/`end` are [`Expr`]s
//!   over the parameters (affine arithmetic plus `min`/`max` for clipped
//!   remainder tails) and `scale` is a product of parameters (a row
//!   width). The plan covers `[0, scale·total)` exactly.
//! * **Cut families** ([`CutFamily`]) model data-dependent partitions
//!   (per-level slices of the flat gradient buffer, per-ray cache rows):
//!   a monotone sequence `cut(0) = 0 ≤ cut(1) ≤ … ≤ cut(count) = total`
//!   whose concrete table the dispatcher supplies at instantiation;
//!   the prover reasons from exactly those three axioms.
//!
//! [`WriteLedger`]: super::WriteLedger

use std::fmt;

/// Bound sentinel for "any machine-sized value": large enough to cover
/// every real buffer, small enough that degree-3 monomials of it stay
/// inside `i128` during the prover's vertex substitutions.
pub const UNBOUNDED: i128 = 1 << 40;

/// A symbolic integer expression over a plan's parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i128),
    /// Parameter by index into [`WritePlan::params`].
    Param(usize),
    /// `cut_family(arg)`: the cut sequence of [`WritePlan::cuts`]`[family]`
    /// evaluated at `arg`.
    Cut(usize, Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
}

/// Shorthand for [`Expr::Const`].
pub fn con(v: i128) -> Expr {
    Expr::Const(v)
}

/// Shorthand for [`Expr::Param`].
pub fn par(i: usize) -> Expr {
    Expr::Param(i)
}

// Not the std ops traits on purpose: plan expressions are built by
// value in fluent chains (`par(t).mul(par(1)).min(par(0))`), and
// operator syntax on owned Box-building AST nodes would suggest
// arithmetic on numbers rather than tree construction.
#[allow(clippy::should_implement_trait)]
impl Expr {
    pub fn add(self, o: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(o))
    }
    pub fn sub(self, o: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(o))
    }
    pub fn mul(self, o: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(o))
    }
    pub fn min(self, o: Expr) -> Expr {
        Expr::Min(Box::new(self), Box::new(o))
    }
    pub fn max(self, o: Expr) -> Expr {
        Expr::Max(Box::new(self), Box::new(o))
    }

    /// Evaluates at concrete parameter values and cut tables.
    ///
    /// Returns `Err` (rather than panicking) on out-of-table cut
    /// arguments or overflow, so the conformance prover can use the same
    /// evaluator on deliberately broken fixture plans.
    pub fn eval(&self, params: &[i128], cuts: &[Vec<i128>]) -> Result<i128, String> {
        Ok(match self {
            Expr::Const(v) => *v,
            Expr::Param(i) => *params
                .get(*i)
                .ok_or_else(|| format!("parameter #{i} out of range"))?,
            Expr::Cut(f, arg) => {
                let a = arg.eval(params, cuts)?;
                let table = cuts
                    .get(*f)
                    .ok_or_else(|| format!("cut family #{f} has no table"))?;
                let idx = usize::try_from(a)
                    .ok()
                    .filter(|&i| i < table.len())
                    .ok_or_else(|| {
                        format!("cut argument {a} outside table of {} points", table.len())
                    })?;
                table[idx]
            }
            Expr::Add(a, b) => a
                .eval(params, cuts)?
                .checked_add(b.eval(params, cuts)?)
                .ok_or("overflow")?,
            Expr::Sub(a, b) => a
                .eval(params, cuts)?
                .checked_sub(b.eval(params, cuts)?)
                .ok_or("overflow")?,
            Expr::Mul(a, b) => a
                .eval(params, cuts)?
                .checked_mul(b.eval(params, cuts)?)
                .ok_or("overflow")?,
            Expr::Min(a, b) => a.eval(params, cuts)?.min(b.eval(params, cuts)?),
            Expr::Max(a, b) => a.eval(params, cuts)?.max(b.eval(params, cuts)?),
        })
    }
}

/// How a parameter's concrete value arises at instantiation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Derive {
    /// Supplied by the dispatch site (by name).
    Free,
    /// `ceil(a / b)`. Contributes the two exact integer facts
    /// `self·b ≥ a` and `self·b ≤ a + b − 1` to the prover.
    DivCeil(Expr, Expr),
}

/// One symbolic shape parameter: a nonnegative integer in
/// `[lo, hi]` (inclusive). `hi` may reference earlier-declared
/// parameters only (a triangular system — the prover eliminates
/// parameters in reverse declaration order).
#[derive(Debug, Clone)]
pub struct ParamDecl {
    pub name: &'static str,
    /// Inclusive constant lower bound (must be ≥ 0).
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: Expr,
    pub derive: Derive,
}

/// A monotone cut sequence `0 = cut(0) ≤ … ≤ cut(count) = total`
/// partitioning `[0, total)` into `count` data-dependent intervals.
#[derive(Debug, Clone)]
pub struct CutFamily {
    pub name: &'static str,
    /// Number of intervals (the table has `count + 1` points).
    pub count: Expr,
    /// The top cut: `cut(count) = total`.
    pub total: Expr,
}

/// The declared write plan of one parallel dispatch site over one output
/// buffer (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct WritePlan {
    /// Dispatch-site label, `file:line function` (diagnostics are emitted
    /// `file:line:`-style from it).
    pub site: &'static str,
    /// The output buffer the plan covers.
    pub buffer: &'static str,
    pub params: Vec<ParamDecl>,
    pub cuts: Vec<CutFamily>,
    /// Index into `params` of the task-index parameter `t`.
    pub task: usize,
    /// Task count (same value as `params[task].hi + 1`).
    pub count: Expr,
    /// Task `t` writes elements `[scale·start, scale·end)`.
    pub start: Expr,
    pub end: Expr,
    /// Per-interval element multiplier (a row width); product of
    /// parameters and constants, never negative.
    pub scale: Expr,
    /// The plan covers `[0, scale·total)` exactly.
    pub total: Expr,
    /// `total` is definitionally the top cut of a [`CutFamily`]
    /// (`cut(count) = total`), so "no tasks ⇒ empty coverage" holds by
    /// the cut axioms, which [`WritePlan::instantiate`] re-validates on
    /// every concrete table.
    pub total_is_top_cut: bool,
}

/// A [`WritePlan`] evaluated at one concrete shape: the per-task element
/// ranges a single dispatch will write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcretePlan {
    pub site: &'static str,
    pub buffer: &'static str,
    /// Per-task scaled element ranges, in task order.
    pub tasks: Vec<(usize, usize)>,
    /// Scaled total extent covered: `[0, len)`.
    pub len: usize,
}

impl WritePlan {
    /// A uniform chunking: `ceil(total/chunk)` tasks, task `t` writing
    /// `[t·chunk, min((t+1)·chunk, total))` rows of `scale` elements each
    /// — the shape of `par_chunks_mut(chunk · scale)`, remainder tail
    /// included.
    pub fn chunked(
        site: &'static str,
        buffer: &'static str,
        total: &'static str,
        chunk: &'static str,
        scale: Option<&'static str>,
    ) -> WritePlan {
        let mut params = vec![
            ParamDecl {
                name: total,
                lo: 0,
                hi: con(UNBOUNDED),
                derive: Derive::Free,
            },
            ParamDecl {
                name: chunk,
                lo: 1,
                hi: con(UNBOUNDED),
                derive: Derive::Free,
            },
        ];
        let scale_expr = match scale {
            Some(name) => {
                params.push(ParamDecl {
                    name,
                    lo: 0,
                    hi: con(UNBOUNDED),
                    derive: Derive::Free,
                });
                par(params.len() - 1)
            }
            None => con(1),
        };
        let count_idx = params.len();
        params.push(ParamDecl {
            name: "tasks",
            lo: 0,
            hi: con(UNBOUNDED),
            derive: Derive::DivCeil(par(0), par(1)),
        });
        let task = params.len();
        params.push(ParamDecl {
            name: "t",
            lo: 0,
            hi: par(count_idx).sub(con(1)),
            derive: Derive::Free,
        });
        WritePlan {
            site,
            buffer,
            params,
            cuts: Vec::new(),
            task,
            count: par(count_idx),
            start: par(task).mul(par(1)).min(par(0)),
            end: par(task).add(con(1)).mul(par(1)).min(par(0)),
            scale: scale_expr,
            total: par(0),
            total_is_top_cut: false,
        }
    }

    /// A data-dependent partition: `count` tasks, task `t` writing
    /// `[cut(t), cut(t+1))` — the shape of slicing one flat buffer by a
    /// precomputed monotone offset table (level offsets, ray offsets).
    pub fn cut_partition(
        site: &'static str,
        buffer: &'static str,
        family: &'static str,
        count: &'static str,
        total: &'static str,
    ) -> WritePlan {
        let params = vec![
            ParamDecl {
                name: count,
                lo: 0,
                hi: con(UNBOUNDED),
                derive: Derive::Free,
            },
            ParamDecl {
                name: total,
                lo: 0,
                hi: con(UNBOUNDED),
                derive: Derive::Free,
            },
            ParamDecl {
                name: "t",
                lo: 0,
                hi: par(0).sub(con(1)),
                derive: Derive::Free,
            },
        ];
        WritePlan {
            site,
            buffer,
            params,
            cuts: vec![CutFamily {
                name: family,
                count: par(0),
                total: par(1),
            }],
            task: 2,
            count: par(0),
            start: Expr::Cut(0, Box::new(par(2))),
            end: Expr::Cut(0, Box::new(par(2).add(con(1)))),
            scale: con(1),
            total: par(1),
            total_is_top_cut: true,
        }
    }

    /// Evaluates the plan at a concrete shape: free parameters by name in
    /// `values`, one monotone table per [`CutFamily`] in `cut_tables`.
    ///
    /// Validates everything the static proof assumes — parameter bounds,
    /// cut-table axioms, and per-task interval sanity — so a dispatch
    /// whose real shape escapes the declared bounds fails loudly here
    /// instead of silently outrunning the proof.
    pub fn try_instantiate(
        &self,
        values: &[(&str, i128)],
        cut_tables: &[&[i128]],
    ) -> Result<ConcretePlan, String> {
        let fail = |msg: String| {
            Err(format!(
                "write plan `{}` ({}): {msg}",
                self.site, self.buffer
            ))
        };
        // Resolve parameters in declaration order so derived values and
        // bound expressions may reference earlier ones.
        let mut resolved: Vec<i128> = Vec::with_capacity(self.params.len());
        for (i, p) in self.params.iter().enumerate() {
            let v = if i == self.task {
                0 // placeholder; set per task below
            } else {
                match &p.derive {
                    Derive::Free => match values.iter().find(|(n, _)| *n == p.name) {
                        Some(&(_, v)) => v,
                        None => {
                            return fail(format!("no value supplied for parameter `{}`", p.name))
                        }
                    },
                    Derive::DivCeil(a, b) => {
                        let a = a.eval(&resolved, &[])?;
                        let b = b.eval(&resolved, &[])?;
                        if b <= 0 {
                            return fail(format!("ceil-division of `{}` by {b}", p.name));
                        }
                        a.div_euclid(b) + i128::from(a.rem_euclid(b) != 0)
                    }
                }
            };
            if i != self.task {
                let hi = p.hi.eval(&resolved, &[])?;
                if v < p.lo || v > hi {
                    return fail(format!(
                        "parameter `{}` = {v} outside declared bounds [{}, {hi}]",
                        p.name, p.lo
                    ));
                }
            }
            resolved.push(v);
        }
        let mut tables: Vec<Vec<i128>> = Vec::with_capacity(self.cuts.len());
        for (f, fam) in self.cuts.iter().enumerate() {
            let table: Vec<i128> = match cut_tables.get(f) {
                Some(t) => t.to_vec(),
                None => return fail(format!("no cut table supplied for family `{}`", fam.name)),
            };
            let count = fam.count.eval(&resolved, &[])?;
            let total = fam.total.eval(&resolved, &[])?;
            if table.len() as i128 != count + 1 {
                return fail(format!(
                    "cut family `{}` table has {} points, expected count+1 = {}",
                    fam.name,
                    table.len(),
                    count + 1
                ));
            }
            if table.first() != Some(&0) || table.last() != Some(&total) {
                return fail(format!(
                    "cut family `{}` endpoints {:?}/{:?} violate cut(0)=0, cut(count)={total}",
                    fam.name,
                    table.first(),
                    table.last()
                ));
            }
            if table.windows(2).any(|w| w[0] > w[1]) {
                return fail(format!("cut family `{}` table is not monotone", fam.name));
            }
            tables.push(table);
        }
        let count = self.count.eval(&resolved, &tables)?;
        let total = self.total.eval(&resolved, &tables)?;
        let scale = self.scale.eval(&resolved, &tables)?;
        if count < 0 || total < 0 || scale < 0 {
            return fail(format!(
                "negative extent (count {count}, total {total}, scale {scale})"
            ));
        }
        let mut tasks = Vec::with_capacity(count.max(0) as usize);
        for t in 0..count {
            resolved[self.task] = t;
            let s = self.start.eval(&resolved, &tables)?;
            let e = self.end.eval(&resolved, &tables)?;
            if s < 0 || e < s || e > total {
                return fail(format!("task {t} interval [{s}, {e}) escapes [0, {total})"));
            }
            let to_elems = |v: i128| {
                usize::try_from(v.checked_mul(scale).unwrap_or(-1))
                    .map_err(|_| "interval overflows usize".to_string())
            };
            tasks.push((to_elems(s)?, to_elems(e)?));
        }
        Ok(ConcretePlan {
            site: self.site,
            buffer: self.buffer,
            tasks,
            len: usize::try_from(total.checked_mul(scale).unwrap_or(-1))
                .map_err(|_| "total extent overflows usize".to_string())?,
        })
    }

    /// [`WritePlan::try_instantiate`], panicking on any violation — the
    /// dispatch-site form: a shape escaping the declared plan is a
    /// contract bug, not a recoverable condition.
    pub fn instantiate(&self, values: &[(&str, i128)], cut_tables: &[&[i128]]) -> ConcretePlan {
        match self.try_instantiate(values, cut_tables) {
            Ok(plan) => plan,
            // PANICS: a dispatch shape outside its statically proven plan
            // voids the disjoint-write proof; failing loudly here is the
            // plan-conformance contract.
            Err(msg) => panic!("{msg}"),
        }
    }
}

impl fmt::Display for WritePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.site, self.buffer)
    }
}

/// Every declared write plan of this crate's dispatch seams — the list
/// the conformance prover walks (`crates/core` appends the tile
/// renderer's plans).
pub fn nerf_write_plans() -> Vec<WritePlan> {
    let mut plans = vec![
        crate::grid::HashGrid::encode_write_plan(),
        crate::grid::HashGrid::encode_levels_write_plan(),
        crate::grid::HashGrid::scatter_write_plan(),
    ];
    plans.extend(crate::mlp::Mlp::forward_write_plans());
    plans.extend(crate::mlp::Mlp::backward_write_plans());
    plans.push(crate::render::composite_cache_write_plan());
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_instantiation_matches_par_chunks_semantics() {
        let plan = WritePlan::chunked("x.rs:1 demo", "out", "n", "chunk", Some("w"));
        let c = plan.instantiate(&[("n", 10), ("chunk", 4), ("w", 3)], &[]);
        // ceil(10/4) = 3 chunks of 4, 4, 2 rows × 3 elements.
        assert_eq!(c.tasks, vec![(0, 12), (12, 24), (24, 30)]);
        assert_eq!(c.len, 30);
        // Exact multiple: no remainder tail.
        let c = plan.instantiate(&[("n", 8), ("chunk", 4), ("w", 1)], &[]);
        assert_eq!(c.tasks, vec![(0, 4), (4, 8)]);
        // Empty batch: no tasks at all.
        let c = plan.instantiate(&[("n", 0), ("chunk", 4), ("w", 2)], &[]);
        assert!(c.tasks.is_empty());
        assert_eq!(c.len, 0);
    }

    #[test]
    fn cut_partition_instantiation_validates_the_table_axioms() {
        let plan = WritePlan::cut_partition("x.rs:2 demo", "grads", "offsets", "levels", "params");
        let c = plan.instantiate(&[("levels", 3), ("params", 10)], &[&[0, 4, 4, 10]]);
        assert_eq!(c.tasks, vec![(0, 4), (4, 4), (4, 10)]);
        assert_eq!(c.len, 10);
        // Axiom violations are rejected, naming the family.
        for bad in [
            &[0i128, 4, 3, 10][..],
            &[1, 4, 5, 10],
            &[0, 4, 5, 9],
            &[0, 10],
        ] {
            let err = plan
                .try_instantiate(&[("levels", 3), ("params", 10)], &[bad])
                .unwrap_err();
            assert!(err.contains("offsets"), "{err}");
        }
    }

    #[test]
    fn out_of_bounds_shapes_are_rejected() {
        let plan = WritePlan::chunked("x.rs:3 demo", "out", "n", "chunk", None);
        let err = plan
            .try_instantiate(&[("n", 5), ("chunk", 0)], &[])
            .unwrap_err();
        assert!(err.contains("chunk"), "{err}");
        let err = plan
            .try_instantiate(&[("n", -1), ("chunk", 4)], &[])
            .unwrap_err();
        assert!(err.contains("n"), "{err}");
        let err = plan.try_instantiate(&[("chunk", 4)], &[]).unwrap_err();
        assert!(err.contains("no value"), "{err}");
    }
}
