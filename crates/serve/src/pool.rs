//! The workspace reuse pool: training scratch is checked out per slice
//! instead of allocated per job.
//!
//! Two kinds of workspace, with different recycling rules:
//!
//! * [`BatchWorkspace`] is pure scratch (every buffer cleared/resized per
//!   step), so it moves freely between same-shaped jobs — parked here at
//!   the end of every slice, checked out at the start of the next, keyed
//!   by [`WorkspaceShape`] so a mismatched model never sees it.
//! * [`OccupancyWorkspace`] carries per-job training state (density EMA,
//!   subset phase, embedding cache). It stays attached for a job's whole
//!   life and is parked here only at retirement, after a
//!   [`reset`](OccupancyWorkspace::reset) — handing live state to a new
//!   job would break the determinism contract.

use instant3d_core::{BatchWorkspace, NerfModel, WorkspaceShape};
use instant3d_nerf::occupancy::OccupancyWorkspace;
use std::collections::HashMap;
use std::sync::Mutex;

/// Shared, shape-keyed reuse pool. All methods take `&self`; the pool is
/// what fleet runners contend on (briefly — checkout/park are O(1) map
/// and vec operations).
#[derive(Debug, Default)]
pub struct WorkspacePool {
    batch: Mutex<HashMap<WorkspaceShape, Vec<BatchWorkspace>>>,
    occ: Mutex<Vec<OccupancyWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a parked batch workspace fitting `model`, if any.
    /// `None` is a pool miss: the caller's trainer will mint one lazily
    /// (a warmup allocation, counted in the fleet telemetry).
    pub fn checkout_batch(&self, model: &NerfModel) -> Option<BatchWorkspace> {
        self.batch
            .lock()
            .unwrap()
            .get_mut(&WorkspaceShape::of(model))
            .and_then(Vec::pop)
    }

    /// Parks a batch workspace for the next same-shaped job.
    pub fn park_batch(&self, ws: BatchWorkspace) {
        self.batch
            .lock()
            .unwrap()
            .entry(ws.shape())
            .or_default()
            .push(ws);
    }

    /// Checks out a (reset) occupancy workspace for a booting job.
    /// Occupancy workspaces are shape-agnostic: their buffers rebuild on
    /// the first refresh against the new job's grid.
    pub fn checkout_occ(&self) -> Option<OccupancyWorkspace> {
        self.occ.lock().unwrap().pop()
    }

    /// Parks a retired job's occupancy workspace, resetting it first so
    /// no training state (EMA, phase, cache) leaks into the next job.
    pub fn park_occ(&self, mut ws: OccupancyWorkspace) {
        ws.reset();
        self.occ.lock().unwrap().push(ws);
    }

    /// Parked batch workspaces across all shapes (diagnostics/tests).
    pub fn parked_batch(&self) -> usize {
        self.batch.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Parked occupancy workspaces (diagnostics/tests).
    pub fn parked_occ(&self) -> usize {
        self.occ.lock().unwrap().len()
    }
}
