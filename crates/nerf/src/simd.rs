//! Portable fixed-width SIMD lane types.
//!
//! The hot kernels of this crate — hash-grid encode/scatter
//! ([`crate::grid`]), the 64-wide MLP GEMV ([`crate::mlp`]) and per-ray
//! compositing ([`crate::render`]) — exist in interchangeable
//! implementations dispatched through the open backend API
//! ([`crate::kernels`]): the scalar reference kernels, and lane-batched
//! SIMD kernels built on the [`F32x4`]/[`F32x8`] types below.
//!
//! # The additive-order / no-FMA contract
//!
//! **Every backend produces bit-identical results.** The SIMD kernels are
//! written so that, for each output scalar, the exact sequence of IEEE 754
//! operations — including the order of every addition — is the same as in
//! the scalar reference kernel. Concretely:
//!
//! * Lanes are only ever used to batch *independent* scalars (different
//!   points, different output neurons, different parameters). No kernel
//!   reduces *across* lanes, which would reassociate a sum.
//! * Every multiply-add is performed as a distinct IEEE multiply followed
//!   by a distinct IEEE add — **never** a fused multiply-add. An FMA keeps
//!   the infinitely-precise product and rounds once, so `fma(a, b, c) !=
//!   a*b + c` in general; using it would silently break the contract. For
//!   this reason the lane types expose no `mul_add` and the intrinsic
//!   specializations deliberately avoid FMA instructions.
//! * Lane arithmetic (`+`, `-`, `*`, `min`, `max`, `floor`) is exact
//!   per-lane IEEE 754 — identical to the corresponding `f32` operator on
//!   that lane's value. Approximate vector math (rsqrt, rcp, vector exp)
//!   is never used; transcendentals stay scalar per lane.
//!
//! These properties are pinned by the differential suite
//! (`crates/nerf/tests/simd_differential.rs`) which asserts bit-equality
//! of every kernel against its scalar reference over remainder tails,
//! empty batches and adversarial fp16 table contents — and which runs
//! generically over every backend registered in [`crate::kernels`], so a
//! registered third-party backend is held to the same contract.
//!
//! # Implementation notes
//!
//! The lane types are plain aligned arrays with `#[inline(always)]`
//! elementwise operators — a form stable rustc reliably autovectorizes to
//! SSE/NEON without any nightly features. On `x86_64`, where SSE2 is part
//! of the baseline ISA, the [`F32x4`] arithmetic ops are additionally
//! specialized to `core::arch` intrinsics (`_mm_add_ps` etc. — exact
//! per-lane IEEE operations, so the contract above is preserved);
//! [`F32x8`] is two `F32x4` halves. Every other architecture uses the
//! autovectorized array fallback, which is always compiled and tested.

/// Four `f32` lanes, 16-byte aligned.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(16))]
pub struct F32x4(pub [f32; 4]);

/// Eight `f32` lanes, 32-byte aligned.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
pub struct F32x8(pub [f32; 8]);

macro_rules! lane_common {
    ($ty:ident, $n:expr) => {
        impl $ty {
            /// Lane count.
            pub const LANES: usize = $n;
            /// All lanes zero.
            pub const ZERO: $ty = $ty([0.0; $n]);

            /// Broadcasts one value to every lane.
            #[inline(always)]
            pub fn splat(v: f32) -> $ty {
                $ty([v; $n])
            }

            /// Loads lanes from the first `$n` elements of `s`.
            ///
            /// # Panics
            ///
            /// Panics if `s` is shorter than the lane count.
            #[inline(always)]
            pub fn from_slice(s: &[f32]) -> $ty {
                let mut v = [0.0f32; $n];
                v.copy_from_slice(&s[..$n]);
                $ty(v)
            }

            /// Stores lanes into the first `$n` elements of `out`.
            ///
            /// # Panics
            ///
            /// Panics if `out` is shorter than the lane count.
            #[inline(always)]
            pub fn write_to(self, out: &mut [f32]) {
                out[..$n].copy_from_slice(&self.0);
            }

            /// Per-lane `f32::floor` (exact, same as the scalar kernel).
            #[inline(always)]
            pub fn floor(self) -> $ty {
                let mut v = self.0;
                for x in &mut v {
                    *x = x.floor();
                }
                $ty(v)
            }

            /// Per-lane `f32::clamp(lo, hi)` — bitwise identical to the
            /// scalar kernels' clamp for the finite inputs they handle.
            #[inline(always)]
            pub fn clamp(self, lo: f32, hi: f32) -> $ty {
                let mut v = self.0;
                for x in &mut v {
                    *x = x.clamp(lo, hi);
                }
                $ty(v)
            }
        }

        impl std::ops::Index<usize> for $ty {
            type Output = f32;
            #[inline(always)]
            fn index(&self, i: usize) -> &f32 {
                &self.0[i]
            }
        }

        impl std::ops::AddAssign for $ty {
            #[inline(always)]
            fn add_assign(&mut self, rhs: $ty) {
                *self = *self + rhs;
            }
        }

        impl std::ops::MulAssign for $ty {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: $ty) {
                *self = *self * rhs;
            }
        }
    };
}

lane_common!(F32x4, 4);
lane_common!(F32x8, 8);

// --- F32x4 arithmetic: SSE2 intrinsics on x86_64 (baseline ISA there),
// --- autovectorized array loops everywhere else. Both are exact per-lane
// --- IEEE add/sub/mul — no FMA, no approximation.

macro_rules! f32x4_binop {
    ($trait:ident, $method:ident, $intrin:ident, $op:tt) => {
        impl std::ops::$trait for F32x4 {
            type Output = F32x4;
            #[inline(always)]
            fn $method(self, rhs: F32x4) -> F32x4 {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: SSE2 is part of the x86_64 baseline ISA, and
                // F32x4 is 16-byte aligned, so aligned loads are valid.
                unsafe {
                    use std::arch::x86_64::*;
                    let a = _mm_load_ps(self.0.as_ptr());
                    let b = _mm_load_ps(rhs.0.as_ptr());
                    let mut out = F32x4::ZERO;
                    _mm_store_ps(out.0.as_mut_ptr(), $intrin(a, b));
                    out
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    let mut v = self.0;
                    for (x, y) in v.iter_mut().zip(&rhs.0) {
                        *x = *x $op *y;
                    }
                    F32x4(v)
                }
            }
        }
    };
}

f32x4_binop!(Add, add, _mm_add_ps, +);
f32x4_binop!(Sub, sub, _mm_sub_ps, -);
f32x4_binop!(Mul, mul, _mm_mul_ps, *);

macro_rules! f32x8_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F32x8 {
            type Output = F32x8;
            #[inline(always)]
            fn $method(self, rhs: F32x8) -> F32x8 {
                #[cfg(target_arch = "x86_64")]
                {
                    // Two SSE2 halves (keeps the intrinsic path without
                    // requiring AVX, which is not baseline).
                    let lo = F32x4::from_slice(&self.0[..4]) $op F32x4::from_slice(&rhs.0[..4]);
                    let hi = F32x4::from_slice(&self.0[4..]) $op F32x4::from_slice(&rhs.0[4..]);
                    let mut v = [0.0f32; 8];
                    v[..4].copy_from_slice(&lo.0);
                    v[4..].copy_from_slice(&hi.0);
                    F32x8(v)
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    let mut v = self.0;
                    for (x, y) in v.iter_mut().zip(&rhs.0) {
                        *x = *x $op *y;
                    }
                    F32x8(v)
                }
            }
        }
    };
}

f32x8_binop!(Add, add, +);
f32x8_binop!(Sub, sub, -);
f32x8_binop!(Mul, mul, *);

/// `y[i] += a * x[i]`, elementwise; `use_simd` selects the lane-batched
/// sweep.
///
/// Each `y[i]` receives exactly one add of one product on either path,
/// so results are bit-identical — this is the vectorizable inner loop of
/// the MLP parameter-gradient and input-gradient sweeps.
///
/// # Panics
///
/// Panics if `x` is shorter than `y`.
#[inline]
pub fn axpy(use_simd: bool, y: &mut [f32], a: f32, x: &[f32]) {
    if use_simd {
        let n = y.len();
        let full = n - n % F32x8::LANES;
        let av = F32x8::splat(a);
        let mut i = 0;
        while i < full {
            let r = F32x8::from_slice(&y[i..]) + av * F32x8::from_slice(&x[i..]);
            r.write_to(&mut y[i..]);
            i += F32x8::LANES;
        }
        for (yi, xi) in y[full..].iter_mut().zip(&x[full..]) {
            *yi += a * xi;
        }
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_paths_are_bit_identical() {
        let x: Vec<f32> = (0..19).map(|i| 0.1 + i as f32 * 0.37).collect();
        let mut ya: Vec<f32> = (0..19).map(|i| -0.5 + i as f32 * 0.11).collect();
        let mut yb = ya.clone();
        axpy(false, &mut ya, -0.625, &x);
        axpy(true, &mut yb, -0.625, &x);
        for (a, b) in ya.iter().zip(&yb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lane_ops_match_scalar_ops_bitwise() {
        let a = [1.5f32, -0.25, 3.207_18e-3, 65504.0, -2.5, 0.1, 7.0, -0.0];
        let b = [0.3f32, 123.456, -9.87, 2.0e-4, 0.5, -0.1, 3.0, 4.0];
        let va = F32x8::from_slice(&a);
        let vb = F32x8::from_slice(&b);
        for k in 0..8 {
            assert_eq!((va + vb)[k].to_bits(), (a[k] + b[k]).to_bits());
            assert_eq!((va - vb)[k].to_bits(), (a[k] - b[k]).to_bits());
            assert_eq!((va * vb)[k].to_bits(), (a[k] * b[k]).to_bits());
        }
        let qa = F32x4::from_slice(&a);
        let qb = F32x4::from_slice(&b);
        for k in 0..4 {
            assert_eq!((qa + qb)[k].to_bits(), (a[k] + b[k]).to_bits());
            assert_eq!((qa - qb)[k].to_bits(), (a[k] - b[k]).to_bits());
            assert_eq!((qa * qb)[k].to_bits(), (a[k] * b[k]).to_bits());
        }
    }

    #[test]
    fn floor_and_clamp_match_scalar() {
        let a = [1.5f32, -0.25, 0.999_999, 4.0, -2.5, 0.0, 17.3, 1e-7];
        let v = F32x8::from_slice(&a);
        for k in 0..8 {
            assert_eq!(v.floor()[k].to_bits(), a[k].floor().to_bits());
            let c = v.clamp(0.0, 1.0 - 1e-6);
            assert_eq!(c[k].to_bits(), a[k].clamp(0.0, 1.0 - 1e-6).to_bits());
        }
    }

    #[test]
    fn splat_store_roundtrip() {
        let mut out = [0.0f32; 8];
        F32x8::splat(2.5).write_to(&mut out);
        assert_eq!(out, [2.5; 8]);
        let mut acc = F32x8::ZERO;
        acc += F32x8::splat(1.0);
        acc *= F32x8::splat(3.0);
        assert_eq!(acc.0, [3.0; 8]);
    }

    #[test]
    fn no_fma_in_mul_then_add() {
        // If a fused multiply-add ever sneaks in, this catches it:
        // pick a, b, c where fma(a, b, c) != a*b + c under f32 rounding.
        let a = 1.0 + f32::EPSILON;
        let b = 1.0 - f32::EPSILON;
        let c = -1.0f32;
        let scalar = a * b + c;
        let lanes = F32x8::splat(a) * F32x8::splat(b) + F32x8::splat(c);
        let fused = f32::mul_add(a, b, c);
        assert_ne!(scalar.to_bits(), fused.to_bits(), "test inputs degenerate");
        for k in 0..8 {
            assert_eq!(lanes[k].to_bits(), scalar.to_bits());
        }
    }
}
