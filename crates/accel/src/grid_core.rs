//! Trace-driven grid-core pipeline replay (§4.3's execution order).
//!
//! A grid core executes Step ③-① as a pipeline:
//!
//! 1. **3D Coordinate Buffer SRAM** ingests queried points;
//! 2. the **Interpolation Coord. Pre-Compute Unit** produces the 8 corner
//!    coordinates;
//! 3. the **Hash Function Compute Unit** evaluates Eq. 3 per corner;
//! 4. addresses land in the **Interpolation Address Multi-Output Double
//!    Buffer**;
//! 5. the **FRM** maps collision-free reads onto the **Hash Table SRAM
//!    Banks**;
//! 6. the **Interpolation Unit** (or, during back-propagation, the
//!    **Gradient Compute Unit**) consumes the fetched embeddings, with the
//!    **BUM** merging gradient write-backs.
//!
//! This module replays captured address streams through that pipeline at
//! cycle granularity. The front-end stages (1–4) are throughput-limited
//! (one point per cycle per core: 8 parallel hash units), the SRAM stage
//! is the FRM/bank model, and the back-end consumes one point per cycle —
//! so the steady-state iteration time is the *maximum* of the stage times,
//! plus pipeline fill.

use crate::bum::{simulate_bum, BumConfig, BumResult};
use crate::config::AccelConfig;
use crate::frm::{simulate_baseline_reads, simulate_frm, FrmResult};
use crate::fusion::FusionMode;

/// Cycle report of one grid-core pass over a point stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCoreReport {
    /// Points processed (feed-forward interpolations).
    pub points: u64,
    /// Front-end cycles (coordinate intake + hash computes; 1 point/cycle
    /// per fused core).
    pub frontend_cycles: u64,
    /// SRAM read stage cycles (FRM or baseline issue).
    pub sram_read: FrmResult,
    /// Back-propagation write stage (BUM) result, when a BP stream was
    /// replayed.
    pub bum: Option<BumResult>,
    /// Steady-state cycles for the pass: max over stages + fill.
    pub total_cycles: u64,
}

impl GridCoreReport {
    /// Effective points per cycle achieved by the pass.
    pub fn points_per_cycle(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.points as f64 / self.total_cycles as f64
        }
    }
}

/// Pipeline-depth constant: stages 1–6 of the §4.3 order.
const PIPELINE_FILL: u64 = 6;

/// Replays a feed-forward read stream (flat table addresses, 8 per point
/// in corner order) through one fused core group.
///
/// # Panics
///
/// Panics if `frm_enabled` demands a zero-bank configuration (invalid
/// `cfg`), or the stream length is not a multiple of 8.
pub fn replay_feed_forward(
    ff_addrs: &[u32],
    cfg: &AccelConfig,
    mode: FusionMode,
    frm_enabled: bool,
) -> GridCoreReport {
    assert!(
        ff_addrs.len().is_multiple_of(8),
        "feed-forward stream must be whole 8-corner bursts"
    );
    let points = (ff_addrs.len() / 8) as u64;
    let banks = mode.banks(cfg);
    // Front end: the fused group ingests `cores_per_group` points/cycle
    // (each core has its own coordinate buffer + 8 hash units).
    let frontend_cycles = points.div_ceil(mode.cores_per_group() as u64);
    let sram_read = if frm_enabled {
        simulate_frm(ff_addrs, banks, cfg.reorder_depth)
    } else {
        simulate_baseline_reads(ff_addrs, banks, 8)
    };
    // Back end consumes one interpolated point per cycle per core.
    let backend_cycles = frontend_cycles;
    let steady = frontend_cycles.max(sram_read.cycles).max(backend_cycles);
    GridCoreReport {
        points,
        frontend_cycles,
        sram_read,
        bum: None,
        total_cycles: steady + PIPELINE_FILL,
    }
}

/// Replays a back-propagation update stream (flat addresses) through the
/// gradient-compute + BUM + SRAM write path of one fused core group.
pub fn replay_back_prop(
    bp_addrs: &[u64],
    cfg: &AccelConfig,
    mode: FusionMode,
    bum_enabled: bool,
) -> GridCoreReport {
    let updates = bp_addrs.len() as u64;
    let points = updates / 8;
    let frontend_cycles = points.div_ceil(mode.cores_per_group() as u64).max(1);
    let banks = mode.banks(cfg);
    let (bum, write_stream): (Option<BumResult>, u64) = if bum_enabled {
        let r = simulate_bum(
            bp_addrs,
            BumConfig {
                entries: cfg.bum_entries,
                timeout: cfg.bum_timeout,
            },
        );
        (Some(r), r.sram_writes)
    } else {
        // Read-modify-write per update.
        (None, updates * 2)
    };
    // Writes drain through the banks at (banks × util ≈ 1 for merged
    // streams) — model as bandwidth-limited.
    let write_cycles = write_stream.div_ceil(banks as u64);
    let bum_intake_cycles = updates; // one update enters the BUM per cycle
    let steady =
        frontend_cycles
            .max(write_cycles)
            .max(if bum_enabled { bum_intake_cycles } else { 0 });
    GridCoreReport {
        points,
        frontend_cycles,
        sram_read: FrmResult {
            reads: 0,
            cycles: 0,
            utilization: 0.0,
        },
        bum,
        total_cycles: steady + PIPELINE_FILL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_trace::cluster::CornerBurst;

    /// A synthetic stream of corner bursts with the §4.2 structure.
    fn ff_stream(points: usize) -> Vec<u32> {
        let t = 1u32 << 16;
        let mut out = Vec::with_capacity(points * 8);
        for p in 0..points as u32 {
            let bases = [
                p * 3 % t,
                (40_000 + p * 5) % t,
                (90_000 + p * 7) % t,
                (130_000 + p * 2) % t,
            ];
            for b in bases {
                out.push(b);
                out.push((b + 1) % t);
            }
        }
        out
    }

    fn bp_stream(points: usize) -> Vec<u64> {
        // 4× reuse, as BP streams exhibit.
        (0..points * 8).map(|i| ((i / 4) % 3000) as u64).collect()
    }

    #[test]
    fn ff_replay_counts_points() {
        let cfg = AccelConfig::default();
        let r = replay_feed_forward(&ff_stream(500), &cfg, FusionMode::Level0, true);
        assert_eq!(r.points, 500);
        assert_eq!(r.sram_read.reads, 4000);
        assert!(r.points_per_cycle() > 0.0);
    }

    #[test]
    fn frm_lifts_core_throughput() {
        let cfg = AccelConfig::default();
        let s = ff_stream(2000);
        let with = replay_feed_forward(&s, &cfg, FusionMode::Level0, true);
        let without = replay_feed_forward(&s, &cfg, FusionMode::Level0, false);
        assert!(
            with.total_cycles < without.total_cycles,
            "FRM {} cycles should beat baseline {}",
            with.total_cycles,
            without.total_cycles
        );
    }

    #[test]
    fn fused_modes_trade_banks_for_parallel_groups() {
        // At equal total work per group, wider banking (Level 2) should
        // not be slower per point than Level 0 on one group.
        let cfg = AccelConfig::default();
        let s = ff_stream(1000);
        let l0 = replay_feed_forward(&s, &cfg, FusionMode::Level0, true);
        let l2 = replay_feed_forward(&s, &cfg, FusionMode::Level2, true);
        assert!(l2.total_cycles <= l0.total_cycles);
    }

    #[test]
    fn bum_cuts_write_cycles() {
        let cfg = AccelConfig::default();
        let s = bp_stream(2000);
        let with = replay_back_prop(&s, &cfg, FusionMode::Level2, true);
        let without = replay_back_prop(&s, &cfg, FusionMode::Level2, false);
        let bum = with.bum.expect("bum result present");
        assert!(bum.merge_ratio() > 0.5, "4x reuse should merge well");
        // The write path shrinks even though the BUM intake is serial.
        assert!(with.bum.unwrap().sram_writes < 2 * s.len() as u64);
        assert!(without.bum.is_none());
    }

    #[test]
    fn steady_state_is_max_of_stages() {
        let cfg = AccelConfig::default();
        let s = ff_stream(100);
        let r = replay_feed_forward(&s, &cfg, FusionMode::Level0, true);
        let expect = r.frontend_cycles.max(r.sram_read.cycles) + PIPELINE_FILL;
        assert_eq!(r.total_cycles, expect);
    }

    #[test]
    fn replay_agrees_with_analytic_utilization_band() {
        // The analytic model assumes FRM utilisation ≈ 0.8 on corner-burst
        // streams; the pipeline replay should land in the same band.
        let cfg = AccelConfig::default();
        let r = replay_feed_forward(&ff_stream(3000), &cfg, FusionMode::Level0, true);
        assert!(
            (0.6..=1.0).contains(&r.sram_read.utilization),
            "replayed FRM utilisation {} out of band",
            r.sram_read.utilization
        );
        let base = replay_feed_forward(&ff_stream(3000), &cfg, FusionMode::Level0, false);
        assert!(
            (0.2..=0.55).contains(&base.sram_read.utilization),
            "baseline utilisation {} out of band",
            base.sram_read.utilization
        );
    }

    #[test]
    #[should_panic]
    fn ragged_burst_stream_panics() {
        let cfg = AccelConfig::default();
        let _ = replay_feed_forward(&[1, 2, 3], &cfg, FusionMode::Level0, true);
    }

    #[test]
    fn corner_burst_type_interops_with_trace_crate() {
        // The trace crate's burst reconstruction feeds this module.
        let b = CornerBurst {
            iter: 0,
            level: 3,
            addrs: [1, 2, 3, 4, 5, 6, 7, 8],
        };
        let flat: Vec<u32> = b.addrs.to_vec();
        let cfg = AccelConfig::default();
        let r = replay_feed_forward(&flat, &cfg, FusionMode::Level0, true);
        assert_eq!(r.points, 1);
    }
}
