//! Property-based tests of the NeRF substrate's core invariants.

use instant3d_nerf::activation::Activation;
use instant3d_nerf::fp16::{quantize, F16};
use instant3d_nerf::grid::{HashGrid, HashGridConfig, NullObserver};
use instant3d_nerf::hash::{corner_group, dense_index, spatial_hash};
use instant3d_nerf::kernels;
use instant3d_nerf::math::{Aabb, Ray, Vec3};
use instant3d_nerf::metrics::psnr;
use instant3d_nerf::render::{composite, composite_backward, RaySample, RenderCache};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_f32(range: std::ops::RangeInclusive<f32>) -> impl Strategy<Value = f32> {
    range.prop_filter("finite", |v| v.is_finite())
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (
        finite_f32(-10.0..=10.0),
        finite_f32(-10.0..=10.0),
        finite_f32(-10.0..=10.0),
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    // ---------- fp16 ----------

    #[test]
    fn fp16_roundtrip_is_idempotent(v in finite_f32(-1e4..=1e4)) {
        let once = quantize(v);
        prop_assert_eq!(quantize(once), once);
    }

    #[test]
    fn fp16_relative_error_bounded(v in finite_f32(0.001..=1e4)) {
        let q = F16::from_f32(v).to_f32();
        // Normal-range fp16 rounding error is at most 2^-11 relative.
        prop_assert!((q - v).abs() <= v * 4.9e-4, "v={v} q={q}");
    }

    #[test]
    fn fp16_preserves_ordering(a in finite_f32(-6e4..=6e4), b in finite_f32(-6e4..=6e4)) {
        // Rounding is monotone: a <= b implies q(a) <= q(b).
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize(lo) <= quantize(hi));
    }

    // ---------- spatial hash ----------

    #[test]
    fn hash_stays_in_table(x in 0u32..10_000, y in 0u32..10_000, z in 0u32..10_000,
                           log2 in 4u32..20) {
        let t = 1u32 << log2;
        prop_assert!(spatial_hash(x, y, z, t) < t);
    }

    #[test]
    fn hash_is_deterministic(x in any::<u32>(), y in any::<u32>(), z in any::<u32>()) {
        let t = 1 << 16;
        prop_assert_eq!(spatial_hash(x, y, z, t), spatial_hash(x, y, z, t));
    }

    #[test]
    fn even_x_neighbours_are_adjacent(x in (0u32..1000).prop_map(|v| v * 2),
                                      y in 0u32..1000, z in 0u32..1000) {
        // π₁ = 1 ⇒ even-x neighbours differ by exactly 1 (Fig. 9's peak).
        let t = 1 << 18;
        let a = spatial_hash(x, y, z, t) as i64;
        let b = spatial_hash(x + 1, y, z, t) as i64;
        prop_assert_eq!((a - b).abs(), 1);
    }

    #[test]
    fn dense_index_bounds(res in 1u32..32, x in 0u32..33, y in 0u32..33, z in 0u32..33) {
        let n = res + 1;
        prop_assume!(x < n && y < n && z < n);
        let i = dense_index(x, y, z, res);
        prop_assert!(i < n * n * n);
    }

    #[test]
    fn corner_groups_partition(c in 0usize..8) {
        let g = corner_group(c);
        prop_assert!(g < 4);
        prop_assert_eq!(corner_group(c ^ 1), g, "x-partner shares the group");
    }

    // ---------- geometry ----------

    #[test]
    fn aabb_unit_mapping_roundtrips(p in vec3()) {
        let b = Aabb::new(Vec3::splat(-12.0), Vec3::splat(12.0));
        let u = b.to_unit(p);
        let back = b.from_unit(u);
        prop_assert!((back - p).norm() < 1e-3, "p={p} back={back}");
    }

    #[test]
    fn ray_box_intersection_points_are_on_box(ox in finite_f32(-5.0..=5.0),
                                              oy in finite_f32(-5.0..=5.0)) {
        let ray = Ray::new(Vec3::new(ox, oy, -3.0), Vec3::Z);
        if let Some((t0, t1)) = Aabb::UNIT.intersect(&ray) {
            prop_assert!(t0 <= t1);
            let eps = 1e-3;
            for t in [t0, t1] {
                let p = ray.at(t);
                prop_assert!(p.x >= -eps && p.x <= 1.0 + eps);
                prop_assert!(p.y >= -eps && p.y <= 1.0 + eps);
                prop_assert!(p.z >= -eps && p.z <= 1.0 + eps);
            }
        }
    }

    #[test]
    fn vec3_triangle_inequality(a in vec3(), b in vec3()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-4);
    }

    // ---------- volume rendering ----------

    #[test]
    fn compositing_conserves_probability(sigmas in prop::collection::vec(0.0f32..50.0, 1..64)) {
        let n = sigmas.len();
        let dt = 1.0 / n as f32;
        let samples: Vec<RaySample> = sigmas
            .iter()
            .enumerate()
            .map(|(i, &s)| RaySample { t: (i as f32 + 0.5) * dt, dt, sigma: s, rgb: Vec3::ONE })
            .collect();
        let out = composite(&samples, Vec3::ZERO, None);
        prop_assert!(out.opacity >= -1e-5 && out.opacity <= 1.0 + 1e-5);
        prop_assert!(out.transmittance >= 0.0 && out.transmittance <= 1.0);
        prop_assert!((out.opacity + out.transmittance - 1.0).abs() < 1e-4);
        // White emitters on black background: color = opacity per channel.
        prop_assert!((out.color.x - out.opacity).abs() < 1e-4);
    }

    #[test]
    fn compositing_color_in_convex_hull(
        sigmas in prop::collection::vec(0.0f32..20.0, 1..32),
        r in 0.0f32..1.0, g in 0.0f32..1.0)
    {
        // All samples share one color; the background is another color:
        // the output must lie between them channel-wise.
        let n = sigmas.len();
        let dt = 1.0 / n as f32;
        let emit = Vec3::new(r, g, 0.25);
        let bg = Vec3::new(1.0 - r, 1.0 - g, 0.75);
        let samples: Vec<RaySample> = sigmas
            .iter()
            .enumerate()
            .map(|(i, &s)| RaySample { t: (i as f32 + 0.5) * dt, dt, sigma: s, rgb: emit })
            .collect();
        let out = composite(&samples, bg, None);
        for k in 0..3 {
            let lo = emit[k].min(bg[k]) - 1e-4;
            let hi = emit[k].max(bg[k]) + 1e-4;
            prop_assert!(out.color[k] >= lo && out.color[k] <= hi);
        }
    }

    #[test]
    fn composite_backward_rgb_grads_are_weights(
        sigmas in prop::collection::vec(0.1f32..10.0, 1..16))
    {
        let n = sigmas.len();
        let dt = 1.0 / n as f32;
        let samples: Vec<RaySample> = sigmas
            .iter()
            .enumerate()
            .map(|(i, &s)| RaySample { t: (i as f32 + 0.5) * dt, dt, sigma: s, rgb: Vec3::splat(0.5) })
            .collect();
        let mut cache = RenderCache::default();
        let out = composite(&samples, Vec3::ZERO, Some(&mut cache));
        let grads = composite_backward(&samples, Vec3::ZERO, &cache, &out, Vec3::new(1.0, 0.0, 0.0));
        for (k, w) in cache.weights.iter().enumerate() {
            prop_assert!((grads.d_rgb[k].x - w).abs() < 1e-5);
            prop_assert_eq!(grads.d_rgb[k].y, 0.0);
        }
    }

    // ---------- activations ----------

    #[test]
    fn activations_are_finite_and_ranged(x in finite_f32(-50.0..=50.0)) {
        for act in [Activation::Relu, Activation::Sigmoid, Activation::TruncExp, Activation::Softplus] {
            let y = act.apply(x);
            prop_assert!(y.is_finite(), "{act:?}({x}) = {y}");
            if act == Activation::Sigmoid {
                prop_assert!((0.0..=1.0).contains(&y));
            }
            if matches!(act, Activation::Relu | Activation::TruncExp | Activation::Softplus) {
                prop_assert!(y >= 0.0);
            }
        }
    }

    // ---------- hash grid ----------

    #[test]
    fn grid_encoding_is_bounded_by_feature_magnitude(px in 0.0f32..1.0, py in 0.0f32..1.0, pz in 0.0f32..1.0) {
        let cfg = HashGridConfig {
            levels: 3,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 16,
            init_scale: 0.5,
            store_fp16: false,
            ..HashGridConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(99);
        let grid = HashGrid::new_random(cfg, &mut rng);
        let emb = grid.encode(Vec3::new(px, py, pz));
        // A convex combination of features bounded by ±0.5 stays bounded.
        for v in emb {
            prop_assert!(v.abs() <= 0.5 + 1e-5);
        }
    }

    #[test]
    fn grid_backward_distributes_exactly_one_weight_unit(
        px in 0.0f32..1.0, py in 0.0f32..1.0, pz in 0.0f32..1.0)
    {
        // Scattering a unit gradient puts trilinear weights summing to 1
        // per level per feature — unless hash collisions merge corners, in
        // which case weights still sum to 1 (they accumulate).
        let cfg = HashGridConfig {
            levels: 2,
            log2_table_size: 12,
            base_resolution: 4,
            max_resolution: 8,
            store_fp16: false,
            ..HashGridConfig::default()
        };
        let grid = HashGrid::new(cfg.clone());
        let mut grads = grid.zero_grads();
        let d = vec![1.0f32; grid.output_dim()];
        grid.backward_into(Vec3::new(px, py, pz), &d, &mut grads, &mut NullObserver);
        let f = cfg.features_per_entry;
        // Feature slot 0 of each entry accumulates level-0's weights.
        let total: f32 = grads.values.iter().step_by(f).sum();
        prop_assert!((total - cfg.levels as f32).abs() < 1e-4, "total {total}");
    }

    // ---------- metrics ----------

    #[test]
    fn psnr_is_monotone_in_mse(a in 1e-6f32..1.0, b in 1e-6f32..1.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(psnr(lo, 1.0) >= psnr(hi, 1.0));
    }

    // ---------- batched SoA kernels vs scalar reference ----------

    #[test]
    fn grid_encode_batch_matches_scalar(
        pts in prop::collection::vec((0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0), 1..64),
        seed in 0u64..32)
    {
        let cfg = HashGridConfig {
            levels: 3,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 32,
            store_fp16: false,
            ..HashGridConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let grid = HashGrid::new_random(cfg, &mut rng);
        let positions: Vec<Vec3> = pts.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let w = grid.output_dim();

        let mut batched = vec![0.0f32; positions.len() * w];
        grid.encode_batch_into(&positions, &mut batched, &mut NullObserver);
        let mut level_major = vec![0.0f32; positions.len() * w];
        grid.encode_batch_level_major(&positions, &mut level_major);
        let mut parallel = vec![0.0f32; positions.len() * w];
        grid.par_encode_batch(&positions, &mut parallel);
        let mut lanes = vec![0.0f32; positions.len() * w];
        grid.encode_batch_simd(&positions, &mut lanes);
        let mut par_lanes = vec![0.0f32; positions.len() * w];
        grid.par_encode_batch_with(&kernels::simd(), &positions, &mut par_lanes);

        for (i, p) in positions.iter().enumerate() {
            let scalar = grid.encode(*p);
            prop_assert_eq!(&batched[i * w..(i + 1) * w], &scalar[..], "point-major row {}", i);
            prop_assert_eq!(&level_major[i * w..(i + 1) * w], &scalar[..], "level-major row {}", i);
            prop_assert_eq!(&parallel[i * w..(i + 1) * w], &scalar[..], "parallel row {}", i);
            prop_assert_eq!(&lanes[i * w..(i + 1) * w], &scalar[..], "simd row {}", i);
            prop_assert_eq!(&par_lanes[i * w..(i + 1) * w], &scalar[..], "par simd row {}", i);
        }
    }

    #[test]
    fn grid_backward_batch_matches_scalar(
        pts in prop::collection::vec((0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0), 1..48),
        scale in 0.1f32..2.0)
    {
        let cfg = HashGridConfig {
            levels: 3,
            log2_table_size: 8,
            base_resolution: 4,
            max_resolution: 16,
            store_fp16: false,
            ..HashGridConfig::default()
        };
        let grid = HashGrid::new(cfg);
        let positions: Vec<Vec3> = pts.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let w = grid.output_dim();
        let d_out: Vec<f32> = (0..positions.len() * w)
            .map(|i| scale * ((i % 7) as f32 - 3.0))
            .collect();

        // Scalar reference: one backward_into per point, in order.
        let mut scalar = grid.zero_grads();
        for (i, p) in positions.iter().enumerate() {
            grid.backward_into(*p, &d_out[i * w..(i + 1) * w], &mut scalar, &mut NullObserver);
        }
        // Batched point-major, parallel level-major and SIMD scatters.
        let mut batched = grid.zero_grads();
        grid.backward_batch_into(&positions, &d_out, &mut batched, &mut NullObserver);
        let mut parallel = grid.zero_grads();
        grid.par_backward_batch(&positions, &d_out, &mut parallel);
        let mut lanes = grid.zero_grads();
        grid.par_backward_batch_with(&kernels::simd(), &positions, &d_out, &mut lanes);

        prop_assert_eq!(&batched.values, &scalar.values);
        prop_assert_eq!(batched.count, scalar.count);
        prop_assert_eq!(&parallel.values, &scalar.values);
        prop_assert_eq!(parallel.count, scalar.count);
        prop_assert_eq!(&lanes.values, &scalar.values);
        prop_assert_eq!(lanes.count, scalar.count);
    }

    #[test]
    fn mlp_forward_batch_matches_scalar(
        rows in prop::collection::vec((0.0f32..1.0, -1.0f32..1.0, 0.0f32..1.0, -1.0f32..1.0), 1..48),
        seed in 0u64..32)
    {
        use instant3d_nerf::mlp::{Mlp, MlpConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            MlpConfig::new(4, &[8, 8], 3, Activation::Relu, Activation::Sigmoid),
            &mut rng,
        );
        let inputs: Vec<f32> = rows.iter().flat_map(|&(a, b, c, d)| [a, b, c, d]).collect();
        let mut bws = mlp.batch_workspace(rows.len());
        let out = mlp.forward_batch(&inputs, &mut bws).to_vec();
        let mut bws_simd = mlp.batch_workspace(rows.len());
        let out_simd = mlp
            .forward_batch_with(&kernels::simd(), &inputs, &mut bws_simd)
            .to_vec();
        let mut ws = mlp.workspace();
        for (i, row) in inputs.chunks(4).enumerate() {
            let scalar = mlp.forward(row, &mut ws);
            prop_assert_eq!(&out[i * 3..(i + 1) * 3], scalar, "row {}", i);
            prop_assert_eq!(&out_simd[i * 3..(i + 1) * 3], scalar, "simd row {}", i);
        }
    }

    #[test]
    fn mlp_backward_batch_matches_scalar(
        rows in prop::collection::vec((0.0f32..1.0, -1.0f32..1.0, 0.0f32..1.0), 1..32),
        seed in 0u64..32)
    {
        use instant3d_nerf::mlp::{Mlp, MlpConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            MlpConfig::new(3, &[8], 2, Activation::Relu, Activation::None),
            &mut rng,
        );
        let inputs: Vec<f32> = rows.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
        let n = rows.len();
        let d_out: Vec<f32> = (0..n * 2).map(|i| 0.25 * ((i % 5) as f32 - 2.0)).collect();

        // Scalar reference: forward + backward per item, accumulating.
        let mut ws = mlp.workspace();
        let mut scalar_grads = mlp.zero_grads();
        let mut scalar_d_in = vec![0.0f32; n * 3];
        for i in 0..n {
            mlp.forward(&inputs[i * 3..(i + 1) * 3], &mut ws);
            mlp.backward(
                &d_out[i * 2..(i + 1) * 2],
                &mut ws,
                &mut scalar_grads,
                &mut scalar_d_in[i * 3..(i + 1) * 3],
            );
        }
        // Batched: one forward, one backward, retained activations — on
        // every registered kernel backend.
        for backend in kernels::registered_strict() {
            let mut bws = mlp.batch_workspace(n);
            mlp.forward_batch_with(&backend, &inputs, &mut bws);
            let mut grads = mlp.zero_grads();
            let mut d_in = vec![0.0f32; n * 3];
            mlp.backward_batch_with(&backend, &d_out, &mut bws, &mut grads, &mut d_in);

            prop_assert_eq!(grads.count, scalar_grads.count);
            for (li, ((gw, gb), (sw, sb))) in
                grads.layers.iter().zip(&scalar_grads.layers).enumerate()
            {
                prop_assert_eq!(gw, sw, "{} layer {} weights", backend, li);
                prop_assert_eq!(gb, sb, "{} layer {} biases", backend, li);
            }
            prop_assert_eq!(d_in, scalar_d_in.clone(), "{} input grads", backend);
        }
    }

    #[test]
    fn composite_slices_matches_aos_composite(
        sigmas in prop::collection::vec(0.0f32..40.0, 1..48),
        bg in (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0))
    {
        use instant3d_nerf::render::{composite_backward_slices, composite_slices};
        let n = sigmas.len();
        let dt = 1.0 / n as f32;
        let samples: Vec<RaySample> = sigmas
            .iter()
            .enumerate()
            .map(|(i, &s)| RaySample {
                t: (i as f32 + 0.5) * dt,
                dt,
                sigma: s,
                rgb: Vec3::new(i as f32 / n as f32, 0.5, 1.0 - i as f32 / n as f32),
            })
            .collect();
        let background = Vec3::new(bg.0, bg.1, bg.2);

        let mut aos_cache = RenderCache::default();
        let aos = composite(&samples, background, Some(&mut aos_cache));

        let t: Vec<f32> = samples.iter().map(|s| s.t).collect();
        let dts: Vec<f32> = samples.iter().map(|s| s.dt).collect();
        let sg: Vec<f32> = samples.iter().map(|s| s.sigma).collect();
        let rgb: Vec<Vec3> = samples.iter().map(|s| s.rgb).collect();
        let mut weights = vec![0.0f32; n];
        let mut trans = vec![0.0f32; n];
        let mut oma = vec![0.0f32; n];
        let (soa, active) = composite_slices(
            &t, &dts, &sg, &rgb, background,
            Some((&mut weights, &mut trans, &mut oma)),
        );
        prop_assert_eq!(soa, aos);
        prop_assert_eq!(active, aos_cache.weights.len());
        prop_assert_eq!(&weights[..active], &aos_cache.weights[..]);

        // The SIMD compositing backend agrees with the AoS reference too.
        let mut w2 = vec![0.0f32; n];
        let mut t2 = vec![0.0f32; n];
        let mut o2 = vec![0.0f32; n];
        let (soa_simd, active_simd) = instant3d_nerf::render::composite_slices_with(
            &kernels::simd(), &t, &dts, &sg, &rgb, background,
            Some((&mut w2, &mut t2, &mut o2)),
        );
        prop_assert_eq!(soa_simd, aos);
        prop_assert_eq!(active_simd, active);
        prop_assert_eq!(&w2[..active], &aos_cache.weights[..]);

        // Backward agreement on the same ray.
        let d_color = Vec3::new(0.7, -0.4, 0.2);
        let aos_grads = instant3d_nerf::render::composite_backward(
            &samples, background, &aos_cache, &aos, d_color,
        );
        let mut d_sigma = vec![0.0f32; n];
        let mut d_rgb = vec![Vec3::ZERO; n];
        composite_backward_slices(
            &dts, &rgb, background, &weights, &trans, &oma, active, &soa, d_color,
            &mut d_sigma, &mut d_rgb,
        );
        prop_assert_eq!(d_sigma, aos_grads.d_sigma);
        prop_assert_eq!(d_rgb, aos_grads.d_rgb);
    }

    // ---------- Morton-packed occupancy bitfield ----------

    #[test]
    fn morton3_roundtrips_through_bit_deinterleave(
        x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21))
    {
        use instant3d_nerf::occupancy::morton3;
        let code = morton3(x, y, z);
        let mut dx = 0u32;
        let mut dy = 0u32;
        let mut dz = 0u32;
        for b in 0..21 {
            dx |= (((code >> (3 * b)) & 1) as u32) << b;
            dy |= (((code >> (3 * b + 1)) & 1) as u32) << b;
            dz |= (((code >> (3 * b + 2)) & 1) as u32) << b;
        }
        prop_assert_eq!((dx, dy, dz), (x, y, z));
    }

    #[test]
    fn occupancy_bitfield_matches_vec_bool_model(
        resolution in 1u32..=11,
        seed in 0u64..1000,
        threshold in -0.5f32..0.5)
    {
        use instant3d_nerf::occupancy::OccupancyGrid;
        use rand::Rng;
        let aabb = Aabb::new(Vec3::new(-1.5, 0.0, 0.5), Vec3::new(0.5, 2.0, 3.5));
        let r = resolution as usize;
        let n = r * r * r;
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        // The naive model: a plain Vec<bool> in linear (x-fastest) order.
        let model: Vec<bool> = values.iter().map(|&v| v > threshold).collect();

        let mut occ = OccupancyGrid::new(aabb, resolution);
        occ.set_from_values(&values, threshold);

        // set_from_values / occupied_linear round-trip.
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(occ.occupied_linear(i), m, "cell {}", i);
        }
        // occupancy_fraction agrees with the model's popcount.
        let frac = model.iter().filter(|&&b| b).count() as f32 / n as f32;
        prop_assert_eq!(occ.occupancy_fraction(), frac);
        // occupied_at agrees with the model under the same cell-index math
        // at random world points (inside and outside the box).
        for _ in 0..32 {
            let p = Vec3::new(
                rng.gen_range(-2.0f32..1.0),
                rng.gen_range(-0.5f32..2.5),
                rng.gen_range(0.0f32..4.0),
            );
            let u = aabb.to_unit(p);
            let expect = if !(0.0..=1.0).contains(&u.x)
                || !(0.0..=1.0).contains(&u.y)
                || !(0.0..=1.0).contains(&u.z)
            {
                false
            } else {
                let cx = ((u.x * resolution as f32) as usize).min(r - 1);
                let cy = ((u.y * resolution as f32) as usize).min(r - 1);
                let cz = ((u.z * resolution as f32) as usize).min(r - 1);
                model[cx + cy * r + cz * r * r]
            };
            prop_assert_eq!(occ.occupied_at(p), expect, "point {:?}", p);
        }
        // Padding invariant: the packed popcount equals the model's even
        // for non-power-of-two resolutions (no stray bits in the padded
        // Morton index space).
        let set: u64 = occ.words().iter().map(|w| w.count_ones() as u64).sum();
        prop_assert_eq!(set as usize, model.iter().filter(|&&b| b).count());
    }

    #[test]
    fn occupancy_update_from_fn_equals_set_from_values_on_centers(
        resolution in 1u32..=8, seed in 0u64..1000)
    {
        use instant3d_nerf::occupancy::OccupancyGrid;
        let aabb = Aabb::UNIT;
        let mut a = OccupancyGrid::new(aabb, resolution);
        let mut b = OccupancyGrid::new(aabb, resolution);
        let f = move |p: Vec3| {
            // A deterministic pseudo-density varying per cell.
            (p.x * 37.0 + p.y * 17.0 + p.z * 11.0 + seed as f32).sin() * 2.0
        };
        a.update_from_fn(f, 0.3);
        let values: Vec<f32> = b.cell_centers().iter().map(|&c| f(c)).collect();
        b.set_from_values(&values, 0.3);
        prop_assert_eq!(a.words(), b.words());
    }
}
