//! Training configuration: the paper's algorithmic knobs, plus the
//! execution-engine knobs (kernel backend).

use instant3d_nerf::grid::HashGridConfig;
use instant3d_nerf::kernels::{self, BackendHandle};

/// Whether the model uses Instant-NGP's single shared grid or Instant-3D's
/// decomposed color/density grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridTopology {
    /// One grid feeds both the density and color heads (Instant-NGP, §2.1).
    Coupled,
    /// Separate density and color grids (Instant-3D, §3, Fig. 6).
    Decoupled,
}

/// Full training configuration.
///
/// The paper's two knobs are expressed as:
///
/// * `density_size_factor` / `color_size_factor` — multiply the base grid's
///   per-level table size (powers of two). `S_D : S_C = 1 : 0.25` is
///   `density_size_factor = 1.0, color_size_factor = 0.25`.
/// * `density_update_every` / `color_update_every` — grid update periods in
///   iterations. `F_D : F_C = 1 : 0.5` is `1` and `2`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Coupled (Instant-NGP) or decoupled (Instant-3D) grids.
    pub topology: GridTopology,
    /// Base hash-grid configuration (the density branch uses this scaled by
    /// `density_size_factor`).
    pub grid: HashGridConfig,
    /// Table-size factor for the density grid (`S_D`).
    pub density_size_factor: f64,
    /// Table-size factor for the color grid (`S_C`); ignored when coupled.
    pub color_size_factor: f64,
    /// Density grid updated every this many iterations (`1/F_D`).
    pub density_update_every: u32,
    /// Color grid updated every this many iterations (`1/F_C`); ignored
    /// when coupled.
    pub color_update_every: u32,
    /// Rays (pixels) per training batch — Step ①.
    pub rays_per_batch: usize,
    /// Maximum stratified samples per ray before occupancy culling.
    pub samples_per_ray: usize,
    /// Spherical-harmonics degree for the direction encoding (1..=4).
    pub sh_degree: usize,
    /// Hidden width of both MLP heads (the paper's small MLPs use 64).
    pub mlp_hidden_dim: usize,
    /// Hidden layers per MLP head.
    pub mlp_hidden_layers: usize,
    /// Adam learning rate for grid features.
    pub grid_lr: f32,
    /// Adam learning rate for MLP weights.
    pub mlp_lr: f32,
    /// Multiply all learning rates by this factor every
    /// `lr_decay_every` iterations (1.0 disables decay). Instant-NGP uses
    /// a mild exponential decay late in training.
    pub lr_decay_factor: f32,
    /// Decay period in iterations (ignored when the factor is 1.0).
    pub lr_decay_every: u32,
    /// Occupancy-grid resolution (cells per axis); 0 disables skipping.
    pub occupancy_resolution: u32,
    /// Refresh the occupancy grid every this many iterations. Refreshes
    /// run batched through the kernel seams with a persistent
    /// cell→embedding cache (`instant3d_nerf::occupancy`), so levels whose
    /// grid parameters didn't change since the last refresh are never
    /// re-encoded; together with [`TrainConfig::occupancy_subset`] these
    /// are the refresh-amortization knobs.
    pub occupancy_update_every: u32,
    /// Occupancy refresh subset stride `k`: each refresh re-probes only
    /// the cells whose linear index ≡ phase (mod `k`), with the phase
    /// rotating so `k` consecutive refreshes cover every cell once —
    /// instant-ngp-style amortization. `1` (the default) probes the full
    /// grid every refresh. A cell's density EMA decays once per *probe*,
    /// so larger strides also slow the decay to one step per rotation.
    pub occupancy_subset: u32,
    /// Density threshold above which a cell counts as occupied.
    pub occupancy_threshold: f32,
    /// Samples per ray when rendering evaluation images.
    pub eval_samples_per_ray: usize,
    /// Whether [`Trainer::evaluate`](crate::Trainer::evaluate) guides its
    /// ray sampling with the trainer's occupancy grid (empty-space
    /// skipping in eval, much cheaper on a trained model). `false` (the
    /// default) samples uniformly, preserving historical metrics
    /// bit-for-bit; the pixels differ slightly when enabled because
    /// culled samples no longer contribute their (near-zero) density.
    pub eval_occupancy: bool,
    /// Which kernel backend the batched engine runs — a handle resolved
    /// through the open backend registry (`instant3d_nerf::kernels`):
    /// the scalar reference, the lane-batched SIMD default, the
    /// instrumented co-sim backend, or any backend registered at runtime
    /// (all bit-identical by contract). Every preset honours the
    /// `INSTANT3D_KERNEL_BACKEND` env var — a registry name lookup — which
    /// is how the CI matrix forces each registered backend.
    pub kernel_backend: BackendHandle,
}

impl Default for TrainConfig {
    /// The Instant-3D operating point at laptop scale (small tables, small
    /// batches). Use [`TrainConfig::paper_scale`] on a preset to get the
    /// paper's table sizes for workload modelling.
    fn default() -> Self {
        TrainConfig {
            topology: GridTopology::Decoupled,
            grid: HashGridConfig::default(),
            density_size_factor: 1.0,
            color_size_factor: 0.25,
            density_update_every: 1,
            color_update_every: 2,
            rays_per_batch: 256,
            samples_per_ray: 48,
            sh_degree: 4,
            mlp_hidden_dim: 64,
            mlp_hidden_layers: 1,
            grid_lr: 1e-1,
            mlp_lr: 1e-2,
            lr_decay_factor: 1.0,
            lr_decay_every: 64,
            occupancy_resolution: 24,
            occupancy_update_every: 16,
            occupancy_subset: 1,
            occupancy_threshold: 0.5,
            eval_samples_per_ray: 64,
            eval_occupancy: false,
            kernel_backend: kernels::from_env_or_default(),
        }
    }
}

impl TrainConfig {
    /// The Instant-NGP baseline: one coupled grid, uniform size, updated
    /// every iteration.
    pub fn instant_ngp() -> Self {
        TrainConfig {
            topology: GridTopology::Coupled,
            density_size_factor: 1.0,
            color_size_factor: 1.0,
            density_update_every: 1,
            color_update_every: 1,
            ..TrainConfig::default()
        }
    }

    /// The Instant-3D operating point selected in §5.1 by grid search:
    /// `S_D : S_C = 1 : 0.25` and `F_D : F_C = 1 : 0.5`.
    pub fn instant3d() -> Self {
        TrainConfig::default()
    }

    /// A decoupled config with explicit size factors and update periods —
    /// the Tab. 1 / Tab. 2 sweep rows.
    pub fn decoupled(
        density_size_factor: f64,
        color_size_factor: f64,
        density_update_every: u32,
        color_update_every: u32,
    ) -> Self {
        TrainConfig {
            topology: GridTopology::Decoupled,
            density_size_factor,
            color_size_factor,
            density_update_every,
            color_update_every,
            ..TrainConfig::default()
        }
    }

    /// A very small configuration for unit tests and doc examples
    /// (sub-second training runs).
    pub fn fast_preview() -> Self {
        TrainConfig {
            grid: HashGridConfig {
                levels: 4,
                log2_table_size: 12,
                base_resolution: 8,
                max_resolution: 64,
                ..HashGridConfig::default()
            },
            rays_per_batch: 64,
            samples_per_ray: 24,
            sh_degree: 2,
            mlp_hidden_dim: 16,
            occupancy_resolution: 12,
            eval_samples_per_ray: 32,
            ..TrainConfig::default()
        }
    }

    /// Switches the base grid to the paper-scale Instant-NGP configuration
    /// (16 levels, `T = 2^19`) — used for workload modelling, not for
    /// laptop training runs.
    pub fn paper_scale(mut self) -> Self {
        self.grid = HashGridConfig::instant_ngp();
        self.rays_per_batch = 4096;
        self.samples_per_ray = 64;
        self
    }

    /// The density branch's grid configuration.
    pub fn density_grid_config(&self) -> HashGridConfig {
        self.grid.clone().with_size_factor(self.density_size_factor)
    }

    /// The color branch's grid configuration (only meaningful when
    /// decoupled).
    pub fn color_grid_config(&self) -> HashGridConfig {
        self.grid.clone().with_size_factor(self.color_size_factor)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.rays_per_batch == 0 {
            return Err("rays_per_batch must be positive".into());
        }
        if self.samples_per_ray == 0 {
            return Err("samples_per_ray must be positive".into());
        }
        if !(1..=4).contains(&self.sh_degree) {
            return Err(format!("sh_degree {} outside 1..=4", self.sh_degree));
        }
        if self.density_update_every == 0 || self.color_update_every == 0 {
            return Err("update periods must be >= 1".into());
        }
        if self.density_size_factor <= 0.0 || self.color_size_factor <= 0.0 {
            return Err("size factors must be positive".into());
        }
        if self.mlp_hidden_dim == 0 {
            return Err("mlp_hidden_dim must be positive".into());
        }
        if self.lr_decay_factor <= 0.0 || self.lr_decay_factor > 1.0 {
            return Err("lr_decay_factor must be in (0, 1]".into());
        }
        if self.lr_decay_every == 0 {
            return Err("lr_decay_every must be >= 1".into());
        }
        if self.occupancy_resolution > 0 && self.occupancy_update_every == 0 {
            return Err("occupancy_update_every must be >= 1".into());
        }
        if self.occupancy_subset == 0 {
            return Err("occupancy_subset must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            TrainConfig::default(),
            TrainConfig::instant_ngp(),
            TrainConfig::instant3d(),
            TrainConfig::fast_preview(),
            TrainConfig::decoupled(0.25, 1.0, 1, 1),
            TrainConfig::instant3d().paper_scale(),
        ] {
            assert_eq!(cfg.validate(), Ok(()));
        }
    }

    #[test]
    fn instant3d_operating_point_matches_paper() {
        let cfg = TrainConfig::instant3d();
        assert_eq!(cfg.topology, GridTopology::Decoupled);
        assert_eq!(cfg.density_size_factor, 1.0);
        assert_eq!(cfg.color_size_factor, 0.25);
        assert_eq!(cfg.density_update_every, 1);
        assert_eq!(cfg.color_update_every, 2);
    }

    #[test]
    fn ngp_baseline_is_coupled_uniform() {
        let cfg = TrainConfig::instant_ngp();
        assert_eq!(cfg.topology, GridTopology::Coupled);
        assert_eq!(cfg.color_size_factor, 1.0);
        assert_eq!(cfg.color_update_every, 1);
    }

    #[test]
    fn branch_grid_configs_apply_size_factors() {
        let cfg = TrainConfig::instant3d();
        let d = cfg.density_grid_config();
        let c = cfg.color_grid_config();
        assert_eq!(d.log2_table_size, cfg.grid.log2_table_size);
        assert_eq!(c.log2_table_size, cfg.grid.log2_table_size - 2);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = TrainConfig::fast_preview();
        cfg.rays_per_batch = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = TrainConfig::fast_preview();
        cfg.sh_degree = 9;
        assert!(cfg.validate().is_err());

        let mut cfg = TrainConfig::fast_preview();
        cfg.color_update_every = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = TrainConfig::fast_preview();
        cfg.occupancy_subset = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = TrainConfig::fast_preview();
        cfg.occupancy_update_every = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn paper_scale_uses_ngp_tables() {
        let cfg = TrainConfig::instant3d().paper_scale();
        assert_eq!(cfg.grid.levels, 16);
        assert_eq!(cfg.grid.log2_table_size, 19);
        assert_eq!(cfg.rays_per_batch, 4096);
    }
}
