//! Microbenchmarks of the volume-rendering compositor (Step ④/⑥) and the
//! small MLP heads (Step ③-②) — including the backend-stamped batched
//! GEMV and compositing arms the two-tier registry's perf target is
//! measured on (`{bench}/{backend}/t{N}` IDs, fast vs simd).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_nerf::activation::Activation;
use instant3d_nerf::kernels;
use instant3d_nerf::math::Vec3;
use instant3d_nerf::mlp::{Mlp, MlpConfig};
use instant3d_nerf::render::{
    composite, composite_backward, composite_slices_with, RaySample, RenderCache,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn samples(n: usize) -> Vec<RaySample> {
    let dt = 1.0 / n as f32;
    (0..n)
        .map(|i| RaySample {
            t: (i as f32 + 0.5) * dt,
            dt,
            sigma: 0.5 + (i % 7) as f32,
            rgb: Vec3::new(0.3, 0.5, 0.7),
        })
        .collect()
}

fn bench_composite(c: &mut Criterion) {
    let s = samples(64);
    c.bench_function("render/composite_64_samples", |b| {
        b.iter(|| black_box(composite(&s, Vec3::ONE, None)))
    });
    let mut cache = RenderCache::default();
    let out = composite(&s, Vec3::ONE, Some(&mut cache));
    c.bench_function("render/backward_64_samples", |b| {
        b.iter(|| black_box(composite_backward(&s, Vec3::ONE, &cache, &out, Vec3::ONE)))
    });
}

fn bench_mlp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    // The paper's color head: 32 inputs -> 64 hidden -> 3 RGB.
    let mlp = Mlp::new(
        MlpConfig::new(32, &[64], 3, Activation::Relu, Activation::Sigmoid),
        &mut rng,
    );
    let x: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut ws = mlp.workspace();
    c.bench_function("mlp/color_head_forward", |b| {
        b.iter(|| black_box(mlp.forward(&x, &mut ws)[0]))
    });
    let mut grads = mlp.zero_grads();
    let mut d_in = vec![0.0f32; 32];
    c.bench_function("mlp/color_head_backward", |b| {
        b.iter(|| {
            mlp.forward(&x, &mut ws);
            mlp.backward(&[1.0, -0.5, 0.25], &mut ws, &mut grads, &mut d_in);
            black_box(d_in[0])
        })
    });
}

/// The batched GEMV hot path, once per registered backend: this is the
/// mlp-dominated arm the fast backend's ≥1.2x-over-simd target is
/// checked against (criterion min over the `{bench}/{backend}/t{N}` IDs).
fn bench_mlp_batched(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    // Density-head shape at a training-sized batch: 32 -> 64 -> 16.
    let mlp = Mlp::new(
        MlpConfig::new(32, &[64], 16, Activation::Relu, Activation::None),
        &mut rng,
    );
    let n = 1024;
    let inputs: Vec<f32> = (0..n * 32).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let d_out: Vec<f32> = (0..n * 16).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let t = rayon::current_num_threads();
    for backend in kernels::registered() {
        let mut ws = mlp.batch_workspace(n);
        c.bench_function(&format!("mlp/batched_forward1024/{backend}/t{t}"), |b| {
            b.iter(|| black_box(mlp.forward_batch_with(&backend, &inputs, &mut ws)[0]))
        });
        let mut grads = mlp.zero_grads();
        let mut d_in = vec![0.0f32; n * 32];
        c.bench_function(&format!("mlp/batched_backward1024/{backend}/t{t}"), |b| {
            b.iter(|| {
                mlp.forward_batch_with(&backend, &inputs, &mut ws);
                mlp.backward_batch_with(&backend, &d_out, &mut ws, &mut grads, &mut d_in);
                black_box(d_in[0])
            })
        });
    }
}

/// SoA compositing through the backend dispatch, once per registered
/// backend (the batched engine's per-ray path).
fn bench_composite_backends(c: &mut Criterion) {
    let s = samples(64);
    let n = s.len();
    let t: Vec<f32> = s.iter().map(|x| x.t).collect();
    let dt: Vec<f32> = s.iter().map(|x| x.dt).collect();
    let sigma: Vec<f32> = s.iter().map(|x| x.sigma).collect();
    let rgb: Vec<Vec3> = s.iter().map(|x| x.rgb).collect();
    let threads = rayon::current_num_threads();
    for backend in kernels::registered() {
        let mut cw = vec![0.0f32; n];
        let mut ct = vec![0.0f32; n];
        let mut co = vec![0.0f32; n];
        c.bench_function(
            &format!("render/composite_slices64/{backend}/t{threads}"),
            |b| {
                b.iter(|| {
                    black_box(composite_slices_with(
                        &backend,
                        &t,
                        &dt,
                        &sigma,
                        &rgb,
                        Vec3::ONE,
                        Some((&mut cw, &mut ct, &mut co)),
                    ))
                })
            },
        );
    }
}

criterion_group!(
    benches,
    bench_composite,
    bench_mlp,
    bench_mlp_batched,
    bench_composite_backends
);
criterion_main!(benches);
