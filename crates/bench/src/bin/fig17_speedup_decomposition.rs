//! Regenerates the paper's Fig. 17fig17 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig17::run(instant3d_bench::quick_requested());
}
