//! §6 — related-work comparison: prior NeRF accelerators are
//! inference-only; Instant-3D is the first training accelerator and still
//! wins the rendering comparison.

use crate::table::Table;
use instant3d_accel::related;

/// Prints the §6 comparison table.
pub fn run(_quick: bool) {
    crate::banner(
        "§6",
        "Related work: NeRF accelerators (training support + rendering efficiency)",
    );
    let mut t = Table::new(&[
        "design",
        "venue",
        "trains?",
        "renders?",
        "area (mm^2)",
        "energy/frame (vs RT-NeRF)",
        "render speed (vs ICARUS)",
    ]);
    for d in related::all() {
        t.row_owned(vec![
            d.name.to_string(),
            d.venue.to_string(),
            if d.supports_training { "yes" } else { "no" }.to_string(),
            if d.supports_inference { "yes" } else { "no" }.to_string(),
            format!("{:.1}", d.area_mm2),
            format!("{:.3}", d.relative_energy_per_frame),
            format!("{:.0}x", d.relative_render_speed),
        ]);
    }
    t.print();
    println!(
        "\nPaper §6: Instant-3D is the first accelerator for NeRF *training*; on\n\
         the rendering side it achieves real-time (>30 FPS) at 19.5% of RT-NeRF's\n\
         energy/frame and 36% of its area, and 1,800x ICARUS's speed. Prior\n\
         CNN/MLP training accelerators don't support grid interpolation at all."
    );
}
