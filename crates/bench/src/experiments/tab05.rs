//! Tab. 5 — the co-design ablation: normalized runtime of
//! (algorithm × hardware) combinations on the three datasets.

use crate::table::Table;
use crate::workloads::paper_workload;
use instant3d_accel::{Accelerator, FeatureSet};
use instant3d_core::TrainConfig;
use instant3d_devices::{perf::ITERS_TO_PSNR26, DeviceModel};

/// Prints normalized runtimes for Instant-NGP@Xavier, Instant-3D-algo@Xavier
/// and Instant-3D-algo@Instant-3D-accelerator.
pub fn run(_quick: bool) {
    crate::banner(
        "Tab. 5",
        "Co-design ablation: normalized runtime (algorithm @ hardware)",
    );
    let xavier = DeviceModel::xavier_nx();
    let accel = Accelerator::default();
    // The three datasets differ by their per-iteration point scale
    // (measured in Tab. 4: SILVR ≈ 1.9×, ScanNet ≈ 1.2× the synthetic
    // point count — the paper's 135/84 vs 72 s ratios).
    let datasets = [
        ("NeRF-Synthetic*", 1.0),
        ("SILVR*", 1.875),
        ("ScanNet*", 1.17),
    ];
    let paper = [[100.0, 100.0, 100.0], [83.3, 82.2, 85.7], [2.3, 3.4, 3.2]];

    let mut t = Table::new(&[
        "NeRF training solution (algo @ hw)",
        "NeRF-Synthetic*",
        "SILVR*",
        "ScanNet*",
        "paper",
    ]);
    let ngp = TrainConfig::instant_ngp();
    let i3d = TrainConfig::instant3d();

    let scale = |cfg: &TrainConfig, f: f64| {
        let mut w = paper_workload(cfg, ITERS_TO_PSNR26);
        w.points_per_iter *= f;
        w.grid_reads_ff_per_iter *= f;
        w.grid_writes_bp_per_iter *= f;
        w.mlp_flops_per_iter *= f;
        w
    };

    let mut rows: Vec<Vec<f64>> = Vec::new();
    // Row 0: Instant-NGP @ Xavier NX (the 100 % reference per dataset).
    rows.push(
        datasets
            .iter()
            .map(|(_, f)| xavier.runtime(&scale(&ngp, *f)))
            .collect(),
    );
    // Row 1: Instant-3D algorithm @ Xavier NX.
    rows.push(
        datasets
            .iter()
            .map(|(_, f)| xavier.runtime(&scale(&i3d, *f)))
            .collect(),
    );
    // Row 2: Instant-3D algorithm @ Instant-3D accelerator.
    rows.push(
        datasets
            .iter()
            .map(|(_, f)| {
                accel
                    .simulate(&scale(&i3d, *f), FeatureSet::full())
                    .seconds_total
            })
            .collect(),
    );

    let labels = [
        "Instant-NGP @ Xavier NX",
        "Instant-3D algorithm @ Xavier NX",
        "Instant-3D algorithm @ Instant-3D accelerator",
    ];
    for (ri, label) in labels.iter().enumerate() {
        let mut cells = vec![label.to_string()];
        for (di, _) in datasets.iter().enumerate() {
            let norm = rows[ri][di] / rows[0][di] * 100.0;
            cells.push(format!("{norm:.1}%"));
        }
        cells.push(format!(
            "{:.1}% / {:.1}% / {:.1}%",
            paper[ri][0], paper[ri][1], paper[ri][2]
        ));
        t.row_owned(cells);
    }
    t.print();
    println!(
        "\n(*) procedural substrates. The co-design claim: the algorithm alone\n\
         trims ~17%, algorithm + accelerator reaches ~2-3% of the baseline."
    );
}
