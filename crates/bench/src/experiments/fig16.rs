//! Fig. 16 — normalized speedup and energy efficiency of the Instant-3D
//! accelerator over the three edge devices, per scene.
//!
//! Per-scene variation comes from each scene's *measured* workload: its
//! queried points per iteration (denser scenes keep more samples after
//! occupancy culling, amortising the accelerator's fixed host overhead
//! differently) and its measured iterations-to-25 dB.

use super::common::{run_on_dataset, synthetic_dataset, SceneRun};
use crate::table::Table;
use crate::workloads::paper_workload;
use instant3d_accel::{Accelerator, FeatureSet};
use instant3d_core::{PipelineWorkload, TrainConfig};
use instant3d_devices::DeviceModel;

fn scale_points(mut w: PipelineWorkload, factor: f64) -> PipelineWorkload {
    w.points_per_iter *= factor;
    w.grid_reads_ff_per_iter *= factor;
    w.grid_writes_bp_per_iter *= factor;
    w.mlp_flops_per_iter *= factor;
    w
}

/// Trains per scene to measure convergence + point load, then prints the
/// per-scene and average speedup/energy-efficiency of the accelerator.
pub fn run(quick: bool) {
    crate::banner(
        "Fig. 16",
        "Normalized speedup / energy efficiency vs Jetson Nano, TX2, Xavier NX",
    );
    let iters = crate::workloads::train_iters(quick);
    let eval_every = if quick { 20 } else { 50 };
    let scenes = crate::workloads::scene_indices(quick);
    let ngp = crate::workloads::bench_config(TrainConfig::instant_ngp(), quick);
    let devices = DeviceModel::all_baselines();
    let accel = Accelerator::default();

    // Pass 1: measure every scene.
    let runs: Vec<SceneRun> = scenes
        .iter()
        .map(|&i| {
            let ds = synthetic_dataset(i, quick, 900 + i as u64);
            run_on_dataset(&ngp, &ds, iters, eval_every, 1000 + i as u64)
        })
        .collect();
    let mean_points: f64 =
        runs.iter().map(|r| r.points_per_iter).sum::<f64>() / runs.len().max(1) as f64;

    // Pass 2: model each scene's workload at its measured scale.
    let mut t = Table::new(&[
        "scene",
        "iters(+25dB)",
        "rel. load",
        "vs Nano x",
        "vs TX2 x",
        "vs XavierNX x",
        "energy-eff vs Nano x",
        "vs TX2 x",
        "vs XavierNX x",
    ]);
    let mut sums = [0.0f64; 6];
    for run in &runs {
        let scene_iters = run.iters_to_25db.unwrap_or(run.iterations) as f64;
        let load = (run.points_per_iter / mean_points.max(1.0)).clamp(0.25, 4.0);
        let w_ngp = scale_points(
            paper_workload(&TrainConfig::instant_ngp(), scene_iters),
            load,
        );
        let w_i3d = scale_points(paper_workload(&TrainConfig::instant3d(), scene_iters), load);
        let acc = accel.simulate(&w_i3d, FeatureSet::full());
        let mut cells = vec![
            run.scene.clone(),
            format!("{scene_iters:.0}"),
            format!("{load:.2}"),
        ];
        for (k, d) in devices.iter().enumerate() {
            let s = d.runtime(&w_ngp) / acc.seconds_total;
            sums[k] += s;
            cells.push(format!("{s:.0}"));
        }
        for (k, d) in devices.iter().enumerate() {
            let e = d.energy(&w_ngp) / acc.energy_total_j;
            sums[3 + k] += e;
            cells.push(format!("{e:.0}"));
        }
        t.row_owned(cells);
    }
    let n = runs.len() as f64;
    t.row_owned(vec![
        "AVERAGE".into(),
        "-".into(),
        "-".into(),
        format!("{:.0}", sums[0] / n),
        format!("{:.0}", sums[1] / n),
        format!("{:.0}", sums[2] / n),
        format!("{:.0}", sums[3] / n),
        format!("{:.0}", sums[4] / n),
        format!("{:.0}", sums[5] / n),
    ]);
    t.print();
    println!(
        "\nPaper averages: speedups 224x / 132x / 45x and energy efficiency\n\
         1198x / 1089x / 479x over Nano / TX2 / Xavier NX. 'rel. load' is the\n\
         scene's measured points-per-iteration relative to the 8-scene mean."
    );
}
