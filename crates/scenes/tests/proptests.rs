//! Property-based tests of the procedural scene substrate.

use instant3d_nerf::field::RadianceField;
use instant3d_nerf::math::Vec3;
use instant3d_scenes::{primitives::Shape, AnalyticScene, Primitive};
use proptest::prelude::*;

fn unit_pos() -> impl Strategy<Value = Vec3> {
    (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn any_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        ((-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0), 0.05f32..0.8).prop_map(|((x, y, z), r)| {
            Shape::Sphere {
                center: Vec3::new(x, y, z),
                radius: r,
            }
        }),
        (
            (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
            (0.05f32..0.6, 0.05f32..0.6, 0.05f32..0.6)
        )
            .prop_map(|((x, y, z), (a, b, c))| Shape::Box {
                center: Vec3::new(x, y, z),
                half: Vec3::new(a, b, c),
            }),
        (
            (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
            0.2f32..0.6,
            0.05f32..0.15
        )
            .prop_map(|((x, y, z), major, minor)| Shape::Torus {
                center: Vec3::new(x, y, z),
                major,
                minor,
            }),
        (
            (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
            0.05f32..0.5,
            0.1f32..0.6
        )
            .prop_map(|((x, y, z), r, h)| Shape::Cylinder {
                center: Vec3::new(x, y, z),
                radius: r,
                half_height: h,
            }),
        ((-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0), 0.05f32..0.3).prop_map(|((x, y, z), s)| {
            Shape::Blob {
                center: Vec3::new(x, y, z),
                sigma: s,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn density_is_nonnegative_and_bounded_by_peak(shape in any_shape(), p in unit_pos(),
                                                  peak in 1.0f32..100.0) {
        let prim = Primitive::matte(shape, peak, Vec3::ONE);
        let d = prim.density_at(p);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= peak * 1.0001, "density {d} exceeds peak {peak}");
    }

    #[test]
    fn dense_points_lie_inside_bounds(shape in any_shape(), p in unit_pos()) {
        let prim = Primitive::matte(shape, 10.0, Vec3::ONE);
        if prim.density_at(p) > 0.0 {
            prop_assert!(prim.bounds().contains(p),
                "dense point {p} escapes bounds {}", prim.bounds());
        }
    }

    #[test]
    fn colors_stay_in_unit_range(shape in any_shape(), p in unit_pos(),
                                 gloss in 0.0f32..1.0,
                                 (dx, dy) in (-1.0f32..1.0, -1.0f32..1.0)) {
        let prim = Primitive::glossy(shape, 10.0, Vec3::new(0.9, 0.4, 0.2), gloss);
        let dir = Vec3::new(dx, dy, 0.5).normalized();
        let c = prim.color_at(p, dir);
        for k in 0..3 {
            prop_assert!((0.0..=1.0).contains(&c[k]), "channel {k} = {}", c[k]);
        }
    }

    #[test]
    fn signed_distance_sign_matches_density_support(shape in any_shape(), p in unit_pos()) {
        // Strictly inside (sd < 0) ⇒ full density; far outside
        // (sd > shell) ⇒ zero density (blobs use their own support rule).
        let prim = Primitive::matte(shape, 5.0, Vec3::ONE);
        if !matches!(shape, Shape::Blob { .. }) {
            let sd = shape.signed_distance(p);
            if sd < -1e-4 {
                prop_assert!((prim.density_at(p) - 5.0).abs() < 1e-4);
            }
            if sd > prim.shell + 1e-4 {
                prop_assert_eq!(prim.density_at(p), 0.0);
            }
        }
    }

    #[test]
    fn scene_query_color_is_convex_mix(p in unit_pos(), (dx, dz) in (-1.0f32..1.0, -1.0f32..1.0)) {
        // Composite color is a density-weighted average ⇒ bounded by the
        // per-primitive colors, which are bounded by [0,1].
        let scene = AnalyticScene::new(
            "prop",
            vec![
                Primitive::matte(
                    Shape::Sphere { center: Vec3::splat(0.3), radius: 0.25 },
                    8.0,
                    Vec3::new(1.0, 0.0, 0.0),
                ),
                Primitive::matte(
                    Shape::Sphere { center: Vec3::splat(0.6), radius: 0.25 },
                    8.0,
                    Vec3::new(0.0, 0.0, 1.0),
                ),
            ],
        );
        let dir = Vec3::new(dx, 0.3, dz).normalized();
        let (sigma, color) = scene.query(p, dir);
        prop_assert!(sigma >= 0.0);
        for k in 0..3 {
            prop_assert!((0.0..=1.0).contains(&color[k]));
        }
        if sigma == 0.0 {
            prop_assert_eq!(color, Vec3::ZERO);
        }
    }

    #[test]
    fn scene_density_is_sum_of_primitives(p in unit_pos()) {
        let prims = vec![
            Primitive::matte(
                Shape::Sphere { center: Vec3::splat(0.4), radius: 0.3 },
                3.0,
                Vec3::ONE,
            ),
            Primitive::matte(
                Shape::Box { center: Vec3::splat(0.5), half: Vec3::splat(0.2) },
                4.0,
                Vec3::ONE,
            ),
        ];
        let by_hand: f32 = prims.iter().map(|q| q.density_at(p)).sum();
        let scene = AnalyticScene::new("sum", prims);
        prop_assert!((scene.density(p) - by_hand).abs() < 1e-5);
    }
}
