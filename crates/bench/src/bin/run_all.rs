//! Runs every table/figure experiment in paper order.
//! Pass `--quick` (or set `INSTANT3D_QUICK=1`) for reduced budgets.
use instant3d_bench::experiments as ex;

fn main() {
    let quick = instant3d_bench::quick_requested();
    println!(
        "Instant-3D reproduction — full experiment suite ({} mode)",
        if quick { "quick" } else { "full" }
    );
    ex::fig04::run(quick);
    ex::fig05::run(quick);
    ex::tab01::run(quick);
    ex::tab02::run(quick);
    ex::fig07::run(quick);
    ex::fig08_09::run(quick);
    ex::fig10::run(quick);
    ex::tab03::run(quick);
    ex::fig15::run(quick);
    ex::fig16::run(quick);
    ex::fig17::run(quick);
    ex::fig18::run(quick);
    ex::ablation_depth::run(quick);
    ex::sec21_vanilla::run(quick);
    ex::sec51_grid_search::run(quick);
    ex::sec6_related::run(quick);
    ex::tab04::run(quick);
    ex::tab05::run(quick);
    println!("\nAll experiments complete. See EXPERIMENTS.md for paper-vs-measured notes.");
}
