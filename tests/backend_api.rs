//! Cross-crate tests of the open kernel-backend API's headline feature —
//! live FRM/BUM co-simulation from real `Trainer::step` runs — plus the
//! guard that keeps the CI test matrix in sync with the backend registry.

use instant3d::accel::{cosim_grid, CosimConfig};
use instant3d::core::{kernels, TrainConfig, Trainer};
use instant3d::nerf::kernels::{BackendHandle, InstrumentedKernels};
use instant3d::scenes::SceneLibrary;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn live_training_cosim_produces_frm_bum_numbers_without_trace_files() {
    // The acceptance claim end to end: a Trainer running on the
    // instrumented backend, two live steps recorded, FRM/BUM utilisation
    // computed online — no TraceCollector, no files, no synthetic streams.
    let backend = BackendHandle::new(InstrumentedKernels::new());
    let mut cfg = TrainConfig::fast_preview();
    cfg.kernel_backend = backend.clone();
    let mut rng = StdRng::seed_from_u64(2);
    let ds = SceneLibrary::synthetic_scene(0, 16, 4, &mut rng);
    let mut seed = StdRng::seed_from_u64(3);
    let mut trainer = Trainer::new(cfg, &ds, &mut seed);
    let mut step_rng = StdRng::seed_from_u64(4);
    for _ in 0..2 {
        trainer.step(&mut step_rng); // warm-up, recording off
    }

    let rec = backend.downcast_ref::<InstrumentedKernels>().unwrap();
    rec.start_recording();
    let recorded_points: u64 = (0..2)
        .map(|_| trainer.step(&mut step_rng).points as u64)
        .sum();
    rec.stop_recording();
    let streams = rec.take_streams();

    let density = trainer.model().density_grid();
    let report = cosim_grid(&streams, density, &CosimConfig::default());

    // The stream sizes are fully determined by the live workload: every
    // surviving sample reads 8 corners × L levels of the density grid
    // forward, and (density updates every iteration in fast_preview)
    // scatters the same count backward.
    let expected = recorded_points * 8 * density.levels().len() as u64;
    assert_eq!(report.reads, expected, "live FF read stream size");
    assert_eq!(report.updates, expected, "live BP update stream size");

    // And the microarchitectural measurements are real: all reads
    // serviced, utilisation in range, FRM no slower than baseline, BUM
    // conservation (every update merges or writes exactly once).
    assert_eq!(report.frm.reads, report.reads);
    assert!(report.frm.utilization > 0.0 && report.frm.utilization <= 1.0);
    assert!(report.baseline.utilization > 0.0 && report.baseline.utilization <= 1.0);
    assert!(report.frm.cycles <= report.baseline.cycles);
    assert_eq!(report.bum.merged + report.bum.sram_writes, report.updates);
    assert!(
        report.bum_merge_ratio() > 0.0,
        "trilinear corner sharing must produce some merges on a real stream"
    );

    // The color grid's stream was recorded too (decoupled topology) and
    // is kept separate by the shape tag.
    let color = trainer.model().color_grid().expect("decoupled preview");
    let color_report = cosim_grid(&streams, color, &CosimConfig::default());
    assert_eq!(
        color_report.reads,
        recorded_points * 8 * color.levels().len() as u64
    );
}

#[test]
fn instrumented_backend_not_recording_matches_simd_bitwise() {
    // The everyday cost of the co-sim backend: none. With recording off
    // it must train bit-identically to the SIMD backend.
    let run = |backend| {
        let mut cfg = TrainConfig::fast_preview();
        cfg.kernel_backend = backend;
        let mut rng = StdRng::seed_from_u64(12);
        let ds = SceneLibrary::synthetic_scene(1, 16, 4, &mut rng);
        let mut seed = StdRng::seed_from_u64(13);
        let mut trainer = Trainer::new(cfg, &ds, &mut seed);
        let mut step_rng = StdRng::seed_from_u64(14);
        (0..5)
            .map(|_| trainer.step(&mut step_rng).loss.to_bits())
            .collect::<Vec<u32>>()
    };
    assert_eq!(run(kernels::simd()), run(kernels::instrumented()));
}

#[test]
fn ci_matrix_backend_axis_is_derived_from_the_registry() {
    // The CI satellite's enforcement, two-tier edition: ci.yml carries
    // exactly two `backend: [...]` matrix axes — the bit-identity matrix
    // (all strict-tier backends) and the tolerance matrix (all lossy-tier
    // backends). Each axis must be tier-pure and must list its tier's
    // registered backends exactly, so registering a backend without a
    // matrix arm — or letting a lossy backend sneak into the bit-identity
    // matrix (or vice versa) — fails here instead of silently skipping
    // the golden or tolerance suites. (This binary registers no runtime
    // mocks, so the registry holds exactly the in-tree backends CI must
    // cover.)
    let ci = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/.github/workflows/ci.yml"
    ))
    .expect("CI workflow file");
    let axes: Vec<Vec<&str>> = ci
        .lines()
        .filter(|l| l.trim_start().starts_with("backend: ["))
        .map(|line| {
            let inside = line
                .split_once('[')
                .and_then(|(_, rest)| rest.split_once(']'))
                .map(|(inner, _)| inner)
                .expect("well-formed backend axis");
            let mut names: Vec<&str> = inside.split(',').map(str::trim).collect();
            names.sort_unstable();
            names
        })
        .collect();
    assert_eq!(
        axes.len(),
        2,
        "ci.yml must carry exactly two backend axes (strict + lossy)"
    );

    let sorted_names = |handles: Vec<instant3d::nerf::kernels::BackendHandle>| {
        let mut names: Vec<&str> = handles.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names
    };
    let strict = sorted_names(kernels::registered_strict());
    let lossy = sorted_names(kernels::registered_lossy());

    let mut seen_strict = false;
    let mut seen_lossy = false;
    for axis in &axes {
        // Tier purity first: a mixed axis is the exact drift this guard
        // exists to catch, so diagnose it before the exact-set check.
        let strict_members: Vec<&&str> = axis
            .iter()
            .filter(|n| kernels::resolve(n).tier().is_strict())
            .collect();
        assert!(
            strict_members.is_empty() || strict_members.len() == axis.len(),
            "mixed-tier CI backend axis {axis:?}: a lossy backend sneaked \
             into the bit-identity matrix, or a strict one into the \
             tolerance matrix"
        );
        if strict_members.len() == axis.len() {
            assert_eq!(
                *axis, strict,
                "CI bit-identity matrix must list exactly the strict-tier backends"
            );
            seen_strict = true;
        } else {
            assert_eq!(
                *axis, lossy,
                "CI tolerance matrix must list exactly the lossy-tier backends"
            );
            seen_lossy = true;
        }
    }
    assert!(seen_strict, "no strict-tier backend axis in ci.yml");
    assert!(seen_lossy, "no lossy-tier backend axis in ci.yml");

    // The race-detector backend is pinned by name on top of the
    // registry-derived set equality: dropping `checked` from the registry
    // (which would silently remove its CI arm *and* its golden-suite
    // coverage) must fail here, not just reshape the matrix.
    assert!(
        strict.contains(&"checked"),
        "the `checked` race-detector backend must stay registered at the \
         strict tier so the CI matrix and golden suites keep covering it"
    );
    assert!(
        axes.iter().any(|axis| axis.contains(&"checked")),
        "`checked` must keep a bit-identity matrix arm in ci.yml"
    );
}
