//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of proptest its test suites use: the [`proptest!`] macro,
//! range / tuple / `prop::collection::vec` / [`any`] strategies, the
//! `prop_map` / `prop_filter` combinators, [`prop_oneof!`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! case number and message only), and the per-test case count defaults to
//! 64 (override with `PROPTEST_CASES`). Sampling is deterministic per test
//! name and case index, so failures reproduce.

use rand::rngs::StdRng;
use rand::Rng;

/// RNG handed to strategies by the runner.
pub type TestRng = StdRng;

/// Body outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject,
}

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// Generates values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (resamples; panics after 1000 tries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive samples",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                let v: u64 = rng.gen();
                v as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

/// The [`any`] strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// Full-range strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size bounds accepted by [`vec`].
    pub trait SizeRange {
        /// Inclusive low bound and exclusive high bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.lo..self.hi);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of `element` samples with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(hi > lo, "empty size range");
        VecStrategy { element, lo, hi }
    }
}

/// Uniformly picks one of several same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from pre-boxed options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

pub mod test_runner {
    //! Drives the generated `#[test]` bodies.

    use super::{TestCaseError, TestRng};
    use rand::SeedableRng;

    fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, so each test gets its own deterministic stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Runs `body` over `PROPTEST_CASES` deterministic cases.
    pub fn run(name: &str, mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let total = cases();
        let seed = name_seed(name);
        let mut rejected = 0u64;
        for case in 0..total {
            let mut rng = TestRng::seed_from_u64(seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            match body(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > total * 8 {
                        panic!("{name}: too many rejected cases ({rejected})");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: case {case}/{total} failed: {msg}");
                }
            }
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__i3d_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __i3d_rng);)+
                    #[allow(unreachable_code)]
                    {
                        $body
                        Ok(())
                    }
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks among the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! The workspace's `use proptest::prelude::*` surface.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError,
    };

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection::vec`).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 0u32..10, f in -1.0f32..=1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map(v in (0.0f32..1.0, 0.0f32..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&v));
        }

        #[test]
        fn vec_lengths(s in prop::collection::vec(0u64..5, 2..9)) {
            prop_assert!(s.len() >= 2 && s.len() < 9);
            prop_assert!(s.iter().all(|&v| v < 5));
        }

        #[test]
        fn oneof_and_filter(v in prop_oneof![(0i32..5).prop_map(|v| v), (100i32..105).prop_map(|v| v)]) {
            prop_assert!(v < 5 || (100..105).contains(&v));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        crate::test_runner::run("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope".into()))
        });
    }
}
