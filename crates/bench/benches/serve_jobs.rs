//! Concurrency benchmarks for the multi-scene training service.
//!
//! One fixed fleet — four small mixed scene jobs, eight iterations each,
//! checkpointing mid-run — executed end-to-end (boot → slices → retire)
//! per bench iteration, swept over the scheduler's `concurrency` knob on
//! a pinned 4-worker pool. What this isolates is the *service* overhead:
//! queue contention, workspace checkout/park, checkpoint serialization
//! and region interleaving — the per-step kernels are identical across
//! arms (and bit-identical by the determinism contract, so every arm
//! does exactly the same numerical work).
//!
//! Bench IDs follow the repo convention `serve/<case>/t<workers>`; CI
//! exports the minimums to `BENCH_PR7.json` via `CRITERION_JSON`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_core::TrainConfig;
use instant3d_serve::{Fleet, FleetConfig, JobSpec, SceneSpec};

/// Four tiny jobs across all three scene substrates.
fn fleet_specs() -> Vec<JobSpec> {
    let cfg = TrainConfig::fast_preview();
    let scenes = [
        SceneSpec::Synthetic {
            index: 0,
            resolution: 10,
            train_views: 3,
        },
        SceneSpec::Synthetic {
            index: 1,
            resolution: 12,
            train_views: 3,
        },
        SceneSpec::Silvr {
            resolution: 10,
            train_views: 3,
        },
        SceneSpec::Scannet {
            resolution: 10,
            train_views: 3,
        },
    ];
    scenes
        .into_iter()
        .enumerate()
        .map(|(i, scene)| JobSpec {
            name: format!("job-{i}"),
            scene,
            config: cfg.clone(),
            seed: 7 + i as u64,
            iterations: 8,
            checkpoint_every: 4,
        })
        .collect()
}

fn bench_fleet_concurrency(c: &mut Criterion) {
    let specs = fleet_specs();
    for concurrency in [1, 2, 4] {
        let fleet = Fleet::new(FleetConfig {
            concurrency,
            slice_iters: 4,
            max_resident_checkpoints: 4,
            threads: Some(4),
            ..FleetConfig::default()
        });
        c.bench_function(&format!("serve/fleet_4x8_c{concurrency}/t4"), |b| {
            b.iter(|| black_box(fleet.run(&specs)).stats.total.iterations)
        });
    }
}

criterion_group!(benches, bench_fleet_concurrency);
criterion_main!(benches);
