//! Algorithm/hardware co-design walkthrough: capture a real training
//! trace, replay it through the FRM and BUM units cycle by cycle, and see
//! how the measured microarchitectural factors feed the full-accelerator
//! estimate.
//!
//! ```text
//! cargo run --release --example accelerator_codesign
//! ```

use instant3d::accel::{
    simulate_baseline_reads, simulate_bum, simulate_frm, Accelerator, BumConfig, FeatureSet,
};
use instant3d::core::{PipelineWorkload, TrainConfig, Trainer};
use instant3d::nerf::grid::{AccessPhase, GridBranch};
use instant3d::scenes::SceneLibrary;
use instant3d::trace::TraceCollector;
use rand::SeedableRng;

fn main() {
    // 1. Train briefly and capture the grid-access trace of two iterations.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dataset = SceneLibrary::synthetic_scene(0, 32, 10, &mut rng);
    let mut trainer = Trainer::new(TrainConfig::instant3d(), &dataset, &mut rng);
    for _ in 0..20 {
        trainer.step(&mut rng);
    }
    let mut collector = TraceCollector::new(2_000_000);
    for it in 20..22 {
        collector.begin_iteration(it);
        trainer.step_observed(&mut rng, &mut collector);
    }
    let trace = collector.into_trace();
    println!(
        "captured {} grid accesses over 2 training iterations",
        trace.len()
    );

    // 2. Feed-forward reads through the FRM (8 banks, 16-deep window).
    let offsets: Vec<u32> = trainer
        .model()
        .density_grid()
        .levels()
        .iter()
        .map(|l| l.entry_offset)
        .collect();
    let ff: Vec<u32> = trace
        .records
        .iter()
        .filter(|r| r.phase == AccessPhase::FeedForward && r.branch == GridBranch::Density)
        .map(|r| offsets[r.level as usize] + r.addr)
        .collect();
    let baseline = simulate_baseline_reads(&ff, 8, 8);
    let frm = simulate_frm(&ff, 8, 16);
    println!(
        "\nFRM on {} density reads:\n  baseline: {} cycles ({:.0}% bank utilisation)\n  \
         with FRM: {} cycles ({:.0}% utilisation) -> {:.2}x fewer read cycles",
        ff.len(),
        baseline.cycles,
        baseline.utilization * 100.0,
        frm.cycles,
        frm.utilization * 100.0,
        baseline.cycles as f64 / frm.cycles as f64
    );

    // 3. Back-propagation updates through the BUM (16 entries).
    let bp = trace.bp_stream_level_major();
    let bum = simulate_bum(&bp, BumConfig::default());
    println!(
        "\nBUM on {} gradient updates:\n  merged {:.0}% of updates; SRAM writes cut to {:.0}%",
        bum.updates,
        bum.merge_ratio() * 100.0,
        bum.write_ratio() * 100.0
    );

    // 4. Full-accelerator estimate with the measured factors.
    let accel = Accelerator {
        frm_utilization: frm.utilization,
        baseline_utilization: baseline.utilization,
        bum_write_ratio: bum.write_ratio(),
        ..Accelerator::default()
    };
    let w = PipelineWorkload::paper_scale_instant3d(256.0);
    let full = accel.simulate(&w, FeatureSet::full());
    let naive = accel.simulate(&w, FeatureSet::none());
    println!(
        "\npaper-scale estimate (256 iterations to PSNR 25):\n  \
         naive accelerator : {:.2} s\n  \
         full Instant-3D   : {:.2} s at {:.2} W ({:.0}x faster, bottleneck: {})",
        naive.seconds_total,
        full.seconds_total,
        full.avg_power_w,
        naive.seconds_total / full.seconds_total,
        full.bottleneck()
    );
}
