//! Multi-scene training service: many concurrent scene-training jobs over
//! the one shared work-stealing pool.
//!
//! The paper's target is an on-device capture service — reconstructions
//! requested faster than they finish, on fixed silicon — so the serving
//! layer's problem is *multiplexing*: N scene jobs of wildly different
//! sizes must share one thread pool, one set of scratch allocations and
//! one checkpoint cache without a big scene starving small ones and
//! without the co-scheduling changing anybody's training results.
//!
//! # Job lifecycle
//!
//! A [`JobSpec`](job::JobSpec) describes a scene, a [`TrainConfig`], a
//! seed and an iteration/checkpoint budget. The [`Fleet`](fleet::Fleet)
//! scheduler drives each spec through:
//!
//! 1. **Queued** — the spec sits in the fleet's round-robin queue.
//! 2. **Booted** — a runner pops it, builds the dataset + [`Trainer`]
//!    from the job's own seeded RNG, and adopts a recycled
//!    `OccupancyWorkspace` from the reuse pool when one is parked there.
//! 3. **Training slices** — the job trains `slice_iters` iterations at a
//!    time. For each slice the runner checks a [`BatchWorkspace`] out of
//!    the shape-keyed pool (allocating only on pool miss — warmup), and
//!    parks it back afterwards so the next job on any runner reuses it.
//!    Each training step is itself a lazily-split parallel region on the
//!    shared pool; the scheduler's periodic injector poll (see
//!    `vendor/rayon`) keeps co-scheduled regions interleaving fairly.
//! 4. **Checkpointed** — every `checkpoint_every` iterations the job's
//!    model is serialized through `core::checkpoint` into the fleet's
//!    LRU [`CheckpointStore`](store::CheckpointStore); idle entries are
//!    evicted when the cap is exceeded.
//! 5. **Retired** — at the iteration budget the final checkpoint is
//!    written, both workspaces return to the pool (the occupancy one is
//!    [`reset`](instant3d_nerf::occupancy::OccupancyWorkspace::reset)
//!    because it carries training state), and the job's [`WorkloadStats`]
//!    fold into the fleet telemetry, grouped by kernel backend/tier.
//!
//! # Determinism contract
//!
//! A job's results depend on its spec (scene + config + seed + iteration
//! budget) and nothing else: **the final checkpoint of a job trained in
//! a fleet is bit-identical to the same spec trained alone**
//! ([`job::train_solo`]) at the same kernel backend, for every worker
//! count and any co-scheduled job mix. This holds because
//!
//! * every job owns its RNG (seeded from the spec) — scheduling order
//!   never touches anyone's random stream;
//! * the batched engine is bit-identical across worker counts and its
//!   [`BatchWorkspace`] carries no cross-iteration state, so pooled
//!   reuse cannot leak one job into another;
//! * the `OccupancyWorkspace` *does* carry state (density EMA, subset
//!   phase, embedding cache), so it stays attached for a job's whole
//!   life and is reset before recycling.
//!
//! The contract is pinned by the golden test in
//! `tests/fleet_determinism.rs`.
//!
//! [`TrainConfig`]: instant3d_core::TrainConfig
//! [`Trainer`]: instant3d_core::Trainer
//! [`BatchWorkspace`]: instant3d_core::BatchWorkspace
//! [`WorkloadStats`]: instant3d_core::WorkloadStats

pub mod fleet;
pub mod job;
pub mod pool;
pub mod store;

pub use fleet::{Fleet, FleetConfig, FleetReport, FleetStats, JobReport};
pub use job::{train_solo, JobSpec, SceneSpec};
pub use pool::WorkspacePool;
pub use store::CheckpointStore;
