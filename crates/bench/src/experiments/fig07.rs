//! Fig. 7 — runtime breakdown of the Instant-3D *algorithm* on Xavier NX:
//! the algorithm alone accelerates Instant-NGP by ~17 %, but Step ③-①
//! still dominates (~80 %), motivating the dedicated accelerator.

use instant3d_core::TrainConfig;
use instant3d_devices::{breakdown::StepBreakdown, perf::ITERS_TO_PSNR26, DeviceModel};

/// Prints the Xavier-NX breakdown under the Instant-3D algorithm and the
/// algorithm-only speedup.
pub fn run(_quick: bool) {
    crate::banner(
        "Fig. 7",
        "Instant-3D algorithm runtime breakdown on Xavier NX (still grid-bound)",
    );
    let xavier = DeviceModel::xavier_nx();
    let ngp = crate::workloads::paper_workload(&TrainConfig::instant_ngp(), ITERS_TO_PSNR26);
    let i3d = crate::workloads::paper_workload(&TrainConfig::instant3d(), ITERS_TO_PSNR26);
    let b = StepBreakdown::compute(&xavier, &i3d);
    println!("{}", b.to_ascii(40));
    let t_ngp = xavier.runtime(&ngp);
    let t_i3d = xavier.runtime(&i3d);
    println!(
        "Instant-NGP on Xavier NX : {t_ngp:.1} s\n\
         Instant-3D algo on Xavier: {t_i3d:.1} s  ({:.1}% faster; paper: 17.0% average)\n\
         grid-interpolation share : {:.1}% (paper: ~80%)",
        (1.0 - t_i3d / t_ngp) * 100.0,
        b.grid_interpolation_fraction() * 100.0
    );
}
