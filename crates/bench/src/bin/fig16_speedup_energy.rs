//! Regenerates the paper's Fig. 16fig16 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig16::run(instant3d_bench::quick_requested());
}
