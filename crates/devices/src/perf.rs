//! Roofline-style per-step runtime model for the edge-GPU baselines.
//!
//! Each device is characterised by per-primitive throughputs plus a cache
//! model for the hash-table gathers. For the Xavier NX they are calibrated
//! against the paper's measurements; Nano and TX2 are scaled versions
//! (see [`DeviceModel::jetson_nano`] / [`DeviceModel::jetson_tx2`]).
//!
//! Calibration anchors (all from the paper):
//!
//! * Tab. 4 — Instant-NGP on Xavier NX: **72 s** per NeRF-Synthetic scene.
//! * Fig. 4 — Step ③-① (grid interpolation, fwd + bwd) ≈ **80 %** of the
//!   runtime on every device.
//! * Tab. 1 — shrinking a grid speeds training even though a decomposed
//!   model performs *more* reads ⇒ gather cost must depend on table
//!   residency in the GPU cache (the `cache_bytes`/`miss_penalty` model).
//! * Fig. 16 — Instant-3D accelerator speedups of 224× / 132× / 45× over
//!   Nano / TX2 / Xavier NX ⇒ Nano ≈ 0.20× and TX2 ≈ 0.34× of Xavier NX
//!   throughput.
//! * Reference iteration count: [`ITERS_TO_PSNR26`] = 400 (see
//!   EXPERIMENTS.md).

use crate::spec::{self, DeviceSpec};
use instant3d_core::{PipelineStep, PipelineWorkload};

/// Iterations of the paper-scale workload to reach ≈ 26 dB PSNR (Tab. 4's
/// quality level).
pub const ITERS_TO_PSNR26: f64 = 400.0;

/// Iterations to reach ≈ 25 dB PSNR (the §1 "1.6 s / PSNR 25" headline).
pub const ITERS_TO_PSNR25: f64 = 256.0;

/// Random-access read-modify-write amplification for gradient scatters on
/// a GPU memory system (atomicAdd = read + write).
const BP_RMW_FACTOR: f64 = 2.0;

/// A calibrated device performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    spec: DeviceSpec,
    /// Cache-resident random 4-byte hash-table accesses per second (the
    /// Step ③-① bottleneck resource).
    pub random_access_rate: f64,
    /// Effective cache bytes available to hold hash tables during gathers.
    pub cache_bytes: f64,
    /// Cost multiplier for a cache-missing access relative to a hit.
    pub miss_penalty: f64,
    /// Sustained MLP FLOPS (fp16, including kernel overheads).
    pub flops_rate: f64,
    /// Compositing samples per second (Step ④).
    pub render_rate: f64,
    /// Host-side pixels/rays per second (Steps ①, ②, ⑤).
    pub host_rate: f64,
}

impl DeviceModel {
    /// Xavier NX, the calibration reference.
    ///
    /// `random_access_rate` = 1.33 G hit-accesses/s solves the Tab. 4
    /// anchor: with a 1 MB effective cache and 4× miss penalty, the 2 MB
    /// Instant-NGP table averages 2.5 hit-equivalents per access, and
    /// 400 iterations × (25.6 M FF + 51.2 M BP-RMW) × 2.5 must take ≈ 80 %
    /// of 72 s. The remaining rates split the other 20 % as Fig. 4 shows
    /// (MLP ≈ 12 %, render ≈ 4 %, host ≈ 4 %).
    pub fn xavier_nx() -> Self {
        DeviceModel {
            spec: spec::xavier_nx(),
            random_access_rate: 1.33e9,
            cache_bytes: 1.0e6,
            miss_penalty: 4.0,
            flops_rate: 333e9,
            render_rate: 27.8e6,
            host_rate: 1.14e6,
        }
    }

    /// Jetson TX2 ≈ 0.34× Xavier NX throughput (Fig. 16: 132× vs 45×
    /// accelerator speedup).
    pub fn jetson_tx2() -> Self {
        Self::scaled(spec::jetson_tx2(), 45.0 / 132.0)
    }

    /// Jetson Nano ≈ 0.20× Xavier NX throughput (Fig. 16: 224× vs 45×).
    pub fn jetson_nano() -> Self {
        Self::scaled(spec::jetson_nano(), 45.0 / 224.0)
    }

    fn scaled(spec: DeviceSpec, factor: f64) -> Self {
        let nx = Self::xavier_nx();
        DeviceModel {
            spec,
            random_access_rate: nx.random_access_rate * factor,
            cache_bytes: nx.cache_bytes,
            miss_penalty: nx.miss_penalty,
            flops_rate: nx.flops_rate * factor,
            render_rate: nx.render_rate * factor,
            host_rate: nx.host_rate * factor,
        }
    }

    /// All three baselines, slowest first.
    pub fn all_baselines() -> Vec<DeviceModel> {
        vec![Self::jetson_nano(), Self::jetson_tx2(), Self::xavier_nx()]
    }

    /// The device's spec sheet.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Average hit-equivalents per access for a table of `table_bytes`
    /// (1.0 when resident; `miss_penalty` when fully thrashing).
    pub fn access_cost_factor(&self, table_bytes: usize) -> f64 {
        if table_bytes == 0 {
            return 1.0;
        }
        let h = (self.cache_bytes / table_bytes as f64).min(1.0);
        h + (1.0 - h) * self.miss_penalty
    }

    /// Grid-access hit-equivalents per iteration (both branches, FF + BP).
    fn grid_equiv_accesses(&self, w: &PipelineWorkload) -> (f64, f64) {
        // Split aggregate counts into branches as in the workload builder.
        let per_grid_reads = w.points_per_iter * w.levels as f64 * 8.0;
        let (branches, _) = if w.color_table_bytes == 0 {
            (
                vec![(
                    w.density_table_bytes,
                    w.grid_reads_ff_per_iter,
                    w.grid_writes_bp_per_iter,
                )],
                (),
            )
        } else {
            let d_writes = per_grid_reads.min(w.grid_writes_bp_per_iter);
            (
                vec![
                    (w.density_table_bytes, per_grid_reads, d_writes),
                    (
                        w.color_table_bytes,
                        (w.grid_reads_ff_per_iter - per_grid_reads).max(0.0),
                        (w.grid_writes_bp_per_iter - d_writes).max(0.0),
                    ),
                ],
                (),
            )
        };
        let mut ff = 0.0;
        let mut bp = 0.0;
        for (bytes, reads, writes) in branches {
            let f = self.access_cost_factor(bytes);
            ff += reads * f;
            bp += writes * BP_RMW_FACTOR * f;
        }
        (ff, bp)
    }

    /// Seconds per iteration spent in each pipeline step.
    pub fn step_times(&self, w: &PipelineWorkload) -> Vec<(PipelineStep, f64)> {
        let mlp_total = w.mlp_flops_per_iter / self.flops_rate;
        let (ff_equiv, bp_equiv) = self.grid_equiv_accesses(w);
        vec![
            (PipelineStep::SamplePixels, w.rays_per_iter / self.host_rate),
            (PipelineStep::MapRays, w.rays_per_iter / self.host_rate),
            (
                PipelineStep::GridForward,
                ff_equiv / self.random_access_rate,
            ),
            (PipelineStep::MlpForward, mlp_total / 3.0),
            (
                PipelineStep::VolumeRender,
                w.points_per_iter / self.render_rate,
            ),
            (PipelineStep::ComputeLoss, w.rays_per_iter / self.host_rate),
            (
                PipelineStep::GridBackward,
                bp_equiv / self.random_access_rate,
            ),
            (PipelineStep::MlpBackward, mlp_total * 2.0 / 3.0),
        ]
    }

    /// Seconds per iteration (sum over steps — a GPU runs them serially).
    pub fn seconds_per_iter(&self, w: &PipelineWorkload) -> f64 {
        self.step_times(w).iter().map(|(_, t)| t).sum()
    }

    /// Total training runtime for the workload's iteration count.
    pub fn runtime(&self, w: &PipelineWorkload) -> f64 {
        self.seconds_per_iter(w) * w.iterations
    }

    /// Energy for the whole run at the device's typical power.
    pub fn energy(&self, w: &PipelineWorkload) -> f64 {
        self.runtime(w) * self.spec.typical_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ngp400() -> PipelineWorkload {
        PipelineWorkload::paper_scale_instant_ngp(ITERS_TO_PSNR26)
    }

    #[test]
    fn xavier_reproduces_tab4_anchor() {
        // Instant-NGP on Xavier NX: 72 s (Tab. 4). Calibration must land
        // within a few percent.
        let t = DeviceModel::xavier_nx().runtime(&ngp400());
        assert!(
            (t - 72.0).abs() < 8.0,
            "Xavier NX Instant-NGP runtime {t} s should be ≈ 72 s"
        );
    }

    #[test]
    fn grid_interpolation_dominates_like_fig4() {
        let m = DeviceModel::xavier_nx();
        let w = ngp400();
        let steps = m.step_times(&w);
        let total: f64 = steps.iter().map(|(_, t)| t).sum();
        let grid: f64 = steps
            .iter()
            .filter(|(s, _)| s.is_grid_interpolation())
            .map(|(_, t)| t)
            .sum();
        let frac = grid / total;
        assert!(
            (0.7..=0.9).contains(&frac),
            "grid fraction {frac} should be ≈ 0.8 (Fig. 4)"
        );
    }

    #[test]
    fn device_ordering_matches_power_classes() {
        let w = ngp400();
        let nano = DeviceModel::jetson_nano().runtime(&w);
        let tx2 = DeviceModel::jetson_tx2().runtime(&w);
        let nx = DeviceModel::xavier_nx().runtime(&w);
        assert!(nano > tx2, "Nano {nano} should be slower than TX2 {tx2}");
        assert!(tx2 > nx, "TX2 {tx2} should be slower than Xavier {nx}");
        // Fig. 16 ratios: Nano ≈ 5× and TX2 ≈ 2.9× Xavier's runtime.
        assert!((nano / nx - 224.0 / 45.0).abs() < 0.5);
        assert!((tx2 / nx - 132.0 / 45.0).abs() < 0.3);
    }

    #[test]
    fn instant3d_algorithm_is_faster_on_gpu_tab4() {
        // Tab. 4: 72 s → 60 s on Xavier NX (≈ 1.2×). Decomposition reads
        // two grids but both become cache-resident and the color BP
        // traffic halves — the net must be a speedup.
        let m = DeviceModel::xavier_nx();
        let ngp = m.runtime(&PipelineWorkload::paper_scale_instant_ngp(400.0));
        let i3d = m.runtime(&PipelineWorkload::paper_scale_instant3d(400.0));
        assert!(
            i3d < ngp,
            "Instant-3D algorithm {i3d} s should beat Instant-NGP {ngp} s on the same GPU"
        );
        let speedup = ngp / i3d;
        assert!(
            (1.05..=1.6).contains(&speedup),
            "algorithm speedup {speedup} should be modest on a GPU (paper: 1.2×)"
        );
    }

    #[test]
    fn cache_model_penalises_large_tables() {
        let m = DeviceModel::xavier_nx();
        assert_eq!(m.access_cost_factor(0), 1.0);
        assert_eq!(m.access_cost_factor(500_000), 1.0, "resident table");
        let f2mb = m.access_cost_factor(2 << 20);
        assert!(f2mb > 2.0 && f2mb < 4.0, "2 MB table factor {f2mb}");
        assert!(m.access_cost_factor(100 << 20) > 3.9, "thrashing table");
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = DeviceModel::jetson_tx2();
        let w = ngp400();
        assert!((m.energy(&w) - m.runtime(&w) * 15.0).abs() < 1e-9);
    }

    #[test]
    fn step_times_cover_all_steps() {
        let m = DeviceModel::xavier_nx();
        let steps = m.step_times(&ngp400());
        assert_eq!(steps.len(), PipelineStep::ALL.len());
        for (_, t) in &steps {
            assert!(*t > 0.0);
        }
    }

    #[test]
    fn all_baselines_ordering() {
        let b = DeviceModel::all_baselines();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].spec().name, "Jetson Nano");
        assert_eq!(b[2].spec().name, "Xavier NX");
    }
}
