//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the benchmarking surface it uses: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark auto-calibrates an inner iteration
//! count to ≈10 ms, then takes `CRITERION_SAMPLES` samples (default 12)
//! of that size and reports the minimum, median and mean time per
//! iteration. `CRITERION_QUICK=1` (or a `--quick` CLI flag) shrinks the
//! run for CI smoke tests. No plots, no statistics beyond the above.
//!
//! Machine-readable output: set `CRITERION_JSON=<path>` and every
//! completed benchmark merges its minimum time (seconds, f64) into the
//! flat JSON map at that path, keyed by the full benchmark ID (e.g.
//! `train/batched_rays1024/simd/t1`). The file is read-merge-rewritten
//! per benchmark, so several bench binaries can append to one file.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}

fn sample_count() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(if quick_mode() { 2 } else { 12 })
}

fn target_sample_time() -> Duration {
    if quick_mode() {
        Duration::from_millis(2)
    } else {
        Duration::from_millis(10)
    }
}

/// A name filter passed on the command line (`cargo bench -- <filter>`).
fn cli_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: cli_filter(),
        }
    }
}

/// Runs the closure under timing; handed to `bench_function` callbacks.
pub struct Bencher {
    /// Measured per-iteration times, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, auto-calibrating the per-sample iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the inner count until one sample is long enough.
        let target = target_sample_time();
        let mut n: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= target || n >= 1 << 24 {
                self.samples.push(dt.as_secs_f64() / n as f64);
                break;
            }
            n = if dt.is_zero() {
                n * 16
            } else {
                ((target.as_secs_f64() / dt.as_secs_f64()).ceil() as u64)
                    .clamp(2, 64)
                    .saturating_mul(n)
            };
        }
        for _ in 1..sample_count() {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / n as f64);
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:9.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:9.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:9.2} ms", secs * 1e3)
    } else {
        format!("{secs:9.2} s ")
    }
}

impl Criterion {
    /// Benchmarks `f` under `name`, printing min/median/mean per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return self;
        }
        let mut sorted = b.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<44} min {} | median {} | mean {}",
            format_time(min),
            format_time(median),
            format_time(mean)
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                if let Err(e) = merge_json_min(&path, name, min) {
                    eprintln!("CRITERION_JSON: failed to write {path}: {e}");
                }
            }
        }
        self
    }
}

/// Merges `id → min_seconds` into the flat JSON object at `path`,
/// preserving every other key (read-merge-rewrite; last write wins on a
/// repeated ID). The format is deliberately a flat string→number map so
/// it round-trips through the tiny hand-rolled parser below — the build
/// environment has no serde.
fn merge_json_min(path: &str, id: &str, min_secs: f64) -> std::io::Result<()> {
    let mut entries: Vec<(String, String)> = match std::fs::read_to_string(path) {
        Ok(text) => parse_flat_json(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let value = format!("{min_secs:e}");
    match entries.iter_mut().find(|(k, _)| k == id) {
        Some(slot) => slot.1 = value,
        None => entries.push((id.to_string(), value)),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {}{}\n",
            escape_json(k),
            v,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push('}');
    out.push('\n');
    std::fs::write(path, out)
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses the flat `{"key": number, ...}` maps written above. Tolerant
/// of whitespace; anything structurally unexpected is skipped rather
/// than erroring, so a corrupt file degrades to a fresh map.
fn parse_flat_json(text: &str) -> Vec<(String, String)> {
    let mut entries = Vec::new();
    let body = match text.split_once('{').and_then(|(_, r)| r.rsplit_once('}')) {
        Some((inner, _)) => inner,
        None => return entries,
    };
    let mut rest = body;
    while let Some(open) = rest.find('"') {
        let after_open = &rest[open + 1..];
        let Some(close) = find_unescaped_quote(after_open) else {
            break;
        };
        let key = after_open[..close]
            .replace("\\\"", "\"")
            .replace("\\\\", "\\");
        let after_key = &after_open[close + 1..];
        let Some((_, after_colon)) = after_key.split_once(':') else {
            break;
        };
        let value_end = after_colon.find(',').unwrap_or(after_colon.len());
        let value = after_colon[..value_end].trim();
        if !key.is_empty() && value.parse::<f64>().is_ok() {
            entries.push((key, value.to_string()));
        }
        rest = &after_colon[value_end..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    entries
}

fn find_unescaped_quote(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Declares a group function running each target benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn bench_function_runs() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion { filter: None };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn format_covers_scales() {
        assert!(format_time(5e-9).contains("ns"));
        assert!(format_time(5e-6).contains("µs"));
        assert!(format_time(5e-3).contains("ms"));
        assert!(format_time(5.0).contains("s"));
    }

    #[test]
    fn json_merge_accumulates_and_overwrites() {
        let path =
            std::env::temp_dir().join(format!("criterion_json_merge_{}.json", std::process::id()));
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        merge_json_min(path, "train/batched_rays1024/simd/t1", 1.5e-3).unwrap();
        merge_json_min(path, "grid/encode_batch1024/fast/t1", 2.0e-4).unwrap();
        // Re-running a bench overwrites its entry, keeps the other.
        merge_json_min(path, "train/batched_rays1024/simd/t1", 1.25e-3).unwrap();
        let entries = parse_flat_json(&std::fs::read_to_string(path).unwrap());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "train/batched_rays1024/simd/t1");
        assert_eq!(entries[0].1.parse::<f64>().unwrap(), 1.25e-3);
        assert_eq!(entries[1].0, "grid/encode_batch1024/fast/t1");
        assert_eq!(entries[1].1.parse::<f64>().unwrap(), 2.0e-4);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn flat_json_parser_survives_garbage() {
        assert!(parse_flat_json("").is_empty());
        assert!(parse_flat_json("not json at all").is_empty());
        assert!(parse_flat_json("{\"key\": \"string-not-number\"}").is_empty());
        let round = parse_flat_json("{ \"a/b\": 1e-3, \"c\": 2.5 }");
        assert_eq!(
            round,
            vec![
                ("a/b".to_string(), "1e-3".to_string()),
                ("c".to_string(), "2.5".to_string())
            ]
        );
    }
}
