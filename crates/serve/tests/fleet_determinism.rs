//! The serve layer's two load-bearing guarantees, pinned end-to-end:
//!
//! 1. **Determinism** — a job co-scheduled in a fleet produces a final
//!    checkpoint bit-identical to the same spec trained alone
//!    ([`train_solo`]) at the same seed/backend/worker count, regardless
//!    of concurrency, slice size, or which jobs ride along.
//! 2. **Zero steady-state workspace allocation** — after warmup, every
//!    slice runs on a pooled `BatchWorkspace`: mints are bounded by the
//!    runner count while recycles grow with the slice count, verified
//!    through the `WorkloadStats` counters the fleet aggregates.

use instant3d_core::TrainConfig;
use instant3d_serve::{train_solo, Fleet, FleetConfig, JobSpec, SceneSpec};

/// A mixed-size demo fleet: all three scene substrates, different
/// resolutions/view counts/budgets, one shared config (and thus one
/// workspace shape — the pooling steady state).
fn mixed_specs() -> Vec<JobSpec> {
    let cfg = TrainConfig::fast_preview();
    vec![
        JobSpec {
            name: "syn0".into(),
            scene: SceneSpec::Synthetic {
                index: 0,
                resolution: 12,
                train_views: 3,
            },
            config: cfg.clone(),
            seed: 11,
            iterations: 18,
            checkpoint_every: 5,
        },
        JobSpec {
            name: "syn1".into(),
            scene: SceneSpec::Synthetic {
                index: 1,
                resolution: 16,
                train_views: 4,
            },
            config: cfg.clone(),
            seed: 22,
            iterations: 10,
            checkpoint_every: 4,
        },
        JobSpec {
            name: "silvr-hall".into(),
            scene: SceneSpec::Silvr {
                resolution: 12,
                train_views: 3,
            },
            config: cfg.clone(),
            seed: 33,
            iterations: 6,
            checkpoint_every: 0,
        },
        JobSpec {
            name: "scannet-room".into(),
            scene: SceneSpec::Scannet {
                resolution: 12,
                train_views: 3,
            },
            config: cfg,
            seed: 44,
            iterations: 14,
            checkpoint_every: 6,
        },
    ]
}

#[test]
fn fleet_checkpoints_are_bit_identical_to_solo_training() {
    let specs = mixed_specs();
    let fleet = Fleet::new(FleetConfig {
        concurrency: 3,
        slice_iters: 4,
        max_resident_checkpoints: 2,
        threads: Some(4),
        ..FleetConfig::default()
    });
    let report = fleet.run(&specs);

    assert_eq!(report.jobs.len(), specs.len());
    for (job, spec) in report.jobs.iter().zip(&specs) {
        assert_eq!(job.name, spec.name, "reports keep submission order");
        assert_eq!(job.iterations, spec.iterations);
        assert!(job.final_loss.is_finite());
        let solo = train_solo(spec);
        assert_eq!(
            job.final_checkpoint, solo,
            "{}: fleet-trained checkpoint diverged from solo training",
            spec.name
        );
    }
}

#[test]
fn a_different_schedule_trains_the_same_bits() {
    // Same specs, radically different co-scheduling (single runner, odd
    // slice size, reversed submission order): the checkpoints must not
    // move. Together with the solo comparison above this pins schedule
    // independence from both sides.
    let mut specs = mixed_specs();
    specs.reverse();
    let report = Fleet::new(FleetConfig {
        concurrency: 1,
        slice_iters: 7,
        max_resident_checkpoints: 8,
        threads: Some(2),
        ..FleetConfig::default()
    })
    .run(&specs);
    for (job, spec) in report.jobs.iter().zip(&specs) {
        assert_eq!(job.final_checkpoint, train_solo(spec), "{}", spec.name);
    }
}

#[test]
fn workspaces_are_pooled_with_zero_steady_state_allocation() {
    let specs = mixed_specs();
    let runners = 3;
    let slice = 4;
    let report = Fleet::new(FleetConfig {
        concurrency: runners,
        slice_iters: slice,
        max_resident_checkpoints: 2,
        threads: Some(4),
        ..FleetConfig::default()
    })
    .run(&specs);
    let stats = &report.stats;

    // Every slice checks out exactly one batch workspace: a pool hit or
    // a (warmup) mint.
    let total_slices: u64 = specs.iter().map(|s| s.iterations.div_ceil(slice)).sum();
    assert_eq!(stats.batch_allocated + stats.batch_recycled, total_slices);
    // Warmup mints are bounded by the runner count; everything after
    // warmup is a recycle — the zero-steady-state-allocation property.
    assert!(
        stats.batch_allocated <= runners as u64,
        "batch mints {} exceed the {} concurrent runners",
        stats.batch_allocated,
        runners
    );
    assert!(
        stats.batch_recycled >= total_slices - runners as u64,
        "recycles {} too low for {} slices",
        stats.batch_recycled,
        total_slices
    );
    // Occupancy workspaces: at most one mint per job, never per slice.
    assert_eq!(stats.occ_allocated + stats.occ_recycled, specs.len() as u64);
    assert!(stats.occ_allocated <= specs.len() as u64);

    // The same facts surface through the aggregated WorkloadStats.
    assert_eq!(
        stats.total.workspaces_allocated,
        stats.batch_allocated + stats.occ_allocated
    );
    assert_eq!(
        stats.total.workspaces_recycled,
        stats.batch_recycled + stats.occ_recycled
    );
    // And the fleet totals aggregate every job's training counters.
    let iters: u64 = specs.iter().map(|s| s.iterations).sum();
    assert_eq!(stats.total.iterations, iters);
    assert_eq!(stats.jobs, specs.len());
    assert_eq!(
        stats.per_backend.iter().map(|g| g.iterations).sum::<u64>(),
        iters,
        "per-backend groups must partition the fleet"
    );

    // Checkpoint cadence + LRU: syn0 writes at 5/10/15 + final, syn1 at
    // 4/8 + final, silvr final only, scannet at 6/12 + final.
    assert_eq!(stats.checkpoints_written, 4 + 3 + 1 + 3);
    assert!(report.resident_checkpoints.len() <= 2);
    // Refreshing a resident entry evicts nothing, so the exact eviction
    // count depends on interleaving; but with 4 job names and capacity
    // 2, at least 2 names must have been evicted at some point.
    assert!(
        stats.checkpoints_evicted >= (specs.len() - 2) as u64,
        "evictions {} too low for 4 names in a 2-slot cache",
        stats.checkpoints_evicted
    );
}
