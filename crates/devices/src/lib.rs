//! Baseline commercial-device models for the Instant-3D evaluation.
//!
//! The paper profiles Instant-NGP training on three NVIDIA edge modules —
//! Jetson Nano (10 W), Jetson TX2 (15 W) and Xavier NX (20 W) — and uses
//! them as the hardware baselines for every runtime/energy comparison
//! (Figs. 4, 7, 16; Tabs. 3, 4, 5).
//!
//! We have none of that hardware, so [`perf::DeviceModel`] is an analytic
//! roofline substitution: per-primitive throughputs (random table
//! accesses/s, MLP FLOPS, host-side pixel/ray rates) are calibrated *once*
//! against the paper's published endpoints (72 s Instant-NGP training on
//! Xavier NX with the Fig. 4 ≈ 80 % grid-interpolation share; Fig. 16's
//! cross-device speedup ratios), and every other number — ablations,
//! breakdowns, dataset scaling — is then derived from workload operation
//! counts produced by our trainer. Each calibrated constant is documented
//! at its definition.

pub mod breakdown;
pub mod energy;
pub mod perf;
pub mod spec;

pub use breakdown::StepBreakdown;
pub use perf::DeviceModel;
pub use spec::DeviceSpec;
