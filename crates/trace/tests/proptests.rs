//! Property-based tests of the trace-analysis invariants.

use instant3d_nerf::grid::{AccessPhase, GridBranch};
use instant3d_trace::record::{AccessRecord, Trace};
use instant3d_trace::stats::{percentile, Histogram};
use instant3d_trace::window::{summarize, unique_per_window};
use proptest::prelude::*;

fn stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..256, 0..600)
}

proptest! {
    #[test]
    fn unique_counts_bounded_by_window(s in stream(), w in 1usize..64, stride in 1usize..64) {
        for c in unique_per_window(&s, w, stride) {
            prop_assert!(c >= 1 && c <= w);
        }
    }

    #[test]
    fn summary_mean_between_min_and_max(s in stream()) {
        let sum = summarize(&s, 32, 16);
        if sum.windows > 0 {
            prop_assert!(sum.mean_unique >= sum.min_unique as f64 - 1e-9);
            prop_assert!(sum.mean_unique <= sum.max_unique as f64 + 1e-9);
            prop_assert!(sum.mean_unique_fraction() <= 1.0);
        }
    }

    #[test]
    fn stride_equal_window_counts_each_element_once(s in stream()) {
        // Non-overlapping windows partition the prefix: total unique counts
        // can never exceed the stream length.
        let counts = unique_per_window(&s, 16, 16);
        let total: usize = counts.iter().sum();
        prop_assert!(total <= s.len());
    }

    #[test]
    fn histogram_total_equals_observations(values in prop::collection::vec(-100i64..100, 0..500)) {
        let mut h = Histogram::new(-20, 20, 41);
        h.extend(&values);
        prop_assert_eq!(h.total(), values.len() as u64);
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), values.len() as u64);
    }

    #[test]
    fn histogram_in_range_fraction_bounded(values in prop::collection::vec(-100i64..100, 1..500)) {
        let mut h = Histogram::new(-20, 20, 41);
        h.extend(&values);
        let f = h.in_range_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn percentile_respects_order(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let p10 = percentile(&values, 0.1).unwrap();
        let p90 = percentile(&values, 0.9).unwrap();
        prop_assert!(p10 <= p90);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p10 >= min && p90 <= max);
    }

    #[test]
    fn bp_level_major_is_a_permutation(addrs in prop::collection::vec((0u32..4, 0u32..1000), 0..200)) {
        let records: Vec<AccessRecord> = addrs
            .iter()
            .enumerate()
            .map(|(i, &(level, addr))| AccessRecord {
                seq: i as u64,
                iter: (i / 50) as u32,
                branch: GridBranch::Density,
                phase: AccessPhase::BackProp,
                level,
                corner: (i % 8) as u8,
                addr,
            })
            .collect();
        let t = Trace { records };
        let mut sorted_keys = t.bp_stream_level_major();
        let mut original: Vec<u64> = t.records.iter().map(|r| r.global_key()).collect();
        sorted_keys.sort_unstable();
        original.sort_unstable();
        prop_assert_eq!(sorted_keys, original, "reordering must not drop records");
    }
}
