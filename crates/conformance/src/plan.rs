//! The workspace's write-plan registry and the prover driver that turns
//! unproven plans into [`Violation`]s.
//!
//! Every parallel dispatch seam in the engine crates declares a
//! [`WritePlan`] next to the dispatch code (the declaration functions
//! live in the same modules as the `par_*` loops they describe, and the
//! `checked` backend asserts at runtime that recorded writes stay inside
//! the declared plan — see "Plan conformance" in
//! `crates/nerf/src/kernels/mod.rs`). This module gathers them all and
//! runs the symbolic prover ([`crate::prover`]) over each: a plan that
//! cannot be proved disjoint-and-covering **for all shapes** becomes a
//! `write-plan` violation anchored at the dispatch site's `file:line`.

use crate::Violation;
use instant3d_nerf::kernels::plan::WritePlan;

/// Every declared write plan in the workspace, one per
/// (dispatch site, output buffer) pair.
pub fn all_plans() -> Vec<WritePlan> {
    let mut plans = instant3d_nerf::kernels::plan::nerf_write_plans();
    plans.extend(instant3d_core::render::TileLayout::write_plans());
    plans
}

/// Proves every registered plan; returns `(plans checked, violations)`.
pub fn prove_all() -> (usize, Vec<Violation>) {
    let plans = all_plans();
    let checked = plans.len();
    let mut out = Vec::new();
    for plan in &plans {
        if let Err(message) = crate::prover::prove_plan(plan) {
            let (file, line) = split_site(plan.site);
            out.push(Violation {
                file,
                line,
                lint: "write-plan",
                message,
            });
        }
    }
    (checked, out)
}

/// Splits a `"path/to/file.rs:123 Type::fn"` site label into its
/// diagnostic anchor. Unparseable labels anchor at line 0 of the label.
fn split_site(site: &str) -> (String, u32) {
    let head = site.split_whitespace().next().unwrap_or(site);
    match head.rsplit_once(':') {
        Some((file, line)) => (file.to_string(), line.parse().unwrap_or(0)),
        None => (head.to_string(), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_labels_split_into_file_and_line() {
        assert_eq!(
            split_site("crates/nerf/src/grid.rs:310 HashGrid::par_encode_batch_with"),
            ("crates/nerf/src/grid.rs".to_string(), 310)
        );
        assert_eq!(split_site("weird"), ("weird".to_string(), 0));
    }

    #[test]
    fn the_registry_covers_every_dispatch_seam() {
        let plans = all_plans();
        // grid encode + encode-levels + scatter, MLP forward y/pre +
        // backward dz/gw/gb/d_next, composite cache, tile x/y partitions.
        assert!(
            plans.len() >= 12,
            "expected every dispatch seam registered, got {}",
            plans.len()
        );
        // Site labels are unique per (site, buffer) and parse to real
        // file anchors.
        let mut keys: Vec<(&str, &str)> = plans.iter().map(|p| (p.site, p.buffer)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), plans.len(), "duplicate (site, buffer) pair");
        for p in &plans {
            let (file, line) = split_site(p.site);
            assert!(file.ends_with(".rs"), "odd site label: {}", p.site);
            assert!(line > 0, "site label missing line: {}", p.site);
        }
    }
}
