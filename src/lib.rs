//! # Instant-3D
//!
//! A full-system Rust reproduction of **"Instant-3D: Instant Neural Radiance
//! Field Training Towards On-Device AR/VR 3D Reconstruction"** (ISCA 2023).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`nerf`] — the NeRF training substrate (hash grids, MLPs, volume
//!   rendering, optimizers).
//! * [`scenes`] — procedural dataset substrates standing in for
//!   NeRF-Synthetic, SILVR and ScanNet.
//! * [`core`] — the Instant-3D algorithm: decoupled color/density grids with
//!   asymmetric sizes (`S_D : S_C`) and update frequencies (`F_D : F_C`),
//!   plus the Instant-NGP baseline trainer.
//! * [`trace`] — memory-access trace capture and the paper's Fig. 8/9/10
//!   analyses.
//! * [`accel`] — the cycle-level accelerator simulator (FRM, BUM, multi-bank
//!   SRAM, core fusion, area/energy models).
//! * [`devices`] — Jetson Nano / TX2 / Xavier NX baseline device models.
//!
//! # Quickstart
//!
//! [`Trainer::step`](core::Trainer::step) runs the **batched SoA
//! execution engine**: every pipeline stage (grid interpolation, MLP
//! heads, volume rendering, backward) processes the whole ray batch over
//! structure-of-arrays buffers, with the grid and MLP stages parallelised
//! across the rayon pool. Results are bit-identical to the scalar
//! point-at-a-time reference path
//! ([`Trainer::step_scalar`](core::Trainer::step_scalar)) and independent
//! of the worker count.
//!
//! ```
//! use instant3d::core::{TrainConfig, Trainer};
//! use instant3d::scenes::SceneLibrary;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let dataset = SceneLibrary::synthetic_scene(0, 16, 4, &mut rng);
//! let cfg = TrainConfig::fast_preview();
//! let mut trainer = Trainer::new(cfg, &dataset, &mut rng);
//! // Batched engine — the default hot path.
//! let report = trainer.train_with_eval(5, 0, Some(&dataset), &mut rng);
//! assert!(report.final_psnr.is_finite());
//! ```
//!
//! The batched buffers themselves are exposed through
//! [`core::BatchWorkspace`] for callers that drive the engine stages
//! directly (custom sampling, offline rendering); the scalar path stays
//! available as the executable specification the batched engine is gated
//! against (golden tests assert identical losses, parameters, workload
//! counters and trace streams).
//!
//! # Benchmarks
//!
//! `cargo bench --bench train_iter` compares the scalar reference against
//! the batched engine (single-threaded and on the full pool) at 256 /
//! 1024 / 4096 rays per batch; `cargo bench --bench grid_interp` includes
//! the batched point-major, level-major and parallel grid kernels.

pub use instant3d_accel as accel;
pub use instant3d_core as core;
pub use instant3d_devices as devices;
pub use instant3d_nerf as nerf;
pub use instant3d_scenes as scenes;
pub use instant3d_serve as serve;
pub use instant3d_trace as trace;
