//! The two built-in numeric backends: the scalar reference kernels and
//! the lane-batched SIMD kernels.

use super::Kernels;
use crate::grid::HashGrid;
use crate::math::Vec3;
use crate::mlp::{GemvMode, Mlp, MlpBatchWorkspace, MlpGradients};
use crate::render::{composite_slices, composite_slices_simd, RenderOutput};
use std::any::Any;

/// The scalar reference backend (`"scalar"`): level-major scalar grid
/// kernels, the row-major scalar GEMV, scalar compositing. This is the
/// executable specification — every other backend's bits are pinned
/// against it by the differential suites.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernels;

impl Kernels for ScalarKernels {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn grid_encode_chunk(&self, grid: &HashGrid, unit_positions: &[Vec3], out: &mut [f32]) {
        grid.encode_batch_level_major(unit_positions, out);
    }

    fn grid_encode_levels_chunk(
        &self,
        grid: &HashGrid,
        levels: &[usize],
        unit_positions: &[Vec3],
        out: &mut [f32],
    ) {
        for &l in levels {
            grid.encode_level_scalar(l, unit_positions, out);
        }
    }

    fn grid_scatter_level(
        &self,
        grid: &HashGrid,
        level: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        grid.scatter_level_scalar(level, level_grads, unit_positions, d_out);
    }

    fn mlp_forward_batch<'w>(
        &self,
        mlp: &Mlp,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32] {
        mlp.forward_batch_impl(GemvMode::Scalar, inputs, ws)
    }

    fn mlp_backward_batch(
        &self,
        mlp: &Mlp,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        mlp.backward_batch_impl(GemvMode::Scalar, d_output, ws, grads, d_input);
    }

    fn composite_ray(
        &self,
        t: &[f32],
        dt: &[f32],
        sigma: &[f32],
        rgb: &[Vec3],
        background: Vec3,
        cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> (RenderOutput, usize) {
        composite_slices(t, dt, sigma, rgb, background, cache)
    }
}

/// The lane-batched SIMD backend (`"simd"`, the default): grid
/// encode/scatter with lane-batched corner weights and addresses, the
/// transposed-weight row GEMV, lane-batched `−σδ` compositing products.
/// Bit-identical to [`ScalarKernels`] by the additive-order / no-FMA
/// contract (see [`crate::simd`] and the [`super`] module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdKernels;

impl Kernels for SimdKernels {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn grid_encode_chunk(&self, grid: &HashGrid, unit_positions: &[Vec3], out: &mut [f32]) {
        grid.encode_batch_simd(unit_positions, out);
    }

    fn grid_encode_levels_chunk(
        &self,
        grid: &HashGrid,
        levels: &[usize],
        unit_positions: &[Vec3],
        out: &mut [f32],
    ) {
        for &l in levels {
            grid.encode_level_simd(l, unit_positions, out);
        }
    }

    fn grid_scatter_level(
        &self,
        grid: &HashGrid,
        level: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        grid.scatter_level_simd(level, level_grads, unit_positions, d_out);
    }

    fn mlp_forward_batch<'w>(
        &self,
        mlp: &Mlp,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32] {
        mlp.forward_batch_impl(GemvMode::Simd, inputs, ws)
    }

    fn mlp_backward_batch(
        &self,
        mlp: &Mlp,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        mlp.backward_batch_impl(GemvMode::Simd, d_output, ws, grads, d_input);
    }

    fn composite_ray(
        &self,
        t: &[f32],
        dt: &[f32],
        sigma: &[f32],
        rgb: &[Vec3],
        background: Vec3,
        cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> (RenderOutput, usize) {
        composite_slices_simd(t, dt, sigma, rgb, background, cache)
    }
}
