//! The open kernel-backend API: the [`Kernels`] trait, the process-wide
//! [`BackendRegistry`], and the built-in backends.
//!
//! The batched SoA engine dispatches every hot kernel — grid encode /
//! level-subset encode, per-level gradient scatter, the MLP batched
//! forward/backward, and per-ray compositing — through a [`Kernels`] trait
//! object instead of a closed enum. Five backends ship in-tree:
//!
//! * [`ScalarKernels`] (`"scalar"`) — the scalar reference kernels, the
//!   executable specification every other backend is tested against.
//! * [`SimdKernels`] (`"simd"`, the default) — lane-batched SIMD kernels
//!   built on the [`crate::simd`] lane types.
//! * [`InstrumentedKernels`] (`"instrumented"`) — a co-simulation backend
//!   that wraps the SIMD kernels and, when recording is switched on,
//!   captures the hash-grid read/update address streams of real training
//!   steps for the `instant3d-accel` FRM/BUM cycle simulators — online
//!   Fig. 12/13-style utilisation measurement with no trace files.
//! * [`FastKernels`] (`"fast"`) — the first **lossy-tier** backend: fused
//!   multiply-add kernels with runtime-detected AVX2/FMA specialisations,
//!   trading bit-identity for speed under a declared [`Tolerance`].
//! * [`CheckedKernels`] (`"checked"`) — the strict-tier dynamic race
//!   detector: wraps the SIMD kernels, shadow-records every disjoint-write
//!   task's byte range in a [`WriteLedger`] (panicking with both task
//!   identities on overlap) and re-derives every output through the scalar
//!   reference to pin the fixed accumulation order.
//!
//! New backends register at runtime through [`register`]; everything that
//! names a backend — `TrainConfig::kernel_backend`, the
//! `INSTANT3D_KERNEL_BACKEND` environment variable, bench IDs,
//! `WorkloadStats::backend` — resolves through this one registry.
//!
//! # The two-tier registration contract
//!
//! Registering a backend is a claim about its numerics, and the claim now
//! comes in two tiers, declared via [`Kernels::tier`]:
//!
//! ## `Tier::Strict` — the bit-identity contract
//!
//! **A strict backend claims it is bit-identical to [`ScalarKernels`]** on
//! every kernel, for every batch size and worker count. Concretely a
//! conforming strict backend must preserve:
//!
//! * **Additive order** — for each output scalar, the sequence of IEEE 754
//!   additions (per-corner embedding accumulation, per-parameter gradient
//!   accumulation in point order, the GEMV's `i`-ascending sum, the
//!   sequential transmittance recurrence) is exactly the scalar kernel's.
//!   Batching may only group *independent* scalars.
//! * **No FMA** — every multiply-add is a distinct IEEE multiply followed
//!   by a distinct IEEE add; a fused multiply-add rounds once instead of
//!   twice and silently breaks bit-equality.
//! * **Exact elementwise math** — no approximate reciprocals/rsqrt/vector
//!   exp; transcendentals stay scalar per element.
//!
//! `scalar`, `simd` and `instrumented` are strict and stay strict — the
//! whole trace/co-sim story depends on it.
//!
//! ## `Tier::Lossy(Tolerance)` — the tolerance contract
//!
//! A lossy backend is released from bit-identity (it may fuse
//! multiply-adds, re-round, use wider intermediates) but must **prove** it
//! stays inside the [`Tolerance`] it declares:
//!
//! * **Per-kernel bounds** — every kernel output, compared element-wise
//!   against the scalar reference, stays within the declared
//!   relative-error / normwise-error / ULP bounds
//!   ([`Tolerance::check_slices`]).
//! * **End-to-end quality floors** — a training run on the lossy backend
//!   must land within `max_psnr_drop_db` PSNR and `max_ssim_drop` SSIM of
//!   the scalar golden run, scored by `nerf::metrics` / `nerf::ssim`.
//!
//! What a lossy backend may **not** relax: determinism (same inputs →
//! same bits, run to run and across worker counts) and workload
//! accounting (`WorkloadStats` must agree with the strict path).
//!
//! Neither tier is on the honor system. The differential and golden
//! bit-identity suites (`crates/nerf/tests/simd_differential.rs`,
//! `crates/nerf/tests/occupancy_differential.rs`,
//! `crates/core/tests/batched_equivalence.rs`, `tests/batched_equivalence.rs`)
//! iterate [`registered_strict`] backends; the tolerance suites
//! (`crates/nerf/tests/tolerance_differential.rs`,
//! `crates/core/tests/tolerance_gate.rs`) iterate [`registered_lossy`]
//! backends — so a registered lossy backend cannot skip its quality gate,
//! and a lossy backend can never sneak into the bit-identity matrix
//! (`tests/backend_api.rs` pins the CI axes to the registry split).
//!
//! # Availability
//!
//! A backend whose fast paths need CPU features the host lacks still
//! *registers* (the registry is the single source of truth for names) but
//! reports [`Kernels::available`]` == false`; [`available_names`] filters
//! the list accordingly, and [`resolve`]'s unknown-name panic prints each
//! backend's tier and availability so a CI log tells the whole story.
//! [`FastKernels`] is always available — its AVX2/FMA paths are a runtime
//! specialisation over a portable `f32::mul_add` fallback with identical
//! results.
//!
//! # Selecting a backend
//!
//! ```
//! use instant3d_nerf::kernels;
//!
//! // By name, through the registry (panics on unknown names, listing the
//! // registered ones with tier and availability):
//! let simd = kernels::resolve("simd");
//! assert_eq!(simd.name(), "simd");
//! assert!(simd.tier().is_strict());
//! // The lossy tier declares its tolerance:
//! assert!(kernels::fast().tier().tolerance().is_some());
//! // The built-ins have direct accessors:
//! assert_eq!(kernels::scalar().name(), "scalar");
//! // And the environment override used by the CI matrix:
//! let backend = kernels::from_env_or_default();
//! assert!(kernels::names().contains(&backend.name()));
//! ```
//!
//! # Contract enforcement
//!
//! The tier contracts above are machine-checked on two levels; a new
//! backend opts in simply by registering, since both checkers key off the
//! registry's tier split.
//!
//! **Static level — the conformance linter** (`cargo run -p
//! instant3d-conformance`, also a `#[test]` in that crate) lexes the
//! workspace sources (comment/string aware) and enforces a small marker
//! grammar; all markers are line comments immediately above the item they
//! cover (attributes and further comment lines may sit between), except
//! where noted:
//!
//! * `// CONTRACT: lossy-tier` — required on any function in a strict
//!   kernel module (`grid.rs`, `mlp.rs`, `render.rs`, `simd.rs`,
//!   `kernels/builtin.rs`) that uses `mul_add`/`fadd_fast`/`fmul_fast`.
//!   Only the fused helpers backing a `Tier::Lossy` backend may carry it;
//!   an unmarked fused op in a strict module fails the lint, so FMA cannot
//!   silently leak into the bit-identity tier.
//! * `// SAFETY:` — required immediately before every `unsafe` block,
//!   `unsafe fn` and `unsafe impl` in `crates/` and `vendor/rayon/src/`
//!   (a `# Safety` doc section on the item also satisfies it).
//! * `// CALLER:` — required on every `#[target_feature]` function,
//!   naming the runtime-detection guard its callers must check.
//! * `// ORDERING:` — required on (or trailing) every line using
//!   `Ordering::Relaxed`; stronger orderings in `vendor/rayon/src/` are
//!   cross-checked against the sleep/latch protocol manifest in
//!   `crates/conformance/allowlists/atomics_protocol.txt`.
//! * Determinism: `HashMap`/`HashSet`/`thread_rng`/`Instant::now` are
//!   forbidden in the kernel/trainer/serving crates outside the telemetry
//!   allowlist (`crates/conformance/allowlists/determinism.txt`) — iteration
//!   order and wall-clock reads must never feed kernel numerics.
//! * `// PANICS:` — required on every `unwrap`/`expect`/`panic!` in the
//!   kernel and trainer hot-path modules (the strict kernel files plus
//!   `kernels/{checked,fast,instrumented,plan}.rs` and
//!   `core/{batch,trainer,render}.rs`), justifying why aborting is the
//!   contractually correct response. A hot-path panic without a stated
//!   contract behind it is a latent reliability bug.
//!
//! **Static level — the write-plan prover.** Every parallel dispatch seam
//! (grid encode chunks, per-level gradient scatter, the MLP forward /
//! backward sweeps, the per-ray compositing cache, the tile renderer)
//! declares a [`WritePlan`](plan::WritePlan): its per-task write
//! intervals as symbolic expressions of shape parameters (see the
//! [plan grammar](plan)). The conformance crate's prover
//! (`instant3d-conformance`, `src/prover.rs`) discharges, for **all**
//! in-bounds parameter values:
//!
//! * **pairwise disjointness** — task `t` ends at or before task `t+1`
//!   starts (tasks are declared in buffer order, so ordering ⇒
//!   disjointness), and
//! * **exact coverage** — the first task starts at 0, consecutive tasks
//!   leave no gap, the last task ends at `total`, and zero tasks implies
//!   an empty buffer,
//!
//! so the disjoint-write half of the strict contract holds for every
//! shape, not just the shapes the tests happened to run. Diagnostics are
//! `file:line`-style, carrying a concrete counterexample shape and the
//! two clashing task ranges.
//!
//! **Dynamic level — the `"checked"` backend** ([`CheckedKernels`])
//! executes the disjoint-write contract: every scatter / MLP-gradient-row
//! / compositing task's write range is recorded in the [`WriteLedger`]
//! and checked for pairwise overlap (panicking with both task
//! identities), and every kernel output is compared bit-for-bit against
//! the scalar reference, pinning the fixed per-output accumulation order.
//! It rides the CI strict backend × worker matrix
//! (`.github/workflows/ci.yml`), whose axis is derived from the registry
//! by `tests/backend_api.rs`, so neither a new strict backend nor the
//! checker itself can silently drop out.
//!
//! **Plan conformance** closes the loop between the two levels. When a
//! backend opts in via [`Kernels::plan_conformance`] (the `checked`
//! backend does), each dispatch site instantiates its `WritePlan` at the
//! concrete shape ([`plan::WritePlan::instantiate`] — which re-validates
//! the declared parameter bounds and cut-table axioms) and registers the
//! resulting task ranges with the ledger
//! ([`WriteLedger::expect_plan`]); the ledger then asserts every
//! dynamically recorded write range falls **inside one declared task
//! range** of the plan, panicking with the site, the writing task, and
//! the nearest declared range on drift. The statically proven plan and
//! the code it describes cannot silently diverge.

mod builtin;
mod checked;
mod fast;
mod instrumented;
pub mod plan;

pub use builtin::{ScalarKernels, SimdKernels};
pub use checked::{CheckedKernels, PlanGuard, WriteLedger};
pub use fast::FastKernels;
pub use instrumented::{InstrumentedKernels, RecordedStreams, StreamSegment};
pub use plan::{ConcretePlan, WritePlan};

use crate::grid::HashGrid;
use crate::math::Vec3;
use crate::mlp::{Mlp, MlpBatchWorkspace, MlpGradients};
use crate::render::RenderOutput;
use std::any::Any;
use std::sync::{Arc, OnceLock, RwLock};

/// The numeric error bounds a lossy backend declares and is held to.
///
/// The per-kernel element check ([`Tolerance::check_slices`]) accepts an
/// element when any of these holds against the scalar reference value `s`:
///
/// * the bits are equal,
/// * `|l − s| ≤ max_rel_error·|s| + max_norm_error·‖s‖∞` (a mixed
///   componentwise/normwise bound — the normwise term keeps catastrophic
///   cancellation near zero from demanding componentwise accuracy the
///   inputs never carried),
/// * `l` and `s` are within `max_ulps` representable values of each other.
///
/// The end-to-end floors (`max_psnr_drop_db`, `max_ssim_drop`) bound how
/// far a training run on the lossy backend may land below the scalar
/// golden run's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Componentwise relative error bound (vs the reference element).
    pub max_rel_error: f32,
    /// Normwise error bound, scaled by the reference slice's ∞-norm.
    pub max_norm_error: f32,
    /// Units-in-the-last-place escape hatch for well-scaled elements.
    pub max_ulps: u32,
    /// Max PSNR regression (dB) of a lossy training run vs the scalar
    /// golden run.
    pub max_psnr_drop_db: f32,
    /// Max SSIM regression of a lossy training run vs the scalar golden
    /// run.
    pub max_ssim_drop: f32,
}

/// Distance in representable `f32` steps between two finite floats of the
/// same sign class (the usual monotonic total-order bit trick).
fn ulp_distance(a: f32, b: f32) -> u64 {
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        (if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }) as i64
    }
    (key(a) - key(b)).unsigned_abs()
}

impl Tolerance {
    /// Checks a lossy kernel output slice element-wise against the scalar
    /// reference slice, returning a worst-offender diagnostic on failure.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths — that is a shape
    /// bug, not a numeric violation.
    pub fn check_slices(
        &self,
        label: &str,
        lossy: &[f32],
        reference: &[f32],
    ) -> Result<(), String> {
        assert_eq!(
            lossy.len(),
            reference.len(),
            "{label}: lossy and reference outputs must have the same shape"
        );
        let norm = reference.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (i, (&l, &s)) in lossy.iter().zip(reference).enumerate() {
            if l.to_bits() == s.to_bits() {
                continue;
            }
            if !l.is_finite() || !s.is_finite() {
                return Err(format!(
                    "{label}[{i}]: non-finite mismatch (lossy {l}, reference {s})"
                ));
            }
            let err = (l - s).abs();
            if err <= self.max_rel_error * s.abs() + self.max_norm_error * norm {
                continue;
            }
            if ulp_distance(l, s) <= self.max_ulps as u64 {
                continue;
            }
            return Err(format!(
                "{label}[{i}]: lossy {l:e} vs reference {s:e} (abs err {err:e}, \
                 rel bound {:e}·|s| + {:e}·{norm:e}, ulp distance {})",
                self.max_rel_error,
                self.max_norm_error,
                ulp_distance(l, s)
            ));
        }
        Ok(())
    }
}

/// Which registration contract a backend signs up to: bit-identity
/// ([`Tier::Strict`]) or declared error bounds ([`Tier::Lossy`]). See the
/// [module docs](self#the-two-tier-registration-contract).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tier {
    /// Bit-identical to [`ScalarKernels`] on every kernel.
    Strict,
    /// Free to re-round (FMA, wider intermediates) within the declared
    /// [`Tolerance`]; still deterministic.
    Lossy(Tolerance),
}

impl Tier {
    /// `"strict"` or `"lossy"` — the stable label stamped into
    /// `WorkloadStats`, bench metadata and panic messages.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Strict => "strict",
            Tier::Lossy(_) => "lossy",
        }
    }

    /// Whether this is the bit-identity tier.
    pub fn is_strict(&self) -> bool {
        matches!(self, Tier::Strict)
    }

    /// The declared tolerance, for lossy backends.
    pub fn tolerance(&self) -> Option<Tolerance> {
        match self {
            Tier::Strict => None,
            Tier::Lossy(t) => Some(*t),
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One interchangeable implementation of the batched engine's hot kernels.
///
/// Implementations must uphold the contract of the tier they declare via
/// [`Kernels::tier`] (see the
/// [module docs](self#the-two-tier-registration-contract)): strict
/// backends must be bit-identical to [`ScalarKernels`], lossy backends
/// must stay inside their declared [`Tolerance`]. The easiest way to
/// satisfy the strict tier from outside this crate is to delegate the
/// numerics to a built-in backend (see [`InstrumentedKernels`], which
/// wraps [`SimdKernels`]); backends with their own kernels should build on
/// the observed scalar bodies ([`HashGrid::encode_level_observed`],
/// [`HashGrid::scatter_level_observed`]) or re-derive the scalar operation
/// order exactly.
///
/// All methods take `&self` and may run concurrently from multiple rayon
/// workers (the grid methods are called once per disjoint chunk / level);
/// backends that need mutable state must synchronise it internally.
pub trait Kernels: Send + Sync + std::fmt::Debug {
    /// The registry name — stamped into bench IDs, `WorkloadStats`, and
    /// panic messages. Lowercase, stable, unique per registered backend.
    fn name(&self) -> &'static str;

    /// `self` as [`Any`], so callers holding a [`BackendHandle`] can
    /// downcast to a concrete backend (e.g. to flip
    /// [`InstrumentedKernels`] recording).
    fn as_any(&self) -> &dyn Any;

    /// Which contract this backend registers under. Defaults to
    /// [`Tier::Strict`] — the conservative claim; declaring
    /// [`Tier::Lossy`] is an explicit opt-out of bit-identity and an
    /// opt-in to the tolerance suites.
    fn tier(&self) -> Tier {
        Tier::Strict
    }

    /// Whether the backend can actually run on this host. Backends whose
    /// kernels *require* absent CPU features register anyway (names stay
    /// host-independent) but return `false` here; [`available_names`] and
    /// the CI matrix arms honour it. Backends with portable fallbacks
    /// (like [`FastKernels`]) are always available.
    fn available(&self) -> bool {
        true
    }

    /// Encodes one chunk of unit-cube points across **all** grid levels
    /// into the `chunk × output_dim` row-major SoA slice `out`.
    ///
    /// Called by [`HashGrid::par_encode_batch_with`] once per disjoint
    /// chunk (or once for the whole batch when the backend asks for
    /// [`Kernels::sequential_grid`] execution).
    fn grid_encode_chunk(&self, grid: &HashGrid, unit_positions: &[Vec3], out: &mut [f32]);

    /// Encodes one chunk for a **subset of levels**, leaving every other
    /// level's columns of `out` untouched (the occupancy cache's
    /// dirty-level refresh seam, [`HashGrid::par_encode_batch_levels_with`]).
    fn grid_encode_levels_chunk(
        &self,
        grid: &HashGrid,
        levels: &[usize],
        unit_positions: &[Vec3],
        out: &mut [f32],
    );

    /// Scatters the embedding gradients of one grid level: `level_grads`
    /// is that level's disjoint slice of the flat gradient buffer, and
    /// per-parameter accumulation must run in point order
    /// ([`HashGrid::par_backward_batch_with`] calls this once per level).
    fn grid_scatter_level(
        &self,
        grid: &HashGrid,
        level: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    );

    /// Batched MLP forward over row-major inputs; returns the output slice
    /// living inside `ws` (the seam behind [`Mlp::forward_batch_with`]).
    fn mlp_forward_batch<'w>(
        &self,
        mlp: &Mlp,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32];

    /// Batched MLP backward for the most recent forward on `ws` (the seam
    /// behind [`Mlp::backward_batch_with`]).
    fn mlp_backward_batch(
        &self,
        mlp: &Mlp,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    );

    /// Composites one ray's SoA sample slices front-to-back (the seam
    /// behind [`crate::render::composite_slices_with`]). Returns the
    /// render output and the integrated (pre-early-termination) sample
    /// count; cache slices receive per-sample state when provided.
    fn composite_ray(
        &self,
        t: &[f32],
        dt: &[f32],
        sigma: &[f32],
        rgb: &[Vec3],
        background: Vec3,
        cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> (RenderOutput, usize);

    /// When `true`, the grid drivers run this backend sequentially: encode
    /// as one whole-batch chunk, scatter level by level in level order —
    /// instead of fanning chunks/levels out on the rayon pool. Recording
    /// backends return `true` while capturing so the observed address
    /// stream has a deterministic order; numeric results are identical
    /// either way (chunking never changes bits).
    fn sequential_grid(&self) -> bool {
        false
    }

    /// When `true`, the dispatch drivers instantiate each seam's declared
    /// [`WritePlan`](plan::WritePlan) at the concrete shape and register
    /// it with the [`WriteLedger`] ([`WriteLedger::expect_plan`]) before
    /// dispatching, so every write range the backend records is asserted
    /// to fall inside the statically proven plan (see the
    /// [module docs](self#contract-enforcement)). Defaults to `false`;
    /// only backends that actually record writes into the ledger (the
    /// `checked` backend) should opt in — for everything else the
    /// expectations would be dead weight on the hot path.
    fn plan_conformance(&self) -> bool {
        false
    }
}

/// A shared, cheaply clonable handle to a registered (or ad-hoc) backend.
///
/// This is what flows through the engine: `TrainConfig::kernel_backend` →
/// `NerfModel` → `BatchWorkspace` / `OccupancyWorkspace` all hold a
/// `BackendHandle` and dispatch through it, instead of matching on an enum
/// at every call site. Handles compare equal iff their backend names do.
#[derive(Clone)]
pub struct BackendHandle(Arc<dyn Kernels>);

impl BackendHandle {
    /// Wraps a backend implementation in a handle. The handle does **not**
    /// register the backend — it is directly usable by the engine (a test
    /// can hand a private mock straight to `TrainConfig`), while
    /// [`register`] additionally makes it resolvable by name.
    pub fn new<K: Kernels + 'static>(kernels: K) -> Self {
        BackendHandle(Arc::new(kernels))
    }

    /// Wraps an existing shared backend.
    pub fn from_arc(kernels: Arc<dyn Kernels>) -> Self {
        BackendHandle(kernels)
    }

    /// Borrows the underlying trait object.
    pub fn as_dyn(&self) -> &dyn Kernels {
        &*self.0
    }

    /// Downcasts to a concrete backend type (e.g.
    /// [`InstrumentedKernels`]), if this handle wraps one.
    pub fn downcast_ref<K: Kernels + 'static>(&self) -> Option<&K> {
        self.0.as_any().downcast_ref::<K>()
    }
}

impl std::ops::Deref for BackendHandle {
    type Target = dyn Kernels;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl PartialEq for BackendHandle {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Eq for BackendHandle {}

impl std::hash::Hash for BackendHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl std::fmt::Debug for BackendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BackendHandle({})", self.name())
    }
}

impl std::fmt::Display for BackendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide backend registry: an append-only, name-keyed list of
/// [`BackendHandle`]s, pre-seeded with the built-in backends in the order
/// `scalar`, `simd`, `instrumented`, `fast`, `checked`.
///
/// The free functions of this module ([`register`], [`get`], [`resolve`],
/// [`registered`], [`names`], [`from_env`]) are the public face; the
/// struct exists so the seeding happens exactly once.
struct BackendRegistry {
    backends: RwLock<Vec<BackendHandle>>,
}

impl BackendRegistry {
    fn global() -> &'static BackendRegistry {
        static REGISTRY: OnceLock<BackendRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| BackendRegistry {
            backends: RwLock::new(vec![
                BackendHandle::new(ScalarKernels),
                BackendHandle::new(SimdKernels),
                BackendHandle::new(InstrumentedKernels::new()),
                BackendHandle::new(FastKernels::new()),
                BackendHandle::new(CheckedKernels::new()),
            ]),
        })
    }
}

/// Registers a backend, making it resolvable by [`get`]/[`resolve`] (and
/// therefore selectable via `INSTANT3D_KERNEL_BACKEND` and picked up by
/// the test suites and benches that iterate [`registered`]).
///
/// Registration is an API-level promise that the backend upholds the
/// contract of its declared [tier](self#the-two-tier-registration-contract):
/// strict backends land in the bit-identity suites, lossy backends in the
/// tolerance suites.
///
/// # Errors
///
/// Returns `Err` when a backend with the same name is already registered
/// (names are matched case-insensitively).
pub fn register<K: Kernels + 'static>(kernels: K) -> Result<BackendHandle, String> {
    let handle = BackendHandle::new(kernels);
    let mut backends = BackendRegistry::global().backends.write().unwrap();
    if let Some(existing) = backends
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(handle.name()))
    {
        return Err(format!(
            "kernel backend {:?} is already registered",
            existing.name()
        ));
    }
    backends.push(handle.clone());
    Ok(handle)
}

/// Looks a backend up by name (case-insensitive, surrounding whitespace
/// ignored).
pub fn get(name: &str) -> Option<BackendHandle> {
    let wanted = name.trim();
    BackendRegistry::global()
        .backends
        .read()
        .unwrap()
        .iter()
        .find(|b| b.name().eq_ignore_ascii_case(wanted))
        .cloned()
}

/// Resolves a backend by name.
///
/// # Panics
///
/// Panics on unknown names, listing every registered backend with its
/// tier and availability — a typo in a config or CI matrix entry must
/// fail loudly instead of silently running the default backend.
pub fn resolve(name: &str) -> BackendHandle {
    get(name).unwrap_or_else(|| {
        panic!(
            "unknown kernel backend {:?}; registered backends: {}",
            name.trim(),
            described_names()
        )
    })
}

/// All registered backends, in registration order (built-ins first).
pub fn registered() -> Vec<BackendHandle> {
    BackendRegistry::global().backends.read().unwrap().clone()
}

/// The registered **strict-tier** backends, in registration order — the
/// iteration set of every bit-identity differential/golden suite.
pub fn registered_strict() -> Vec<BackendHandle> {
    registered()
        .into_iter()
        .filter(|b| b.tier().is_strict())
        .collect()
}

/// The registered **lossy-tier** backends, in registration order — the
/// iteration set of the tolerance suites, so no lossy backend can dodge
/// its declared quality gate.
pub fn registered_lossy() -> Vec<BackendHandle> {
    registered()
        .into_iter()
        .filter(|b| !b.tier().is_strict())
        .collect()
}

/// The registered backend names, in registration order.
pub fn names() -> Vec<&'static str> {
    BackendRegistry::global()
        .backends
        .read()
        .unwrap()
        .iter()
        .map(|b| b.name())
        .collect()
}

/// The names of registered backends that are [`Kernels::available`] on
/// this host. A backend missing from this list (but present in [`names`])
/// registered fine — its kernels just can't run here.
pub fn available_names() -> Vec<&'static str> {
    BackendRegistry::global()
        .backends
        .read()
        .unwrap()
        .iter()
        .filter(|b| b.available())
        .map(|b| b.name())
        .collect()
}

/// `"name" (tier, availability)` for every registered backend — the panic
/// payload of [`resolve`] / [`from_env_value`].
fn described_names() -> String {
    registered()
        .iter()
        .map(|b| {
            format!(
                "{:?} ({}, {})",
                b.name(),
                b.tier().label(),
                if b.available() {
                    "available"
                } else {
                    "unavailable"
                }
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// The scalar reference backend (always registered).
pub fn scalar() -> BackendHandle {
    get("scalar").expect("built-in scalar backend")
}

/// The lane-batched SIMD backend (always registered).
pub fn simd() -> BackendHandle {
    get("simd").expect("built-in simd backend")
}

/// The shared instrumented co-sim backend instance (always registered).
///
/// Note this is one process-wide instance: concurrent recorders would
/// interleave streams. Co-sim sessions that need isolation should wrap a
/// fresh [`InstrumentedKernels`] in a [`BackendHandle`] instead.
pub fn instrumented() -> BackendHandle {
    get("instrumented").expect("built-in instrumented backend")
}

/// The lossy-tier FMA/AVX2 backend (always registered; always available —
/// it falls back to portable `f32::mul_add` where AVX2/FMA are absent).
pub fn fast() -> BackendHandle {
    get("fast").expect("built-in fast backend")
}

/// The strict-tier dynamic race-detector backend (always registered): SIMD
/// numerics plus disjoint-write ledger recording and scalar shadow
/// comparison — see [`CheckedKernels`].
pub fn checked() -> BackendHandle {
    get("checked").expect("built-in checked backend")
}

/// The engine's default backend (`simd`).
pub fn default_backend() -> BackendHandle {
    simd()
}

/// The backend requested by `INSTANT3D_KERNEL_BACKEND`, if the variable is
/// set — the hook the CI matrix uses to force every registered backend
/// through the full suite.
///
/// # Panics
///
/// Panics when the variable names an unregistered backend (see
/// [`resolve`]).
pub fn from_env() -> Option<BackendHandle> {
    from_env_value(std::env::var("INSTANT3D_KERNEL_BACKEND").ok().as_deref())
}

/// [`from_env`]'s env-independent core, split out so the unknown-name
/// panic is testable without mutating process-global environment state.
/// The lookup is a plain registry resolution — no hand-rolled name
/// matching.
pub fn from_env_value(value: Option<&str>) -> Option<BackendHandle> {
    let v = value?;
    match get(v) {
        Some(handle) => Some(handle),
        None => panic!(
            "invalid INSTANT3D_KERNEL_BACKEND value {:?}; registered backends: {}",
            v.trim(),
            described_names()
        ),
    }
}

/// The env-var backend if set, otherwise [`default_backend`].
pub fn from_env_or_default() -> BackendHandle {
    from_env().unwrap_or_else(default_backend)
}

/// The env-var backend **if it is strict-tier**, otherwise
/// [`default_backend`]. Reference paths and bit-identity fixtures use
/// this so that running the suite under a lossy env override (the CI
/// `fast` arm) keeps strict-contract comparisons meaningful instead of
/// asserting bit-equality against FMA numerics.
pub fn strict_from_env_or_default() -> BackendHandle {
    match from_env() {
        Some(backend) if backend.tier().is_strict() => backend,
        _ => default_backend(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered_in_order() {
        let names = names();
        assert_eq!(
            &names[..5],
            &["scalar", "simd", "instrumented", "fast", "checked"]
        );
        assert_eq!(registered()[..5].len(), 5);
        assert_eq!(default_backend().name(), "simd");
    }

    #[test]
    fn builtin_tiers_split_strict_from_lossy() {
        let strict: Vec<_> = registered_strict().iter().map(|b| b.name()).collect();
        assert!(strict.contains(&"scalar"));
        assert!(strict.contains(&"simd"));
        assert!(strict.contains(&"instrumented"));
        assert!(strict.contains(&"checked"));
        assert!(!strict.contains(&"fast"));
        let lossy: Vec<_> = registered_lossy().iter().map(|b| b.name()).collect();
        assert!(lossy.contains(&"fast"));
        assert!(!lossy.contains(&"scalar"));
        // The split is a partition of the registry.
        assert_eq!(
            registered_strict().len() + registered_lossy().len(),
            registered().len()
        );
        // And the lossy tier carries its declared tolerance.
        let tol = fast().tier().tolerance().expect("fast declares bounds");
        assert!(tol.max_rel_error > 0.0 && tol.max_psnr_drop_db > 0.0);
        assert_eq!(fast().tier().label(), "lossy");
        assert_eq!(scalar().tier().label(), "strict");
    }

    #[test]
    fn available_names_filters_unavailable_backends() {
        // A backend requiring an absent CPU feature registers but reports
        // unavailable; the built-ins are always available.
        #[derive(Debug)]
        struct Avx999(ScalarKernels);
        impl Kernels for Avx999 {
            fn name(&self) -> &'static str {
                "mock-avx999"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn available(&self) -> bool {
                false // the hypothetical feature is absent everywhere
            }
            fn grid_encode_chunk(&self, g: &HashGrid, p: &[Vec3], o: &mut [f32]) {
                self.0.grid_encode_chunk(g, p, o)
            }
            fn grid_encode_levels_chunk(
                &self,
                g: &HashGrid,
                l: &[usize],
                p: &[Vec3],
                o: &mut [f32],
            ) {
                self.0.grid_encode_levels_chunk(g, l, p, o)
            }
            fn grid_scatter_level(
                &self,
                g: &HashGrid,
                l: usize,
                lg: &mut [f32],
                p: &[Vec3],
                d: &[f32],
            ) {
                self.0.grid_scatter_level(g, l, lg, p, d)
            }
            fn mlp_forward_batch<'w>(
                &self,
                m: &Mlp,
                i: &[f32],
                w: &'w mut MlpBatchWorkspace,
            ) -> &'w [f32] {
                self.0.mlp_forward_batch(m, i, w)
            }
            fn mlp_backward_batch(
                &self,
                m: &Mlp,
                d: &[f32],
                w: &mut MlpBatchWorkspace,
                g: &mut MlpGradients,
                di: &mut [f32],
            ) {
                self.0.mlp_backward_batch(m, d, w, g, di)
            }
            fn composite_ray(
                &self,
                t: &[f32],
                dt: &[f32],
                s: &[f32],
                r: &[Vec3],
                b: Vec3,
                c: Option<(&mut [f32], &mut [f32], &mut [f32])>,
            ) -> (RenderOutput, usize) {
                self.0.composite_ray(t, dt, s, r, b, c)
            }
        }
        let handle = register(Avx999(ScalarKernels)).expect("fresh mock name");
        assert!(names().contains(&"mock-avx999"), "registration succeeded");
        assert!(
            !available_names().contains(&"mock-avx999"),
            "but availability filtering excludes it"
        );
        for builtin in ["scalar", "simd", "instrumented", "fast", "checked"] {
            assert!(available_names().contains(&builtin), "{builtin}");
        }
        assert!(!handle.available());
    }

    #[test]
    fn lookup_is_case_and_whitespace_insensitive() {
        assert_eq!(get(" SIMD ").unwrap().name(), "simd");
        assert_eq!(resolve("Scalar").name(), "scalar");
        assert!(get("avx512").is_none());
    }

    #[test]
    fn handles_compare_and_print_by_name() {
        assert_eq!(scalar(), scalar());
        assert_ne!(scalar(), simd());
        assert_eq!(simd().to_string(), "simd");
        assert_eq!(format!("{:?}", scalar()), "BackendHandle(scalar)");
    }

    #[test]
    fn env_accepts_valid_and_unset_values() {
        assert!(from_env_value(None).is_none());
        assert_eq!(from_env_value(Some("scalar")).unwrap().name(), "scalar");
        assert_eq!(from_env_value(Some(" Simd ")).unwrap().name(), "simd");
        assert_eq!(
            from_env_value(Some("instrumented")).unwrap().name(),
            "instrumented"
        );
        assert_eq!(from_env_value(Some("fast")).unwrap().name(), "fast");
        assert_eq!(from_env_value(Some("checked")).unwrap().name(), "checked");
    }

    #[test]
    #[should_panic(expected = "invalid INSTANT3D_KERNEL_BACKEND value \"smid\"")]
    fn env_rejects_typos_loudly() {
        // A misspelled CI matrix entry must fail the run, not silently
        // re-test the default backend.
        let _ = from_env_value(Some("smid"));
    }

    #[test]
    #[should_panic(expected = "registered backends: \"scalar\" (strict, available), \
                    \"simd\" (strict, available), \
                    \"instrumented\" (strict, available), \
                    \"fast\" (lossy, available), \
                    \"checked\" (strict, available)")]
    fn resolve_panic_lists_names_with_tier_and_availability() {
        let _ = resolve("no-such-backend");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        // The built-in name is taken, whatever the casing.
        #[derive(Debug)]
        struct Impostor;
        impl Kernels for Impostor {
            fn name(&self) -> &'static str {
                "SCALAR"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn grid_encode_chunk(&self, _: &HashGrid, _: &[Vec3], _: &mut [f32]) {}
            fn grid_encode_levels_chunk(
                &self,
                _: &HashGrid,
                _: &[usize],
                _: &[Vec3],
                _: &mut [f32],
            ) {
            }
            fn grid_scatter_level(
                &self,
                _: &HashGrid,
                _: usize,
                _: &mut [f32],
                _: &[Vec3],
                _: &[f32],
            ) {
            }
            fn mlp_forward_batch<'w>(
                &self,
                _: &Mlp,
                _: &[f32],
                _: &'w mut MlpBatchWorkspace,
            ) -> &'w [f32] {
                &[]
            }
            fn mlp_backward_batch(
                &self,
                _: &Mlp,
                _: &[f32],
                _: &mut MlpBatchWorkspace,
                _: &mut MlpGradients,
                _: &mut [f32],
            ) {
            }
            fn composite_ray(
                &self,
                _: &[f32],
                _: &[f32],
                _: &[f32],
                _: &[Vec3],
                _: Vec3,
                _: Option<(&mut [f32], &mut [f32], &mut [f32])>,
            ) -> (RenderOutput, usize) {
                (RenderOutput::default(), 0)
            }
        }
        assert!(register(Impostor).is_err());
    }

    #[test]
    fn downcast_reaches_the_instrumented_backend() {
        let handle = instrumented();
        assert!(handle.downcast_ref::<InstrumentedKernels>().is_some());
        assert!(handle.downcast_ref::<ScalarKernels>().is_none());
        assert!(!handle.sequential_grid(), "recording starts off");
    }

    #[test]
    fn strict_from_env_falls_back_on_lossy_overrides() {
        // The helper keeps bit-identity fixtures on a strict backend even
        // when the process-wide override names a lossy one. (Exercised
        // through the value-level seam; the env-var plumbing is shared
        // with `from_env`.)
        let strict = |v: Option<&str>| match from_env_value(v) {
            Some(b) if b.tier().is_strict() => b,
            _ => default_backend(),
        };
        assert_eq!(strict(Some("scalar")).name(), "scalar");
        assert_eq!(strict(Some("fast")).name(), "simd");
        assert_eq!(strict(None).name(), "simd");
        assert!(strict_from_env_or_default().tier().is_strict());
    }

    #[test]
    fn tolerance_check_accepts_bounded_and_rejects_gross_errors() {
        let tol = Tolerance {
            max_rel_error: 1e-4,
            max_norm_error: 1e-5,
            max_ulps: 8,
            max_psnr_drop_db: 0.05,
            max_ssim_drop: 1e-3,
        };
        // Bit-equal (including NaN-to-NaN with equal payloads) passes.
        assert!(tol
            .check_slices("eq", &[1.0, f32::NAN], &[1.0, f32::NAN])
            .is_ok());
        // Small relative error passes; ±0 is bit-different but 0 ulps apart.
        assert!(tol
            .check_slices("rel", &[1.0 + 5e-5, -0.0], &[1.0, 0.0])
            .is_ok());
        // The normwise term absorbs cancellation noise near zero…
        assert!(tol
            .check_slices("norm", &[1e-6, 100.0], &[0.0, 100.0])
            .is_ok());
        // …but a gross error on a well-scaled element fails with context.
        let err = tol
            .check_slices("gross", &[1.01], &[1.0])
            .expect_err("1% off must fail a 1e-4 bound");
        assert!(err.contains("gross[0]"), "offender is named: {err}");
        // A non-finite divergence always fails.
        assert!(tol.check_slices("nan", &[f32::NAN], &[1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn tolerance_check_panics_on_shape_mismatch() {
        let tol = fast().tier().tolerance().unwrap();
        let _ = tol.check_slices("shape", &[1.0, 2.0], &[1.0]);
    }
}
