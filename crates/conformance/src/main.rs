//! CLI entry point: `cargo run -p instant3d-conformance` lints the whole
//! workspace and exits non-zero on any non-baselined violation.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // crates/conformance -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let report = instant3d_conformance::run_all(root);
    for v in &report.baselined {
        println!("{v} (baselined)");
    }
    for v in &report.violations {
        println!("{v}");
    }
    println!(
        "conformance: {} files scanned, {} write plans checked by the prover, {} violations, {} baselined",
        report.files_scanned,
        report.plans_checked,
        report.violations.len(),
        report.baselined.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
