//! Real spherical-harmonics direction encoding.
//!
//! Instant-NGP (and therefore the paper's Step ③-②) feeds the view direction
//! to the color MLP as the first 16 real SH basis values (degree 4). The
//! basis is evaluated on unit direction vectors.

use crate::math::Vec3;

/// Number of basis functions for SH up to (and excluding) `degree`.
pub const fn sh_basis_size(degree: usize) -> usize {
    degree * degree
}

/// Evaluates the first `degree²` real SH basis functions at unit direction
/// `d`, writing into `out`.
///
/// Supports degrees 1..=4 (1, 4, 9 or 16 outputs) — degree 4 is what
/// Instant-NGP uses.
///
/// # Panics
///
/// Panics if `degree` is 0 or greater than 4, or if
/// `out.len() != degree * degree`.
pub fn sh_encode_into(d: Vec3, degree: usize, out: &mut [f32]) {
    assert!((1..=4).contains(&degree), "supported SH degrees: 1..=4");
    assert_eq!(
        out.len(),
        sh_basis_size(degree),
        "output buffer size mismatch"
    );
    let (x, y, z) = (d.x, d.y, d.z);

    out[0] = 0.282_094_79; // l=0
    if degree == 1 {
        return;
    }
    out[1] = -0.488_602_51 * y;
    out[2] = 0.488_602_51 * z;
    out[3] = -0.488_602_51 * x;
    if degree == 2 {
        return;
    }
    let (xx, yy, zz) = (x * x, y * y, z * z);
    let (xy, yz, xz) = (x * y, y * z, x * z);
    out[4] = 1.092_548_4 * xy;
    out[5] = -1.092_548_4 * yz;
    out[6] = 0.315_391_57 * (3.0 * zz - 1.0);
    out[7] = -1.092_548_4 * xz;
    out[8] = 0.546_274_2 * (xx - yy);
    if degree == 3 {
        return;
    }
    out[9] = -0.590_043_6 * y * (3.0 * xx - yy);
    out[10] = 2.890_611_4 * xy * z;
    out[11] = -0.457_045_8 * y * (5.0 * zz - 1.0);
    out[12] = 0.373_176_33 * z * (5.0 * zz - 3.0);
    out[13] = -0.457_045_8 * x * (5.0 * zz - 1.0);
    out[14] = 1.445_305_7 * z * (xx - yy);
    out[15] = -0.590_043_6 * x * (xx - 3.0 * yy);
}

/// Allocating convenience wrapper around [`sh_encode_into`].
pub fn sh_encode(d: Vec3, degree: usize) -> Vec<f32> {
    let mut out = vec![0.0; sh_basis_size(degree)];
    sh_encode_into(d, degree, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_samples(n: usize) -> Vec<Vec3> {
        // Fibonacci sphere — deterministic, reasonably uniform.
        let golden = std::f32::consts::PI * (3.0 - 5f32.sqrt());
        (0..n)
            .map(|i| {
                let y = 1.0 - 2.0 * (i as f32 + 0.5) / n as f32;
                let r = (1.0 - y * y).sqrt();
                let th = golden * i as f32;
                Vec3::new(r * th.cos(), y, r * th.sin())
            })
            .collect()
    }

    #[test]
    fn basis_sizes() {
        assert_eq!(sh_basis_size(1), 1);
        assert_eq!(sh_basis_size(2), 4);
        assert_eq!(sh_basis_size(3), 9);
        assert_eq!(sh_basis_size(4), 16);
    }

    #[test]
    fn degree_prefixes_agree() {
        let d = Vec3::new(0.3, -0.5, 0.8).normalized();
        let full = sh_encode(d, 4);
        for deg in 1..=3 {
            let partial = sh_encode(d, deg);
            assert_eq!(&full[..partial.len()], &partial[..]);
        }
    }

    #[test]
    fn dc_term_is_constant() {
        for d in sphere_samples(50) {
            assert_eq!(sh_encode(d, 1)[0], 0.282_094_79);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric Gram-matrix indexing
    fn basis_is_orthonormal_under_sphere_integration() {
        // Monte-Carlo check: ∫ Y_i Y_j dΩ ≈ δ_ij. With a Fibonacci sphere
        // the quadrature weight is 4π/n per sample.
        let samples = sphere_samples(20_000);
        let w = 4.0 * std::f32::consts::PI / samples.len() as f32;
        let mut gram = [[0f32; 16]; 16];
        for d in &samples {
            let y = sh_encode(*d, 4);
            for i in 0..16 {
                for j in i..16 {
                    gram[i][j] += w * y[i] * y[j];
                }
            }
        }
        for i in 0..16 {
            assert!((gram[i][i] - 1.0).abs() < 0.05, "diag {i}: {}", gram[i][i]);
            for j in (i + 1)..16 {
                assert!(
                    gram[i][j].abs() < 0.05,
                    "off-diag ({i},{j}): {}",
                    gram[i][j]
                );
            }
        }
    }

    #[test]
    fn parity_symmetry() {
        // Y_l(-d) = (-1)^l Y_l(d): degree-1 (l=1) terms flip sign.
        let d = Vec3::new(0.6, 0.48, 0.64).normalized();
        let plus = sh_encode(d, 2);
        let minus = sh_encode(-d, 2);
        assert_eq!(plus[0], minus[0]);
        for k in 1..4 {
            assert!((plus[k] + minus[k]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn degree_zero_panics() {
        let _ = sh_encode(Vec3::X, 0);
    }

    #[test]
    #[should_panic]
    fn degree_five_panics() {
        let _ = sh_encode(Vec3::X, 5);
    }
}
