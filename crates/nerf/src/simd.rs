//! Portable fixed-width SIMD lane types.
//!
//! The hot kernels of this crate — hash-grid encode/scatter
//! ([`crate::grid`]), the 64-wide MLP GEMV ([`crate::mlp`]) and per-ray
//! compositing ([`crate::render`]) — exist in interchangeable
//! implementations dispatched through the open backend API
//! ([`crate::kernels`]): the scalar reference kernels, and lane-batched
//! SIMD kernels built on the [`F32x4`]/[`F32x8`] types below.
//!
//! # The additive-order / no-FMA contract (strict tier)
//!
//! **Every strict-tier backend produces bit-identical results.** The SIMD
//! kernels are written so that, for each output scalar, the exact sequence
//! of IEEE 754 operations — including the order of every addition — is the
//! same as in the scalar reference kernel. Concretely:
//!
//! * Lanes are only ever used to batch *independent* scalars (different
//!   points, different output neurons, different parameters). No kernel
//!   reduces *across* lanes, which would reassociate a sum.
//! * Every multiply-add is performed as a distinct IEEE multiply followed
//!   by a distinct IEEE add — **never** a fused multiply-add. An FMA keeps
//!   the infinitely-precise product and rounds once, so `fma(a, b, c) !=
//!   a*b + c` in general; using it would silently break the contract. The
//!   strict kernels therefore never call [`F32x4::mul_add`] /
//!   [`F32x8::mul_add`] or [`axpy_fused`] — those exist for the **lossy
//!   tier** ([`crate::kernels::Tier::Lossy`]), whose backends trade
//!   bit-identity for FMA throughput under a declared tolerance.
//! * Lane arithmetic (`+`, `-`, `*`, `min`, `max`, `floor`) is exact
//!   per-lane IEEE 754 — identical to the corresponding `f32` operator on
//!   that lane's value. Approximate vector math (rsqrt, rcp, vector exp)
//!   is never used; transcendentals stay scalar per lane.
//!
//! These properties are pinned by the differential suite
//! (`crates/nerf/tests/simd_differential.rs`) which asserts bit-equality
//! of every kernel against its scalar reference over remainder tails,
//! empty batches and adversarial fp16 table contents — and which runs
//! generically over every strict backend registered in [`crate::kernels`],
//! so a registered third-party strict backend is held to the same
//! contract.
//!
//! # The fused (lossy-tier) helpers
//!
//! The fused helpers are built on `f32::mul_add`, which is **correctly
//! rounded** (IEEE 754 fusedMultiplyAdd): a hardware `vfmadd` and the
//! portable libm fallback produce the same bits, so lossy kernels built on
//! them are still deterministic across hosts — AVX2/FMA, detected once at
//! runtime via [`avx2_fma_available`], is purely a speed specialization.
//! [`axpy_fused`] and the lossy kernels' inner loops are written as plain
//! `mul_add` array sweeps and compiled twice: once under
//! `#[target_feature(enable = "avx2,fma")]` (LLVM emits 256-bit `vfmadd`)
//! and once portably (scalar `fma`), dispatched per call.
//!
//! # Implementation notes
//!
//! The lane types are plain aligned arrays with `#[inline(always)]`
//! elementwise operators — a form stable rustc reliably autovectorizes to
//! SSE/NEON without any nightly features. On `x86_64`, where SSE2 is part
//! of the baseline ISA, the [`F32x4`] arithmetic ops are additionally
//! specialized to `core::arch` intrinsics (`_mm_add_ps` etc. — exact
//! per-lane IEEE operations, so the contract above is preserved);
//! [`F32x8`] is two `F32x4` halves. Every other architecture uses the
//! autovectorized array fallback, which is always compiled and tested.

/// Four `f32` lanes, 16-byte aligned.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(16))]
pub struct F32x4(pub [f32; 4]);

/// Eight `f32` lanes, 32-byte aligned.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
pub struct F32x8(pub [f32; 8]);

macro_rules! lane_common {
    ($ty:ident, $n:expr) => {
        impl $ty {
            /// Lane count.
            pub const LANES: usize = $n;
            /// All lanes zero.
            pub const ZERO: $ty = $ty([0.0; $n]);

            /// Broadcasts one value to every lane.
            #[inline(always)]
            pub fn splat(v: f32) -> $ty {
                $ty([v; $n])
            }

            /// Loads lanes from the first `$n` elements of `s`.
            ///
            /// # Panics
            ///
            /// Panics if `s` is shorter than the lane count.
            #[inline(always)]
            pub fn from_slice(s: &[f32]) -> $ty {
                let mut v = [0.0f32; $n];
                v.copy_from_slice(&s[..$n]);
                $ty(v)
            }

            /// Stores lanes into the first `$n` elements of `out`.
            ///
            /// # Panics
            ///
            /// Panics if `out` is shorter than the lane count.
            #[inline(always)]
            pub fn write_to(self, out: &mut [f32]) {
                out[..$n].copy_from_slice(&self.0);
            }

            /// Per-lane `f32::floor` (exact, same as the scalar kernel).
            #[inline(always)]
            pub fn floor(self) -> $ty {
                let mut v = self.0;
                for x in &mut v {
                    *x = x.floor();
                }
                $ty(v)
            }

            /// Per-lane `f32::clamp(lo, hi)` — bitwise identical to the
            /// scalar kernels' clamp for the finite inputs they handle.
            #[inline(always)]
            pub fn clamp(self, lo: f32, hi: f32) -> $ty {
                let mut v = self.0;
                for x in &mut v {
                    *x = x.clamp(lo, hi);
                }
                $ty(v)
            }

            /// Per-lane fused multiply-add `self * b + c`, rounded **once**
            /// (`f32::mul_add`). Lossy-tier only: a strict kernel calling
            /// this breaks the bit-identity contract (see the
            /// [module docs](self)). Correctly rounded on every path, so
            /// hardware FMA and the portable fallback agree bitwise.
            // CONTRACT: lossy-tier — single-rounding FMA primitive; only
            // fused (lossy) kernels may call this.
            #[inline(always)]
            pub fn mul_add(self, b: $ty, c: $ty) -> $ty {
                let mut v = self.0;
                for ((x, y), z) in v.iter_mut().zip(&b.0).zip(&c.0) {
                    *x = x.mul_add(*y, *z);
                }
                $ty(v)
            }
        }

        impl std::ops::Index<usize> for $ty {
            type Output = f32;
            #[inline(always)]
            fn index(&self, i: usize) -> &f32 {
                &self.0[i]
            }
        }

        impl std::ops::AddAssign for $ty {
            #[inline(always)]
            fn add_assign(&mut self, rhs: $ty) {
                *self = *self + rhs;
            }
        }

        impl std::ops::MulAssign for $ty {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: $ty) {
                *self = *self * rhs;
            }
        }
    };
}

lane_common!(F32x4, 4);
lane_common!(F32x8, 8);

// --- F32x4 arithmetic: SSE2 intrinsics on x86_64 (baseline ISA there),
// --- autovectorized array loops everywhere else. Both are exact per-lane
// --- IEEE add/sub/mul — no FMA, no approximation.

macro_rules! f32x4_binop {
    ($trait:ident, $method:ident, $intrin:ident, $op:tt) => {
        impl std::ops::$trait for F32x4 {
            type Output = F32x4;
            #[inline(always)]
            fn $method(self, rhs: F32x4) -> F32x4 {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: SSE2 is part of the x86_64 baseline ISA, and
                // F32x4 is 16-byte aligned, so aligned loads are valid.
                unsafe {
                    use std::arch::x86_64::*;
                    let a = _mm_load_ps(self.0.as_ptr());
                    let b = _mm_load_ps(rhs.0.as_ptr());
                    let mut out = F32x4::ZERO;
                    _mm_store_ps(out.0.as_mut_ptr(), $intrin(a, b));
                    out
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    let mut v = self.0;
                    for (x, y) in v.iter_mut().zip(&rhs.0) {
                        *x = *x $op *y;
                    }
                    F32x4(v)
                }
            }
        }
    };
}

f32x4_binop!(Add, add, _mm_add_ps, +);
f32x4_binop!(Sub, sub, _mm_sub_ps, -);
f32x4_binop!(Mul, mul, _mm_mul_ps, *);

macro_rules! f32x8_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for F32x8 {
            type Output = F32x8;
            #[inline(always)]
            fn $method(self, rhs: F32x8) -> F32x8 {
                #[cfg(target_arch = "x86_64")]
                {
                    // Two SSE2 halves (keeps the intrinsic path without
                    // requiring AVX, which is not baseline).
                    let lo = F32x4::from_slice(&self.0[..4]) $op F32x4::from_slice(&rhs.0[..4]);
                    let hi = F32x4::from_slice(&self.0[4..]) $op F32x4::from_slice(&rhs.0[4..]);
                    let mut v = [0.0f32; 8];
                    v[..4].copy_from_slice(&lo.0);
                    v[4..].copy_from_slice(&hi.0);
                    F32x8(v)
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    let mut v = self.0;
                    for (x, y) in v.iter_mut().zip(&rhs.0) {
                        *x = *x $op *y;
                    }
                    F32x8(v)
                }
            }
        }
    };
}

f32x8_binop!(Add, add, +);
f32x8_binop!(Sub, sub, -);
f32x8_binop!(Mul, mul, *);

/// `y[i] += a * x[i]`, elementwise; `use_simd` selects the lane-batched
/// sweep.
///
/// Each `y[i]` receives exactly one add of one product on either path,
/// so results are bit-identical — this is the vectorizable inner loop of
/// the MLP parameter-gradient and input-gradient sweeps.
///
/// # Panics
///
/// Panics if `x` is shorter than `y`.
#[inline]
pub fn axpy(use_simd: bool, y: &mut [f32], a: f32, x: &[f32]) {
    if use_simd {
        let n = y.len();
        let full = n - n % F32x8::LANES;
        let av = F32x8::splat(a);
        let mut i = 0;
        while i < full {
            let r = F32x8::from_slice(&y[i..]) + av * F32x8::from_slice(&x[i..]);
            r.write_to(&mut y[i..]);
            i += F32x8::LANES;
        }
        for (yi, xi) in y[full..].iter_mut().zip(&x[full..]) {
            *yi += a * xi;
        }
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }
}

/// Whether this host can run the AVX2+FMA specializations of the fused
/// (lossy-tier) kernels. Detected once per process and cached; always
/// `false` off x86_64. Purely a speed question — the portable `mul_add`
/// fallback produces the same bits.
#[inline]
pub fn avx2_fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// CONTRACT: lossy-tier — fused axpy body backing `FastKernels` only.
#[inline(always)]
fn axpy_fused_body(y: &mut [f32], a: f32, x: &[f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(a, *yi);
    }
}

// CALLER: `axpy_fused` gates this behind `avx2_fma_available()`
// (cached `is_x86_feature_detected!("avx2")` + `("fma")`).
// SAFETY: no raw-pointer math; the only obligation is that AVX2+FMA
// exist at runtime, which every caller must establish first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_fused_avx2(y: &mut [f32], a: f32, x: &[f32]) {
    // Same body; under this target feature LLVM vectorizes the `mul_add`
    // sweep to 256-bit `vfmadd` — bit-identical to the portable path,
    // because `f32::mul_add` is correctly rounded either way.
    axpy_fused_body(y, a, x);
}

/// `y[i] = fma(a, x[i], y[i])`, elementwise — the **fused** axpy of the
/// lossy-tier kernels. One rounding per element instead of [`axpy`]'s
/// two, dispatched to an AVX2/FMA specialization when the host has it.
///
/// # Panics
///
/// Panics if `x` is shorter than `y`.
#[inline]
pub fn axpy_fused(y: &mut [f32], a: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_available() {
        // SAFETY: guarded by runtime AVX2+FMA detection.
        unsafe {
            return axpy_fused_avx2(y, a, x);
        }
    }
    axpy_fused_body(y, a, x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_paths_are_bit_identical() {
        let x: Vec<f32> = (0..19).map(|i| 0.1 + i as f32 * 0.37).collect();
        let mut ya: Vec<f32> = (0..19).map(|i| -0.5 + i as f32 * 0.11).collect();
        let mut yb = ya.clone();
        axpy(false, &mut ya, -0.625, &x);
        axpy(true, &mut yb, -0.625, &x);
        for (a, b) in ya.iter().zip(&yb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lane_ops_match_scalar_ops_bitwise() {
        let a = [1.5f32, -0.25, 3.207_18e-3, 65504.0, -2.5, 0.1, 7.0, -0.0];
        let b = [0.3f32, 123.456, -9.87, 2.0e-4, 0.5, -0.1, 3.0, 4.0];
        let va = F32x8::from_slice(&a);
        let vb = F32x8::from_slice(&b);
        for k in 0..8 {
            assert_eq!((va + vb)[k].to_bits(), (a[k] + b[k]).to_bits());
            assert_eq!((va - vb)[k].to_bits(), (a[k] - b[k]).to_bits());
            assert_eq!((va * vb)[k].to_bits(), (a[k] * b[k]).to_bits());
        }
        let qa = F32x4::from_slice(&a);
        let qb = F32x4::from_slice(&b);
        for k in 0..4 {
            assert_eq!((qa + qb)[k].to_bits(), (a[k] + b[k]).to_bits());
            assert_eq!((qa - qb)[k].to_bits(), (a[k] - b[k]).to_bits());
            assert_eq!((qa * qb)[k].to_bits(), (a[k] * b[k]).to_bits());
        }
    }

    #[test]
    fn floor_and_clamp_match_scalar() {
        let a = [1.5f32, -0.25, 0.999_999, 4.0, -2.5, 0.0, 17.3, 1e-7];
        let v = F32x8::from_slice(&a);
        for k in 0..8 {
            assert_eq!(v.floor()[k].to_bits(), a[k].floor().to_bits());
            let c = v.clamp(0.0, 1.0 - 1e-6);
            assert_eq!(c[k].to_bits(), a[k].clamp(0.0, 1.0 - 1e-6).to_bits());
        }
    }

    #[test]
    fn splat_store_roundtrip() {
        let mut out = [0.0f32; 8];
        F32x8::splat(2.5).write_to(&mut out);
        assert_eq!(out, [2.5; 8]);
        let mut acc = F32x8::ZERO;
        acc += F32x8::splat(1.0);
        acc *= F32x8::splat(3.0);
        assert_eq!(acc.0, [3.0; 8]);
    }

    #[test]
    fn lane_mul_add_is_correctly_rounded_fma() {
        // Inputs where fused and unfused rounding differ: the lane op must
        // match `f32::mul_add` (single rounding), not mul-then-add.
        let a = [
            1.0 + f32::EPSILON,
            0.3,
            -2.5,
            65504.0,
            1e-20,
            7.0,
            -0.1,
            0.5,
        ];
        let b = [
            1.0 - f32::EPSILON,
            123.456,
            0.5,
            2.0e-4,
            1e-20,
            3.0,
            -0.1,
            4.0,
        ];
        let c = [-1.0f32, -9.87, 0.3, 0.1, 1e-30, -21.0, 0.01, -2.0];
        let v = F32x8::from_slice(&a).mul_add(F32x8::from_slice(&b), F32x8::from_slice(&c));
        for k in 0..8 {
            assert_eq!(v[k].to_bits(), a[k].mul_add(b[k], c[k]).to_bits());
        }
        let q = F32x4::from_slice(&a).mul_add(F32x4::from_slice(&b), F32x4::from_slice(&c));
        for k in 0..4 {
            assert_eq!(q[k].to_bits(), a[k].mul_add(b[k], c[k]).to_bits());
        }
    }

    #[test]
    fn axpy_fused_matches_per_element_mul_add_bitwise() {
        // Both dispatch arms (AVX2 and portable) must equal the scalar
        // `f32::mul_add` reference — the determinism claim of the lossy
        // tier. Odd length exercises the vectorizer's remainder tail.
        let x: Vec<f32> = (0..37).map(|i| 0.1 + i as f32 * 0.37).collect();
        let y0: Vec<f32> = (0..37).map(|i| -0.5 + i as f32 * 0.11).collect();
        let a = -0.625f32;
        let expect: Vec<u32> = y0
            .iter()
            .zip(&x)
            .map(|(yi, xi)| xi.mul_add(a, *yi).to_bits())
            .collect();
        let mut y = y0.clone();
        axpy_fused(&mut y, a, &x);
        let got: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expect);
        // The portable body agrees regardless of what the dispatcher picked.
        let mut y = y0.clone();
        axpy_fused_body(&mut y, a, &x);
        let portable: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(portable, expect);
    }

    #[test]
    fn feature_detection_is_stable_across_calls() {
        assert_eq!(avx2_fma_available(), avx2_fma_available());
    }

    #[test]
    fn no_fma_in_mul_then_add() {
        // If a fused multiply-add ever sneaks in, this catches it:
        // pick a, b, c where fma(a, b, c) != a*b + c under f32 rounding.
        let a = 1.0 + f32::EPSILON;
        let b = 1.0 - f32::EPSILON;
        let c = -1.0f32;
        let scalar = a * b + c;
        let lanes = F32x8::splat(a) * F32x8::splat(b) + F32x8::splat(c);
        let fused = f32::mul_add(a, b, c);
        assert_ne!(scalar.to_bits(), fused.to_bits(), "test inputs degenerate");
        for k in 0..8 {
            assert_eq!(lanes[k].to_bits(), scalar.to_bits());
        }
    }
}
