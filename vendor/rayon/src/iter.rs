//! Lazily-split parallel iterators.
//!
//! The model is rayon's producer/splitter plumbing, scaled down to the
//! surface this workspace uses:
//!
//! * a [`ParallelSource`] knows its exact length and can hand a
//!   [`Producer`] to a [`ProducerCallback`] (the callback indirection
//!   lets producers borrow from a stack frame the source sets up, e.g.
//!   the slot buffer a `Vec` source drains into);
//! * a [`Producer`] is **recursively splittable in O(1)** (`split_at`)
//!   and degrades into a plain sequential iterator at the leaves;
//! * the driver ([`drive`]) turns a producer into a binary `join` tree:
//!   each split pushes one half onto the worker's deque and recurses
//!   into the other, so **no per-item (or even per-leaf) heap jobs are
//!   ever allocated** — idle workers steal the pushed halves and split
//!   them further. Splitting stops after ~4 leaves per worker or at the
//!   [`ParIter::with_min_len`] floor, whichever is coarser.
//!
//! Scheduling never changes results: every item is processed exactly
//! once, `zip`/`enumerate` pairings and `map().collect()` output order
//! are positional, and the engine above only performs disjoint writes —
//! so outputs are bit-identical for any worker count and any steal
//! interleaving.

use std::ops::Range;

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

/// A splittable, exactly-sized producer of parallel work items.
pub trait Producer: Send + Sized {
    /// The work items handed to the consumer.
    type Item: Send;
    /// Sequential iterator used for leaf execution.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Exact number of remaining items.
    fn len(&self) -> usize;

    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the `[0, index)` and `[index, len)` halves — O(1) and
    /// allocation-free.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Degrades into a sequential iterator (leaf execution).
    fn into_iter(self) -> Self::IntoIter;
}

/// Generic callback through which a [`ParallelSource`] hands over its
/// producer (whose concrete type may borrow from the source's frame).
pub trait ProducerCallback<I> {
    /// The value returned through the callback chain.
    type Output;
    /// Receives the materialised producer.
    fn callback<P: Producer<Item = I>>(self, producer: P) -> Self::Output;
}

/// A lazily-evaluated source of parallel items with an exact length.
pub trait ParallelSource: Sized {
    /// The work items this source yields.
    type Item: Send;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// True when the source yields no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises the producer and passes it to `cb`.
    fn with_producer<CB: ProducerCallback<Self::Item>>(self, cb: CB) -> CB::Output;
}

// ---------------------------------------------------------------------------
// Driver: producer -> join tree
// ---------------------------------------------------------------------------

/// Split until there are about this many leaves per (apparent) worker —
/// enough slack for stealing to rebalance uneven item costs without
/// approaching per-item dispatch.
const LEAVES_PER_THREAD: usize = 4;

/// Runs `f` over every item of `producer` by recursive binary splitting
/// on the work-stealing pool. Sequential when the apparent thread count
/// is 1 or the region is too small to split.
pub(crate) fn drive<P, F>(producer: P, min_len: usize, f: &F)
where
    P: Producer,
    F: Fn(P::Item) + Sync,
{
    let len = producer.len();
    let threads = crate::current_num_threads();
    let min_len = min_len.max(1);
    if threads <= 1 || len < 2 || len < 2 * min_len {
        for item in producer.into_iter() {
            f(item);
        }
        return;
    }
    let target = (threads * LEAVES_PER_THREAD).clamp(2, len);
    // ceil(log2(target)) splits gives at least `target` leaves.
    let splits = usize::BITS - (target - 1).leading_zeros();
    crate::registry::in_worker(move |_| split_drive(producer, splits, min_len, f));
}

fn split_drive<P, F>(producer: P, splits: u32, min_len: usize, f: &F)
where
    P: Producer,
    F: Fn(P::Item) + Sync,
{
    let len = producer.len();
    if splits == 0 || len < 2 || len < 2 * min_len {
        for item in producer.into_iter() {
            f(item);
        }
        return;
    }
    let (left, right) = producer.split_at(len / 2);
    crate::join(
        || split_drive(left, splits - 1, min_len, f),
        || split_drive(right, splits - 1, min_len, f),
    );
}

// ---------------------------------------------------------------------------
// Public combinator surface
// ---------------------------------------------------------------------------

/// A parallel iterator: a lazily-split [`ParallelSource`] plus a minimum
/// leaf length.
pub struct ParIter<S> {
    source: S,
    min_len: usize,
}

impl<S: ParallelSource> ParIter<S> {
    pub(crate) fn new(source: S) -> Self {
        ParIter { source, min_len: 1 }
    }

    /// Pairs items positionally with another source's, truncating to the
    /// shorter (pairings are independent of scheduling).
    pub fn zip<T: ParallelSource>(self, other: ParIter<T>) -> ParIter<ZipSource<S, T>> {
        ParIter {
            source: ZipSource {
                a: self.source,
                b: other.source,
            },
            min_len: self.min_len.max(other.min_len),
        }
    }

    /// Attaches each item's position (stable under any split tree).
    pub fn enumerate(self) -> ParIter<EnumerateSource<S>> {
        ParIter {
            source: EnumerateSource { base: self.source },
            min_len: self.min_len,
        }
    }

    /// Lower-bounds the number of items a leaf task processes, limiting
    /// how finely the driver splits this iterator.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Runs `f` once per item on the pool; returns when all are done.
    /// The first panic's original payload is re-raised on the caller.
    pub fn for_each<F: Fn(S::Item) + Sync>(self, f: F) {
        let min_len = self.min_len;
        self.source.with_producer(ForEachCb { f: &f, min_len });
    }

    /// Maps items in parallel; collect with [`ParMap::collect`].
    pub fn map<R: Send, F: Fn(S::Item) -> R + Sync>(self, f: F) -> ParMap<S, F> {
        ParMap {
            source: self.source,
            f,
            min_len: self.min_len,
        }
    }

    /// The exact number of items.
    pub fn len(&self) -> usize {
        self.source.len()
    }

    /// True when no items remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct ForEachCb<'f, F> {
    f: &'f F,
    min_len: usize,
}

impl<I, F> ProducerCallback<I> for ForEachCb<'_, F>
where
    I: Send,
    F: Fn(I) + Sync,
{
    type Output = ();
    fn callback<P: Producer<Item = I>>(self, producer: P) {
        drive(producer, self.min_len, self.f);
    }
}

/// Pending parallel map, produced by [`ParIter::map`].
pub struct ParMap<S, F> {
    source: S,
    f: F,
    min_len: usize,
}

impl<S: ParallelSource, F> ParMap<S, F> {
    /// Runs the map on the pool and collects results **in item order**:
    /// each item's result is written into its positional slot (disjoint
    /// writes), so the output is independent of scheduling. The only
    /// allocation beyond the collection itself is one slot buffer per
    /// call — never per item.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(S::Item) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.source.len();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        self.source.with_producer(CollectCb {
            slots: &mut slots,
            f: &self.f,
            min_len: self.min_len,
        });
        slots
            .into_iter()
            .map(|s| s.expect("map item produced no result"))
            .collect()
    }
}

struct CollectCb<'a, R, F> {
    slots: &'a mut [Option<R>],
    f: &'a F,
    min_len: usize,
}

impl<I, R, F> ProducerCallback<I> for CollectCb<'_, R, F>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    type Output = ();
    fn callback<P: Producer<Item = I>>(self, producer: P) {
        debug_assert_eq!(producer.len(), self.slots.len());
        let zipped = ZipProducer {
            a: producer,
            b: IterMutProducer { slice: self.slots },
        };
        let f = self.f;
        let body = move |(item, slot): (I, &mut Option<R>)| {
            *slot = Some(f(item));
        };
        drive(zipped, self.min_len, &body);
    }
}

// ---------------------------------------------------------------------------
// Slice sources
// ---------------------------------------------------------------------------

/// Source for [`par_chunks`](crate::slice::ParallelSlice::par_chunks).
pub struct SliceChunks<'a, T> {
    pub(crate) slice: &'a [T],
    pub(crate) size: usize,
}

/// Producer counterpart of [`SliceChunks`].
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelSource for SliceChunks<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn with_producer<CB: ProducerCallback<Self::Item>>(self, cb: CB) -> CB::Output {
        cb.callback(ChunksProducer {
            slice: self.slice,
            size: self.size,
        })
    }
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        // `index` counts chunks; the left part's element count is a
        // multiple of `size`, so chunk boundaries are preserved.
        let at = (index * self.size).min(self.slice.len());
        let (left, right) = self.slice.split_at(at);
        (
            ChunksProducer {
                slice: left,
                size: self.size,
            },
            ChunksProducer {
                slice: right,
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Source for [`par_chunks_mut`](crate::slice::ParallelSliceMut::par_chunks_mut).
pub struct SliceChunksMut<'a, T> {
    pub(crate) slice: &'a mut [T],
    pub(crate) size: usize,
}

/// Producer counterpart of [`SliceChunksMut`].
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelSource for SliceChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn with_producer<CB: ProducerCallback<Self::Item>>(self, cb: CB) -> CB::Output {
        cb.callback(ChunksMutProducer {
            slice: self.slice,
            size: self.size,
        })
    }
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (left, right) = self.slice.split_at_mut(at);
        (
            ChunksMutProducer {
                slice: left,
                size: self.size,
            },
            ChunksMutProducer {
                slice: right,
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Source for [`par_iter_mut`](crate::slice::ParallelSliceMut::par_iter_mut).
pub struct SliceIterMut<'a, T> {
    pub(crate) slice: &'a mut [T],
}

/// Producer counterpart of [`SliceIterMut`].
pub struct IterMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelSource for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn with_producer<CB: ProducerCallback<Self::Item>>(self, cb: CB) -> CB::Output {
        cb.callback(IterMutProducer { slice: self.slice })
    }
}

impl<'a, T: Send> Producer for IterMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at_mut(index);
        (
            IterMutProducer { slice: left },
            IterMutProducer { slice: right },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}

// ---------------------------------------------------------------------------
// Owned sources: Vec and Range
// ---------------------------------------------------------------------------

/// Source for `Vec::into_par_iter`.
///
/// Items are parked in a slot buffer (one allocation per drive, not per
/// item) and moved out lazily by whichever worker claims each slot's
/// range; slots left unconsumed by a panic drop with the buffer.
pub struct VecSource<T> {
    pub(crate) items: Vec<T>,
}

/// Producer over a [`VecSource`]'s slot buffer.
pub struct TakeProducer<'a, T> {
    slots: &'a mut [Option<T>],
}

/// Leaf iterator of [`TakeProducer`].
pub struct TakeIter<'a, T> {
    inner: std::slice::IterMut<'a, Option<T>>,
}

impl<T: Send> Iterator for TakeIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.inner
            .next()
            .map(|slot| slot.take().expect("parallel item already consumed"))
    }
}

impl<T: Send> ParallelSource for VecSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn with_producer<CB: ProducerCallback<Self::Item>>(self, cb: CB) -> CB::Output {
        let mut slots: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        cb.callback(TakeProducer { slots: &mut slots })
    }
}

impl<'a, T: Send> Producer for TakeProducer<'a, T> {
    type Item = T;
    type IntoIter = TakeIter<'a, T>;
    fn len(&self) -> usize {
        self.slots.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slots.split_at_mut(index);
        (TakeProducer { slots: left }, TakeProducer { slots: right })
    }
    fn into_iter(self) -> Self::IntoIter {
        TakeIter {
            inner: self.slots.iter_mut(),
        }
    }
}

/// Source for `Range::<usize>::into_par_iter`.
pub struct RangeSource {
    pub(crate) range: Range<usize>,
}

/// Producer counterpart of [`RangeSource`].
pub struct RangeProducer {
    range: Range<usize>,
}

impl ParallelSource for RangeSource {
    type Item = usize;
    fn len(&self) -> usize {
        self.range.len()
    }
    fn with_producer<CB: ProducerCallback<Self::Item>>(self, cb: CB) -> CB::Output {
        cb.callback(RangeProducer { range: self.range })
    }
}

impl Producer for RangeProducer {
    type Item = usize;
    type IntoIter = Range<usize>;
    fn len(&self) -> usize {
        self.range.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (
            RangeProducer {
                range: self.range.start..mid,
            },
            RangeProducer {
                range: mid..self.range.end,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.range
    }
}

// ---------------------------------------------------------------------------
// Combinator sources: zip and enumerate
// ---------------------------------------------------------------------------

/// Source pairing two sources positionally (see [`ParIter::zip`]).
pub struct ZipSource<A, B> {
    a: A,
    b: B,
}

/// Producer pairing two producers of equal length.
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelSource, B: ParallelSource> ParallelSource for ZipSource<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn with_producer<CB: ProducerCallback<Self::Item>>(self, cb: CB) -> CB::Output {
        let len = self.len();
        self.a.with_producer(ZipCbA { b: self.b, cb, len })
    }
}

struct ZipCbA<B, CB> {
    b: B,
    cb: CB,
    len: usize,
}

impl<I, B, CB> ProducerCallback<I> for ZipCbA<B, CB>
where
    I: Send,
    B: ParallelSource,
    CB: ProducerCallback<(I, B::Item)>,
{
    type Output = CB::Output;
    fn callback<P: Producer<Item = I>>(self, a: P) -> CB::Output {
        self.b.with_producer(ZipCbB {
            a,
            cb: self.cb,
            len: self.len,
        })
    }
}

struct ZipCbB<A, CB> {
    a: A,
    cb: CB,
    len: usize,
}

impl<J, A, CB> ProducerCallback<J> for ZipCbB<A, CB>
where
    J: Send,
    A: Producer,
    CB: ProducerCallback<(A::Item, J)>,
{
    type Output = CB::Output;
    fn callback<Q: Producer<Item = J>>(self, b: Q) -> CB::Output {
        // Truncate both sides to the common length so every later
        // `split_at` hits both producers at identical positions.
        let mut a = self.a;
        let mut b = b;
        if a.len() > self.len {
            a = a.split_at(self.len).0;
        }
        if b.len() > self.len {
            b = b.split_at(self.len).0;
        }
        self.cb.callback(ZipProducer { a, b })
    }
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipProducer { a: al, b: bl }, ZipProducer { a: ar, b: br })
    }
    fn into_iter(self) -> Self::IntoIter {
        self.a.into_iter().zip(self.b.into_iter())
    }
}

/// Source attaching positional indices (see [`ParIter::enumerate`]).
pub struct EnumerateSource<S> {
    base: S,
}

/// Producer counterpart of [`EnumerateSource`].
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<S: ParallelSource> ParallelSource for EnumerateSource<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn with_producer<CB: ProducerCallback<Self::Item>>(self, cb: CB) -> CB::Output {
        self.base.with_producer(EnumerateCb { cb })
    }
}

struct EnumerateCb<CB> {
    cb: CB,
}

impl<I, CB> ProducerCallback<I> for EnumerateCb<CB>
where
    I: Send,
    CB: ProducerCallback<(usize, I)>,
{
    type Output = CB::Output;
    fn callback<P: Producer<Item = I>>(self, base: P) -> CB::Output {
        self.cb.callback(EnumerateProducer { base, offset: 0 })
    }
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = std::iter::Zip<Range<usize>, P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (
            EnumerateProducer {
                base: left,
                offset: self.offset,
            },
            EnumerateProducer {
                base: right,
                offset: self.offset + index,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        let indices = self.offset..self.offset + self.base.len();
        indices.zip(self.base.into_iter())
    }
}

// ---------------------------------------------------------------------------
// IntoParallelIterator
// ---------------------------------------------------------------------------

/// `into_par_iter` on owned collections.
pub trait IntoParallelIterator {
    /// The item type handed to each task.
    type Item: Send;
    /// The lazily-split source backing the iterator.
    type Source: ParallelSource<Item = Self::Item>;

    /// Builds the lazy parallel iterator (no work is dispatched yet).
    fn into_par_iter(self) -> ParIter<Self::Source>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = VecSource<T>;
    fn into_par_iter(self) -> ParIter<VecSource<T>> {
        ParIter::new(VecSource { items: self })
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Source = RangeSource;
    fn into_par_iter(self) -> ParIter<RangeSource> {
        ParIter::new(RangeSource { range: self })
    }
}
