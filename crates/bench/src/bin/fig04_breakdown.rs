//! Regenerates the paper's Fig. 04fig04 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig04::run(instant3d_bench::quick_requested());
}
