//! Parallel slice extension traits.

use crate::iter::{ParIter, SliceChunks, SliceChunksMut, SliceIterMut};

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Lazily-split chunked view: `size` elements per chunk (last may be
    /// short). Nothing is materialised — chunks are carved out on demand
    /// as the driver splits the slice.
    fn par_chunks(&self, size: usize) -> ParIter<SliceChunks<'_, T>>;
}

/// `par_chunks_mut` / `par_iter_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Lazily-split chunked mutable view (disjoint chunks).
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<SliceChunksMut<'_, T>>;

    /// One item per element.
    fn par_iter_mut(&mut self) -> ParIter<SliceIterMut<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<SliceChunks<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(SliceChunks { slice: self, size })
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<SliceChunksMut<'_, T>> {
        assert!(size > 0, "chunk size must be positive");
        ParIter::new(SliceChunksMut { slice: self, size })
    }

    fn par_iter_mut(&mut self) -> ParIter<SliceIterMut<'_, T>> {
        ParIter::new(SliceIterMut { slice: self })
    }
}
