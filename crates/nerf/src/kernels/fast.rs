//! The first lossy-tier backend: fused multiply-add kernels with
//! runtime-detected AVX2/FMA specializations.
//!
//! [`FastKernels`] rewrites the three training hot paths — MLP GEMV
//! forward/backward, grid-encode corner interpolation, compositing —
//! with `f32::mul_add`: one rounding per multiply-accumulate instead of
//! two, and (where AVX2+FMA is present) a single `vfmadd` instruction
//! per lane instead of a multiply + add pair. That breaks the strict
//! tier's bit-identity contract, so the backend registers as
//! [`Tier::Lossy`](super::Tier::Lossy) with the tolerance declared in
//! [`FastKernels::TOLERANCE`] — enforced per-kernel by the tolerance
//! differential suite and end-to-end by the PSNR/SSIM gate.
//!
//! Two properties worth keeping in mind:
//!
//! - **Deterministic everywhere.** `f32::mul_add` is correctly rounded
//!   on every Rust target (hardware `vfmadd` and the portable libm
//!   fallback agree bit-for-bit), and the fast kernels run the identical
//!   per-point fused sequence on the lane path and the scalar tail. So
//!   `fast` results are reproducible across machines, chunkings and
//!   worker counts — they are *lossy relative to the scalar reference*,
//!   not nondeterministic.
//! - **Feature detection is a speed switch, not a numerics switch.**
//!   Where AVX2+FMA is absent the same fused bodies compile to SSE2 /
//!   libm `fmaf` code paths with the same bits, so the backend registers
//!   (and is [`available`](super::Kernels::available)) on every host —
//!   it is merely slower without the wide FMA units.

use super::{Kernels, Tier, Tolerance};
use crate::grid::HashGrid;
use crate::math::Vec3;
use crate::mlp::{GemvMode, Mlp, MlpBatchWorkspace, MlpGradients};
use crate::render::{composite_slices_fast, RenderOutput};
use std::any::Any;

/// The fused-FMA lossy backend (`"fast"`). See the module docs for the
/// contract; [`FastKernels::TOLERANCE`] for the declared error bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastKernels;

impl FastKernels {
    /// The declared numeric contract: per-kernel element error within
    /// `rel·|ref| + norm·‖ref‖∞` or 64 ULPs, end-to-end PSNR within
    /// 0.05 dB and SSIM within 1e-3 of the scalar golden eval.
    pub const TOLERANCE: Tolerance = Tolerance {
        max_rel_error: 1e-4,
        max_norm_error: 1e-4,
        max_ulps: 64,
        max_psnr_drop_db: 0.05,
        max_ssim_drop: 1e-3,
    };

    /// Constructs the backend (stateless; exists for registry symmetry).
    pub fn new() -> Self {
        FastKernels
    }
}

impl Kernels for FastKernels {
    fn name(&self) -> &'static str {
        "fast"
    }

    fn tier(&self) -> Tier {
        Tier::Lossy(Self::TOLERANCE)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn grid_encode_chunk(&self, grid: &HashGrid, unit_positions: &[Vec3], out: &mut [f32]) {
        grid.encode_batch_fast(unit_positions, out);
    }

    fn grid_encode_levels_chunk(
        &self,
        grid: &HashGrid,
        levels: &[usize],
        unit_positions: &[Vec3],
        out: &mut [f32],
    ) {
        for &l in levels {
            grid.encode_level_fast(l, unit_positions, out);
        }
    }

    fn grid_scatter_level(
        &self,
        grid: &HashGrid,
        level: usize,
        level_grads: &mut [f32],
        unit_positions: &[Vec3],
        d_out: &[f32],
    ) {
        grid.scatter_level_fast(level, level_grads, unit_positions, d_out);
    }

    fn mlp_forward_batch<'w>(
        &self,
        mlp: &Mlp,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32] {
        mlp.forward_batch_impl(GemvMode::Fused, inputs, ws)
    }

    fn mlp_backward_batch(
        &self,
        mlp: &Mlp,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        mlp.backward_batch_impl(GemvMode::Fused, d_output, ws, grads, d_input);
    }

    fn composite_ray(
        &self,
        t: &[f32],
        dt: &[f32],
        sigma: &[f32],
        rgb: &[Vec3],
        background: Vec3,
        cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> (RenderOutput, usize) {
        composite_slices_fast(t, dt, sigma, rgb, background, cache)
    }
}
