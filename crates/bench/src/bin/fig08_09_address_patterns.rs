//! Regenerates the paper's Fig. 08_09fig08_09 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig08_09::run(instant3d_bench::quick_requested());
}
