//! A small hand-rolled Rust lexer — just enough tokenization for the
//! conformance lint passes, with no external dependencies.
//!
//! The passes only need to (a) find identifiers *in code* (never inside
//! comments or string literals), (b) read comment text (the marker
//! grammar lives in line comments), and (c) match delimiters to compute
//! item spans. So the lexer distinguishes comments (line and nested
//! block), string-like literals (plain/raw/byte strings, char literals),
//! lifetimes, numbers, identifiers and single-character punctuation —
//! and tracks the 1-based source line of every token.

/// Token classes the lint passes care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// `// …` (including `///` and `//!` doc comments), text inclusive.
    LineComment,
    /// `/* … */` with arbitrary nesting, text inclusive.
    BlockComment,
    /// `"…"`, `b"…"` — escape-aware, may span lines.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` — hash-delimited, may span lines.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'ident` (no closing quote).
    Lifetime,
    /// Numeric literal (integer or float, suffixes included).
    Num,
    /// Any other single character.
    Punct,
}

/// One token: kind, exact source text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Unterminated constructs (string/comment running to
/// EOF) produce a final token covering the rest of the input — the lints
/// degrade gracefully instead of panicking on them.
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let n = chars.len();
    let end_of = |j: usize| chars.get(j).map_or(src.len(), |&(p, _)| p);
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;

    // Lines spanned by src[from..to] — newlines inside multi-line tokens
    // must advance the line counter too.
    let newlines = |from: usize, to: usize| src[from..to].matches('\n').count() as u32;

    while i < n {
        let (pos, c) = chars[i];
        let tok_line = line;

        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n {
            let c1 = chars[i + 1].1;
            if c1 == '/' {
                let mut j = i + 2;
                while j < n && chars[j].1 != '\n' {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: &src[pos..end_of(j)],
                    line: tok_line,
                });
                i = j;
                continue;
            }
            if c1 == '*' {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    let cj = chars[j].1;
                    if cj == '/' && j + 1 < n && chars[j + 1].1 == '*' {
                        depth += 1;
                        j += 2;
                    } else if cj == '*' && j + 1 < n && chars[j + 1].1 == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = end_of(j);
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: &src[pos..end],
                    line: tok_line,
                });
                line += newlines(pos, end);
                i = j;
                continue;
            }
        }

        // String-prefix forms: r"…", r#"…"#, r#ident, b"…", b'…', br#"…"#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let c1 = chars[i + 1].1;
            // br…: step past the b and treat like r.
            let (raw_at, is_raw) = if c == 'b' && c1 == 'r' && i + 2 < n {
                let c2 = chars[i + 2].1;
                (i + 2, c2 == '"' || c2 == '#')
            } else if c == 'r' {
                (i + 1, c1 == '"' || c1 == '#')
            } else {
                (i, false)
            };
            if is_raw {
                // Count hashes, then find the closing quote + hashes.
                let mut j = raw_at;
                let mut hashes = 0usize;
                while j < n && chars[j].1 == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && chars[j].1 == '"' {
                    j += 1;
                    'scan: while j < n {
                        if chars[j].1 == '"' {
                            let mut k = 0;
                            while k < hashes {
                                match chars.get(j + 1 + k) {
                                    Some(&(_, '#')) => k += 1,
                                    _ => {
                                        j += 1;
                                        continue 'scan;
                                    }
                                }
                            }
                            j += 1 + hashes;
                            break;
                        }
                        j += 1;
                    }
                    let end = end_of(j);
                    toks.push(Tok {
                        kind: TokKind::RawStr,
                        text: &src[pos..end],
                        line: tok_line,
                    });
                    line += newlines(pos, end);
                    i = j;
                    continue;
                }
                // `r#ident` (raw identifier): fall through to ident
                // handling below — `is_raw` was a misread (r# + ident).
            }
            if c == 'b' && c1 == '"' {
                i += 1; // consume the prefix; the '"' case below finishes.
            } else if c == 'b' && c1 == '\'' {
                i += 1; // byte char: the '\'' case below treats it as Char.
            }
        }

        let (pos2, c2) = chars[i];
        // Re-read: the b-prefix may have advanced i.
        if c2 == '"' {
            let mut j = i + 1;
            while j < n {
                match chars[j].1 {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let end = end_of(j);
            toks.push(Tok {
                kind: TokKind::Str,
                text: &src[pos..end],
                line: tok_line,
            });
            line += newlines(pos, end);
            i = j;
            continue;
        }

        if c2 == '\'' {
            // Char literal or lifetime. An escape or a closing quote two
            // chars out means char; otherwise a lifetime (`'a`, `'static`).
            let next = chars.get(i + 1).map(|&(_, ch)| ch);
            let is_char = match next {
                Some('\\') => true,
                Some(ch) if is_ident_start(ch) => {
                    // 'x' is a char; 'x  (no closing quote) is a lifetime.
                    let mut j = i + 2;
                    while j < n && is_ident_continue(chars[j].1) {
                        j += 1;
                    }
                    j < n && chars[j].1 == '\''
                }
                Some(_) => true, // '(' etc: treat as char-ish, scan to quote
                None => false,
            };
            if is_char {
                let mut j = i + 1;
                while j < n {
                    match chars[j].1 {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: &src[pos..end_of(j)],
                    line: tok_line,
                });
                i = j;
            } else {
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j].1) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: &src[pos..end_of(j)],
                    line: tok_line,
                });
                i = j;
            }
            continue;
        }

        if is_ident_start(c2) {
            let mut j = i + 1;
            // r#ident: include the hash and the identifier.
            if c2 == 'r'
                && j < n
                && chars[j].1 == '#'
                && chars.get(j + 1).is_some_and(|&(_, ch)| is_ident_start(ch))
            {
                j += 1;
            }
            while j < n && is_ident_continue(chars[j].1) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: &src[pos2..end_of(j)],
                line: tok_line,
            });
            i = j;
            continue;
        }

        if c2.is_ascii_digit() {
            let mut j = i + 1;
            loop {
                match chars.get(j).map(|&(_, ch)| ch) {
                    Some(ch) if ch.is_ascii_alphanumeric() || ch == '_' => {
                        // Exponent sign: 1e-3, 2E+5.
                        j += 1;
                        if (ch == 'e' || ch == 'E')
                            && matches!(chars.get(j).map(|&(_, c)| c), Some('+') | Some('-'))
                            && chars.get(j + 1).is_some_and(|&(_, c)| c.is_ascii_digit())
                        {
                            j += 1;
                        }
                    }
                    // `1.5` continues the number; `1..n` does not.
                    Some('.') if chars.get(j + 1).is_some_and(|&(_, ch)| ch.is_ascii_digit()) => {
                        j += 2;
                    }
                    _ => break,
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: &src[pos2..end_of(j)],
                line: tok_line,
            });
            i = j;
            continue;
        }

        // Everything else: one punct char.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: &src[pos2..end_of(i + 1)],
            line: tok_line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "a /* outer /* inner */ still outer */ b";
        assert_eq!(
            kinds(src),
            vec![
                (TokKind::Ident, "a"),
                (TokKind::BlockComment, "/* outer /* inner */ still outer */"),
                (TokKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn line_comment_markers_inside_strings_are_not_comments() {
        let src = r##"let x = "// SAFETY: not a real comment"; // real"##;
        let toks = lex(src);
        let comments: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::LineComment)
            .collect();
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].text, "// real");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("SAFETY")));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_slashes() {
        let src = r####"let s = r#"embedded "quote" and // not comment"#; next"####;
        let toks = lex(src);
        let raw = toks.iter().find(|t| t.kind == TokKind::RawStr).unwrap();
        assert!(raw.text.contains("not comment"));
        assert!(idents(src).contains(&"next"));
        assert!(!toks.iter().any(|t| t.kind == TokKind::LineComment));
    }

    #[test]
    fn byte_and_raw_byte_strings_lex_as_one_literal() {
        let src = r####"let a = b"bytes // x"; let b2 = br#"raw "bytes""#;"####;
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.starts_with("b\"")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::RawStr && t.text.starts_with("br#")));
        assert!(!toks.iter().any(|t| t.kind == TokKind::LineComment));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let src = "let c = 'x'; let e = '\\n'; fn f<'a>(x: &'a str, s: &'static u8) {}";
        let toks = lex(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text)
            .collect();
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn byte_char_is_a_char_token() {
        let toks = lex("let b = b'\\xff';");
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#fn = 1; r#type";
        assert!(idents(src).contains(&"r#fn"));
        assert!(idents(src).contains(&"r#type"));
        assert!(!lex(src).iter().any(|t| t.kind == TokKind::RawStr));
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let src = "for i in 0..8 { x[i] = 1.5e-3; }";
        let toks = lex(src);
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["0", "8", "1.5e-3"]);
    }

    #[test]
    fn line_numbers_track_newlines_in_multiline_tokens() {
        let src = "a\n/* two\nlines */\n\"str\nacross\"\nb";
        let toks = lex(src);
        let a = toks.iter().find(|t| t.text == "a").unwrap();
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 6);
    }

    #[test]
    fn mul_add_in_doc_comment_is_not_an_ident() {
        let src = "/// uses `f32::mul_add` internally\nfn f() { let x = a * b + c; }";
        assert!(!idents(src).contains(&"mul_add"));
    }
}
