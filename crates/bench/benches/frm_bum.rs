//! Microbenchmarks of the accelerator's trace-driven units: the FRM
//! reorder window and the BUM merge buffer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_accel::{simulate_baseline_reads, simulate_bum, simulate_frm, BumConfig};
use instant3d_nerf::hash::{spatial_hash, CORNER_OFFSETS};

/// A realistic corner-burst read stream (the §4.2 access pattern).
fn corner_stream(points: usize) -> Vec<u32> {
    let t = 1 << 16;
    let mut out = Vec::with_capacity(points * 8);
    for p in 0..points as u32 {
        let (x, y, z) = (p % 97, (p * 7) % 89, (p * 13) % 83);
        for &(dx, dy, dz) in &CORNER_OFFSETS {
            out.push(spatial_hash(x + dx, y + dy, z + dz, t));
        }
    }
    out
}

/// A BP update stream with the paper's ~5× address reuse.
fn update_stream(n: usize) -> Vec<u64> {
    (0..n).map(|i| ((i / 5) % 4096) as u64).collect()
}

fn bench_frm(c: &mut Criterion) {
    let stream = corner_stream(2_000);
    c.bench_function("frm/map_16k_reads_b8_w16", |b| {
        b.iter(|| black_box(simulate_frm(&stream, 8, 16)))
    });
    c.bench_function("frm/baseline_16k_reads_b8", |b| {
        b.iter(|| black_box(simulate_baseline_reads(&stream, 8, 8)))
    });
}

fn bench_bum(c: &mut Criterion) {
    let stream = update_stream(16_000);
    c.bench_function("bum/merge_16k_updates", |b| {
        b.iter(|| black_box(simulate_bum(&stream, BumConfig::default())))
    });
}

criterion_group!(benches, bench_frm, bench_bum);
criterion_main!(benches);
