//! Golden suite for the tile-streaming renderer (`core::render`).
//!
//! The contract under test: a full-budget tiled frame is **bit-identical**
//! to the monolithic row-chunk renderer
//! (`eval::render_model_view_monolithic`, the executable specification)
//! on every registered strict backend × worker count × tile shape, a
//! budgeted progressive render converges to the same bits within
//! `tile_count` frames, converged tiles are cached across frames and
//! invalidated precisely by hash-grid `level_versions` drift, and
//! steady-state tile rendering mints no workspaces beyond the warmup
//! bound.

use instant3d_core::eval::{
    evaluate, evaluate_with, render_model_view, render_model_view_monolithic,
};
use instant3d_core::pool::WorkspacePool;
use instant3d_core::render::{FrameBudget, FrameScheduler, RenderOptions, DEFAULT_TILE_SIZE};
use instant3d_core::{kernels, BackendHandle, TrainConfig, Trainer};
use instant3d_nerf::camera::Camera;
use instant3d_nerf::image::{DepthImage, RgbImage};
use instant3d_nerf::math::Vec3;
use instant3d_nerf::occupancy::OccupancyGrid;
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    SceneLibrary::synthetic_scene(0, 20, 4, &mut rng)
}

fn config(backend: &BackendHandle) -> TrainConfig {
    let mut cfg = TrainConfig::fast_preview();
    cfg.kernel_backend = backend.clone();
    cfg
}

/// A briefly-trained trainer so frames have real content and the
/// occupancy grid has culled some empty space.
fn trained(backend: &BackendHandle, ds: &Dataset, steps: usize) -> Trainer {
    let mut rng = StdRng::seed_from_u64(9);
    let mut trainer = Trainer::new(config(backend), ds, &mut rng);
    let mut train_rng = StdRng::seed_from_u64(11);
    for _ in 0..steps {
        trainer.step(&mut train_rng);
    }
    trainer
}

fn assert_frames_eq(
    (rgb_a, depth_a): &(RgbImage, DepthImage),
    (rgb_b, depth_b): &(RgbImage, DepthImage),
    label: &str,
) {
    assert_eq!(rgb_a.pixels(), rgb_b.pixels(), "{label}: RGB bits differ");
    assert_eq!(
        depth_a.depths(),
        depth_b.depths(),
        "{label}: depth bits differ"
    );
}

/// Full-budget tiled rendering reproduces the monolithic reference
/// bit-for-bit on every registered strict backend × worker count.
#[test]
fn full_budget_tiled_matches_monolithic_across_backends_and_workers() {
    let ds = dataset(42);
    for backend in kernels::registered_strict() {
        let trainer = trained(&backend, &ds, 8);
        let cam = &ds.test_views[0].camera;
        for workers in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .unwrap();
            pool.install(|| {
                let tiled = render_model_view(trainer.model(), cam, 24, ds.background);
                let mono = render_model_view_monolithic(trainer.model(), cam, 24, ds.background);
                assert_frames_eq(&tiled, &mono, &format!("{}/t{}", backend.name(), workers));
            });
        }
    }
}

/// Tile-boundary seams: every tile shape — including 1×1 tiles, tiles
/// larger than the frame, and frames that are not a multiple of the tile
/// size — partitions the frame into the same bits as the monolithic
/// renderer. Also covers 1×1 frames.
#[test]
fn tile_seams_and_odd_frame_sizes_are_exact() {
    let ds = dataset(7);
    let backend = kernels::strict_from_env_or_default();
    let trainer = trained(&backend, &ds, 4);
    let model = trainer.model();
    let center = model.aabb().center();
    let eye = center + Vec3::new(0.9, 0.7, 1.6);
    for (w, h) in [(1u32, 1u32), (13, 9), (3, 5), (33, 17)] {
        let cam = Camera::look_at(eye, center, Vec3::new(0.0, 1.0, 0.0), 0.9, w, h);
        let mono = render_model_view_monolithic(model, &cam, 16, ds.background);
        for tile in [1u32, 3, 4, DEFAULT_TILE_SIZE, 64] {
            let pool = WorkspacePool::new();
            let mut sched = FrameScheduler::new(
                cam,
                RenderOptions {
                    samples_per_ray: 16,
                    background: ds.background,
                    tile_size: tile,
                },
            );
            let progress = sched.render_frame(model, None, FrameBudget::full(), &pool);
            assert!(progress.complete, "{w}x{h}/tile{tile}: incomplete");
            assert_eq!(progress.tiles_rendered, sched.layout().tile_count());
            assert_frames_eq(&sched.frame(), &mono, &format!("{w}x{h}/tile{tile}"));
        }
    }
}

/// A tile-budgeted progressive render sweeps the frame round-robin and
/// converges to the full-budget bits within `tile_count` frames.
#[test]
fn budgeted_progressive_render_converges_to_full_budget_bits() {
    let ds = dataset(13);
    let backend = kernels::strict_from_env_or_default();
    let trainer = trained(&backend, &ds, 6);
    let cam = &ds.test_views[0].camera;
    let mono = render_model_view_monolithic(trainer.model(), cam, 20, ds.background);

    let pool = WorkspacePool::new();
    let mut sched = FrameScheduler::new(
        *cam,
        RenderOptions {
            samples_per_ray: 20,
            background: ds.background,
            tile_size: 8,
        },
    );
    let tiles = sched.layout().tile_count();
    assert!(tiles > 2, "frame should have several tiles");
    let mut frames = 0;
    loop {
        let progress = sched.render_frame(trainer.model(), None, FrameBudget::tiles(1), &pool);
        frames += 1;
        assert!(progress.tiles_rendered <= 1);
        if progress.complete {
            break;
        }
        assert!(frames <= tiles, "must converge within tile_count frames");
    }
    assert_eq!(frames, tiles, "one tile per frame at budget 1");
    assert_frames_eq(&sched.frame(), &mono, "budgeted convergence");

    // Converged: another frame does no work.
    let progress = sched.render_frame(trainer.model(), None, FrameBudget::full(), &pool);
    assert_eq!(progress.tiles_rendered, 0);
    assert_eq!(progress.tiles_cached, tiles);
    assert!(progress.complete);
}

/// Converged tiles stay cached while the grids are untouched, and a
/// training step (whose sparse Adam updates bump `level_versions`)
/// invalidates exactly the tiles that sampled the grid — the frame then
/// re-renders to the post-step monolithic bits.
#[test]
fn cache_invalidates_on_level_version_bumps() {
    let ds = dataset(21);
    let backend = kernels::strict_from_env_or_default();
    let mut trainer = trained(&backend, &ds, 4);
    let cam = ds.test_views[0].camera;
    let pool = WorkspacePool::new();
    let mut sched = FrameScheduler::new(cam, RenderOptions::new(16, ds.background));

    let p0 = sched.render_frame(trainer.model(), None, FrameBudget::full(), &pool);
    assert!(p0.complete && p0.tiles_rendered > 0);
    // Same model state ⇒ pure cache hits.
    let p1 = sched.render_frame(trainer.model(), None, FrameBudget::full(), &pool);
    assert_eq!(p1.tiles_rendered, 0);
    assert!(sched.is_converged(trainer.model(), None));

    // A training step bumps grid versions ⇒ content tiles re-render and
    // the frame matches a fresh reference render of the stepped model.
    let mut rng = StdRng::seed_from_u64(33);
    trainer.step(&mut rng);
    assert!(!sched.is_converged(trainer.model(), None));
    let p2 = sched.render_frame(trainer.model(), None, FrameBudget::full(), &pool);
    assert!(p2.tiles_rendered > 0 && p2.complete);
    let mono = render_model_view_monolithic(trainer.model(), &cam, 16, ds.background);
    assert_frames_eq(&sched.frame(), &mono, "post-step re-render");
    assert!(sched.telemetry().tiles_invalidated >= p2.tiles_rendered as u64);
}

/// Tiles whose rays never touch the scene volume (pure background) are
/// immune to grid-version bumps: training steps do not invalidate them.
#[test]
fn background_tiles_survive_training_steps() {
    let ds = dataset(29);
    let backend = kernels::strict_from_env_or_default();
    let mut trainer = trained(&backend, &ds, 2);
    let center = trainer.model().aabb().center();
    // Looking directly away from the volume: every ray misses.
    let eye = center + Vec3::new(0.0, 0.0, 40.0);
    let target = center + Vec3::new(0.0, 0.0, 80.0);
    let cam = Camera::look_at(eye, target, Vec3::new(0.0, 1.0, 0.0), 0.8, 12, 12);
    let pool = WorkspacePool::new();
    let mut sched = FrameScheduler::new(cam, RenderOptions::new(16, ds.background));

    let p0 = sched.render_frame(trainer.model(), None, FrameBudget::full(), &pool);
    assert!(p0.complete);
    assert_eq!(sched.telemetry().points, 0, "all rays must miss");
    for p in sched.frame().0.pixels() {
        assert_eq!(*p, ds.background);
    }

    let mut rng = StdRng::seed_from_u64(5);
    trainer.step(&mut rng);
    let p1 = sched.render_frame(trainer.model(), None, FrameBudget::full(), &pool);
    assert_eq!(
        p1.tiles_rendered, 0,
        "background tiles must ignore grid-version bumps"
    );
}

/// Zero steady-state allocation: across many frames, workspace mints are
/// bounded by the worker count while recycles grow with every frame.
/// (Checkout is per runner task per frame — each runner holds one
/// workspace for the whole frame — so the checkout count is bounded by
/// `frames × workers`, not by the tile count.)
#[test]
fn steady_state_rendering_mints_no_workspaces() {
    let ds = dataset(3);
    let backend = kernels::strict_from_env_or_default();
    let trainer = trained(&backend, &ds, 2);
    let workers = 4usize;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .unwrap();
    pool.install(|| {
        let ws_pool = WorkspacePool::new();
        let mut sched = FrameScheduler::new(
            ds.test_views[0].camera,
            RenderOptions {
                samples_per_ray: 12,
                background: ds.background,
                tile_size: 4,
            },
        );
        for _ in 0..8 {
            sched.invalidate_all();
            let progress = sched.render_frame(trainer.model(), None, FrameBudget::full(), &ws_pool);
            assert!(progress.complete);
        }
        let t = *sched.telemetry();
        assert!(
            t.workspaces_minted <= workers as u64,
            "mints {} must be bounded by the worker count {workers}",
            t.workspaces_minted
        );
        // One checkout per runner per frame, never one per tile.
        assert!(
            t.workspaces_minted + t.workspaces_recycled <= (8 * workers) as u64,
            "checkouts must be per-runner-per-frame, not per-tile ({t:?})"
        );
        assert!(
            t.workspaces_recycled > t.workspaces_minted,
            "steady state must be dominated by recycles ({t:?})"
        );
        assert_eq!(ws_pool.parked_batch(), t.workspaces_minted as usize);
    });
}

/// The occupancy flag's default preserves the uniform-sampling metrics
/// bit-for-bit, a fully-empty grid composites to pure background, and
/// guided sampling on a trained model does strictly less work.
#[test]
fn occupancy_guided_eval_flag_and_culling() {
    let ds = dataset(17);
    let backend = kernels::strict_from_env_or_default();
    let trainer = trained(&backend, &ds, 24);
    let model = trainer.model();

    // Default off ⇒ identical EvalResult bits.
    let uniform = evaluate(model, &ds, 12);
    let flagged = evaluate_with(model, &ds, 12, None);
    assert_eq!(uniform, flagged, "default must stay bit-identical");
    // Trainer with the config flag off agrees too (at its own eval
    // sample count).
    let n_eval = trainer.config().eval_samples_per_ray;
    assert_eq!(evaluate(model, &ds, n_eval), trainer.evaluate(&ds));

    // A fully-empty grid culls everything: pure background frames.
    let mut empty = OccupancyGrid::new(model.aabb(), 8);
    for i in 0..empty.num_cells() {
        empty.set_linear(i, false);
    }
    let pool = WorkspacePool::new();
    let cam = ds.test_views[0].camera;
    let mut sched = FrameScheduler::new(cam, RenderOptions::new(12, ds.background));
    sched.render_frame(model, Some(&empty), FrameBudget::full(), &pool);
    for p in sched.frame().0.pixels() {
        assert_eq!(*p, ds.background);
    }
    assert_eq!(sched.telemetry().points, 0);

    // The trainer's own (partially culled) grid samples at most as many
    // points as uniform marching, and the guided score stays finite.
    let occ = trainer
        .occupancy_grid()
        .expect("fast_preview enables occupancy");
    let mut uni_sched = FrameScheduler::new(cam, RenderOptions::new(12, ds.background));
    uni_sched.render_frame(model, None, FrameBudget::full(), &pool);
    let mut occ_sched = FrameScheduler::new(cam, RenderOptions::new(12, ds.background));
    occ_sched.render_frame(model, Some(occ), FrameBudget::full(), &pool);
    assert!(occ_sched.telemetry().points <= uni_sched.telemetry().points);
    let guided = trainer.evaluate_with_occupancy(&ds);
    assert!(guided.rgb_psnr.is_finite() && guided.depth_psnr.is_finite());

    // Occupancy drift (a refreshed grid) invalidates cached tiles even
    // when the hash grids are untouched.
    let mut drifted = occ.clone();
    let flip = drifted.num_cells() / 2;
    drifted.set_linear(flip, !drifted.occupied_linear(flip));
    assert!(occ_sched.is_converged(model, Some(occ)));
    assert!(!occ_sched.is_converged(model, Some(&drifted)));
}

/// `render_model_view` (the thin full-budget client) routes through the
/// process-wide shared workspace pool instead of minting per call.
/// (The strict zero-steady-state bound is pinned with a private pool in
/// `steady_state_rendering_mints_no_workspaces`; the shared pool is
/// process-global, so concurrently running tests make exact counts racy
/// — this test checks only the monotonic routing property.)
#[test]
fn eval_render_routes_through_the_shared_pool() {
    use instant3d_core::render::shared_pool;
    let ds = dataset(31);
    let backend = kernels::strict_from_env_or_default();
    let trainer = trained(&backend, &ds, 2);
    let cam = &ds.test_views[0].camera;
    let _ = render_model_view(trainer.model(), cam, 8, ds.background);
    assert!(
        shared_pool().parked_batch() >= 1,
        "eval rendering must park its workspaces in the shared pool"
    );
}
