//! Shared plumbing for the measured (training-based) experiments.

use instant3d_core::{TrainConfig, Trainer};
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of training one configuration on one scene.
#[derive(Debug, Clone)]
pub struct SceneRun {
    /// Scene name.
    pub scene: String,
    /// Final test RGB PSNR (dB).
    pub psnr: f32,
    /// Final test depth PSNR (dB).
    pub depth_psnr: f32,
    /// Iterations trained.
    pub iterations: u64,
    /// Measured mean queried points per iteration.
    pub points_per_iter: f64,
    /// First evaluated iteration reaching ≥ 25 dB RGB PSNR, if any.
    pub iters_to_25db: Option<u64>,
    /// PSNR trajectory `(iteration, rgb, depth)` at the eval cadence.
    pub history: Vec<(u64, f32, f32)>,
}

/// Builds the synthetic dataset for `scene_idx` at the quick/full shape.
pub fn synthetic_dataset(scene_idx: usize, quick: bool, seed: u64) -> Dataset {
    let (res, views) = crate::workloads::dataset_shape(quick);
    let mut rng = StdRng::seed_from_u64(seed);
    SceneLibrary::synthetic_scene(scene_idx, res, views, &mut rng)
}

/// Trains `cfg` on `ds` for `iters` iterations, evaluating every
/// `eval_every` (0 = end only). Deterministic per `seed`.
pub fn run_on_dataset(
    cfg: &TrainConfig,
    ds: &Dataset,
    iters: u64,
    eval_every: u64,
    seed: u64,
) -> SceneRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trainer = Trainer::new(cfg.clone(), ds, &mut rng);
    let report = trainer.train_with_eval(iters, eval_every, Some(ds), &mut rng);
    let history: Vec<(u64, f32, f32)> = report
        .psnr_history
        .iter()
        .map(|p| (p.iteration, p.rgb_psnr, p.depth_psnr))
        .collect();
    let iters_to_25db = history
        .iter()
        .find(|(_, rgb, _)| *rgb >= 25.0)
        .map(|(i, _, _)| *i);
    SceneRun {
        scene: ds.name.clone(),
        psnr: report.final_psnr,
        depth_psnr: report.final_depth_psnr,
        iterations: report.iterations,
        points_per_iter: report.stats.points_per_iter(),
        iters_to_25db,
        history,
    }
}

/// Mean over an extractor, ignoring NaNs.
pub fn mean_of<F: Fn(&SceneRun) -> f32>(runs: &[SceneRun], f: F) -> f32 {
    let vals: Vec<f32> = runs.iter().map(&f).filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        f32::NAN
    } else {
        vals.iter().sum::<f32>() / vals.len() as f32
    }
}

/// Trains `cfg` on `ds`, capturing grid-access traces on the listed
/// iterations (0-based). Returns the trace and the trainer (whose model
/// provides grid-level metadata for flat addressing).
pub fn capture_trace(
    cfg: &instant3d_core::TrainConfig,
    ds: &Dataset,
    capture_iters: &[u64],
    budget: u64,
    capacity: usize,
    seed: u64,
) -> (instant3d_trace::Trace, Trainer) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trainer = Trainer::new(cfg.clone(), ds, &mut rng);
    let mut collector = instant3d_trace::TraceCollector::new(capacity);
    for it in 0..budget {
        if capture_iters.contains(&it) {
            collector.begin_iteration(it as u32);
            trainer.step_observed(&mut rng, &mut collector);
        } else {
            trainer.step(&mut rng);
        }
    }
    (collector.into_trace(), trainer)
}

/// Like [`capture_trace`], but uses a fresh collector per captured
/// iteration so late captures cannot be starved by the capacity cap.
/// Returns `(iteration, trace)` pairs in capture order.
pub fn capture_traces_per_iter(
    cfg: &instant3d_core::TrainConfig,
    ds: &Dataset,
    capture_iters: &[u64],
    budget: u64,
    capacity_per_iter: usize,
    seed: u64,
) -> (Vec<(u64, instant3d_trace::Trace)>, Trainer) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trainer = Trainer::new(cfg.clone(), ds, &mut rng);
    let mut out = Vec::with_capacity(capture_iters.len());
    for it in 0..budget {
        if capture_iters.contains(&it) {
            let mut collector = instant3d_trace::TraceCollector::new(capacity_per_iter);
            collector.begin_iteration(it as u32);
            trainer.step_observed(&mut rng, &mut collector);
            out.push((it, collector.into_trace()));
        } else {
            trainer.step(&mut rng);
        }
    }
    (out, trainer)
}

/// Flattens trace records of one phase+branch into whole-table entry
/// addresses (`level_offset + in-level addr`) in capture order — the
/// address stream a grid core's SRAM banking sees.
pub fn flat_stream(
    trace: &instant3d_trace::Trace,
    trainer: &Trainer,
    phase: instant3d_nerf::grid::AccessPhase,
    branch: instant3d_nerf::grid::GridBranch,
) -> Vec<u32> {
    let grid = match branch {
        instant3d_nerf::grid::GridBranch::Density => trainer.model().density_grid(),
        instant3d_nerf::grid::GridBranch::Color => match trainer.model().color_grid() {
            Some(g) => g,
            None => return Vec::new(),
        },
    };
    let offsets: Vec<u32> = grid.levels().iter().map(|l| l.entry_offset).collect();
    trace
        .records
        .iter()
        .filter(|r| r.phase == phase && r.branch == branch)
        .map(|r| offsets[r.level as usize] + r.addr)
        .collect()
}
