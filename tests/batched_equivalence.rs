//! Cross-crate golden tests: the batched engine's trace capture must keep
//! every `crates/trace` analysis valid — the access *multiset* is
//! identical to the scalar reference path's, and within each phase the
//! capture order is identical too (the batched engine only regroups the
//! phases: all feed-forward reads, then all scatter writes).

use instant3d::core::{TrainConfig, Trainer};
use instant3d::nerf::grid::AccessPhase;
use instant3d::scenes::SceneLibrary;
use instant3d::trace::record::AccessRecord;
use instant3d::trace::TraceCollector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn capture(
    batched: bool,
) -> (
    instant3d::trace::record::Trace,
    instant3d::core::WorkloadStats,
) {
    let mut rng = StdRng::seed_from_u64(2);
    let ds = SceneLibrary::synthetic_scene(0, 16, 4, &mut rng);
    let mut seed = StdRng::seed_from_u64(3);
    let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut seed);
    let mut step_rng = StdRng::seed_from_u64(4);
    let mut tc = TraceCollector::new(4_000_000);
    for i in 0..3 {
        tc.begin_iteration(i);
        if batched {
            trainer.step_observed(&mut step_rng, &mut tc);
        } else {
            trainer.step_scalar_observed(&mut step_rng, &mut tc);
        }
    }
    (tc.into_trace(), *trainer.stats())
}

fn phase_key(r: &AccessRecord) -> (u32, instant3d::nerf::grid::GridBranch, u32, u8, u32) {
    (r.iter, r.branch, r.level, r.corner, r.addr)
}

#[test]
fn batched_trace_is_order_normalized_identical_to_scalar() {
    let (batched, stats_b) = capture(true);
    let (scalar, stats_s) = capture(false);
    assert_eq!(stats_b, stats_s, "workload accounting must agree");
    assert_eq!(batched.len(), scalar.len(), "same number of accesses");
    assert_eq!(
        batched.order_normalized(),
        scalar.order_normalized(),
        "access multisets must be identical"
    );
}

#[test]
fn batched_trace_preserves_within_phase_capture_order() {
    let (batched, _) = capture(true);
    let (scalar, _) = capture(false);
    for phase in [AccessPhase::FeedForward, AccessPhase::BackProp] {
        let b: Vec<_> = batched.phase(phase).map(phase_key).collect();
        let s: Vec<_> = scalar.phase(phase).map(phase_key).collect();
        assert_eq!(b, s, "{phase:?} stream order must match the scalar path");
    }
}

#[test]
fn batched_trace_drives_figure_analyses_identically() {
    // The Fig. 8/9/10 inputs derived from the trace must be unchanged.
    let (batched, _) = capture(true);
    let (scalar, _) = capture(false);
    assert_eq!(batched.ff_stream(), scalar.ff_stream());
    assert_eq!(
        batched.bp_stream_level_major(),
        scalar.bp_stream_level_major()
    );
}
