//! The density occupancy grid Instant-NGP uses to skip empty space —
//! rebuilt as a batched, cached subsystem.
//!
//! A coarse boolean voxelisation of the scene AABB, refreshed periodically
//! from the model's current density field. Rays skip samples that land in
//! unoccupied voxels, which is what brings the per-iteration point count
//! from `rays × samples` down to the ~200 k the paper reports.
//!
//! Three layers make refreshes cheap enough to run on-device:
//!
//! * **Packed Morton bitfield** — occupancy is stored as one bit per cell
//!   in [`u64`] words indexed by the cell's 3D Morton (Z-order) code, so
//!   spatially adjacent cells share cache lines during ray marching
//!   ([`OccupancyGrid::occupied_at`] is a couple of shifts + one load).
//! * **Batched refresh** — [`OccupancyWorkspace::refresh`] probes cell
//!   densities through the same SoA kernel seams the trainer uses
//!   (`HashGrid::par_encode_batch_levels_with` + `Mlp::forward_batch_with`),
//!   dispatched on the workspace's kernel backend ([`crate::kernels`])
//!   and bit-identical to evaluating the
//!   closure paths ([`OccupancyGrid::update_from_fn`] /
//!   [`OccupancyGrid::update_ema`]) cell by cell.
//! * **Amortisation** — the workspace keeps a persistent cell→embedding
//!   cache invalidated per grid level via [`HashGrid::level_versions`]
//!   (levels whose parameters didn't change are never re-encoded) and can
//!   rotate through a strided cell subset across refreshes
//!   (instant-ngp-style), so steady-state refreshes touch only dirty
//!   levels and `1/k` of the cells.
//!
//! The closure paths remain the executable specification; the batched
//! refresh is differential-tested against them bit-for-bit across
//! backends and worker counts (`crates/nerf/tests/occupancy_differential.rs`).

use crate::grid::HashGrid;
use crate::kernels::BackendHandle;
use crate::math::{Aabb, Vec3};
use crate::mlp::{Mlp, MlpBatchWorkspace};

/// Spreads the low 21 bits of `v`, inserting two zero bits between
/// consecutive bits (the "part 1 by 2" step of 3D Morton encoding).
#[inline]
fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff;
    x = (x | (x << 32)) & 0x1f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x1f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// The 3D Morton (Z-order) code of a cell coordinate: the bits of `x`,
/// `y` and `z` interleaved (`x` in bit 0). Valid for coordinates up to
/// 2²¹ − 1 per axis.
#[inline]
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    part1by2(x as u64) | (part1by2(y as u64) << 1) | (part1by2(z as u64) << 2)
}

/// A coarse boolean occupancy voxelisation of an AABB, stored as a packed
/// Morton-indexed bitfield.
///
/// # Example
///
/// ```
/// use instant3d_nerf::occupancy::OccupancyGrid;
/// use instant3d_nerf::math::{Aabb, Vec3};
///
/// let mut occ = OccupancyGrid::new(Aabb::UNIT, 16);
/// occ.update_from_fn(|p| if p.x > 0.5 { 10.0 } else { 0.0 }, 1.0);
/// assert!(occ.occupied_at(Vec3::new(0.9, 0.5, 0.5)));
/// assert!(!occ.occupied_at(Vec3::new(0.1, 0.5, 0.5)));
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyGrid {
    aabb: Aabb,
    resolution: u32,
    /// `resolution³` — the logical cell count (the Morton index space is
    /// padded to the next power of two per axis; padding bits stay zero).
    num_cells: usize,
    /// One bit per cell at bit position `morton3(cx, cy, cz)`.
    words: Vec<u64>,
}

impl OccupancyGrid {
    /// Creates a fully-occupied grid (conservative start: nothing skipped
    /// until the first density update).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn new(aabb: Aabb, resolution: u32) -> Self {
        assert!(resolution > 0, "resolution must be non-zero");
        let pow2 = resolution.next_power_of_two() as u64;
        let bit_space = pow2 * pow2 * pow2;
        let mut occ = OccupancyGrid {
            aabb,
            resolution,
            num_cells: (resolution as usize).pow(3),
            words: vec![0u64; bit_space.div_ceil(64) as usize],
        };
        occ.fill();
        occ
    }

    /// The grid's bounding volume.
    pub fn aabb(&self) -> Aabb {
        self.aabb
    }

    /// Cells per axis.
    pub fn resolution(&self) -> u32 {
        self.resolution
    }

    /// Total number of (logical) cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// The packed bitfield: one bit per cell at position
    /// `morton3(cx, cy, cz)`. Bits at Morton codes of padded coordinates
    /// (≥ `resolution` on any axis) are always zero, so popcounts over the
    /// words count exactly the occupied cells.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    fn bit(cx: u32, cy: u32, cz: u32) -> (usize, u64) {
        let m = morton3(cx, cy, cz);
        ((m >> 6) as usize, 1u64 << (m & 63))
    }

    /// Cell coordinates of a linear (x-fastest) cell index.
    #[inline]
    fn linear_to_coords(&self, i: usize) -> (u32, u32, u32) {
        let r = self.resolution as usize;
        ((i % r) as u32, ((i / r) % r) as u32, (i / (r * r)) as u32)
    }

    /// Occupancy of the cell at integer coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when a coordinate is out of range.
    #[inline]
    pub fn occupied_cell(&self, cx: u32, cy: u32, cz: u32) -> bool {
        debug_assert!(cx < self.resolution && cy < self.resolution && cz < self.resolution);
        let (w, m) = Self::bit(cx, cy, cz);
        self.words[w] & m != 0
    }

    /// Sets the occupancy bit of the cell at integer coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when a coordinate is out of range.
    #[inline]
    pub fn set_cell(&mut self, cx: u32, cy: u32, cz: u32, occupied: bool) {
        debug_assert!(cx < self.resolution && cy < self.resolution && cz < self.resolution);
        let (w, m) = Self::bit(cx, cy, cz);
        if occupied {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Occupancy of the cell with linear (x-fastest) index `i` — the
    /// ordering of [`OccupancyGrid::cell_centers`].
    #[inline]
    pub fn occupied_linear(&self, i: usize) -> bool {
        let (cx, cy, cz) = self.linear_to_coords(i);
        self.occupied_cell(cx, cy, cz)
    }

    /// Sets the occupancy bit of the cell with linear (x-fastest) index.
    #[inline]
    pub fn set_linear(&mut self, i: usize, occupied: bool) {
        let (cx, cy, cz) = self.linear_to_coords(i);
        self.set_cell(cx, cy, cz, occupied);
    }

    /// True when `p` lies in an occupied cell. Points outside the AABB are
    /// unoccupied by definition — the cheap reject that keeps the sampler
    /// honest even while every in-volume bit is set.
    #[inline]
    pub fn occupied_at(&self, p: Vec3) -> bool {
        let u = self.aabb.to_unit(p);
        if !(0.0..=1.0).contains(&u.x) || !(0.0..=1.0).contains(&u.y) || !(0.0..=1.0).contains(&u.z)
        {
            return false;
        }
        let r = self.resolution;
        let cx = ((u.x * r as f32) as u32).min(r - 1);
        let cy = ((u.y * r as f32) as u32).min(r - 1);
        let cz = ((u.z * r as f32) as u32).min(r - 1);
        self.occupied_cell(cx, cy, cz)
    }

    /// Ray-segment occupancy query: probes the `n` stratum centers of the
    /// ray's `[t0, t1]` span (`t = t0 + (k + 0.5)·δt`, the jitter-free
    /// sampling lattice of `sampler::sample_segments_into`) and reports
    /// whether any lands in an occupied cell, returning at the first hit.
    ///
    /// The tile renderer uses this as the cheap "does this ray touch
    /// anything?" pre-filter: rays through fully-empty space composite to
    /// pure background, so their sample segments never need to be built.
    /// Degenerate spans (`t1 <= t0`) and `n == 0` report unoccupied.
    pub fn ray_segment_occupied(&self, ray: &crate::math::Ray, t0: f32, t1: f32, n: usize) -> bool {
        if t1 <= t0 || n == 0 {
            return false;
        }
        let dt = (t1 - t0) / n as f32;
        (0..n).any(|k| self.occupied_at(ray.at(t0 + (k as f32 + 0.5) * dt)))
    }

    /// A 64-bit FNV-1a digest of the grid's contents (resolution, AABB
    /// and the packed occupancy bits). Two grids with equal signatures
    /// cull the same sample points, so cached render results that only
    /// depended on culling stay valid exactly while the signature holds —
    /// the occupancy half of the tile renderer's invalidation key.
    pub fn content_signature(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.resolution as u64);
        for v in [
            self.aabb.min.x,
            self.aabb.min.y,
            self.aabb.min.z,
            self.aabb.max.x,
            self.aabb.max.y,
            self.aabb.max.z,
        ] {
            mix(v.to_bits() as u64);
        }
        for &w in &self.words {
            mix(w);
        }
        h
    }

    /// The world-space center of the cell at integer coordinates — the
    /// probe point every refresh path (closure or batched) evaluates.
    #[inline]
    pub fn cell_center(&self, cx: u32, cy: u32, cz: u32) -> Vec3 {
        let r = self.resolution;
        self.aabb.from_unit(Vec3::new(
            (cx as f32 + 0.5) / r as f32,
            (cy as f32 + 0.5) / r as f32,
            (cz as f32 + 0.5) / r as f32,
        ))
    }

    /// Refreshes occupancy by evaluating `density` at every cell center and
    /// marking cells whose density exceeds `threshold`.
    ///
    /// This closure path is the executable specification of
    /// [`RefreshMode::Threshold`]; the batched refresh is pinned
    /// bit-for-bit against it.
    pub fn update_from_fn<F: FnMut(Vec3) -> f32>(&mut self, mut density: F, threshold: f32) {
        let r = self.resolution;
        for cz in 0..r {
            for cy in 0..r {
                for cx in 0..r {
                    let occupied = density(self.cell_center(cx, cy, cz)) > threshold;
                    self.set_cell(cx, cy, cz, occupied);
                }
            }
        }
    }

    /// Like [`OccupancyGrid::update_from_fn`] but keeps a cell occupied if
    /// *either* the old or new state says so, decayed every `decay` calls —
    /// the exponential-moving-max style update Instant-NGP uses to avoid
    /// prematurely culling space early in training. The executable
    /// specification of [`RefreshMode::Sticky`].
    pub fn update_ema<F: FnMut(Vec3) -> f32>(&mut self, mut density: F, threshold: f32) {
        let r = self.resolution;
        for cz in 0..r {
            for cy in 0..r {
                for cx in 0..r {
                    if density(self.cell_center(cx, cy, cz)) > threshold {
                        self.set_cell(cx, cy, cz, true);
                    }
                }
            }
        }
    }

    /// The world-space centers of all cells, in linear (x-fastest) order.
    pub fn cell_centers(&self) -> Vec<Vec3> {
        let r = self.resolution;
        let mut out = Vec::with_capacity(self.num_cells);
        for cz in 0..r {
            for cy in 0..r {
                for cx in 0..r {
                    out.push(self.cell_center(cx, cy, cz));
                }
            }
        }
        out
    }

    /// Sets occupancy from a per-cell value buffer in [`cell_centers`]
    /// order (a density EMA per cell, thresholded — Instant-NGP's decayed
    /// occupancy update).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.num_cells()`.
    ///
    /// [`cell_centers`]: OccupancyGrid::cell_centers
    pub fn set_from_values(&mut self, values: &[f32], threshold: f32) {
        assert_eq!(values.len(), self.num_cells, "cell value count mismatch");
        let r = self.resolution;
        let mut i = 0usize;
        for cz in 0..r {
            for cy in 0..r {
                for cx in 0..r {
                    self.set_cell(cx, cy, cz, values[i] > threshold);
                    i += 1;
                }
            }
        }
    }

    /// Fraction of cells currently occupied.
    pub fn occupancy_fraction(&self) -> f32 {
        let set: u64 = self.words.iter().map(|w| w.count_ones() as u64).sum();
        set as f32 / self.num_cells as f32
    }

    /// Marks every cell occupied (used when resetting between scenes).
    pub fn fill(&mut self) {
        let r = self.resolution;
        if r.is_power_of_two() {
            // Morton codes of valid cells are exactly 0..r³: set them
            // wholesale and keep the (absent) padding clear.
            let bits = self.num_cells;
            for (w, word) in self.words.iter_mut().enumerate() {
                let lo = w * 64;
                *word = if lo + 64 <= bits {
                    u64::MAX
                } else if lo >= bits {
                    0
                } else {
                    (1u64 << (bits - lo)) - 1
                };
            }
        } else {
            self.words.fill(0);
            for cz in 0..r {
                for cy in 0..r {
                    for cx in 0..r {
                        self.set_cell(cx, cy, cz, true);
                    }
                }
            }
        }
    }
}

/// How [`OccupancyWorkspace::refresh`] turns probed densities into bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// `bit = density > threshold` — matches
    /// [`OccupancyGrid::update_from_fn`].
    Threshold,
    /// `bit = bit || density > threshold` — matches
    /// [`OccupancyGrid::update_ema`].
    Sticky,
    /// Decayed density EMA per cell:
    /// `ema = max(seeded ? ema × decay : 0, density)`,
    /// `bit = ema > threshold` — the trainer's refresh rule. The EMA store
    /// persists in the workspace; unseeded cells start from 0 rather than
    /// decaying the `∞` sentinel (pinned by a regression test).
    DecayedEma,
}

/// What one [`OccupancyWorkspace::refresh`] actually did — the
/// amortisation telemetry the trainer folds into its `WorkloadStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OccupancyRefreshStats {
    /// Cells whose density was (re)probed this refresh (`num_cells / k`
    /// for subset stride `k`).
    pub cells_probed: usize,
    /// Grid levels that had to be re-encoded for those cells (levels whose
    /// parameters were unchanged since the cache was filled are skipped).
    pub levels_encoded: usize,
    /// Hash-table reads the re-encode performed:
    /// `8 × cells_probed × levels_encoded`.
    pub grid_reads: u64,
}

/// Cache-identity key: when any of this changes, the workspace's buffers
/// are rebuilt from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ShapeKey {
    resolution: u32,
    occ_aabb: Aabb,
    model_aabb: Aabb,
    levels: usize,
    emb_dim: usize,
    mlp_layers: usize,
    subset: u32,
}

/// Persistent state for batched occupancy refreshes: precomputed probe
/// positions, the per-level-versioned cell→embedding cache, the per-cell
/// density EMA store, and reusable MLP batch buffers. Create once per
/// trainer and reuse across the run — steady-state refreshes allocate
/// nothing.
///
/// All refresh work runs through the batched kernel seams
/// ([`HashGrid::par_encode_batch_levels_with`],
/// [`Mlp::forward_batch_with`]), dispatched on the [`BackendHandle`] the
/// workspace was created with, so results are bit-identical to the
/// closure reference paths for every registered backend and rayon worker
/// count.
#[derive(Debug)]
pub struct OccupancyWorkspace {
    /// EMA decay per probed refresh of a cell ([`RefreshMode::DecayedEma`]).
    pub decay: f32,
    /// The kernel backend every refresh dispatches to.
    backend: BackendHandle,
    shape: Option<ShapeKey>,
    /// Unit-cube probe position (in the *model grid's* frame) per cell,
    /// linear order.
    unit_centers: Vec<Vec3>,
    /// Persistent cell→embedding cache, `num_cells × emb_dim` row-major.
    emb: Vec<f32>,
    /// `levels × subset` grid versions the cache rows were computed at:
    /// entry `l * subset + phase` covers level `l` of the cells in subset
    /// `phase`. `u64::MAX` = never cached.
    cached_versions: Vec<u64>,
    /// Persistent per-cell density EMA (`∞` = unseeded), linear order.
    ema: Vec<f32>,
    /// Rotating subset phase for the next refresh.
    phase: u32,
    mlp_ws: Option<MlpBatchWorkspace>,
    subset_cells: Vec<u32>,
    subset_pts: Vec<Vec3>,
    subset_emb: Vec<f32>,
}

impl Default for OccupancyWorkspace {
    /// An empty workspace on the engine's default backend.
    fn default() -> Self {
        Self::new(crate::kernels::default_backend())
    }
}

impl OccupancyWorkspace {
    /// An empty workspace dispatching to `backend`; buffers are shaped on
    /// the first refresh.
    pub fn new(backend: BackendHandle) -> Self {
        OccupancyWorkspace {
            decay: 0.95,
            backend,
            shape: None,
            unit_centers: Vec::new(),
            emb: Vec::new(),
            cached_versions: Vec::new(),
            ema: Vec::new(),
            phase: 0,
            mlp_ws: None,
            subset_cells: Vec::new(),
            subset_pts: Vec::new(),
            subset_emb: Vec::new(),
        }
    }

    /// The per-cell density EMA store (linear cell order; `∞` marks cells
    /// never probed under [`RefreshMode::DecayedEma`]).
    pub fn ema(&self) -> &[f32] {
        &self.ema
    }

    /// The kernel backend refreshes dispatch to.
    pub fn backend(&self) -> &BackendHandle {
        &self.backend
    }

    /// Drops every cached embedding (all levels of all subsets re-encode
    /// on the next refresh). The EMA store and subset phase are kept —
    /// this invalidates derived data, not refresh history.
    pub fn invalidate(&mut self) {
        self.cached_versions.fill(u64::MAX);
    }

    /// Returns the workspace to its just-constructed state while keeping
    /// buffer capacity: the next refresh rebuilds probe centers, the
    /// embedding cache, the density-EMA store (back to "never probed")
    /// and the subset rotation phase from scratch.
    ///
    /// Unlike [`invalidate`](OccupancyWorkspace::invalidate) this also
    /// forgets refresh *history* — required when a pooled workspace moves
    /// to a different training job, whose results must not depend on the
    /// donor job's EMA or phase (the serve layer's per-job determinism
    /// contract).
    pub fn reset(&mut self) {
        self.shape = None;
        self.phase = 0;
    }

    /// Re-points refresh dispatch at `backend` (pooled workspaces may be
    /// recycled between jobs configured with different kernel backends).
    /// Pair with [`reset`](OccupancyWorkspace::reset) when the workspace
    /// changes hands: embeddings cached by a lossy-tier backend are not
    /// bit-compatible with a strict-tier job's.
    pub fn set_backend(&mut self, backend: BackendHandle) {
        self.backend = backend;
    }

    /// (Re)builds buffers when the grid/model/occupancy shape changed.
    fn ensure_shape(
        &mut self,
        occ: &OccupancyGrid,
        grid: &HashGrid,
        sigma_mlp: &Mlp,
        model_aabb: Aabb,
        subset: u32,
    ) {
        let key = ShapeKey {
            resolution: occ.resolution(),
            occ_aabb: occ.aabb(),
            model_aabb,
            levels: grid.levels().len(),
            emb_dim: grid.output_dim(),
            mlp_layers: sigma_mlp.layers().len(),
            subset,
        };
        if self.shape == Some(key) {
            return;
        }
        let cells_changed = match self.shape {
            Some(prev) => {
                prev.resolution != key.resolution
                    || prev.occ_aabb != key.occ_aabb
                    || prev.model_aabb != key.model_aabb
            }
            None => true,
        };
        let n = occ.num_cells();
        if cells_changed {
            // Probe positions: the same `from_unit(center)` → `to_unit`
            // composition the closure paths evaluate per call, computed
            // once and reused every refresh.
            self.unit_centers.clear();
            self.unit_centers.reserve(n);
            let r = occ.resolution();
            for cz in 0..r {
                for cy in 0..r {
                    for cx in 0..r {
                        self.unit_centers
                            .push(model_aabb.to_unit(occ.cell_center(cx, cy, cz)));
                    }
                }
            }
            self.ema.clear();
            self.ema.resize(n, f32::INFINITY);
            self.phase = 0;
        }
        self.emb.resize(n * key.emb_dim, 0.0);
        self.cached_versions.clear();
        self.cached_versions
            .resize(key.levels * subset as usize, u64::MAX);
        if self.shape.map(|p| p.mlp_layers) != Some(key.mlp_layers) {
            self.mlp_ws = Some(sigma_mlp.batch_workspace(0));
        }
        self.shape = Some(key);
    }

    /// One batched occupancy refresh: probes the density of this round's
    /// cell subset through the SoA kernel seams (on the workspace's
    /// backend — bits are identical for every backend and worker count)
    /// and rewrites those cells' bits according to `mode`.
    ///
    /// * `model_aabb` — the volume the hash grid covers (world probe
    ///   positions are mapped through it, exactly like the trainer's
    ///   per-point `density_at`).
    /// * `subset` — stride `k ≥ 1`: each refresh probes the cells whose
    ///   linear index ≡ phase (mod `k`), and the phase rotates so `k`
    ///   consecutive refreshes cover every cell once. `1` = full refresh.
    ///
    /// Embeddings are served from the persistent cache: only levels whose
    /// [`HashGrid::level_versions`] moved since this subset's rows were
    /// cached are re-encoded. The small density MLP always re-runs (its
    /// weights change every iteration; it is a few percent of the encode
    /// cost).
    ///
    /// # Panics
    ///
    /// Panics if `subset == 0` or `sigma_mlp` doesn't map the grid's
    /// embedding width to a single output.
    #[allow(clippy::too_many_arguments)]
    pub fn refresh(
        &mut self,
        occ: &mut OccupancyGrid,
        grid: &HashGrid,
        sigma_mlp: &Mlp,
        model_aabb: Aabb,
        threshold: f32,
        mode: RefreshMode,
        subset: u32,
    ) -> OccupancyRefreshStats {
        let backend = self.backend.clone();
        assert!(subset >= 1, "subset stride must be at least 1");
        assert_eq!(
            sigma_mlp.in_dim(),
            grid.output_dim(),
            "density MLP input width must match the grid embedding"
        );
        assert_eq!(sigma_mlp.out_dim(), 1, "density MLP must be scalar-valued");
        self.ensure_shape(occ, grid, sigma_mlp, model_aabb, subset);

        let k = subset as usize;
        let phase = (self.phase as usize) % k;
        self.phase = ((phase + 1) % k) as u32;
        let versions = grid.level_versions();
        let dirty: Vec<usize> = (0..grid.levels().len())
            .filter(|&l| self.cached_versions[l * k + phase] != versions[l])
            .collect();

        let this = &mut *self;
        let n = occ.num_cells();
        let w = grid.output_dim();
        let decay = this.decay;
        let mlp_ws = this.mlp_ws.as_mut().expect("workspace shaped");
        let cells_probed;
        if k == 1 {
            // Full refresh: encode dirty levels straight into the cache,
            // forward the whole cache, rewrite every bit.
            grid.par_encode_batch_levels_with(&backend, &dirty, &this.unit_centers, &mut this.emb);
            for &l in &dirty {
                this.cached_versions[l] = versions[l];
            }
            let densities = sigma_mlp.forward_batch_with(&backend, &this.emb, mlp_ws);
            let r = occ.resolution;
            let mut i = 0usize;
            for cz in 0..r {
                for cy in 0..r {
                    for cx in 0..r {
                        if let Some(bit) =
                            apply_mode(mode, &mut this.ema[i], decay, densities[i], threshold)
                        {
                            occ.set_cell(cx, cy, cz, bit);
                        }
                        i += 1;
                    }
                }
            }
            cells_probed = n;
        } else {
            // Rotating subset: gather this phase's rows out of the cache,
            // re-encode only the dirty levels for them, write the rows
            // back, and probe just those cells.
            this.subset_cells.clear();
            this.subset_pts.clear();
            for i in (phase..n).step_by(k) {
                this.subset_cells.push(i as u32);
                this.subset_pts.push(this.unit_centers[i]);
            }
            let m = this.subset_cells.len();
            this.subset_emb.resize(m * w, 0.0);
            for (j, &i) in this.subset_cells.iter().enumerate() {
                let i = i as usize;
                this.subset_emb[j * w..(j + 1) * w].copy_from_slice(&this.emb[i * w..(i + 1) * w]);
            }
            grid.par_encode_batch_levels_with(
                &backend,
                &dirty,
                &this.subset_pts,
                &mut this.subset_emb,
            );
            if !dirty.is_empty() {
                // Write the refreshed rows back so the cache stays
                // current for this phase (skipped on a warm cache: the
                // encode was a no-op, the rows are bit-identical).
                for (j, &i) in this.subset_cells.iter().enumerate() {
                    let i = i as usize;
                    this.emb[i * w..(i + 1) * w]
                        .copy_from_slice(&this.subset_emb[j * w..(j + 1) * w]);
                }
                for &l in &dirty {
                    this.cached_versions[l * k + phase] = versions[l];
                }
            }
            let densities = sigma_mlp.forward_batch_with(&backend, &this.subset_emb, mlp_ws);
            for (j, &i) in this.subset_cells.iter().enumerate() {
                let i = i as usize;
                if let Some(bit) =
                    apply_mode(mode, &mut this.ema[i], decay, densities[j], threshold)
                {
                    occ.set_linear(i, bit);
                }
            }
            cells_probed = m;
        }
        OccupancyRefreshStats {
            cells_probed,
            levels_encoded: dirty.len(),
            grid_reads: 8 * cells_probed as u64 * dirty.len() as u64,
        }
    }
}

/// One cell's bit decision. `None` means "leave the bit as it is"
/// ([`RefreshMode::Sticky`] below threshold).
#[inline]
fn apply_mode(
    mode: RefreshMode,
    ema: &mut f32,
    decay: f32,
    density: f32,
    threshold: f32,
) -> Option<bool> {
    match mode {
        RefreshMode::Threshold => Some(density > threshold),
        RefreshMode::Sticky => (density > threshold).then_some(true),
        RefreshMode::DecayedEma => {
            let prev = if ema.is_finite() { *ema * decay } else { 0.0 };
            *ema = prev.max(density);
            Some(*ema > threshold)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_occupied() {
        let occ = OccupancyGrid::new(Aabb::UNIT, 4);
        assert_eq!(occ.occupancy_fraction(), 1.0);
        assert!(occ.occupied_at(Vec3::splat(0.5)));
        assert_eq!(occ.num_cells(), 64);
    }

    #[test]
    fn outside_aabb_is_unoccupied() {
        let occ = OccupancyGrid::new(Aabb::UNIT, 4);
        assert!(!occ.occupied_at(Vec3::splat(2.0)));
        assert!(!occ.occupied_at(Vec3::new(-0.1, 0.5, 0.5)));
    }

    #[test]
    fn update_culls_empty_half() {
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 8);
        occ.update_from_fn(|p| if p.y > 0.5 { 5.0 } else { 0.0 }, 1.0);
        assert!(occ.occupied_at(Vec3::new(0.5, 0.9, 0.5)));
        assert!(!occ.occupied_at(Vec3::new(0.5, 0.1, 0.5)));
        assert!((occ.occupancy_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ema_update_never_culls_previously_occupied() {
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 4);
        occ.update_from_fn(|p| if p.x > 0.5 { 5.0 } else { 0.0 }, 1.0);
        let before = occ.occupancy_fraction();
        // A new field that's empty everywhere must not shrink occupancy.
        occ.update_ema(|_| 0.0, 1.0);
        assert_eq!(occ.occupancy_fraction(), before);
        // But it can grow.
        occ.update_ema(|_| 5.0, 1.0);
        assert_eq!(occ.occupancy_fraction(), 1.0);
    }

    #[test]
    fn fill_resets_everything() {
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 4);
        occ.update_from_fn(|_| 0.0, 1.0);
        assert_eq!(occ.occupancy_fraction(), 0.0);
        occ.fill();
        assert_eq!(occ.occupancy_fraction(), 1.0);
    }

    #[test]
    fn non_unit_aabb_mapping() {
        let aabb = Aabb::new(Vec3::new(-2.0, -2.0, -2.0), Vec3::new(2.0, 2.0, 2.0));
        let mut occ = OccupancyGrid::new(aabb, 4);
        occ.update_from_fn(|p| if p.norm() < 1.0 { 5.0 } else { 0.0 }, 1.0);
        assert!(occ.occupied_at(Vec3::ZERO));
        assert!(!occ.occupied_at(Vec3::new(1.9, 1.9, 1.9)));
    }

    #[test]
    #[should_panic]
    fn zero_resolution_panics() {
        let _ = OccupancyGrid::new(Aabb::UNIT, 0);
    }

    #[test]
    fn morton_codes_are_unique_and_local() {
        // Unique over a small cube…
        let mut seen = std::collections::HashSet::new();
        for z in 0..8u32 {
            for y in 0..8u32 {
                for x in 0..8u32 {
                    assert!(seen.insert(morton3(x, y, z)));
                }
            }
        }
        // …axis-aligned unit steps flip exactly one interleaved bit group.
        assert_eq!(morton3(1, 0, 0), 1);
        assert_eq!(morton3(0, 1, 0), 2);
        assert_eq!(morton3(0, 0, 1), 4);
        assert_eq!(morton3(3, 3, 3), 0b111111);
        // High coordinates stay in range (21 bits per axis → 63 bits).
        assert!(morton3(0x1f_ffff, 0x1f_ffff, 0x1f_ffff) < 1u64 << 63);
    }

    #[test]
    fn packed_bits_match_linear_view_on_non_pow2_resolution() {
        // Resolution 5 exercises the Morton padding: valid bits must be
        // exactly the 125 cells, nothing from the padded 8³ index space.
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 5);
        assert_eq!(occ.occupancy_fraction(), 1.0);
        let set: u32 = occ.words().iter().map(|w| w.count_ones()).sum();
        assert_eq!(set, 125);
        let values: Vec<f32> = (0..125)
            .map(|i| if i % 3 == 0 { 1.0 } else { 0.0 })
            .collect();
        occ.set_from_values(&values, 0.5);
        for (i, v) in values.iter().enumerate() {
            assert_eq!(occ.occupied_linear(i), *v > 0.5, "cell {i}");
        }
        let expect = values.iter().filter(|&&v| v > 0.5).count();
        let set: u32 = occ.words().iter().map(|w| w.count_ones()).sum();
        assert_eq!(set as usize, expect);
    }

    #[test]
    fn decayed_ema_refresh_seeds_then_decays() {
        // Regression pin for the EMA rule: the first probe of a cell seeds
        // from 0 (not from a decayed ∞ sentinel); later probes take
        // max(prev × decay, density).
        use crate::activation::Activation;
        use crate::grid::{HashGrid, HashGridConfig};
        use crate::mlp::{Mlp, MlpConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(3);
        let mut grid = HashGrid::new_random(
            HashGridConfig {
                levels: 2,
                log2_table_size: 8,
                base_resolution: 4,
                max_resolution: 8,
                ..HashGridConfig::default()
            },
            &mut rng,
        );
        let mlp = Mlp::new(
            MlpConfig::new(
                grid.output_dim(),
                &[8],
                1,
                Activation::Relu,
                Activation::TruncExp,
            ),
            &mut rng,
        );
        let mut occ = OccupancyGrid::new(Aabb::UNIT, 3);
        let mut ws = OccupancyWorkspace::new(crate::kernels::scalar());
        ws.refresh(
            &mut occ,
            &grid,
            &mlp,
            Aabb::UNIT,
            0.5,
            RefreshMode::DecayedEma,
            1,
        );
        // First refresh: ema == the probed densities (seeded via max(0, d)).
        let mut probe_ws = mlp.workspace();
        let mut emb = vec![0.0; grid.output_dim()];
        let d1: Vec<f32> = occ
            .cell_centers()
            .iter()
            .map(|&c| {
                grid.encode_into(
                    Aabb::UNIT.to_unit(c),
                    &mut emb,
                    &mut crate::grid::NullObserver,
                );
                mlp.forward(&emb, &mut probe_ws)[0]
            })
            .collect();
        assert_eq!(ws.ema(), &d1[..], "first refresh seeds ema from max(0, d)");

        // Kill the density field; the EMA must decay, not vanish.
        grid.params_mut().fill(0.0);
        ws.refresh(
            &mut occ,
            &grid,
            &mlp,
            Aabb::UNIT,
            0.5,
            RefreshMode::DecayedEma,
            1,
        );
        let d2: Vec<f32> = occ
            .cell_centers()
            .iter()
            .map(|&c| {
                grid.encode_into(
                    Aabb::UNIT.to_unit(c),
                    &mut emb,
                    &mut crate::grid::NullObserver,
                );
                mlp.forward(&emb, &mut probe_ws)[0]
            })
            .collect();
        for i in 0..occ.num_cells() {
            let expect = (d1[i] * 0.95).max(d2[i]);
            assert_eq!(ws.ema()[i], expect, "cell {i}: decayed max");
            assert_eq!(occ.occupied_linear(i), expect > 0.5, "cell {i}: bit");
        }

        // And cells outside the AABB stay unoccupied regardless of state.
        assert!(!occ.occupied_at(Vec3::splat(1.5)));
        assert!(!occ.occupied_at(Vec3::new(-0.01, 0.5, 0.5)));
    }
}
