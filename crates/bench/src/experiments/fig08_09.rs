//! Figs. 8 & 9 — the memory-access patterns behind the FRM unit.
//!
//! Fig. 8: the 8 corner addresses of each interpolation cube cluster into
//! 4 groups; inter-group distances are huge. Fig. 9: > 90 % of intra-group
//! distances fall within [-5, 5], stably across training iterations.

use super::common::{capture_traces_per_iter, synthetic_dataset};
use crate::table::Table;
use instant3d_core::TrainConfig;
use instant3d_nerf::grid::{AccessPhase, GridBranch};
use instant3d_nerf::hash::AddressMode;
use instant3d_trace::cluster::{all_intra_distances, bursts, summarize};
use instant3d_trace::stats::Histogram;

/// Captures real training traces at several iterations and prints the
/// clustering statistics and the Fig. 9 histogram.
pub fn run(quick: bool) {
    crate::banner(
        "Figs. 8 & 9",
        "Corner-group clustering: intra-group locality vs inter-group remoteness",
    );
    let cfg = crate::workloads::bench_config(TrainConfig::instant3d(), quick);
    let (capture_iters, budget): (Vec<u64>, u64) = if quick {
        (vec![0, 30], 31)
    } else {
        // The paper's Fig. 9 legend: iterations 1, 62, 125, 187, 250.
        (vec![0, 61, 124, 186, 249], 250)
    };
    let ds = synthetic_dataset(4, quick, 1100);
    let (traces, trainer) =
        capture_traces_per_iter(&cfg, &ds, &capture_iters, budget, 3_000_000, 1200);

    // Only hashed levels exhibit the Eq.-3 locality/remoteness pattern.
    let min_hashed_level = trainer
        .model()
        .density_grid()
        .levels()
        .iter()
        .position(|l| l.mode == AddressMode::Hashed)
        .unwrap_or(0) as u32;

    let mut t = Table::new(&[
        "iteration",
        "bursts",
        "mean |intra| dist",
        "% intra within [-5,5]",
        "mean inter dist",
    ]);
    let mut all_dists: Vec<i64> = Vec::new();
    for (it, trace) in &traces {
        let bs = bursts(
            trace,
            AccessPhase::FeedForward,
            GridBranch::Density,
            min_hashed_level,
        );
        let s = summarize(&bs);
        all_dists.extend(all_intra_distances(&bs));
        t.row_owned(vec![
            format!("{}", it + 1),
            s.bursts.to_string(),
            format!("{:.2}", s.mean_intra_abs),
            format!("{:.1}%", s.frac_intra_within_5 * 100.0),
            format!("{:.0}", s.mean_inter),
        ]);
    }
    t.print();

    println!("\nFig. 9 histogram of intra-group (x-adjacent) address distances:");
    let mut h = Histogram::new(-8, 8, 17);
    h.extend(&all_dists);
    print!("{}", h.to_ascii(46));
    println!(
        "out of range: {} below, {} above ({:.1}% of all distances within the plot)",
        h.underflow(),
        h.overflow(),
        h.in_range_fraction() * 100.0
    );
    println!(
        "\nPaper: >90% of intra-group distances lie in [-5,5] (x is multiplied by\n\
         pi_1 = 1 in Eq. 3) while inter-group distances average ~60,000 at\n\
         paper-scale tables (y/z amplified by pi_2/pi_3); both stable over training.\n\
         Our laptop-scale tables (2^14 entries/level) put the mean inter-group\n\
         distance near T/3 ≈ 5,500 — the same uniform-remoteness shape."
    );
}
