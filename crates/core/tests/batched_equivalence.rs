//! Golden tests gating the batched SoA engine against the scalar
//! point-at-a-time reference implementation.
//!
//! The batched engine is constructed so that per-point arithmetic and
//! per-parameter accumulation order match the scalar path exactly; these
//! tests pin that contract (and the acceptance tolerance of 1e-5 per
//! pixel) across topologies, workload counters, rendering, and rayon
//! worker counts — and they run the whole suite once per **registered
//! kernel backend** (`kernels::registered_strict()` — scalar, simd, the
//! instrumented co-sim backend, plus anything registered at runtime), so
//! every backend in the registry is gated against the same scalar
//! reference path on every run. A backend cannot register without
//! entering this gate — that is the point of the open API.

use instant3d_core::eval::render_model_view;
use instant3d_core::{kernels, BackendHandle, GridTopology, TrainConfig, Trainer};
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    SceneLibrary::synthetic_scene(0, 16, 4, &mut rng)
}

fn config(topology: GridTopology, backend: &BackendHandle) -> TrainConfig {
    let mut cfg = TrainConfig::fast_preview();
    cfg.topology = topology;
    cfg.kernel_backend = backend.clone();
    cfg
}

/// Runs `steps` iterations on two same-seeded trainers — one batched, one
/// scalar — and asserts losses, workload counters and rendered pixels
/// agree.
fn check_equivalence(topology: GridTopology, backend: &BackendHandle, steps: usize) {
    let ds = dataset(42);
    let mut rng_a = StdRng::seed_from_u64(7);
    let mut rng_b = StdRng::seed_from_u64(7);
    let mut seed_rng_a = StdRng::seed_from_u64(3);
    let mut seed_rng_b = StdRng::seed_from_u64(3);
    let mut batched = Trainer::new(config(topology, backend), &ds, &mut seed_rng_a);
    let mut scalar = Trainer::new(config(topology, backend), &ds, &mut seed_rng_b);

    for i in 0..steps {
        let sb = batched.step(&mut rng_a);
        let ss = scalar.step_scalar(&mut rng_b);
        assert_eq!(
            sb.rays, ss.rays,
            "{topology:?}/{backend} step {i}: ray count"
        );
        assert_eq!(
            sb.points, ss.points,
            "{topology:?}/{backend} step {i}: point count"
        );
        assert_eq!(
            sb.density_updated, ss.density_updated,
            "{topology:?}/{backend} step {i}: density schedule"
        );
        assert_eq!(
            sb.color_updated, ss.color_updated,
            "{topology:?}/{backend} step {i}: color schedule"
        );
        assert!(
            (sb.loss - ss.loss).abs() <= 1e-5 * (1.0 + ss.loss.abs()),
            "{topology:?}/{backend} step {i}: loss {} vs {}",
            sb.loss,
            ss.loss
        );
    }

    // Identical WorkloadStats counters — the accounting the accelerator
    // simulator consumes must not depend on the execution engine.
    assert_eq!(
        batched.stats(),
        scalar.stats(),
        "{topology:?}/{backend}: WorkloadStats"
    );
    assert_eq!(
        batched.stats().backend,
        backend.name(),
        "stats must report the backend name"
    );

    // Per-pixel agreement of the trained models within 1e-5.
    let view = &ds.test_views[0].camera;
    let (rgb_b, depth_b) = render_model_view(batched.model(), view, 24, ds.background);
    let (rgb_s, depth_s) = render_model_view(scalar.model(), view, 24, ds.background);
    for (pb, ps) in rgb_b.pixels().iter().zip(rgb_s.pixels()) {
        for k in 0..3 {
            assert!(
                (pb[k] - ps[k]).abs() <= 1e-5,
                "{topology:?}/{backend}: pixel {pb:?} vs {ps:?}"
            );
        }
    }
    for (db, ds_) in depth_b.depths().iter().zip(depth_s.depths()) {
        assert!(
            (db - ds_).abs() <= 1e-4,
            "{topology:?}/{backend}: depth {db} vs {ds_}"
        );
    }
}

#[test]
fn batched_matches_scalar_decoupled() {
    for backend in kernels::registered_strict() {
        check_equivalence(GridTopology::Decoupled, &backend, 4);
    }
}

#[test]
fn batched_matches_scalar_coupled() {
    for backend in kernels::registered_strict() {
        check_equivalence(GridTopology::Coupled, &backend, 4);
    }
}

#[test]
fn runtime_registered_backend_enters_the_golden_gate_and_reports_stats() {
    // The openness satellite, end to end inside the engine: a backend
    // registered at runtime (delegating its numerics to the SIMD builtin)
    // is resolvable by name, drives a full Trainer run through
    // TrainConfig, reports its name in WorkloadStats, and passes the same
    // batched-vs-scalar golden gate as the built-ins.
    #[derive(Debug)]
    struct DelegatingMock(kernels::SimdKernels);
    impl instant3d_core::Kernels for DelegatingMock {
        fn name(&self) -> &'static str {
            "mock-golden"
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn grid_encode_chunk(
            &self,
            grid: &instant3d_nerf::HashGrid,
            pts: &[instant3d_nerf::Vec3],
            out: &mut [f32],
        ) {
            self.0.grid_encode_chunk(grid, pts, out);
        }
        fn grid_encode_levels_chunk(
            &self,
            grid: &instant3d_nerf::HashGrid,
            levels: &[usize],
            pts: &[instant3d_nerf::Vec3],
            out: &mut [f32],
        ) {
            self.0.grid_encode_levels_chunk(grid, levels, pts, out);
        }
        fn grid_scatter_level(
            &self,
            grid: &instant3d_nerf::HashGrid,
            level: usize,
            level_grads: &mut [f32],
            pts: &[instant3d_nerf::Vec3],
            d_out: &[f32],
        ) {
            self.0
                .grid_scatter_level(grid, level, level_grads, pts, d_out);
        }
        fn mlp_forward_batch<'w>(
            &self,
            mlp: &instant3d_nerf::mlp::Mlp,
            inputs: &[f32],
            ws: &'w mut instant3d_nerf::mlp::MlpBatchWorkspace,
        ) -> &'w [f32] {
            self.0.mlp_forward_batch(mlp, inputs, ws)
        }
        fn mlp_backward_batch(
            &self,
            mlp: &instant3d_nerf::mlp::Mlp,
            d_output: &[f32],
            ws: &mut instant3d_nerf::mlp::MlpBatchWorkspace,
            grads: &mut instant3d_nerf::mlp::MlpGradients,
            d_input: &mut [f32],
        ) {
            self.0.mlp_backward_batch(mlp, d_output, ws, grads, d_input);
        }
        fn composite_ray(
            &self,
            t: &[f32],
            dt: &[f32],
            sigma: &[f32],
            rgb: &[instant3d_nerf::Vec3],
            background: instant3d_nerf::Vec3,
            cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
        ) -> (instant3d_nerf::render::RenderOutput, usize) {
            self.0.composite_ray(t, dt, sigma, rgb, background, cache)
        }
    }

    // Register once; other tests in this binary may loop over
    // `kernels::registered_strict()` afterwards — the mock delegates to a
    // conforming builtin, so it passes those gates too (the contract a
    // registered backend signs up for). Note the registration is
    // process-global and races test scheduling, so whether sibling tests
    // also cover the mock varies run to run (harmless for a conforming
    // mock, but don't add tests to THIS binary that assert exact registry
    // contents, and never register a non-conforming backend here — the
    // registry-exactness guard lives in its own binary,
    // tests/backend_api.rs, for this reason).
    let handle = match kernels::register(DelegatingMock(kernels::SimdKernels)) {
        Ok(h) => h,
        Err(_) => kernels::resolve("mock-golden"),
    };
    assert_eq!(kernels::resolve("mock-golden"), handle);
    check_equivalence(GridTopology::Decoupled, &handle, 3);
}

#[test]
fn batched_matches_scalar_through_occupancy_refresh() {
    // Long enough to cross an occupancy-grid refresh (every 16 iters in
    // fast_preview) and a skipped color iteration — per kernel backend.
    let ds = dataset(11);
    for backend in kernels::registered_strict() {
        let cfg = config(GridTopology::Decoupled, &backend);
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut seed_a = StdRng::seed_from_u64(9);
        let mut seed_b = StdRng::seed_from_u64(9);
        let mut batched = Trainer::new(cfg.clone(), &ds, &mut seed_a);
        let mut scalar = Trainer::new(cfg, &ds, &mut seed_b);
        for i in 0..20 {
            let sb = batched.step(&mut rng_a);
            let ss = scalar.step_scalar(&mut rng_b);
            assert_eq!(
                sb.points, ss.points,
                "{backend} step {i}: occupancy culling diverged"
            );
            assert!(
                (sb.loss - ss.loss).abs() <= 1e-5 * (1.0 + ss.loss.abs()),
                "{backend} step {i}: loss {} vs {}",
                sb.loss,
                ss.loss
            );
        }
        assert_eq!(batched.occupancy_fraction(), scalar.occupancy_fraction());
        assert_eq!(batched.stats(), scalar.stats());
    }
}

#[test]
fn train_report_is_thread_count_invariant() {
    // Same seed → same TrainReport, regardless of rayon worker count: all
    // parallel writes are disjoint and all reductions run in fixed order —
    // on both kernel backends.
    let ds = dataset(23);
    let run = |threads: usize, backend: &BackendHandle| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut seed = StdRng::seed_from_u64(1);
            let cfg = config(GridTopology::Decoupled, backend);
            let mut trainer = Trainer::new(cfg, &ds, &mut seed);
            let mut rng = StdRng::seed_from_u64(2);
            trainer.train_with_eval(8, 4, Some(&ds), &mut rng)
        })
    };
    for backend in kernels::registered_strict() {
        let single = run(1, &backend);
        let multi = run(8, &backend);
        assert_eq!(
            single, multi,
            "{backend}: TrainReport must be bit-identical across thread counts"
        );
    }
}

#[test]
fn every_registered_backend_training_is_bit_identical_to_scalar_backend() {
    // The strongest cross-backend claim: batched trainers that differ
    // only in kernel backend produce bit-identical losses and
    // bit-identical rendered images, step for step — for every backend
    // in the registry.
    let ds = dataset(23);
    let run = |backend: &BackendHandle| {
        let mut seed = StdRng::seed_from_u64(1);
        let cfg = config(GridTopology::Decoupled, backend);
        let mut trainer = Trainer::new(cfg, &ds, &mut seed);
        let mut rng = StdRng::seed_from_u64(2);
        let losses: Vec<f32> = (0..10).map(|_| trainer.step(&mut rng).loss).collect();
        let view = &ds.test_views[0].camera;
        let (rgb, depth) = render_model_view(trainer.model(), view, 24, ds.background);
        let mut stats = *trainer.stats();
        stats.backend = ""; // normalise the provenance tag
        (losses, rgb, depth, stats)
    };
    let (la, ia, da, sa) = run(&kernels::scalar());
    let la_bits: Vec<u32> = la.iter().map(|v| v.to_bits()).collect();
    for backend in kernels::registered_strict() {
        let (lb, ib, db, sb) = run(&backend);
        let lb_bits: Vec<u32> = lb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(la_bits, lb_bits, "{backend}: losses must match bitwise");
        assert_eq!(
            ia.pixels(),
            ib.pixels(),
            "{backend}: rendered pixels must match bitwise"
        );
        assert_eq!(
            da.depths(),
            db.depths(),
            "{backend}: depths must match bitwise"
        );
        assert_eq!(sa, sb, "{backend}: workload counters must match");
    }
}

#[test]
fn subset_occupancy_refresh_training_is_backend_and_worker_invariant() {
    // A run where amortized occupancy refreshes fire mid-run (every 3
    // iterations, probing a rotating quarter of the cells): losses,
    // rendered pixels, WorkloadStats — including the new occupancy
    // refresh counters — and the packed occupancy state must be
    // bit-identical across kernel backends and rayon worker counts.
    let ds = dataset(51);
    let run = |backend: &BackendHandle, threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut cfg = config(GridTopology::Decoupled, backend);
            cfg.occupancy_update_every = 3;
            cfg.occupancy_subset = 4;
            let mut seed = StdRng::seed_from_u64(13);
            let mut trainer = Trainer::new(cfg, &ds, &mut seed);
            let mut rng = StdRng::seed_from_u64(14);
            let losses: Vec<u32> = (0..12)
                .map(|_| trainer.step(&mut rng).loss.to_bits())
                .collect();
            let view = &ds.test_views[0].camera;
            let (rgb, _) = render_model_view(trainer.model(), view, 16, ds.background);
            let mut stats = *trainer.stats();
            stats.backend = ""; // normalise provenance
            let occ_bits = trainer.occupancy_fraction().to_bits();
            (losses, rgb.pixels().to_vec(), stats, occ_bits)
        })
    };
    let reference = run(&kernels::scalar(), 1);
    assert!(
        reference.2.occupancy_refreshes == 4 && reference.2.occupancy_probes > 0,
        "refreshes must actually have fired: {:?}",
        reference.2
    );
    for backend in kernels::registered_strict() {
        for threads in [1usize, 4] {
            assert_eq!(run(&backend, threads), reference, "{backend} / t{threads}");
        }
    }
}

#[test]
fn subset_refresh_batched_matches_scalar_reference_path() {
    // The scalar point-at-a-time step and the batched step share the
    // occupancy subsystem; with amortized refreshes enabled mid-run they
    // must still agree on losses, culled point counts and stats.
    let ds = dataset(53);
    for backend in kernels::registered_strict() {
        let mut cfg = config(GridTopology::Decoupled, &backend);
        cfg.occupancy_update_every = 2;
        cfg.occupancy_subset = 3;
        let mut seed_a = StdRng::seed_from_u64(15);
        let mut seed_b = StdRng::seed_from_u64(15);
        let mut batched = Trainer::new(cfg.clone(), &ds, &mut seed_a);
        let mut scalar = Trainer::new(cfg, &ds, &mut seed_b);
        let mut rng_a = StdRng::seed_from_u64(16);
        let mut rng_b = StdRng::seed_from_u64(16);
        for i in 0..10 {
            let sb = batched.step(&mut rng_a);
            let ss = scalar.step_scalar(&mut rng_b);
            assert_eq!(sb.points, ss.points, "{backend} step {i}: culling diverged");
            assert!(
                (sb.loss - ss.loss).abs() <= 1e-5 * (1.0 + ss.loss.abs()),
                "{backend} step {i}: loss {} vs {}",
                sb.loss,
                ss.loss
            );
        }
        assert_eq!(batched.occupancy_fraction(), scalar.occupancy_fraction());
        assert_eq!(batched.stats(), scalar.stats());
        assert!(batched.stats().occupancy_refreshes >= 4);
    }
}

#[test]
fn batched_is_deterministic_across_runs() {
    let ds = dataset(31);
    let run = || {
        let mut seed = StdRng::seed_from_u64(4);
        let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut seed);
        let mut rng = StdRng::seed_from_u64(6);
        (0..6)
            .map(|_| trainer.step(&mut rng).loss)
            .collect::<Vec<f32>>()
    };
    assert_eq!(run(), run());
}
