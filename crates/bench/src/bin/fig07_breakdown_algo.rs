//! Regenerates the paper's Fig. 07fig07 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig07::run(instant3d_bench::quick_requested());
}
