//! Corrupt-checkpoint suite: the codec must survive arbitrary blob
//! corruption without aborting (no unbounded allocation from stored
//! length fields, no wrapping bounds arithmetic) and without ever
//! leaving the receiving model partially mutated — a failed
//! [`checkpoint::load`] is transactional.
//!
//! Every test pins both halves of the contract: the *error* (right
//! variant, no panic) and the *rollback* (the model's serialized bytes
//! are identical before and after the failed load).

use instant3d_core::checkpoint::{self, CheckpointError, MAGIC, VERSION};
use instant3d_core::{GridTopology, NerfModel, TrainConfig};
use instant3d_nerf::grid::HashGridConfig;
use instant3d_nerf::math::Aabb;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deliberately tiny model so the exhaustive truncation sweep (one
/// load attempt per byte boundary) stays fast.
fn tiny_config(topo: GridTopology) -> TrainConfig {
    let mut cfg = TrainConfig::fast_preview();
    cfg.topology = topo;
    cfg.grid = HashGridConfig {
        levels: 2,
        log2_table_size: 6,
        base_resolution: 4,
        max_resolution: 8,
        ..HashGridConfig::default()
    };
    cfg.mlp_hidden_dim = 8;
    cfg
}

fn tiny_model(seed: u64, topo: GridTopology) -> NerfModel {
    let mut rng = StdRng::seed_from_u64(seed);
    NerfModel::new(&tiny_config(topo), Aabb::UNIT, &mut rng)
}

/// Asserts that `load` on `blob` fails and leaves `model` bitwise
/// untouched, returning the error for variant checks.
fn assert_failed_load_rolls_back(model: &mut NerfModel, blob: &[u8]) -> CheckpointError {
    let before = checkpoint::save(model);
    let err = checkpoint::load(model, blob).expect_err("corrupt blob must be rejected");
    let after = checkpoint::save(model);
    assert_eq!(before, after, "failed load mutated the model");
    err
}

/// Byte offset of the `n_mlp` count field in a blob saved from `model`.
fn n_mlp_offset(model: &NerfModel) -> usize {
    let nd = model.density_grid().params().len();
    let nc = model.color_grid().map_or(0, |g| g.params().len());
    // magic(4) + version(2) + two fp16 grid tensors (len 4 + flag 1 +
    // 2 bytes/value each).
    4 + 2 + (5 + 2 * nd) + (5 + 2 * nc)
}

#[test]
fn truncation_at_every_byte_boundary_is_rejected_and_rolled_back() {
    for topo in [GridTopology::Coupled, GridTopology::Decoupled] {
        let donor = tiny_model(1, topo);
        let blob = checkpoint::save(&donor);
        let mut target = tiny_model(2, topo);
        let baseline = checkpoint::save(&target);
        for len in 0..blob.len() {
            let err = checkpoint::load(&mut target, &blob[..len])
                .expect_err("every strict prefix must be rejected");
            // Prefixes long enough to hold a wrong magic/version fail on
            // those; everything else must report truncation.
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::BadMagic
                        | CheckpointError::BadVersion(_)
                ),
                "unexpected error {err:?} at prefix {len}"
            );
        }
        assert_eq!(
            baseline,
            checkpoint::save(&target),
            "{topo:?}: truncation sweep mutated the model"
        );
        // The untruncated blob still loads (the sweep excluded full length).
        checkpoint::load(&mut target, &blob).expect("full blob loads");
        assert_eq!(checkpoint::save(&target), blob);
    }
}

#[test]
fn oversized_length_fields_truncate_instead_of_allocating() {
    let donor = tiny_model(3, GridTopology::Decoupled);
    let mut target = tiny_model(4, GridTopology::Decoupled);
    // Density tensor length (offset 6) forced to adversarial values that
    // would have sized a multi-gigabyte Vec before the bounds check —
    // including ones whose byte count wraps a 32-bit usize product.
    for huge in [u32::MAX, u32::MAX / 2 + 1, 1 << 30, 0x8000_0001] {
        let mut blob = checkpoint::save(&donor);
        blob[6..10].copy_from_slice(&huge.to_le_bytes());
        let err = assert_failed_load_rolls_back(&mut target, &blob);
        assert_eq!(err, CheckpointError::Truncated, "length {huge:#x}");
    }
    // Same for the MLP tensor-count field: each tensor needs at least 5
    // bytes, so a huge count must be rejected before `with_capacity`.
    let off = n_mlp_offset(&donor);
    for huge in [u32::MAX, 1 << 24] {
        let mut blob = checkpoint::save(&donor);
        blob[off..off + 4].copy_from_slice(&huge.to_le_bytes());
        let err = assert_failed_load_rolls_back(&mut target, &blob);
        assert_eq!(err, CheckpointError::Truncated, "count {huge:#x}");
    }
    // And for a late MLP tensor's length field (past the count): the
    // grids decode fine, the corrupt tensor must still roll everything
    // back.
    let mut blob = checkpoint::save(&donor);
    let late = off + 4; // first MLP tensor's length field
    blob[late..late + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = assert_failed_load_rolls_back(&mut target, &blob);
    assert_eq!(err, CheckpointError::Truncated);
}

#[test]
fn bad_magic_and_version_roll_back() {
    let donor = tiny_model(5, GridTopology::Decoupled);
    let mut target = tiny_model(6, GridTopology::Decoupled);
    let mut blob = checkpoint::save(&donor);
    blob[..4].copy_from_slice(b"NOPE");
    let err = assert_failed_load_rolls_back(&mut target, &blob);
    assert_eq!(err, CheckpointError::BadMagic);

    let mut blob = checkpoint::save(&donor);
    blob[4] = VERSION as u8 + 7;
    let err = assert_failed_load_rolls_back(&mut target, &blob);
    assert_eq!(err, CheckpointError::BadVersion(VERSION + 7));
    assert_eq!(&checkpoint::save(&donor)[..4], MAGIC);
}

#[test]
fn flag_flips_are_rejected_and_rolled_back() {
    let donor = tiny_model(7, GridTopology::Decoupled);
    let mut target = tiny_model(8, GridTopology::Decoupled);
    // The density tensor's coding flag sits right after its length.
    let flag_off = 4 + 2 + 4;
    let blob = checkpoint::save(&donor);
    assert_eq!(blob[flag_off], 1, "grid tensors are saved fp16");

    // fp16 → f32 flip: the payload is now read at twice the width, so
    // the stream misaligns and the load must fail without mutating.
    let mut flipped = blob.clone();
    flipped[flag_off] = 0;
    assert_failed_load_rolls_back(&mut target, &flipped);

    // An unknown flag value is rejected outright.
    let mut bad = blob.clone();
    bad[flag_off] = 7;
    let err = assert_failed_load_rolls_back(&mut target, &bad);
    assert_eq!(
        err,
        CheckpointError::BadFlag {
            tensor: 0,
            value: 7
        }
    );

    // f32 → fp16 flip on the first MLP tensor: halves its payload read,
    // misaligning everything after it.
    let mlp_flag = n_mlp_offset(&donor) + 4 + 4;
    assert_eq!(blob[mlp_flag], 0, "MLP tensors are saved f32");
    let mut flipped = blob.clone();
    flipped[mlp_flag] = 1;
    assert_failed_load_rolls_back(&mut target, &flipped);
}

#[test]
fn shape_mismatch_late_in_the_blob_rolls_back_the_grids_too() {
    // Donor and target agree on every grid tensor but differ in MLP
    // hidden width: the old codec committed the grids (and the early MLP
    // tensors) before noticing, leaving the target half-restored.
    let mut wide_cfg = tiny_config(GridTopology::Decoupled);
    wide_cfg.mlp_hidden_dim = 16;
    let mut rng = StdRng::seed_from_u64(9);
    let donor = NerfModel::new(&wide_cfg, Aabb::UNIT, &mut rng);
    let mut target = tiny_model(10, GridTopology::Decoupled);
    assert_eq!(
        donor.density_grid().params().len(),
        target.density_grid().params().len(),
        "grids must agree for this regression to bite"
    );
    let blob = checkpoint::save(&donor);
    let err = assert_failed_load_rolls_back(&mut target, &blob);
    assert!(
        matches!(err, CheckpointError::ShapeMismatch { tensor, .. } if tensor >= 2),
        "expected a late MLP shape mismatch, got {err:?}"
    );
}

#[test]
fn extra_and_missing_mlp_tensors_roll_back() {
    let donor = tiny_model(11, GridTopology::Decoupled);
    let mut target = tiny_model(12, GridTopology::Decoupled);
    let off = n_mlp_offset(&donor);
    let blob = checkpoint::save(&donor);
    let n_mlp = u32::from_le_bytes(blob[off..off + 4].try_into().unwrap());

    // One tensor short: understate the count (the trailing bytes are
    // ignored by the parser, so the model comes up a tensor short).
    let mut short = blob.clone();
    short[off..off + 4].copy_from_slice(&(n_mlp - 1).to_le_bytes());
    let err = assert_failed_load_rolls_back(&mut target, &short);
    assert_eq!(err, CheckpointError::Truncated);

    // One tensor extra: append a well-formed empty tensor and overstate
    // the count.
    let mut long = blob.clone();
    long[off..off + 4].copy_from_slice(&(n_mlp + 1).to_le_bytes());
    long.extend_from_slice(&0u32.to_le_bytes());
    long.push(0);
    let err = assert_failed_load_rolls_back(&mut target, &long);
    assert!(matches!(err, CheckpointError::ShapeMismatch { .. }));
}

proptest! {
    /// `load(save(model))` round-trips bitwise: re-serializing the
    /// restored model reproduces the original blob exactly (grid
    /// features are already fp16-quantized in storage, MLP weights are
    /// exact f32).
    #[test]
    fn roundtrip_is_bitwise(seed in 0u64..256, coupled in any::<bool>()) {
        let topo = if coupled { GridTopology::Coupled } else { GridTopology::Decoupled };
        let original = tiny_model(seed, topo);
        let blob = checkpoint::save(&original);
        let mut restored = tiny_model(seed.wrapping_add(1000), topo);
        checkpoint::load(&mut restored, &blob).expect("roundtrip load");
        prop_assert_eq!(checkpoint::save(&restored), blob);
    }

    /// Arbitrary single-byte mutations anywhere in the blob never panic,
    /// and whenever the load fails the model is bitwise untouched. (A
    /// payload-byte mutation may legitimately load: it decodes to a
    /// shape-valid parameter set.)
    #[test]
    fn mutated_blobs_never_panic_and_failures_roll_back(
        seed in 0u64..64,
        idx_frac in 0.0f64..1.0,
        value in any::<u8>(),
    ) {
        let donor = tiny_model(seed, GridTopology::Decoupled);
        let mut blob = checkpoint::save(&donor);
        let idx = ((blob.len() - 1) as f64 * idx_frac) as usize;
        blob[idx] = value;
        let mut target = tiny_model(seed.wrapping_add(500), GridTopology::Decoupled);
        let before = checkpoint::save(&target);
        if checkpoint::load(&mut target, &blob).is_err() {
            prop_assert_eq!(before, checkpoint::save(&target));
        }
    }

    /// Random garbage (not derived from a valid blob) is rejected
    /// without panic or mutation.
    #[test]
    fn random_garbage_is_rejected(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut target = tiny_model(99, GridTopology::Decoupled);
        let before = checkpoint::save(&target);
        let mut blob = bytes;
        if blob.len() >= 6 {
            // Give half the cases a valid header so the tensor parser
            // actually runs.
            blob[..4].copy_from_slice(MAGIC);
            blob[4..6].copy_from_slice(&VERSION.to_le_bytes());
        }
        if checkpoint::load(&mut target, &blob).is_err() {
            prop_assert_eq!(before, checkpoint::save(&target));
        }
    }
}
