//! Experiment harness regenerating every table and figure of the
//! Instant-3D paper.
//!
//! Each `experiments::*` module exposes a `run(quick)` function printing
//! the same rows/series the paper reports; the `src/bin/` wrappers call
//! them individually, and `run_all` executes the full suite. Pass
//! `--quick` (or set `INSTANT3D_QUICK=1`) to shrink the training budgets
//! for smoke runs.

pub mod experiments;
pub mod table;
pub mod workloads;

/// True when the invocation asked for the reduced (smoke-test) budgets.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("INSTANT3D_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Standard experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{id} — {title}");
    println!("{}", "=".repeat(78));
}
