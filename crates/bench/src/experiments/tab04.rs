//! Tab. 4 — the Instant-3D algorithm vs Instant-NGP across the three
//! dataset substrates: same reconstruction quality, lower runtime.

use super::common::{mean_of, run_on_dataset, synthetic_dataset, SceneRun};
use crate::table::Table;
use crate::workloads::paper_workload;
use instant3d_core::{PipelineWorkload, TrainConfig};
use instant3d_devices::DeviceModel;
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scale_points(mut w: PipelineWorkload, factor: f64) -> PipelineWorkload {
    w.points_per_iter *= factor;
    w.grid_reads_ff_per_iter *= factor;
    w.grid_writes_bp_per_iter *= factor;
    w.mlp_flops_per_iter *= factor;
    w
}

/// Trains both algorithms on the three dataset substrates and prints
/// measured PSNR plus modelled Xavier-NX runtime.
pub fn run(quick: bool) {
    crate::banner(
        "Tab. 4",
        "Instant-3D algorithm vs Instant-NGP: runtime + PSNR on the three datasets",
    );
    let iters = crate::workloads::train_iters(quick);
    let xavier = DeviceModel::xavier_nx();
    let (res, views) = crate::workloads::dataset_shape(quick);

    let datasets: Vec<(&str, Vec<Dataset>)> = {
        let synth: Vec<Dataset> = crate::workloads::scene_indices(quick)
            .iter()
            .map(|&i| synthetic_dataset(i, quick, 700 + i as u64))
            .collect();
        let mut rng = StdRng::seed_from_u64(777);
        let silvr = vec![SceneLibrary::silvr_scene(res, views, &mut rng)];
        let scannet = vec![SceneLibrary::scannet_scene(res, views, &mut rng)];
        vec![
            ("NeRF-Synthetic*", synth),
            ("SILVR*", silvr),
            ("ScanNet*", scannet),
        ]
    };

    let algos: Vec<(&str, TrainConfig)> = vec![
        ("Instant-NGP", TrainConfig::instant_ngp()),
        ("Instant-3D", TrainConfig::instant3d()),
    ];

    let mut t = Table::new(&[
        "method",
        "dataset",
        "runtime (s, modelled)",
        "PSNR (dB, measured)",
        "paper runtime",
        "paper PSNR",
    ]);
    let paper: [[(&str, &str); 3]; 2] = [
        [("72", "26.0"), ("135", "25.0"), ("84", "24.9")],
        [("60", "26.0"), ("111", "25.1"), ("72", "25.1")],
    ];

    // Points-per-iteration of the synthetic runs anchor the scale factor.
    let mut synth_points: f64 = 1.0;
    for (ai, (algo, cfg)) in algos.iter().enumerate() {
        let cfg = crate::workloads::bench_config(cfg.clone(), quick);
        for (di, (name, dss)) in datasets.iter().enumerate() {
            let runs: Vec<SceneRun> = dss
                .iter()
                .enumerate()
                .map(|(k, ds)| run_on_dataset(&cfg, ds, iters, 0, 800 + (ai * 10 + k) as u64))
                .collect();
            let psnr = mean_of(&runs, |r| r.psnr);
            let points = runs.iter().map(|r| r.points_per_iter).sum::<f64>() / runs.len() as f64;
            if di == 0 {
                synth_points = points.max(1.0);
            }
            // Larger scenes sample more points per ray; scale the paper
            // workload by the measured ratio.
            let factor = (points / synth_points).max(0.25);
            let w = scale_points(paper_workload(&cfg, iters as f64), factor);
            let (p_rt, p_psnr) = paper[ai][di];
            t.row_owned(vec![
                algo.to_string(),
                name.to_string(),
                format!("{:.0}", xavier.runtime(&w)),
                format!("{psnr:.1}"),
                p_rt.to_string(),
                p_psnr.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\n(*) procedural substrates — see DESIGN.md. Expected shape: Instant-3D\n\
         matches Instant-NGP's PSNR on every dataset at a lower modelled runtime."
    );
}
