//! Dispatch-overhead microbenchmarks for the vendored rayon scheduler.
//!
//! These isolate what the scheduler itself costs — *not* the kernels: a
//! many-small-chunks `for_each` (the engine's dominant dispatch shape),
//! an order-preserving `map().collect()`, the zip-of-disjoint-buffers
//! shape every SoA kernel uses, and a raw `join` splitting tree. Bodies
//! are near-trivial on purpose, so regressions in per-region setup,
//! per-split job handling, or (the old stand-in's failure mode) per-item
//! boxed-job allocation show up directly.
//!
//! Bench IDs are stamped with the pinned worker count (`…/t4`), matching
//! the other benches' convention. Worker counts are pinned explicitly via
//! `install`, which grows the shared pool as needed — so thread arms are
//! measurable even on a box whose ambient pool is one thread.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rayon::prelude::*;

/// The worker counts each bench sweeps: strictly sequential, the CI
/// matrix's parallel arm, and the oversubscription arm.
const THREAD_ARMS: [usize; 3] = [1, 4, 8];

fn pool(n: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
}

/// 1024 chunks of 64 u64s with a touch-everything body: dominated by
/// dispatch, the acceptance workload for "per-item boxed jobs are gone".
fn bench_for_each_small_chunks(c: &mut Criterion) {
    let mut data = vec![0u64; 1024 * 64];
    for threads in THREAD_ARMS {
        pool(threads).install(|| {
            c.bench_function(&format!("par/for_each_1024x64/t{threads}"), |b| {
                b.iter(|| {
                    data.par_chunks_mut(64).for_each(|chunk| {
                        for v in chunk.iter_mut() {
                            *v = v.wrapping_add(1);
                        }
                    });
                    black_box(data[0])
                })
            });
        });
    }
}

/// Order-preserving map over 1024 small chunks; measures per-region
/// allocation (one slot buffer) against the old per-item slot boxing.
fn bench_map_collect(c: &mut Criterion) {
    let data = vec![3u64; 1024 * 64];
    for threads in THREAD_ARMS {
        pool(threads).install(|| {
            c.bench_function(&format!("par/map_collect_1024/t{threads}"), |b| {
                b.iter(|| {
                    let sums: Vec<u64> = data
                        .par_chunks(64)
                        .map(|chunk| chunk.iter().fold(0u64, |a, &v| a.wrapping_add(v)))
                        .collect();
                    black_box(sums.len())
                })
            });
        });
    }
}

/// The engine's hot dispatch shape: disjoint output chunks zipped with
/// input chunks (grid encode / MLP GEMV both look like this).
fn bench_zip_for_each(c: &mut Criterion) {
    let src = vec![1.5f32; 4096];
    let mut dst = vec![0.0f32; 4096 * 8];
    for threads in THREAD_ARMS {
        pool(threads).install(|| {
            c.bench_function(&format!("par/zip_chunks_256/t{threads}"), |b| {
                b.iter(|| {
                    dst.par_chunks_mut(256 * 8)
                        .zip(src.par_chunks(256))
                        .for_each(|(d, s)| {
                            for (dc, sv) in d.chunks_mut(8).zip(s) {
                                for v in dc.iter_mut() {
                                    *v = *sv;
                                }
                            }
                        });
                    black_box(dst[0])
                })
            });
        });
    }
}

/// Raw `join` split tree down to 1024 leaves of trivial work: the cost
/// of pushing/popping (or stealing) one stack job per split.
fn bench_join_tree(c: &mut Criterion) {
    fn tree(lo: u64, hi: u64) -> u64 {
        if hi - lo <= 1 {
            lo.wrapping_mul(2654435761)
        } else {
            let mid = lo + (hi - lo) / 2;
            let (a, b) = rayon::join(|| tree(lo, mid), || tree(mid, hi));
            a.wrapping_add(b)
        }
    }
    for threads in THREAD_ARMS {
        pool(threads).install(|| {
            c.bench_function(&format!("par/join_tree_1024/t{threads}"), |b| {
                b.iter(|| black_box(tree(0, 1024)))
            });
        });
    }
}

criterion_group!(
    benches,
    bench_for_each_small_chunks,
    bench_map_collect,
    bench_zip_for_each,
    bench_join_tree
);
criterion_main!(benches);
