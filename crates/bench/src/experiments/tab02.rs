//! Tab. 2 — PSNR vs training runtime for different update frequencies
//! `F_D : F_C`: halving the *color* update rate is nearly free; halving
//! the *density* rate costs quality.
//!
//! Update-frequency changes act on the convergence *rate*, so besides the
//! final PSNR we report PSNR at half the training budget, where the
//! density-starved configuration's lag is visible even if it eventually
//! catches up.

use super::common::{mean_of, run_on_dataset, synthetic_dataset, SceneRun};
use crate::table::Table;
use crate::workloads::paper_workload;
use instant3d_core::TrainConfig;
use instant3d_devices::DeviceModel;

/// Trains the three Tab. 2 configurations and prints measured PSNR plus
/// modelled Xavier-NX runtime.
pub fn run(quick: bool) {
    crate::banner(
        "Tab. 2",
        "Update-frequency ratios F_D : F_C — PSNR vs training runtime (Xavier NX model)",
    );
    let rows: Vec<(&str, TrainConfig)> = vec![
        ("1:1 (Instant-NGP)", TrainConfig::instant_ngp()),
        ("0.5:1", TrainConfig::decoupled(1.0, 1.0, 2, 1)),
        ("1:0.5", TrainConfig::decoupled(1.0, 1.0, 1, 2)),
    ];
    let iters = crate::workloads::train_iters(quick);
    let scenes = crate::workloads::scene_indices(quick);
    let xavier = DeviceModel::xavier_nx();

    let mut t = Table::new(&[
        "F_D : F_C",
        "avg runtime (s, modelled)",
        "PSNR @ half budget",
        "final PSNR (dB)",
        "paper runtime",
        "paper PSNR",
    ]);
    let paper = [("72", "26.0"), ("67", "24.3"), ("65", "25.9")];
    for ((label, cfg), (p_rt, p_psnr)) in rows.into_iter().zip(paper) {
        let cfg = crate::workloads::bench_config(cfg, quick);
        let runs: Vec<SceneRun> = scenes
            .iter()
            .map(|&i| {
                let ds = synthetic_dataset(i, quick, 500 + i as u64);
                run_on_dataset(&cfg, &ds, iters, (iters / 2).max(1), 600 + i as u64)
            })
            .collect();
        let psnr = mean_of(&runs, |r| r.psnr);
        let mid = mean_of(&runs, |r| {
            r.history.first().map(|h| h.1).unwrap_or(f32::NAN)
        });
        let runtime = xavier.runtime(&paper_workload(&cfg, iters as f64));
        t.row_owned(vec![
            label.to_string(),
            format!("{runtime:.0}"),
            format!("{mid:.1}"),
            format!("{psnr:.1}"),
            p_rt.to_string(),
            p_psnr.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape: 1:0.5 (color updated every other iteration) keeps\n\
         near-baseline PSNR at reduced runtime; 0.5:1 (density slowed) converges\n\
         slower — visible in the half-budget column. Runtime modelled at a fixed\n\
         {iters}-iteration budget; PSNR measured from real training."
    );
}
