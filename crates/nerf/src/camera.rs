//! Pinhole cameras and per-pixel ray generation (Step ② of the pipeline).

use crate::math::{Ray, Vec3};

/// A world-space camera pose: position plus an orthonormal basis.
///
/// `right`/`up`/`forward` follow a right-handed convention with the camera
/// looking along `forward`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Camera center (ray origin `o`).
    pub position: Vec3,
    /// Image-plane +x direction.
    pub right: Vec3,
    /// Image-plane +y direction (towards the top of the image).
    pub up: Vec3,
    /// Viewing direction.
    pub forward: Vec3,
}

impl Pose {
    /// Builds a pose at `eye` looking towards `target` with approximate
    /// world-up `up_hint`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `eye == target` or `up_hint` is parallel
    /// to the viewing direction.
    pub fn look_at(eye: Vec3, target: Vec3, up_hint: Vec3) -> Pose {
        let forward = (target - eye).normalized();
        let right = forward.cross(up_hint).normalized();
        let up = right.cross(forward);
        Pose {
            position: eye,
            right,
            up,
            forward,
        }
    }
}

/// A pinhole camera: pose + intrinsics + image size.
///
/// # Example
///
/// ```
/// use instant3d_nerf::camera::Camera;
/// use instant3d_nerf::math::Vec3;
///
/// let cam = Camera::look_at(
///     Vec3::new(0.0, 0.0, 2.0),
///     Vec3::ZERO,
///     Vec3::Y,
///     60.0_f32.to_radians(),
///     64,
///     64,
/// );
/// let center = cam.pixel_ray(32.0, 32.0);
/// assert!((center.dir.norm() - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// World pose.
    pub pose: Pose,
    /// Vertical field of view in radians.
    pub fov_y: f32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl Camera {
    /// Creates a camera from a look-at pose and intrinsics.
    ///
    /// # Panics
    ///
    /// Panics if `width`/`height` are zero or `fov_y` is not in (0, π).
    pub fn look_at(
        eye: Vec3,
        target: Vec3,
        up: Vec3,
        fov_y: f32,
        width: u32,
        height: u32,
    ) -> Camera {
        assert!(width > 0 && height > 0, "image must be non-empty");
        assert!(
            fov_y > 0.0 && fov_y < std::f32::consts::PI,
            "fov out of range"
        );
        Camera {
            pose: Pose::look_at(eye, target, up),
            fov_y,
            width,
            height,
        }
    }

    /// Total pixel count.
    pub fn num_pixels(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The ray through continuous pixel coordinates `(px, py)` where
    /// `(0.5, 0.5)` is the center of the top-left pixel.
    ///
    /// The returned direction is unit length.
    pub fn pixel_ray(&self, px: f32, py: f32) -> Ray {
        let aspect = self.width as f32 / self.height as f32;
        let tan_half = (self.fov_y * 0.5).tan();
        // NDC in [-1, 1] with +y up.
        let ndc_x = (px / self.width as f32) * 2.0 - 1.0;
        let ndc_y = 1.0 - (py / self.height as f32) * 2.0;
        let dir = self.pose.forward
            + self.pose.right * (ndc_x * tan_half * aspect)
            + self.pose.up * (ndc_y * tan_half);
        Ray::new(self.pose.position, dir.normalized())
    }

    /// The ray through the center of integer pixel `(ix, iy)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the pixel is out of bounds.
    pub fn pixel_center_ray(&self, ix: u32, iy: u32) -> Ray {
        debug_assert!(ix < self.width && iy < self.height);
        self.pixel_ray(ix as f32 + 0.5, iy as f32 + 0.5)
    }

    /// Iterates all pixel-center rays in row-major order.
    pub fn rays(&self) -> impl Iterator<Item = Ray> + '_ {
        (0..self.height)
            .flat_map(move |y| (0..self.width).map(move |x| self.pixel_center_ray(x, y)))
    }
}

/// A ring of `count` cameras on a sphere of radius `radius` around `target`,
/// at elevation angle `elevation` radians — the capture rig used for the
/// NeRF-Synthetic-like object scenes.
pub fn orbit_rig(
    target: Vec3,
    radius: f32,
    elevation: f32,
    count: usize,
    fov_y: f32,
    width: u32,
    height: u32,
) -> Vec<Camera> {
    (0..count)
        .map(|i| {
            let azim = i as f32 / count as f32 * std::f32::consts::TAU;
            let eye = target
                + Vec3::new(
                    radius * elevation.cos() * azim.cos(),
                    radius * elevation.sin(),
                    radius * elevation.cos() * azim.sin(),
                );
            Camera::look_at(eye, target, Vec3::Y, fov_y, width, height)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, 3.0),
            Vec3::ZERO,
            Vec3::Y,
            60f32.to_radians(),
            32,
            32,
        )
    }

    #[test]
    fn look_at_basis_is_orthonormal() {
        let p = Pose::look_at(Vec3::new(1.0, 2.0, 3.0), Vec3::ZERO, Vec3::Y);
        assert!((p.right.norm() - 1.0).abs() < 1e-5);
        assert!((p.up.norm() - 1.0).abs() < 1e-5);
        assert!((p.forward.norm() - 1.0).abs() < 1e-5);
        assert!(p.right.dot(p.up).abs() < 1e-5);
        assert!(p.right.dot(p.forward).abs() < 1e-5);
        assert!(p.up.dot(p.forward).abs() < 1e-5);
    }

    #[test]
    fn center_ray_points_forward() {
        let cam = test_cam();
        let r = cam.pixel_ray(16.0, 16.0);
        assert!(r.dir.dot(cam.pose.forward) > 0.999);
        assert_eq!(r.origin, cam.pose.position);
    }

    #[test]
    fn corner_rays_diverge_symmetrically() {
        let cam = test_cam();
        let tl = cam.pixel_ray(0.0, 0.0);
        let br = cam.pixel_ray(32.0, 32.0);
        // Symmetric about the optical axis.
        assert!((tl.dir.dot(cam.pose.forward) - br.dir.dot(cam.pose.forward)).abs() < 1e-5);
        // Top-left ray points up-left.
        assert!(tl.dir.dot(cam.pose.up) > 0.0);
        assert!(tl.dir.dot(cam.pose.right) < 0.0);
    }

    #[test]
    fn rays_iterator_covers_all_pixels() {
        let cam = Camera::look_at(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO, Vec3::Y, 1.0, 4, 3);
        assert_eq!(cam.rays().count(), 12);
        assert_eq!(cam.num_pixels(), 12);
    }

    #[test]
    fn orbit_rig_cameras_look_at_target() {
        let rig = orbit_rig(Vec3::ZERO, 2.0, 0.5, 8, 1.0, 16, 16);
        assert_eq!(rig.len(), 8);
        for cam in &rig {
            assert!((cam.pose.position.norm() - 2.0).abs() < 1e-5);
            // Forward points from eye to origin.
            let expect = (-cam.pose.position).normalized();
            assert!(cam.pose.forward.dot(expect) > 0.999);
        }
    }

    #[test]
    fn fov_controls_ray_spread() {
        let narrow = Camera::look_at(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO, Vec3::Y, 0.3, 16, 16);
        let wide = Camera::look_at(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO, Vec3::Y, 1.5, 16, 16);
        let n = narrow.pixel_ray(0.0, 8.0).dir.dot(narrow.pose.forward);
        let w = wide.pixel_ray(0.0, 8.0).dir.dot(wide.pose.forward);
        assert!(n > w, "narrow fov should keep rays closer to the axis");
    }
}
