//! Software half-precision (IEEE 754 binary16) storage.
//!
//! The Instant-3D accelerator uses "16-bit half-precision floating-point
//! arithmetic for all algorithm-related computations" (§5.1). The hash-grid
//! feature tables in this reproduction are therefore *stored* as fp16 and
//! widened to `f32` for arithmetic, mirroring fp16 multiply / f32 accumulate
//! hardware. Conversion uses round-to-nearest-even, the IEEE default.

/// A 16-bit IEEE 754 binary16 value stored as its raw bit pattern.
///
/// # Example
///
/// ```
/// use instant3d_nerf::fp16::F16;
/// let h = F16::from_f32(1.0);
/// assert_eq!(h.to_f32(), 1.0);
/// // fp16 has ~3 decimal digits: 0.1 is not exactly representable.
/// let tenth = F16::from_f32(0.1).to_f32();
/// assert!((tenth - 0.1).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite fp16 value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal fp16 value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);

    /// Converts from `f32` with round-to-nearest-even.
    ///
    /// Values above the fp16 range become ±infinity; subnormals are
    /// produced for tiny magnitudes, matching IEEE semantics.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN. Preserve NaN-ness with a quiet-NaN payload bit.
            let nan = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7C00 | nan);
        }

        // Re-bias exponent: f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return F16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 mantissa bits, round-to-nearest-even.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_mant = (mant >> 13) as u16;
            let round_bit = (mant >> 12) & 1;
            let sticky = mant & 0x0FFF;
            let mut out = sign | half_exp | half_mant;
            if round_bit == 1 && (sticky != 0 || (half_mant & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent: still correct
            }
            return F16(out);
        }
        if unbiased >= -24 {
            // Subnormal half. Shift the implicit leading 1 into the mantissa.
            let full_mant = mant | 0x0080_0000;
            let shift = (-unbiased - 14 + 13) as u32; // 13 base + extra
            let half_mant = (full_mant >> shift) as u16;
            let round_bit = (full_mant >> (shift - 1)) & 1;
            let sticky = full_mant & ((1u32 << (shift - 1)) - 1);
            let mut out = sign | half_mant;
            if round_bit == 1 && (sticky != 0 || (half_mant & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Widens to `f32` exactly (every fp16 value is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalise.
                let mut e = 0i32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((e + 127 - 14) as u32) << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            sign | 0x7F80_0000 | (mant << 13) // inf / NaN
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// True for NaN payloads.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> F16 {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Rounds an `f32` through fp16 and back: the quantisation the accelerator's
/// storage applies to every grid feature.
#[inline]
pub fn quantize(v: f32) -> f32 {
    F16::from_f32(v).to_f32()
}

/// Quantises a whole slice in place (used when flushing grid updates).
pub fn quantize_slice(values: &mut [f32]) {
    for v in values {
        *v = quantize(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "integer {i} must be exact");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -14..=15 {
            let f = (2.0f32).powi(e);
            assert_eq!(F16::from_f32(f).to_f32(), f);
        }
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), (2.0f32).powi(-14));
        assert!(F16::INFINITY.to_f32().is_infinite());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1e6).to_f32().is_infinite());
        assert!(F16::from_f32(-1e6).to_f32().is_infinite());
        assert!(F16::from_f32(-1e6).to_f32() < 0.0);
    }

    #[test]
    fn underflow_to_zero_preserves_sign() {
        let z = F16::from_f32(1e-10);
        assert_eq!(z.to_f32(), 0.0);
        let nz = F16::from_f32(-1e-10);
        assert_eq!(nz.to_f32(), 0.0);
        assert!(nz.to_f32().is_sign_negative());
    }

    #[test]
    fn subnormals_are_representable() {
        let tiny = (2.0f32).powi(-20); // subnormal in fp16
        let q = F16::from_f32(tiny).to_f32();
        assert_eq!(q, tiny, "power-of-two subnormal should be exact");
    }

    #[test]
    fn nan_propagates() {
        let h = F16::from_f32(f32::NAN);
        assert!(h.is_nan());
        assert!(h.to_f32().is_nan());
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16 value
        // (1 + 2^-10); round-to-even picks 1.0 (even mantissa).
        let halfway = 1.0 + (2.0f32).powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Just above the halfway point must round up.
        let above = 1.0 + (2.0f32).powi(-11) + (2.0f32).powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + (2.0f32).powi(-10));
    }

    #[test]
    fn quantize_error_is_bounded() {
        // Relative error of fp16 rounding is at most 2^-11 in the normal range.
        let mut v = 0.001f32;
        while v < 1000.0 {
            let q = quantize(v);
            assert!(
                (q - v).abs() <= v * (2.0f32).powi(-11) * 1.0001,
                "v={v} q={q}"
            );
            v *= 1.37;
        }
    }

    #[test]
    fn quantize_slice_matches_scalar() {
        let mut xs = vec![0.1, 0.2, 0.3, 1234.5678];
        let expect: Vec<f32> = xs.iter().map(|&x| quantize(x)).collect();
        quantize_slice(&mut xs);
        assert_eq!(xs, expect);
    }

    #[test]
    fn roundtrip_is_idempotent() {
        for &v in &[0.1f32, 3.207_18, -2.936_12, 1e-3, 6e4] {
            let once = quantize(v);
            assert_eq!(quantize(once), once);
        }
    }
}
