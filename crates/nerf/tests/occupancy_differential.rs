//! Differential suite pinning the batched occupancy refresh against the
//! closure reference paths, bit for bit.
//!
//! `OccupancyWorkspace::refresh` routes cell-density probes through the
//! batched kernel seams (`HashGrid::par_encode_batch_levels_with`,
//! `Mlp::forward_batch_with`) with a persistent per-level-versioned
//! embedding cache. These tests prove the packed occupancy words it
//! produces are identical to evaluating `update_from_fn` / `update_ema`
//! cell by cell — across kernel backends and rayon worker counts, over
//! degenerate resolutions, empty subsets, exact-threshold densities and
//! cache invalidation after parameter updates.

use instant3d_nerf::activation::Activation;
use instant3d_nerf::adam::{Adam, AdamConfig};
use instant3d_nerf::grid::{HashGrid, HashGridConfig, NullObserver};
use instant3d_nerf::kernels::{self, BackendHandle};
use instant3d_nerf::math::{Aabb, Vec3};
use instant3d_nerf::mlp::{Mlp, MlpConfig};
use instant3d_nerf::occupancy::{OccupancyGrid, OccupancyWorkspace, RefreshMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORKERS: [usize; 2] = [1, 4];
const THRESHOLD: f32 = 0.6;

fn grid(seed: u64) -> HashGrid {
    let cfg = HashGridConfig {
        levels: 4,
        features_per_entry: 2,
        log2_table_size: 10,
        base_resolution: 4,
        max_resolution: 32,
        store_fp16: true,
        init_scale: 0.3,
    };
    HashGrid::new_random(cfg, &mut StdRng::seed_from_u64(seed))
}

fn sigma_mlp(grid: &HashGrid, seed: u64) -> Mlp {
    Mlp::new(
        MlpConfig::new(
            grid.output_dim(),
            &[16],
            1,
            Activation::Relu,
            Activation::TruncExp,
        ),
        &mut StdRng::seed_from_u64(seed),
    )
}

/// The closure reference path: per-cell `encode_into` + per-point MLP
/// forward — exactly the trainer's scalar `density_at`.
fn closure_refresh(
    occ: &mut OccupancyGrid,
    grid: &HashGrid,
    mlp: &Mlp,
    model_aabb: Aabb,
    threshold: f32,
    sticky: bool,
) {
    let mut emb = vec![0.0; grid.output_dim()];
    let mut ws = mlp.workspace();
    let mut density = |p: Vec3| {
        grid.encode_into(model_aabb.to_unit(p), &mut emb, &mut NullObserver);
        mlp.forward(&emb, &mut ws)[0]
    };
    if sticky {
        occ.update_ema(&mut density, threshold);
    } else {
        occ.update_from_fn(&mut density, threshold);
    }
}

#[test]
fn batched_threshold_refresh_bit_matches_closure_across_backends_and_workers() {
    let g = grid(1);
    let mlp = sigma_mlp(&g, 2);
    let aabb = Aabb::new(Vec3::new(-1.0, -0.5, 0.0), Vec3::new(1.0, 1.5, 2.0));
    for resolution in [1u32, 2, 17] {
        let mut reference = OccupancyGrid::new(aabb, resolution);
        closure_refresh(&mut reference, &g, &mlp, aabb, THRESHOLD, false);
        for backend in kernels::registered_strict() {
            for workers in WORKERS {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(workers)
                    .build()
                    .unwrap();
                let words = pool.install(|| {
                    let mut occ = OccupancyGrid::new(aabb, resolution);
                    let mut ws = OccupancyWorkspace::new(backend.clone());
                    let stats = ws.refresh(
                        &mut occ,
                        &g,
                        &mlp,
                        aabb,
                        THRESHOLD,
                        RefreshMode::Threshold,
                        1,
                    );
                    assert_eq!(stats.cells_probed, occ.num_cells());
                    assert_eq!(stats.levels_encoded, g.levels().len());
                    occ.words().to_vec()
                });
                assert_eq!(
                    words,
                    reference.words(),
                    "res {resolution} / {backend} / t{workers}"
                );
            }
        }
    }
}

#[test]
fn sticky_refresh_bit_matches_update_ema() {
    let g = grid(3);
    let mlp = sigma_mlp(&g, 4);
    let aabb = Aabb::UNIT;
    // Start from a partially-culled grid so "keep occupied" matters.
    let mut reference = OccupancyGrid::new(aabb, 9);
    reference.update_from_fn(|p| if p.x > 0.5 { 1.0 } else { 0.0 }, 0.5);
    let batched = reference.clone();
    closure_refresh(&mut reference, &g, &mlp, aabb, THRESHOLD, true);
    for backend in kernels::registered_strict() {
        let mut occ = batched.clone();
        let mut ws = OccupancyWorkspace::new(backend.clone());
        ws.refresh(&mut occ, &g, &mlp, aabb, THRESHOLD, RefreshMode::Sticky, 1);
        assert_eq!(occ.words(), reference.words(), "{backend}");
    }
}

#[test]
fn clean_cache_refresh_encodes_nothing_and_matches_closure() {
    let g = grid(5);
    let mlp = sigma_mlp(&g, 6);
    let aabb = Aabb::UNIT;
    let mut occ = OccupancyGrid::new(aabb, 8);
    let mut ws = OccupancyWorkspace::new(kernels::simd());
    let first = ws.refresh(
        &mut occ,
        &g,
        &mlp,
        aabb,
        THRESHOLD,
        RefreshMode::Threshold,
        1,
    );
    assert_eq!(first.levels_encoded, g.levels().len());
    assert!(first.grid_reads > 0);
    let words_a = occ.words().to_vec();
    // No parameter change between refreshes → the embedding cache serves
    // every level; zero table reads, identical bits.
    let second = ws.refresh(
        &mut occ,
        &g,
        &mlp,
        aabb,
        THRESHOLD,
        RefreshMode::Threshold,
        1,
    );
    assert_eq!(second.levels_encoded, 0, "clean cache must skip the encode");
    assert_eq!(second.grid_reads, 0);
    assert_eq!(occ.words(), &words_a[..]);
    let mut reference = OccupancyGrid::new(aabb, 8);
    closure_refresh(&mut reference, &g, &mlp, aabb, THRESHOLD, false);
    assert_eq!(occ.words(), reference.words());
}

#[test]
fn cache_invalidates_per_level_after_sparse_step() {
    let g = &mut grid(7);
    let mlp = sigma_mlp(g, 8);
    let aabb = Aabb::UNIT;
    let mut occ = OccupancyGrid::new(aabb, 8);
    let mut ws = OccupancyWorkspace::new(kernels::simd());
    ws.refresh(
        &mut occ,
        g,
        &mlp,
        aabb,
        THRESHOLD,
        RefreshMode::Threshold,
        1,
    );
    // A sparse Adam step touching only level 2's parameters…
    let mut grads = vec![0.0f32; g.num_params()];
    let lo = g.levels()[..2]
        .iter()
        .map(|l| l.table_size as usize * 2)
        .sum::<usize>();
    let touched: Vec<usize> = (lo..lo + 64).collect();
    for &i in &touched {
        grads[i] = 0.25;
    }
    let mut opt = Adam::new(AdamConfig::for_grid(), g.num_params());
    g.apply_sparse_step(&mut opt, &grads, &touched);
    // …must re-encode exactly one level, and the refreshed bits must
    // match a from-scratch closure refresh of the updated field.
    let stats = ws.refresh(
        &mut occ,
        g,
        &mlp,
        aabb,
        THRESHOLD,
        RefreshMode::Threshold,
        1,
    );
    assert_eq!(stats.levels_encoded, 1, "only the stepped level is dirty");
    let mut reference = OccupancyGrid::new(aabb, 8);
    closure_refresh(&mut reference, g, &mlp, aabb, THRESHOLD, false);
    assert_eq!(occ.words(), reference.words());

    // A conservative params_mut write dirties everything: the *same*
    // (warm-cached) workspace must re-encode every level on its next
    // refresh.
    g.params_mut()[0] += 0.5;
    let stats = ws.refresh(
        &mut occ,
        g,
        &mlp,
        aabb,
        THRESHOLD,
        RefreshMode::Threshold,
        1,
    );
    assert_eq!(stats.levels_encoded, g.levels().len());
    let mut reference = OccupancyGrid::new(aabb, 8);
    closure_refresh(&mut reference, g, &mlp, aabb, THRESHOLD, false);
    assert_eq!(occ.words(), reference.words());
}

#[test]
fn subset_rotation_covers_all_cells_and_matches_full_refresh() {
    let g = grid(9);
    let mlp = sigma_mlp(&g, 10);
    let aabb = Aabb::UNIT;
    let mut full = OccupancyGrid::new(aabb, 7);
    let mut full_ws = OccupancyWorkspace::new(kernels::simd());
    full_ws.refresh(
        &mut full,
        &g,
        &mlp,
        aabb,
        THRESHOLD,
        RefreshMode::Threshold,
        1,
    );
    for backend in kernels::registered_strict() {
        let k = 4u32;
        let mut occ = OccupancyGrid::new(aabb, 7);
        let mut ws = OccupancyWorkspace::new(backend.clone());
        let mut probed = 0usize;
        for round in 0..k {
            let stats = ws.refresh(
                &mut occ,
                &g,
                &mlp,
                aabb,
                THRESHOLD,
                RefreshMode::Threshold,
                k,
            );
            probed += stats.cells_probed;
            assert!(
                stats.cells_probed <= occ.num_cells().div_ceil(k as usize),
                "round {round} probed {}",
                stats.cells_probed
            );
        }
        // k rotating refreshes visit every cell exactly once and land on
        // the same packed words as one full refresh.
        assert_eq!(probed, occ.num_cells(), "{backend}");
        assert_eq!(occ.words(), full.words(), "{backend}");
    }
}

#[test]
fn empty_subset_phase_probes_zero_cells() {
    // Resolution 1 with stride 4: three of the four phases own no cells
    // at all — the N = 0 path through gather, encode and MLP forward.
    let g = grid(11);
    let mlp = sigma_mlp(&g, 12);
    let aabb = Aabb::UNIT;
    let mut occ = OccupancyGrid::new(aabb, 1);
    let mut ws = OccupancyWorkspace::new(kernels::simd());
    let mut probes = Vec::new();
    for _ in 0..4 {
        let stats = ws.refresh(
            &mut occ,
            &g,
            &mlp,
            aabb,
            THRESHOLD,
            RefreshMode::Threshold,
            4,
        );
        probes.push(stats.cells_probed);
    }
    assert_eq!(probes.iter().sum::<usize>(), 1);
    assert_eq!(probes.iter().filter(|&&p| p == 0).count(), 3);
    let mut reference = OccupancyGrid::new(aabb, 1);
    closure_refresh(&mut reference, &g, &mlp, aabb, THRESHOLD, false);
    assert_eq!(occ.words(), reference.words());
}

#[test]
fn exact_threshold_and_signed_zero_densities_match_closure() {
    // A bias-only density head (zero weights, no hidden layer, linear
    // output) produces the bias *exactly* at every cell, so `d > t` sits
    // on the knife edge both paths must cut identically.
    let g = grid(13);
    let mut mlp = Mlp::new(
        MlpConfig::new(g.output_dim(), &[], 1, Activation::Relu, Activation::None),
        &mut StdRng::seed_from_u64(14),
    );
    let zero = mlp.zero_grads();
    for (case, (set_bias, threshold, expect_occupied)) in [
        (0.5f32, 0.5f32, false), // d == t → strictly-greater culls
        (0.0, 0.0, false),       // +0 > +0 is false
        (0.0, -0.0, false),      // +0 > −0 is false (they compare equal)
        (-0.0, 0.0, false),      // −0 > +0 is false
        (0.5, 0.49999997, true), // one ulp below → occupied
    ]
    .into_iter()
    .enumerate()
    {
        mlp.for_each_param_mut(&zero, |params, _| {
            let v = if params.len() == 1 { set_bias } else { 0.0 };
            for p in params.iter_mut() {
                *p = v;
            }
        });
        let mut reference = OccupancyGrid::new(Aabb::UNIT, 6);
        closure_refresh(&mut reference, &g, &mlp, Aabb::UNIT, threshold, false);
        assert_eq!(
            reference.occupancy_fraction() > 0.0,
            expect_occupied,
            "case {case}: closure path"
        );
        for backend in kernels::registered_strict() {
            let mut occ = OccupancyGrid::new(Aabb::UNIT, 6);
            let mut ws = OccupancyWorkspace::new(backend.clone());
            ws.refresh(
                &mut occ,
                &g,
                &mlp,
                Aabb::UNIT,
                threshold,
                RefreshMode::Threshold,
                1,
            );
            assert_eq!(occ.words(), reference.words(), "case {case} / {backend}");
        }
    }
}

#[test]
fn decayed_ema_refresh_is_backend_and_worker_invariant() {
    // The trainer's mode: run three refreshes with a parameter update in
    // between; the EMA store and the packed words must be bit-identical
    // for every backend × worker combination.
    let aabb = Aabb::UNIT;
    let run = |backend: &BackendHandle, workers: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .unwrap();
        pool.install(|| {
            let mut g = grid(15);
            let mlp = sigma_mlp(&g, 16);
            let mut occ = OccupancyGrid::new(aabb, 10);
            let mut ws = OccupancyWorkspace::new(backend.clone());
            for round in 0..3 {
                ws.refresh(
                    &mut occ,
                    &g,
                    &mlp,
                    aabb,
                    THRESHOLD,
                    RefreshMode::DecayedEma,
                    2,
                );
                if round == 1 {
                    g.params_mut().iter_mut().for_each(|p| *p *= 0.5);
                }
            }
            let ema_bits: Vec<u32> = ws.ema().iter().map(|v| v.to_bits()).collect();
            (occ.words().to_vec(), ema_bits)
        })
    };
    let reference = run(&kernels::scalar(), 1);
    for backend in kernels::registered_strict() {
        for workers in WORKERS {
            assert_eq!(run(&backend, workers), reference, "{backend} / t{workers}");
        }
    }
}
