//! The multi-core-fusion reconfigurable scheme — §4.6, Figs. 11 & 14.
//!
//! Each grid core owns 8 SRAM banks (256 KB). Hash tables larger than one
//! core's slice are spread across fused cores:
//!
//! * **Level 0 (standalone)** — ≤ 256 KB: four independent cores, each with
//!   its own B8 FRM; four point-streams in parallel.
//! * **Level 1 fusion** — ≤ 512 KB: two pairs of fused cores, each pair
//!   sharing a B16 FRM; two point-streams in parallel.
//! * **Level 2 fusion** — ≤ 1 MB: all four cores fused behind one B32 FRM;
//!   one point-stream.
//!
//! Tables beyond 1 MB cannot be SRAM-resident and spill to DRAM — which is
//! exactly what makes the un-decomposed Instant-NGP table (≈ 2 MB) slow on
//! this accelerator and motivates the algorithm/hardware co-design.

use crate::config::AccelConfig;

/// A fusion operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionMode {
    /// Level 0: standalone cores (B8 FRM each).
    Level0,
    /// Level 1: pairs of cores fused (B16 FRM per pair).
    Level1,
    /// Level 2: all cores fused (one B32 FRM).
    Level2,
}

impl FusionMode {
    /// Selects the smallest mode whose fused SRAM holds `table_bytes`,
    /// or `None` when the table exceeds even Level-2 capacity (DRAM spill).
    pub fn for_table_bytes(table_bytes: usize, cfg: &AccelConfig) -> Option<FusionMode> {
        let per_core = cfg.bytes_per_core();
        if table_bytes <= per_core {
            Some(FusionMode::Level0)
        } else if table_bytes <= 2 * per_core {
            Some(FusionMode::Level1)
        } else if table_bytes <= 4 * per_core {
            Some(FusionMode::Level2)
        } else {
            None
        }
    }

    /// Cores fused into one group.
    pub fn cores_per_group(self) -> u32 {
        match self {
            FusionMode::Level0 => 1,
            FusionMode::Level1 => 2,
            FusionMode::Level2 => 4,
        }
    }

    /// SRAM banks visible to the group's FRM (B8 / B16 / B32).
    pub fn banks(self, cfg: &AccelConfig) -> u32 {
        self.cores_per_group() * cfg.banks_per_core
    }

    /// Independent groups operating in parallel.
    pub fn parallel_groups(self, cfg: &AccelConfig) -> u32 {
        cfg.grid_cores / self.cores_per_group()
    }

    /// Fused SRAM capacity of one group in bytes.
    pub fn group_capacity(self, cfg: &AccelConfig) -> usize {
        self.cores_per_group() as usize * cfg.bytes_per_core()
    }

    /// Human-readable label (matches the paper's Fig. 11 color coding).
    pub fn label(self) -> &'static str {
        match self {
            FusionMode::Level0 => "Level 0 standalone (B8, 256 KB)",
            FusionMode::Level1 => "Level 1 fusion (B16, 512 KB)",
            FusionMode::Level2 => "Level 2 fusion (B32, 1 MB)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AccelConfig {
        AccelConfig::default()
    }

    #[test]
    fn mode_selection_matches_paper_table_sizes() {
        let c = cfg();
        assert_eq!(
            FusionMode::for_table_bytes(256 * 1024, &c),
            Some(FusionMode::Level0)
        );
        assert_eq!(
            FusionMode::for_table_bytes(512 * 1024, &c),
            Some(FusionMode::Level1)
        );
        assert_eq!(
            FusionMode::for_table_bytes(1 << 20, &c),
            Some(FusionMode::Level2)
        );
        // The 2 MB Instant-NGP table does not fit — DRAM spill.
        assert_eq!(FusionMode::for_table_bytes(2 << 20, &c), None);
    }

    #[test]
    fn instant3d_branches_map_to_expected_modes() {
        let c = cfg();
        // Density grid: 1 MB → Level 2; color grid: 256 KB → Level 0.
        assert_eq!(
            FusionMode::for_table_bytes(1 << 20, &c),
            Some(FusionMode::Level2)
        );
        assert_eq!(
            FusionMode::for_table_bytes(256 << 10, &c),
            Some(FusionMode::Level0)
        );
    }

    #[test]
    fn bank_counts_are_b8_b16_b32() {
        let c = cfg();
        assert_eq!(FusionMode::Level0.banks(&c), 8);
        assert_eq!(FusionMode::Level1.banks(&c), 16);
        assert_eq!(FusionMode::Level2.banks(&c), 32);
    }

    #[test]
    fn groups_times_cores_is_constant() {
        let c = cfg();
        for m in [FusionMode::Level0, FusionMode::Level1, FusionMode::Level2] {
            assert_eq!(m.parallel_groups(&c) * m.cores_per_group(), c.grid_cores);
            assert_eq!(
                m.group_capacity(&c),
                m.cores_per_group() as usize * 256 * 1024
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            FusionMode::Level0.label(),
            FusionMode::Level1.label(),
            FusionMode::Level2.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }

    #[test]
    fn tiny_tables_stay_standalone() {
        let c = cfg();
        assert_eq!(FusionMode::for_table_bytes(1, &c), Some(FusionMode::Level0));
    }
}
