//! Fig. 4 — Instant-NGP training-runtime breakdown on the three edge
//! devices: Step ③-① (embedding-grid interpolation, forward + backward)
//! dominates everywhere.

use instant3d_core::TrainConfig;
use instant3d_devices::{breakdown::StepBreakdown, perf::ITERS_TO_PSNR26, DeviceModel};

/// Prints the per-device step breakdown of the paper-scale Instant-NGP
/// workload.
pub fn run(_quick: bool) {
    crate::banner(
        "Fig. 4",
        "Instant-NGP training runtime breakdown on Jetson Nano / TX2 / Xavier NX",
    );
    let w = crate::workloads::paper_workload(&TrainConfig::instant_ngp(), ITERS_TO_PSNR26);
    for device in DeviceModel::all_baselines() {
        let b = StepBreakdown::compute(&device, &w);
        println!("{}", b.to_ascii(40));
        println!(
            "  total training runtime: {:.1} s over {:.0} iterations\n",
            device.runtime(&w),
            w.iterations
        );
    }
    println!(
        "Paper: Step 3-1 (grid interpolation + its back-propagation) dominates\n\
         (~80%) on all devices; the bars above reproduce that share."
    );

    // Native cross-check: wall-clock profile of THIS repository's trainer.
    native_breakdown(_quick);
}

/// Profiles the Rust trainer itself with the per-step wall-clock timer —
/// an independent, measured confirmation that grid interpolation dominates
/// even without any device model.
fn native_breakdown(quick: bool) {
    use instant3d_core::timing::StepTimer;
    use instant3d_core::Trainer;
    use rand::SeedableRng;

    println!("\nNative cross-check (this repo's trainer, wall clock):");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1700);
    let ds = super::common::synthetic_dataset(0, quick, 1701);
    let cfg = crate::workloads::bench_config(TrainConfig::instant_ngp(), quick);
    let mut trainer = Trainer::new(cfg, &ds, &mut rng);
    let mut timer = StepTimer::new();
    let iters = if quick { 10 } else { 40 };
    for _ in 0..iters {
        trainer.step_timed(&mut rng, &mut timer);
    }
    print!("{}", timer.to_ascii(40));
    println!(
        "  grid-interpolation share (native): {:.1} %",
        timer.grid_interpolation_fraction() * 100.0
    );
}
