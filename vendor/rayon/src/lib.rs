//! Offline stand-in for the `rayon` crate — now a real work-stealing
//! scheduler.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the narrow rayon surface its batched execution engine uses:
//!
//! * [`prelude`] — `par_chunks` / `par_chunks_mut` / `par_iter_mut` on
//!   slices, `into_par_iter` on `Vec`/`Range`, plus lazy `zip` /
//!   `enumerate` / `with_min_len` / `for_each` / `map().collect()`
//!   combinators;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — pins the apparent
//!   worker count (the determinism tests compare 1-thread vs N-thread
//!   runs) and grows the shared pool to match;
//! * [`current_num_threads`], [`join`], [`scope`].
//!
//! # Execution model
//!
//! One lazily-started, process-wide pool of workers (initially
//! `available_parallelism`, overridable with `RAYON_NUM_THREADS`,
//! growable by `install`, hard-capped at 64). Each worker owns a deque:
//! the owner pushes and pops at the back (LIFO), idle workers steal from
//! the front (FIFO — the oldest entry is the largest still-unsplit
//! subtree). A global injector queue receives regions started by
//! non-pool threads, which block until their region completes.
//!
//! Parallel iterators are **lazy**: a region is a producer that the
//! driver splits recursively (binary `join` tree, ~4 leaves per worker,
//! respecting `with_min_len`) down to sequential leaf loops — no
//! per-item boxed jobs, no materialised item vectors. [`join`] pushes
//! its second closure onto the worker's deque, runs the first inline,
//! then pops the second back (or, if it was stolen, works on other jobs
//! until the thief finishes). Nested parallel regions therefore
//! *participate* in the pool exactly like outermost ones instead of
//! degrading to inline execution.
//!
//! # Determinism contract
//!
//! Scheduling is intentionally invisible to results: every item runs
//! exactly once, `zip`/`enumerate`/`map().collect()` are positional, and
//! the engine above performs only disjoint writes with fixed per-output
//! accumulation order — so outputs are **bit-identical across worker
//! counts and steal interleavings**. The golden equivalence suites pin
//! this end to end.
//!
//! # Panics
//!
//! A panic inside a parallel region is re-raised on the thread that
//! started the region **with its original payload** (the first payload
//! encountered in task order wins; `join` prefers its first closure's
//! payload when both halves panic). Sibling tasks of a panicking task
//! still run to completion before the panic propagates — scoped borrows
//! never outlive the region.

mod job;
mod latch;
mod registry;

pub mod iter;
pub mod slice;

use job::{JobResult, StackJob};
use std::panic::{self, AssertUnwindSafe};
use std::sync::OnceLock;

pub use iter::{IntoParallelIterator, ParIter, ParMap};
pub use slice::{ParallelSlice, ParallelSliceMut};

/// The default worker count: `RAYON_NUM_THREADS` if set and positive,
/// otherwise `available_parallelism`, capped at the pool's 64-slot
/// capacity.
pub(crate) fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .min(registry::MAX_THREADS)
    })
}

/// The number of threads parallel work may use right now: the innermost
/// [`ThreadPool::install`] override — inherited by tasks from the region
/// that spawned them, across worker threads — or the default count.
pub fn current_num_threads() -> usize {
    registry::apparent_threads().unwrap_or_else(default_threads)
}

// ---------------------------------------------------------------------------
// Public pool API
// ---------------------------------------------------------------------------

/// Builder for a [`ThreadPool`] handle (thread-count override only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A fresh builder using the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `n` threads (0 = default). Values beyond the shared
    /// registry's 64-slot capacity are clamped at [`Self::build`] time,
    /// so the built pool always reports its *actual* capacity.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads.min(registry::MAX_THREADS)
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A sizing handle onto the shared work-stealing pool.
///
/// # Contract
///
/// This stand-in has a single process-wide worker registry rather than
/// per-`ThreadPool` thread sets. A `ThreadPool` is a *view* that pins
/// the **apparent** thread count while a closure runs under
/// [`ThreadPool::install`]:
///
/// * `install(f)` first **grows** the shared registry so at least
///   `num_threads` workers actually exist (the registry never shrinks;
///   requests beyond its 64-slot capacity are clamped when the handle is
///   built, so the reported count never exceeds real capacity);
/// * inside `f` — and inside every task the region spawns, on any worker
///   — [`current_num_threads`] returns exactly this pool's size, and the
///   iterator driver sizes its split tree from it. `install(1)` regions
///   run fully sequentially on the calling thread;
/// * `f` itself runs on the calling thread (no cross-pool migration),
///   and the previous apparent count is restored even if `f` unwinds.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with [`current_num_threads`] pinned to this pool's size,
    /// growing the shared registry to that size first (see the type-level
    /// contract). The previous value is restored even if `f` unwinds.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        registry::global().ensure_spawned(self.num_threads);
        registry::with_apparent_threads(self.num_threads, f)
    }

    /// The pinned thread count — always the number of workers that
    /// really exist while an [`ThreadPool::install`] region runs.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel, and returns both results.
///
/// On a pool worker this is the work-stealing primitive itself: `b` is
/// pushed onto the worker's deque (where an idle worker may steal it),
/// `a` runs inline, and the worker then pops `b` back — executing it
/// itself in the common unstolen case — or, while `b` runs elsewhere,
/// executes whatever other jobs it can find. Called from outside the
/// pool, the pair is bridged into the pool first (or run strictly
/// sequentially when the apparent thread count is 1).
///
/// # Panics
///
/// Both halves always run to completion before a panic propagates; if
/// either panics, the original payload is re-raised (preferring `a`'s
/// when both do).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        // Sequential fast path — also taken on a pool worker inside an
        // `install(1)` region, which the `ThreadPool` contract promises
        // runs fully sequentially. Same both-halves-run and payload
        // semantics as the parallel path.
        let ra = panic::catch_unwind(AssertUnwindSafe(a));
        let rb = panic::catch_unwind(AssertUnwindSafe(b));
        return match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(payload), _) => panic::resume_unwind(payload),
            (_, Err(payload)) => panic::resume_unwind(payload),
        };
    }
    registry::in_worker(move |index| {
        let reg = registry::global();
        let b_job = StackJob::new(b, current_num_threads());
        // SAFETY: `b_job` outlives its execution — `wait_until` below
        // does not return before the job's latch is set, even when `a`
        // panics.
        let b_ref = unsafe { b_job.as_job_ref() };
        reg.push_local(index, b_ref);
        let ra = panic::catch_unwind(AssertUnwindSafe(a));
        reg.wait_until(index, &b_job.latch);
        let rb = b_job.into_result();
        match ra {
            Err(payload) => panic::resume_unwind(payload),
            Ok(ra) => match rb {
                JobResult::Ok(rb) => (ra, rb),
                JobResult::Panicked(payload) => panic::resume_unwind(payload),
                JobResult::Pending => unreachable!("latch set without a result"),
            },
        }
    })
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// Minimal scope: spawned closures all complete before [`scope`] returns.
pub struct Scope<'env> {
    tasks: std::cell::RefCell<Vec<Box<dyn FnOnce() + Send + 'env>>>,
}

impl<'env> Scope<'env> {
    /// Queues `f` to run within the scope.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.tasks.borrow_mut().push(Box::new(f));
    }
}

/// Collects spawns from `f`, then runs them all to completion on the
/// pool. The boxed task closures are the only per-task allocations (the
/// scope API requires them); their dispatch goes through the same lazy
/// split tree as every other region, and a panicking task's original
/// payload is re-raised here after the remaining tasks finish or are
/// discarded.
pub fn scope<'env, F: FnOnce(&Scope<'env>)>(f: F) {
    let s = Scope {
        tasks: std::cell::RefCell::new(Vec::new()),
    };
    f(&s);
    let tasks = s.tasks.into_inner();
    if tasks.is_empty() {
        return;
    }
    // The region blocks until every task completes (even when one
    // panics), so the 'env borrows inside the boxes strictly outlive all
    // execution.
    tasks.into_par_iter().for_each(|task| task());
}

pub mod prelude {
    //! The workspace's `use rayon::prelude::*` surface.
    pub use crate::iter::{IntoParallelIterator, ParIter, ParMap};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunked_mutation_touches_everything() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[1002], 16);
    }

    #[test]
    fn zip_runs_disjoint_pairs() {
        let src = vec![1.0f32; 256];
        let mut dst = vec![0.0f32; 256];
        dst.par_chunks_mut(32)
            .zip(src.par_chunks(32))
            .for_each(|(d, s)| {
                for (a, b) in d.iter_mut().zip(s) {
                    *a = 2.0 * b;
                }
            });
        assert!(dst.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn zip_truncates_to_shorter_side() {
        let long = vec![1u32; 96];
        let mut dst = vec![0u32; 64];
        dst.par_chunks_mut(8)
            .zip(long.par_chunks(8))
            .for_each(|(d, s)| {
                for (a, b) in d.iter_mut().zip(s) {
                    *a = *b;
                }
            });
        assert!(dst.iter().all(|&v| v == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let items = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let out: Vec<usize> = items.par_chunks(1).map(|c| c[0] * 10).collect();
        assert_eq!(out, vec![30, 10, 40, 10, 50, 90, 20, 60]);
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let items: Vec<String> = (0..37).map(|i| format!("s{i}")).collect();
        let expected = items.clone();
        let out: Vec<String> = items.into_par_iter().map(|s| s).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn range_into_par_iter_covers_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0..1000usize).into_par_iter().for_each(|i| {
            // ORDERING: Relaxed — commutative test counter; the pool join
            // publishes the final value before the assert reads it.
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        // ORDERING: Relaxed — single-threaded read after the join above.
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut data = vec![0u8; 517];
        data.par_iter_mut().for_each(|v| *v = 7);
        assert!(data.iter().all(|&v| v == 7));
    }

    #[test]
    fn with_min_len_is_respected_and_complete() {
        let mut data = vec![0u32; 4096];
        data.par_chunks_mut(1)
            .with_min_len(64)
            .enumerate()
            .for_each(|(i, c)| c[0] = i as u32 + 1);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn install_pins_apparent_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 1);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn install_reports_only_real_capacity() {
        // Requests beyond the registry's slot capacity are clamped at
        // build time: apparent == actual, always.
        let pool = ThreadPoolBuilder::new()
            .num_threads(1_000_000)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 64);
        assert_eq!(pool.install(current_num_threads), 64);
    }

    #[test]
    fn nested_parallelism_completes() {
        let mut outer = [0u32; 8];
        outer.par_chunks_mut(1).for_each(|chunk| {
            let mut inner = vec![0u32; 64];
            inner.par_chunks_mut(8).for_each(|c| {
                for v in c.iter_mut() {
                    *v = 1;
                }
            });
            chunk[0] = inner.iter().sum();
        });
        assert!(outer.iter().all(|&v| v == 64));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 40, || 2);
        assert_eq!(a + b, 42);
    }

    #[test]
    fn scope_runs_every_spawn() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    // ORDERING: Relaxed — commutative test counter; the
                    // scope join publishes it before the assert reads it.
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // ORDERING: Relaxed — single-threaded read after the scope join.
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    #[should_panic]
    fn task_panics_propagate() {
        let data = [0u8; 4];
        data.par_chunks(1).for_each(|_| panic!("boom"));
    }

    #[test]
    fn panic_payload_is_preserved() {
        let data = [0u8; 64];
        let result = std::panic::catch_unwind(|| {
            data.par_chunks(1).enumerate().for_each(|(i, _)| {
                if i == 13 {
                    std::panic::panic_any(String::from("original payload 13"));
                }
            });
        });
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<String>()
            .expect("payload type must survive the scheduler");
        assert_eq!(message, "original payload 13");
    }
}
