//! The paper's headline claims, asserted as integration tests against the
//! calibrated models. Tolerances are generous where our substitutions
//! legitimately shift constants; shapes (who wins, rough factors,
//! crossovers) are asserted tightly.

use instant3d::accel::energy::AreaModel;
use instant3d::accel::{Accelerator, FeatureSet};
use instant3d::core::{PipelineWorkload, TrainConfig};
use instant3d::devices::breakdown::StepBreakdown;
use instant3d::devices::perf::{ITERS_TO_PSNR25, ITERS_TO_PSNR26};
use instant3d::devices::DeviceModel;

fn ngp() -> PipelineWorkload {
    PipelineWorkload::paper_scale_instant_ngp(ITERS_TO_PSNR26)
}

fn i3d() -> PipelineWorkload {
    PipelineWorkload::paper_scale_instant3d(ITERS_TO_PSNR26)
}

#[test]
fn abstract_claim_training_time_reduction_41x_to_248x() {
    // "achieving a large training time reduction of 41× - 248×".
    let accel = Accelerator::default()
        .simulate(&i3d(), FeatureSet::full())
        .seconds_total;
    let speedups: Vec<f64> = DeviceModel::all_baselines()
        .iter()
        .map(|d| d.runtime(&ngp()) / accel)
        .collect();
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    assert!(
        min > 30.0 && min < 60.0,
        "min speedup {min:.0}x should be ≈ 45x (paper band starts at 41x)"
    );
    assert!(
        max > 180.0 && max < 280.0,
        "max speedup {max:.0}x should be ≈ 224x (paper band ends at 248x)"
    );
}

#[test]
fn abstract_claim_instant_reconstruction_under_power_budget() {
    // "1.6 seconds per scene ... meeting the AR/VR power consumption
    // constraint of 1.9 W".
    let r = Accelerator::default().simulate(
        &PipelineWorkload::paper_scale_instant3d(ITERS_TO_PSNR25),
        FeatureSet::full(),
    );
    assert!(
        r.seconds_total < 5.0,
        "reconstruction {:.2} s must be instant (< 5 s)",
        r.seconds_total
    );
    assert!(
        (1.5..=2.3).contains(&r.avg_power_w),
        "power {:.2} W should be ≈ 1.9 W",
        r.avg_power_w
    );
}

#[test]
fn fig4_claim_grid_interpolation_is_the_bottleneck_everywhere() {
    for device in DeviceModel::all_baselines() {
        let b = StepBreakdown::compute(&device, &ngp());
        let frac = b.grid_interpolation_fraction();
        assert!(
            (0.7..=0.9).contains(&frac),
            "{}: grid share {frac:.2} should be ≈ 0.8",
            device.spec().name
        );
    }
}

#[test]
fn tab4_claim_algorithm_speeds_up_every_dataset_scale() {
    let xavier = DeviceModel::xavier_nx();
    for points_scale in [1.0, 1.875, 1.17] {
        let scale = |mut w: PipelineWorkload| {
            w.points_per_iter *= points_scale;
            w.grid_reads_ff_per_iter *= points_scale;
            w.grid_writes_bp_per_iter *= points_scale;
            w.mlp_flops_per_iter *= points_scale;
            w
        };
        let t_ngp = xavier.runtime(&scale(ngp()));
        let t_i3d = xavier.runtime(&scale(i3d()));
        let ratio = t_i3d / t_ngp;
        assert!(
            (0.70..=0.95).contains(&ratio),
            "algorithm-normalized runtime {ratio:.2} should sit near the paper's 0.82-0.86"
        );
    }
}

#[test]
fn tab5_claim_codesign_reaches_a_few_percent() {
    let xavier = DeviceModel::xavier_nx();
    let base = xavier.runtime(&ngp());
    let codesign = Accelerator::default()
        .simulate(&i3d(), FeatureSet::full())
        .seconds_total;
    let normalized = codesign / base;
    assert!(
        (0.01..=0.05).contains(&normalized),
        "co-design normalized runtime {:.1}% should be ≈ 2-3%",
        normalized * 100.0
    );
}

#[test]
fn fig15_claim_grid_cores_dominate_area_and_energy() {
    let area = AreaModel::default();
    assert!(
        (area.total() - 6.8).abs() < 0.1,
        "total {} mm²",
        area.total()
    );
    assert!((0.72..=0.84).contains(&area.grid_fraction()));

    let r = Accelerator::default().simulate(&i3d(), FeatureSet::full());
    let f = r.energy_breakdown.grid_fraction_dynamic();
    assert!((0.7..=0.9).contains(&f), "energy grid fraction {f:.2}");
}

#[test]
fn fig17_claim_waterfall_multiplies_to_total() {
    let stages = Accelerator::default().speedup_waterfall(ITERS_TO_PSNR26);
    let product: f64 = stages
        .windows(2)
        .map(|w| w[0].1.seconds_total / w[1].1.seconds_total)
        .product();
    let direct = stages[0].1.seconds_total / stages[3].1.seconds_total;
    assert!(
        (product - direct).abs() / direct < 1e-9,
        "stages must compose"
    );
    assert!(
        direct > 30.0,
        "staged total {direct:.0}x should be tens of ×"
    );
}

#[test]
fn fig16_claim_energy_efficiency_order_of_magnitude() {
    // 1198× / 1089× / 479× more energy-efficient than Nano / TX2 / Xavier.
    let acc = Accelerator::default().simulate(&i3d(), FeatureSet::full());
    let effs: Vec<f64> = DeviceModel::all_baselines()
        .iter()
        .map(|d| d.energy(&ngp()) / acc.energy_total_j)
        .collect();
    assert!(
        (900.0..=1500.0).contains(&effs[0]),
        "vs Nano {:.0}",
        effs[0]
    );
    assert!((800.0..=1400.0).contains(&effs[1]), "vs TX2 {:.0}", effs[1]);
    assert!(
        (350.0..=650.0).contains(&effs[2]),
        "vs Xavier {:.0}",
        effs[2]
    );
}

#[test]
fn related_work_claim_tiny_chip() {
    // Instant-3D consumes "36% of the chip area" of RT-NeRF-class designs
    // and is far smaller than the edge SoCs it replaces.
    let spec = instant3d::devices::spec::instant3d_accelerator();
    let xavier = instant3d::devices::spec::xavier_nx();
    assert!(spec.area_mm2.unwrap() / xavier.area_mm2.unwrap() < 0.05);
    assert!(spec.typical_power_w / xavier.typical_power_w < 0.15);
}

#[test]
fn grid_size_knob_behaves_like_tab1() {
    // Shrinking the color grid must not slow things down; the decomposed
    // configs must be at least as fast as the coupled baseline.
    let xavier = DeviceModel::xavier_nx();
    let base = xavier.runtime(&PipelineWorkload::paper_scale_instant_ngp(400.0));
    for (d, c) in [(1.0, 0.25), (0.25, 1.0)] {
        let cfg = TrainConfig::decoupled(d, c, 1, 1);
        let w = instant3d_workload(&cfg, 400.0);
        let t = xavier.runtime(&w);
        assert!(
            t < base,
            "decoupled {d}:{c} runtime {t:.0}s should beat coupled {base:.0}s"
        );
    }
}

/// Local re-implementation of the bench workload builder (the bench crate
/// is not a dependency of the facade).
fn instant3d_workload(cfg: &TrainConfig, iterations: f64) -> PipelineWorkload {
    let points = 200_000.0;
    let reads = points * 16.0 * 8.0;
    PipelineWorkload {
        iterations,
        rays_per_iter: 4096.0,
        points_per_iter: points,
        levels: 16,
        grid_reads_ff_per_iter: 2.0 * reads,
        grid_writes_bp_per_iter: reads / cfg.density_update_every as f64
            + reads / cfg.color_update_every as f64,
        mlp_flops_per_iter: points * 36_000.0,
        density_table_bytes: ((1 << 20) as f64 * cfg.density_size_factor) as usize,
        color_table_bytes: ((1 << 20) as f64 * cfg.color_size_factor) as usize,
        bytes_per_access: 4,
    }
}
