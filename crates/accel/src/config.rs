//! Accelerator configuration: the Tab. 3 / §5.1 design parameters.

/// Design parameters of the Instant-3D accelerator.
///
/// Defaults reproduce the paper's implementation: 28 nm, 800 MHz, four grid
/// cores × 8 banks, 16-deep FRM/BUM reordering, 1.5 MB total SRAM,
/// LPDDR4-1866 DRAM (59.7 GB/s), fp16 features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Core clock (Hz).
    pub clock_hz: f64,
    /// Number of grid cores.
    pub grid_cores: u32,
    /// SRAM banks per grid core.
    pub banks_per_core: u32,
    /// Bytes of hash-table SRAM per bank (8 banks × 32 KB = 256 KB/core).
    pub bytes_per_bank: usize,
    /// FRM/BUM reordering pipeline depth ("set to 16" — §5.1).
    pub reorder_depth: usize,
    /// BUM buffer entries.
    pub bum_entries: usize,
    /// BUM idle-eviction threshold in cycles (the `N` of Fig. 13).
    pub bum_timeout: u64,
    /// DRAM bandwidth in bytes/s (LPDDR4-1866: 59.7 GB/s).
    pub dram_bandwidth: f64,
    /// DRAM transaction granularity in bytes (a 32 B burst).
    pub dram_burst_bytes: usize,
    /// Bytes per hash-table access (2 features × fp16).
    pub bytes_per_access: usize,
    /// Systolic-array dimensions for the large-output MLP unit.
    pub systolic_rows: usize,
    /// Systolic-array columns.
    pub systolic_cols: usize,
    /// Multiplier-adder-tree width for the small-output MLP unit.
    pub tree_width: usize,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            clock_hz: 800e6,
            grid_cores: 4,
            banks_per_core: 8,
            bytes_per_bank: 32 * 1024,
            reorder_depth: 16,
            bum_entries: 16,
            bum_timeout: 64,
            dram_bandwidth: 59.7e9,
            dram_burst_bytes: 32,
            bytes_per_access: 4,
            // A 64×32 fp16 array ≈ 1.3 mm² at 28 nm — the Fig. 15 MLP-unit
            // area budget (≈ 20 % of the 6.8 mm² die).
            systolic_rows: 64,
            systolic_cols: 32,
            tree_width: 32,
        }
    }
}

impl AccelConfig {
    /// Total SRAM banks across all grid cores.
    pub fn total_banks(&self) -> u32 {
        self.grid_cores * self.banks_per_core
    }

    /// Hash-table SRAM bytes per grid core.
    pub fn bytes_per_core(&self) -> usize {
        self.banks_per_core as usize * self.bytes_per_bank
    }

    /// Hash-table SRAM bytes across all cores (1 MB of the 1.5 MB total;
    /// the rest is coordinate/MLP buffering).
    pub fn total_hash_sram_bytes(&self) -> usize {
        self.grid_cores as usize * self.bytes_per_core()
    }

    /// Seconds per clock cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_hz <= 0.0 {
            return Err("clock must be positive".into());
        }
        if self.grid_cores == 0 || self.banks_per_core == 0 {
            return Err("need at least one core and bank".into());
        }
        if !self.banks_per_core.is_power_of_two() {
            return Err("banks per core must be a power of two".into());
        }
        if self.reorder_depth == 0 || self.bum_entries == 0 {
            return Err("reorder/BUM depths must be positive".into());
        }
        if self.dram_bandwidth <= 0.0 {
            return Err("DRAM bandwidth must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design() {
        let c = AccelConfig::default();
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.clock_hz, 800e6);
        assert_eq!(c.grid_cores, 4);
        assert_eq!(c.total_banks(), 32);
        assert_eq!(c.bytes_per_core(), 256 * 1024);
        assert_eq!(c.total_hash_sram_bytes(), 1 << 20);
        assert_eq!(c.reorder_depth, 16);
        assert_eq!(c.bum_entries, 16);
    }

    #[test]
    fn cycle_time_is_reciprocal_clock() {
        let c = AccelConfig::default();
        assert!((c.cycle_time() - 1.25e-9).abs() < 1e-15);
    }

    #[test]
    fn validation_catches_errors() {
        let c = AccelConfig {
            banks_per_core: 6,
            ..AccelConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AccelConfig {
            grid_cores: 0,
            ..AccelConfig::default()
        };
        assert!(c.validate().is_err());
        let c = AccelConfig {
            reorder_depth: 0,
            ..AccelConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
