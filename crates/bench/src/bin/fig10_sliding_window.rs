//! Regenerates the paper's Fig. 10fig10 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig10::run(instant3d_bench::quick_requested());
}
