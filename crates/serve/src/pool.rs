//! Re-export of the workspace reuse pool.
//!
//! The pool started here as fleet infrastructure; it moved to
//! [`instant3d_core::pool`] when the tile renderer
//! (`instant3d_core::render`) adopted the same checkout/park contract
//! for its tile jobs. The serve API is unchanged — fleets still share
//! one pool across training slices *and* per-job preview rendering.

pub use instant3d_core::pool::WorkspacePool;
