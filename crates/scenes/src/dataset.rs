//! Posed-image datasets rendered from the analytic scenes: the inputs of
//! Step ① and the ground truth of Step ⑤.

use crate::scannet;
use crate::scene::AnalyticScene;
use crate::silvr;
use crate::synthetic;
use instant3d_nerf::camera::{orbit_rig, Camera};
use instant3d_nerf::field::{render_image, RadianceField};
use instant3d_nerf::image::{DepthImage, RgbImage};
use instant3d_nerf::math::{Aabb, Vec3};
use rand::Rng;

/// A posed view: one camera and the image it captured.
#[derive(Debug, Clone)]
pub struct View {
    /// Camera pose + intrinsics.
    pub camera: Camera,
    /// The captured RGB image.
    pub image: RgbImage,
}

/// A complete training dataset for one scene: posed train/test images,
/// ground-truth test depth maps and scene metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Scene name (keys the experiment tables).
    pub name: String,
    /// The scene volume the hash grids will cover.
    pub aabb: Aabb,
    /// Composite background color used during rendering and training.
    pub background: Vec3,
    /// Training views (Step ① samples pixels from these).
    pub train_views: Vec<View>,
    /// Held-out evaluation views.
    pub test_views: Vec<View>,
    /// Ground-truth depth for each test view (for the Fig. 5 density-pace
    /// analysis; "not generated during training, merely used to test the
    /// learned density quality").
    pub test_depths: Vec<DepthImage>,
}

impl Dataset {
    /// Renders a dataset from an analytic scene and camera rigs.
    pub fn from_scene(
        scene: &AnalyticScene,
        train_cameras: Vec<Camera>,
        test_cameras: Vec<Camera>,
        gt_samples_per_ray: usize,
        background: Vec3,
    ) -> Dataset {
        let render = |cams: &[Camera]| -> (Vec<View>, Vec<DepthImage>) {
            let mut views = Vec::with_capacity(cams.len());
            let mut depths = Vec::with_capacity(cams.len());
            for cam in cams {
                let (rgb, depth) = render_image(scene, cam, gt_samples_per_ray, background);
                views.push(View {
                    camera: *cam,
                    image: rgb,
                });
                depths.push(depth);
            }
            (views, depths)
        };
        let (train_views, _) = render(&train_cameras);
        let (test_views, test_depths) = render(&test_cameras);
        Dataset {
            name: scene.name().to_string(),
            aabb: scene.aabb(),
            background,
            train_views,
            test_views,
            test_depths,
        }
    }

    /// Adds zero-mean Gaussian noise (std `sigma`) to all training images —
    /// the ScanNet-substitute's sensor-noise injection.
    pub fn add_sensor_noise<R: Rng + ?Sized>(&mut self, sigma: f32, rng: &mut R) {
        for view in &mut self.train_views {
            for p in view.image.pixels_mut() {
                let n = Vec3::new(
                    gaussian(rng) * sigma,
                    gaussian(rng) * sigma,
                    gaussian(rng) * sigma,
                );
                *p = (*p + n).clamp(0.0, 1.0);
            }
        }
    }

    /// Training cameras as a slice-friendly vector (the samplers take
    /// parallel `&[Camera]` / `&[RgbImage]` slices).
    pub fn train_cameras(&self) -> Vec<Camera> {
        self.train_views.iter().map(|v| v.camera).collect()
    }

    /// Training images, parallel to [`Dataset::train_cameras`].
    pub fn train_images(&self) -> Vec<RgbImage> {
        self.train_views.iter().map(|v| v.image.clone()).collect()
    }

    /// Total training pixels across all views.
    pub fn num_train_pixels(&self) -> usize {
        self.train_views.iter().map(|v| v.image.num_pixels()).sum()
    }
}

/// Box-Muller standard normal sample.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Factory for the paper's three dataset substrates.
#[derive(Debug, Clone, Copy)]
pub struct SceneLibrary;

impl SceneLibrary {
    /// One NeRF-Synthetic-like scene (`index` in 0..8) captured by an orbit
    /// rig: `train_views` training cameras plus `train_views / 3 + 2` test
    /// cameras at a different elevation.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn synthetic_scene<R: Rng + ?Sized>(
        index: usize,
        resolution: u32,
        train_views: usize,
        _rng: &mut R,
    ) -> Dataset {
        let scene = synthetic::build_scene(index);
        let target = scene.aabb().center();
        let radius = scene.aabb().diagonal() * 0.9;
        let fov = 50f32.to_radians();
        let train = orbit_rig(
            target,
            radius,
            0.5,
            train_views,
            fov,
            resolution,
            resolution,
        );
        let test = orbit_rig(
            target,
            radius,
            0.8,
            (train_views / 3).max(2),
            fov,
            resolution,
            resolution,
        );
        Dataset::from_scene(&scene, train, test, 96, Vec3::ONE)
    }

    /// All eight synthetic scenes.
    pub fn synthetic_all<R: Rng + ?Sized>(
        resolution: u32,
        train_views: usize,
        rng: &mut R,
    ) -> Vec<Dataset> {
        (0..synthetic::NUM_SCENES)
            .map(|i| Self::synthetic_scene(i, resolution, train_views, rng))
            .collect()
    }

    /// The SILVR-like large-volume hall, captured by a wide orbit inside
    /// the space.
    pub fn silvr_scene<R: Rng + ?Sized>(
        resolution: u32,
        train_views: usize,
        _rng: &mut R,
    ) -> Dataset {
        let scene = silvr::build_hall();
        let target = Vec3::new(0.0, -0.2, 0.0);
        let fov = 65f32.to_radians();
        let train = orbit_rig(target, 3.0, 0.25, train_views, fov, resolution, resolution);
        let test = orbit_rig(
            target,
            2.6,
            0.4,
            (train_views / 3).max(2),
            fov,
            resolution,
            resolution,
        );
        Dataset::from_scene(&scene, train, test, 128, Vec3::new(0.05, 0.05, 0.08))
    }

    /// The ScanNet-like room with a walking trajectory and sensor noise.
    pub fn scannet_scene<R: Rng + ?Sized>(
        resolution: u32,
        train_views: usize,
        rng: &mut R,
    ) -> Dataset {
        let scene = scannet::build_room();
        let fov = 70f32.to_radians();
        let train = scannet::walking_trajectory(train_views, fov, resolution, resolution);
        let test: Vec<Camera> = scannet::walking_trajectory(
            (train_views / 3).max(2) * 2 + 1,
            fov,
            resolution,
            resolution,
        )
        .into_iter()
        .skip(1)
        .step_by(2)
        .collect();
        let mut ds = Dataset::from_scene(&scene, train, test, 128, Vec3::new(0.02, 0.02, 0.02));
        ds.add_sensor_noise(0.01, rng);
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synthetic_dataset_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = SceneLibrary::synthetic_scene(4, 16, 6, &mut rng);
        assert_eq!(ds.name, "lego");
        assert_eq!(ds.train_views.len(), 6);
        assert_eq!(ds.test_views.len(), 2);
        assert_eq!(ds.test_depths.len(), 2);
        assert_eq!(ds.num_train_pixels(), 6 * 16 * 16);
        assert_eq!(ds.train_cameras().len(), 6);
        assert_eq!(ds.train_images().len(), 6);
    }

    #[test]
    fn synthetic_images_show_the_object() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = SceneLibrary::synthetic_scene(0, 24, 4, &mut rng);
        // With a white background, object pixels darken the mean.
        for v in &ds.train_views {
            let mean: f32 = v
                .image
                .pixels()
                .iter()
                .map(|p| (p.x + p.y + p.z) / 3.0)
                .sum::<f32>()
                / v.image.num_pixels() as f32;
            assert!(mean < 0.999, "view looks empty (mean {mean})");
            assert!(mean > 0.2, "view is implausibly dark (mean {mean})");
        }
    }

    #[test]
    fn test_depths_are_positive_where_object_is() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = SceneLibrary::synthetic_scene(6, 24, 4, &mut rng);
        for d in &ds.test_depths {
            assert!(d.max_depth() > 0.0, "depth map empty");
        }
    }

    #[test]
    fn sensor_noise_perturbs_but_preserves_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ds = SceneLibrary::synthetic_scene(1, 16, 3, &mut rng);
        let before = ds.train_views[0].image.clone();
        ds.add_sensor_noise(0.05, &mut rng);
        let after = &ds.train_views[0].image;
        assert!(before.mse(after) > 0.0, "noise should change pixels");
        for p in after.pixels() {
            for k in 0..3 {
                assert!((0.0..=1.0).contains(&p[k]));
            }
        }
    }

    #[test]
    fn scannet_dataset_builds_with_noise() {
        let mut rng = StdRng::seed_from_u64(9);
        let ds = SceneLibrary::scannet_scene(16, 6, &mut rng);
        assert_eq!(ds.name, "scannet-room");
        assert_eq!(ds.train_views.len(), 6);
        assert!(!ds.test_views.is_empty());
    }

    #[test]
    fn silvr_dataset_is_large_volume() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = SceneLibrary::silvr_scene(16, 5, &mut rng);
        assert_eq!(ds.name, "silvr-hall");
        assert!(ds.aabb.extent().max_component() > 6.0);
    }
}
