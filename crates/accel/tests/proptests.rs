//! Property-based tests of the accelerator simulator's invariants.

use instant3d_accel::sram::BankedSram;
use instant3d_accel::{simulate_baseline_reads, simulate_bum, simulate_frm, BumConfig};
use proptest::prelude::*;

fn addr_stream() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..(1 << 16), 0..600)
}

fn update_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..512, 0..800)
}

proptest! {
    // ---------- FRM ----------

    #[test]
    fn frm_services_every_request(addrs in addr_stream()) {
        let r = simulate_frm(&addrs, 8, 16);
        prop_assert_eq!(r.reads, addrs.len() as u64);
    }

    #[test]
    fn frm_cycles_bounded(addrs in addr_stream()) {
        let n = addrs.len() as u64;
        let r = simulate_frm(&addrs, 8, 16);
        // Lower bound: bandwidth limit. Upper bound: one per cycle.
        prop_assert!(r.cycles >= n.div_ceil(8));
        prop_assert!(r.cycles <= n.max(1) || n == 0);
        prop_assert!(r.utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn frm_never_loses_to_baseline(addrs in addr_stream()) {
        let frm = simulate_frm(&addrs, 8, 16);
        let base = simulate_baseline_reads(&addrs, 8, 8);
        prop_assert!(frm.cycles <= base.cycles,
            "FRM {} cycles vs baseline {}", frm.cycles, base.cycles);
    }

    #[test]
    fn frm_window_one_equals_in_order_issue(addrs in addr_stream()) {
        // A 1-deep window degenerates to strict in-order single issue.
        let r = simulate_frm(&addrs, 8, 1);
        prop_assert_eq!(r.cycles, addrs.len() as u64);
    }

    // ---------- BUM ----------

    #[test]
    fn bum_conservation(updates in update_stream()) {
        let r = simulate_bum(&updates, BumConfig::default());
        // Every update either merges or becomes exactly one write.
        prop_assert_eq!(r.merged + r.sram_writes, r.updates);
        prop_assert!(r.sram_writes <= r.updates);
    }

    #[test]
    fn bum_writes_at_least_distinct_count(updates in update_stream()) {
        let distinct = updates.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        let r = simulate_bum(&updates, BumConfig { entries: 16, timeout: 1 << 30 });
        prop_assert!(r.sram_writes >= distinct,
            "writes {} < distinct {}", r.sram_writes, distinct);
    }

    #[test]
    fn bum_bigger_buffer_never_hurts(updates in update_stream()) {
        let small = simulate_bum(&updates, BumConfig { entries: 4, timeout: 1 << 30 });
        let large = simulate_bum(&updates, BumConfig { entries: 64, timeout: 1 << 30 });
        prop_assert!(large.sram_writes <= small.sram_writes);
    }

    #[test]
    fn bum_longer_timeout_never_hurts(updates in update_stream()) {
        let short = simulate_bum(&updates, BumConfig { entries: 16, timeout: 4 });
        let long = simulate_bum(&updates, BumConfig { entries: 16, timeout: 1 << 30 });
        prop_assert!(long.sram_writes <= short.sram_writes);
    }

    // ---------- banked SRAM ----------

    #[test]
    fn sram_group_cycles_equal_max_bank_load(addrs in prop::collection::vec(0u32..64, 1..40)) {
        let mut s = BankedSram::new(8);
        let cycles = s.issue_reads(&addrs);
        let mut loads = [0u64; 8];
        for &a in &addrs {
            loads[(a % 8) as usize] += 1;
        }
        prop_assert_eq!(cycles, *loads.iter().max().unwrap());
    }

    #[test]
    fn sram_utilization_bounded(groups in prop::collection::vec(
        prop::collection::vec(0u32..256, 1..16), 1..20))
    {
        let mut s = BankedSram::new(8);
        for g in &groups {
            s.issue_reads(g);
        }
        prop_assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(s.accesses(), total as u64);
    }
}
