//! Regenerates the paper's Fig. 15fig15 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig15::run(instant3d_bench::quick_requested());
}
