//! MLP compute units: a systolic array for wide layers and a
//! multiplier-adder tree for narrow-output layers (§4.3).
//!
//! The paper adopts two unit types because "the multiplier-adder-tree can
//! achieve a higher hardware utilization than the systolic array under the
//! cases with relatively small output channels (e.g., ≤ 3)" — which is
//! exactly the RGB output layer.

/// Output-channel threshold below which the tree unit is preferred.
pub const TREE_THRESHOLD: usize = 3;

/// Cycle model of a weight-stationary systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    /// PE rows (output-channel dimension).
    pub rows: usize,
    /// PE columns (input-channel dimension).
    pub cols: usize,
}

impl SystolicArray {
    /// Cycles for a `batch × in_dim → out_dim` dense layer: the weight
    /// matrix is tiled `⌈out/rows⌉ × ⌈in/cols⌉`; each tile streams the
    /// batch plus a pipeline fill of `rows + cols`.
    pub fn cycles(&self, batch: usize, in_dim: usize, out_dim: usize) -> u64 {
        if batch == 0 || in_dim == 0 || out_dim == 0 {
            return 0;
        }
        let tiles_r = out_dim.div_ceil(self.rows) as u64;
        let tiles_c = in_dim.div_ceil(self.cols) as u64;
        tiles_r * tiles_c * (batch as u64 + (self.rows + self.cols) as u64)
    }

    /// Peak MACs per cycle.
    pub fn macs_per_cycle(&self) -> usize {
        self.rows * self.cols
    }

    /// Achieved utilisation for a layer shape (MACs / (cycles × peak)).
    pub fn utilization(&self, batch: usize, in_dim: usize, out_dim: usize) -> f64 {
        let cycles = self.cycles(batch, in_dim, out_dim);
        if cycles == 0 {
            return 0.0;
        }
        let macs = (batch * in_dim * out_dim) as f64;
        macs / (cycles as f64 * self.macs_per_cycle() as f64)
    }
}

/// Cycle model of a multiplier-adder tree: `width` multipliers feeding a
/// reduction tree, producing one output-channel partial per
/// `⌈in/width⌉` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulAddTree {
    /// Parallel multipliers.
    pub width: usize,
}

impl MulAddTree {
    /// Cycles for a dense layer.
    pub fn cycles(&self, batch: usize, in_dim: usize, out_dim: usize) -> u64 {
        if batch == 0 || in_dim == 0 || out_dim == 0 {
            return 0;
        }
        (batch as u64) * (out_dim as u64) * in_dim.div_ceil(self.width) as u64
    }

    /// Peak MACs per cycle.
    pub fn macs_per_cycle(&self) -> usize {
        self.width
    }

    /// Achieved utilisation for a layer shape.
    pub fn utilization(&self, batch: usize, in_dim: usize, out_dim: usize) -> f64 {
        let cycles = self.cycles(batch, in_dim, out_dim);
        if cycles == 0 {
            return 0.0;
        }
        (batch * in_dim * out_dim) as f64 / (cycles as f64 * self.width as f64)
    }
}

/// A dense-layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerShape {
    /// Input channels.
    pub in_dim: usize,
    /// Output channels.
    pub out_dim: usize,
}

/// Dispatches each layer to the better unit (tree for `out_dim ≤ 3`,
/// systolic otherwise) and sums cycles for one batch, forward direction.
pub fn mlp_cycles(
    layers: &[LayerShape],
    batch: usize,
    systolic: SystolicArray,
    tree: MulAddTree,
) -> u64 {
    layers
        .iter()
        .map(|l| {
            if l.out_dim <= TREE_THRESHOLD {
                tree.cycles(batch, l.in_dim, l.out_dim)
            } else {
                systolic.cycles(batch, l.in_dim, l.out_dim)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SA: SystolicArray = SystolicArray { rows: 16, cols: 16 };
    const TREE: MulAddTree = MulAddTree { width: 32 };

    #[test]
    fn systolic_cycles_scale_with_tiles() {
        // 16×16 array, 32×32 layer → 2×2 tiles.
        let one_tile = SA.cycles(100, 16, 16);
        let four_tiles = SA.cycles(100, 32, 32);
        assert_eq!(four_tiles, 4 * one_tile);
    }

    #[test]
    fn systolic_utilization_improves_with_batch() {
        let small = SA.utilization(8, 64, 64);
        let large = SA.utilization(4096, 64, 64);
        assert!(large > small);
        assert!(large > 0.9, "large-batch utilization {large}");
    }

    #[test]
    fn tree_beats_systolic_on_rgb_output_layer() {
        // The paper's observation: out_dim = 3 wastes a 16-row array.
        let batch = 1024;
        let (in_dim, out_dim) = (64, 3);
        let tree_util = TREE.utilization(batch, in_dim, out_dim);
        let sys_util = SA.utilization(batch, in_dim, out_dim);
        assert!(
            tree_util > sys_util,
            "tree {tree_util} should beat systolic {sys_util} for 3 outputs"
        );
    }

    #[test]
    fn systolic_beats_tree_on_wide_layers() {
        let batch = 1024;
        let (in_dim, out_dim) = (64, 64);
        assert!(SA.cycles(batch, in_dim, out_dim) < TREE.cycles(batch, in_dim, out_dim));
    }

    #[test]
    fn dispatch_picks_the_right_unit() {
        let layers = [
            LayerShape {
                in_dim: 32,
                out_dim: 64,
            }, // systolic
            LayerShape {
                in_dim: 64,
                out_dim: 3,
            }, // tree
        ];
        let total = mlp_cycles(&layers, 256, SA, TREE);
        let expect = SA.cycles(256, 32, 64) + TREE.cycles(256, 64, 3);
        assert_eq!(total, expect);
    }

    #[test]
    fn zero_work_is_free() {
        assert_eq!(SA.cycles(0, 64, 64), 0);
        assert_eq!(TREE.cycles(10, 0, 3), 0);
        assert_eq!(mlp_cycles(&[], 100, SA, TREE), 0);
    }

    #[test]
    fn peak_rates() {
        assert_eq!(SA.macs_per_cycle(), 256);
        assert_eq!(TREE.macs_per_cycle(), 32);
    }
}
