// Fixture: linted as if it were crates/nerf/src/foo.rs. Not compiled.

use std::collections::HashMap;

fn kernel_path() {
    // VIOLATION: HashMap iteration order leaks into kernel code.
    let m: HashMap<u32, f32> = HashMap::new();
    for (_k, _v) in &m {}
}

#[cfg(test)]
mod tests {
    // Exempt: #[cfg(test)] items may use HashSet/HashMap freely.
    use std::collections::HashSet;

    #[test]
    fn uses_hashset() {
        let mut s = HashSet::new();
        s.insert(1);
    }
}
