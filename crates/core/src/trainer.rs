//! The six-step training pipeline (Fig. 2) for both Instant-NGP and
//! Instant-3D models, with workload accounting and optional access tracing.
//!
//! Per iteration:
//!
//! 1. **Sample pixels** — a random batch of supervised pixels.
//! 2. **Map to rays** — camera rays through those pixels.
//! 3. **Query features** — hash-grid interpolation (③-①) + MLP heads
//!    (③-②) for every stratified sample surviving occupancy culling.
//! 4. **Volume render** — Eq. 1 compositing per ray.
//! 5. **Loss** — squared error against ground truth (Eq. 2).
//! 6. **Back-propagate** — analytic gradients through ④→③, with the grid
//!    scatter gated by each branch's update schedule (§3.3), then Adam.

use crate::batch::BatchWorkspace;
use crate::config::{GridTopology, TrainConfig};
use crate::eval::EvalResult;
use crate::model::{BranchObserver, ModelGradients, ModelWorkspace, NerfModel, NullBranchObserver};
use crate::profile::WorkloadStats;
use crate::schedule::UpdateSchedule;
use instant3d_nerf::adam::{Adam, AdamConfig};
use instant3d_nerf::camera::Camera;
use instant3d_nerf::image::RgbImage;
use instant3d_nerf::math::Vec3;
use instant3d_nerf::occupancy::{
    OccupancyGrid, OccupancyRefreshStats, OccupancyWorkspace, RefreshMode,
};
use instant3d_nerf::render::{composite, composite_backward, pixel_loss, RaySample, RenderCache};
use instant3d_nerf::sampler::{
    sample_pixel_batch, sample_pixel_batch_into, sample_segments, sample_segments_into, Segment,
    TrainRay,
};
use instant3d_scenes::Dataset;
use rand::Rng;

/// Statistics of a single training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Mean squared-error loss over the batch.
    pub loss: f32,
    /// Rays in the batch.
    pub rays: usize,
    /// Points queried after occupancy culling.
    pub points: usize,
    /// Whether the density grid received an optimizer step.
    pub density_updated: bool,
    /// Whether the color grid received an optimizer step.
    pub color_updated: bool,
}

/// One PSNR measurement along the training trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsnrPoint {
    /// Iteration at which the evaluation ran.
    pub iteration: u64,
    /// RGB PSNR (dB).
    pub rgb_psnr: f32,
    /// Depth PSNR (dB) — the density-quality probe of Fig. 5.
    pub depth_psnr: f32,
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Final test RGB PSNR (dB).
    pub final_psnr: f32,
    /// Final test depth PSNR (dB).
    pub final_depth_psnr: f32,
    /// Final batch loss.
    pub final_loss: f32,
    /// PSNR trajectory (empty unless periodic evaluation was requested).
    pub psnr_history: Vec<PsnrPoint>,
    /// Cumulative workload counters for the whole run.
    pub stats: WorkloadStats,
}

/// Trains a [`NerfModel`] on a [`Dataset`].
///
/// # Example
///
/// ```
/// use instant3d_core::{TrainConfig, Trainer};
/// use instant3d_scenes::SceneLibrary;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let ds = SceneLibrary::synthetic_scene(0, 12, 3, &mut rng);
/// let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);
/// let report = trainer.train(5, &mut rng);
/// assert_eq!(report.iterations, 5);
/// ```
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainConfig,
    model: NerfModel,
    density_schedule: UpdateSchedule,
    color_schedule: UpdateSchedule,
    grid_d_opt: Adam,
    grid_c_opt: Option<Adam>,
    sigma_mlp_opts: Vec<Adam>,
    color_mlp_opts: Vec<Adam>,
    occupancy: Option<OccupancyGrid>,
    /// Batched-refresh state: persistent cell→embedding cache, density
    /// EMA store and subset rotation (see `instant3d_nerf::occupancy`).
    occ_ws: OccupancyWorkspace,
    iter: u64,
    stats: WorkloadStats,
    cameras: Vec<Camera>,
    images: Vec<RgbImage>,
    background: Vec3,
    ws: ModelWorkspace,
    grads: ModelGradients,
    touched_scratch: Vec<usize>,
    /// Batched-engine scratch, reused across iterations. `None` until
    /// the first batched step (or between a detach and the next attach):
    /// the serve layer parks workspaces in a shared pool between job
    /// slices instead of keeping one resident per job.
    bws: Option<BatchWorkspace>,
    /// Fresh `BatchWorkspace` allocations this trainer performed (0 when
    /// every step ran on an attached, pooled workspace after the first).
    bws_allocated: u64,
    ray_scratch: Vec<TrainRay>,
    seg_scratch: Vec<Segment>,
}

impl Trainer {
    /// Builds a trainer (model, optimizers, occupancy grid) for a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or the dataset has no training views.
    pub fn new<R: Rng + ?Sized>(cfg: TrainConfig, dataset: &Dataset, rng: &mut R) -> Self {
        assert!(
            !dataset.train_views.is_empty(),
            "dataset has no training views"
        );
        let model = NerfModel::new(&cfg, dataset.aabb, rng);
        let density_schedule = UpdateSchedule::every(cfg.density_update_every);
        let color_schedule = UpdateSchedule::every(cfg.color_update_every);
        let grid_d_opt = Adam::new(
            AdamConfig {
                lr: cfg.grid_lr,
                ..AdamConfig::for_grid()
            },
            model.density_grid().num_params(),
        );
        let grid_c_opt = model.color_grid().map(|g| {
            Adam::new(
                AdamConfig {
                    lr: cfg.grid_lr,
                    ..AdamConfig::for_grid()
                },
                g.num_params(),
            )
        });
        let mlp_adam = AdamConfig {
            lr: cfg.mlp_lr,
            ..AdamConfig::for_mlp()
        };
        let sigma_mlp_opts = model
            .sigma_mlp()
            .layers()
            .iter()
            .flat_map(|l| {
                let s = l.spec();
                [s.in_dim * s.out_dim, s.out_dim]
            })
            .map(|n| Adam::new(mlp_adam, n))
            .collect();
        let color_mlp_opts = model
            .color_mlp()
            .layers()
            .iter()
            .flat_map(|l| {
                let s = l.spec();
                [s.in_dim * s.out_dim, s.out_dim]
            })
            .map(|n| Adam::new(mlp_adam, n))
            .collect();
        let occupancy = (cfg.occupancy_resolution > 0)
            .then(|| OccupancyGrid::new(dataset.aabb, cfg.occupancy_resolution));
        let ws = model.workspace();
        let grads = model.zero_grads();
        let backend = cfg.kernel_backend.name();
        let tier = cfg.kernel_backend.tier().label();
        let occ_ws = OccupancyWorkspace::new(cfg.kernel_backend.clone());
        Trainer {
            cfg,
            model,
            density_schedule,
            color_schedule,
            grid_d_opt,
            grid_c_opt,
            sigma_mlp_opts,
            color_mlp_opts,
            occupancy,
            occ_ws,
            iter: 0,
            stats: WorkloadStats {
                backend,
                tier,
                ..WorkloadStats::default()
            },
            cameras: dataset.train_cameras(),
            images: dataset.train_images(),
            background: dataset.background,
            ws,
            grads,
            touched_scratch: Vec::new(),
            bws: None,
            bws_allocated: 0,
            ray_scratch: Vec::new(),
            seg_scratch: Vec::new(),
        }
    }

    /// The model being trained.
    pub fn model(&self) -> &NerfModel {
        &self.model
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Iterations executed so far.
    pub fn iteration(&self) -> u64 {
        self.iter
    }

    /// Cumulative workload counters.
    pub fn stats(&self) -> &WorkloadStats {
        &self.stats
    }

    /// Current occupancy-grid fill fraction (1.0 when disabled).
    pub fn occupancy_fraction(&self) -> f32 {
        self.occupancy
            .as_ref()
            .map_or(1.0, OccupancyGrid::occupancy_fraction)
    }

    /// The trained occupancy grid, when occupancy is enabled — the
    /// culling structure occupancy-guided eval and per-job preview
    /// rendering consult.
    pub fn occupancy_grid(&self) -> Option<&OccupancyGrid> {
        self.occupancy.as_ref()
    }

    /// Hands this trainer a (pooled) batched-engine workspace to run its
    /// next steps on, instead of allocating one lazily. The workspace
    /// carries no cross-iteration state — every buffer is cleared/resized
    /// per step — so attaching one recycled from another job cannot
    /// change this trainer's results.
    ///
    /// Returns the workspace back as `Err` when its
    /// [`shape`](BatchWorkspace::shape) does not fit this trainer's model
    /// (wrong dimensions or kernel backend); any workspace already
    /// attached is dropped in favor of the new one only on success.
    // The large `Err` is the point: the caller gets the rejected
    // workspace back to re-pool instead of losing it.
    #[allow(clippy::result_large_err)]
    pub fn attach_batch_workspace(&mut self, ws: BatchWorkspace) -> Result<(), BatchWorkspace> {
        if ws.fits(&self.model) {
            self.bws = Some(ws);
            Ok(())
        } else {
            Err(ws)
        }
    }

    /// Takes the batched-engine workspace out of the trainer (for parking
    /// in a reuse pool between job slices). `None` if the trainer has not
    /// run a batched step since construction or the last detach. The next
    /// batched step re-allocates unless a workspace is attached first.
    pub fn detach_batch_workspace(&mut self) -> Option<BatchWorkspace> {
        self.bws.take()
    }

    /// Fresh [`BatchWorkspace`] allocations this trainer performed. Stays
    /// at 1 for a solo run (the lazy first-step allocation) and at 0 for
    /// a serve job fed exclusively from the pool — the counter the fleet
    /// telemetry sums to prove zero steady-state workspace allocation.
    pub fn batch_workspace_allocations(&self) -> u64 {
        self.bws_allocated
    }

    /// Replaces this trainer's occupancy-refresh workspace with `ws`,
    /// returning the previous one. Unlike [`BatchWorkspace`], the
    /// occupancy workspace carries *persistent training state* (density
    /// EMA, subset rotation phase, the per-level-versioned embedding
    /// cache), so a workspace recycled from another job must be
    /// [`reset`](OccupancyWorkspace::reset) first or the new job's
    /// refresh results — and thus its checkpoints — would depend on the
    /// donor job. The handed-in workspace is re-pointed at this trainer's
    /// kernel backend.
    pub fn attach_occupancy_workspace(&mut self, mut ws: OccupancyWorkspace) -> OccupancyWorkspace {
        ws.set_backend(self.cfg.kernel_backend.clone());
        std::mem::replace(&mut self.occ_ws, ws)
    }

    /// Takes the occupancy-refresh workspace out of the trainer (for
    /// recycling when a serve job retires), leaving an empty replacement
    /// behind. The replacement rebuilds its state lazily on the next
    /// refresh, so detaching mid-training changes no results — only the
    /// cost of the next refresh.
    pub fn detach_occupancy_workspace(&mut self) -> OccupancyWorkspace {
        std::mem::replace(
            &mut self.occ_ws,
            OccupancyWorkspace::new(self.cfg.kernel_backend.clone()),
        )
    }

    /// Runs one training iteration on the batched SoA engine — the default
    /// hot path. Rays are sampled into structure-of-arrays buffers, every
    /// pipeline stage runs once over the whole batch, and the grid/MLP
    /// stages execute on the rayon pool. Results are bit-identical to
    /// [`Trainer::step_scalar`] and independent of the worker count.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> StepStats {
        self.step_batched_impl(rng, &mut NullBranchObserver, None)
    }

    /// Runs one batched training iteration with wall-clock timing charged
    /// to `timer` — the native Fig.-4-style profile of this trainer.
    ///
    /// Step mapping: batch sampling → Step ①; per-ray segment sampling and
    /// direction encoding → Step ②; grid reads → ③-① fwd; MLP heads →
    /// ③-② fwd; compositing and its backward → Step ④; loss → Step ⑤;
    /// head backward + MLP Adam → ③-② bwd; grid scatter + grid Adam +
    /// occupancy upkeep → ③-① bwd.
    pub fn step_timed<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        timer: &mut crate::timing::StepTimer,
    ) -> StepStats {
        let stats = self.step_batched_impl(rng, &mut NullBranchObserver, Some(timer));
        timer.end_iteration();
        stats
    }

    /// Runs one batched training iteration, reporting every grid access to
    /// `obs` (the hook `instant3d-trace` uses to capture Figs. 8–10
    /// streams). The grid stages run sequentially point-major here, so
    /// *within each phase* the capture order is identical to the scalar
    /// reference path's; the phases themselves are regrouped (all
    /// feed-forward reads, then all scatter writes, instead of per-ray
    /// interleaving) — i.e. the stream is order-normalized equivalent.
    /// Consumers that depend on FF/BP interleaving should capture via
    /// [`Trainer::step_scalar_observed`].
    pub fn step_observed<R: Rng + ?Sized, O: BranchObserver + ?Sized>(
        &mut self,
        rng: &mut R,
        obs: &mut O,
    ) -> StepStats {
        self.step_batched_impl(rng, obs, None)
    }

    /// Runs one training iteration on the scalar point-at-a-time
    /// reference implementation. The batched engine is gated against this
    /// path by golden tests (identical losses, parameters, workload
    /// counters and trace streams).
    pub fn step_scalar<R: Rng + ?Sized>(&mut self, rng: &mut R) -> StepStats {
        self.step_impl(rng, &mut NullBranchObserver, None)
    }

    /// Scalar reference iteration with access tracing (see
    /// [`Trainer::step_scalar`]).
    pub fn step_scalar_observed<R: Rng + ?Sized, O: BranchObserver + ?Sized>(
        &mut self,
        rng: &mut R,
        obs: &mut O,
    ) -> StepStats {
        self.step_impl(rng, obs, None)
    }

    /// The batched SoA training iteration (see [`crate::batch`]).
    #[allow(unused_assignments)] // the lap! clock's final store is unread
    fn step_batched_impl<R: Rng + ?Sized, O: BranchObserver + ?Sized>(
        &mut self,
        rng: &mut R,
        obs: &mut O,
        mut timer: Option<&mut crate::timing::StepTimer>,
    ) -> StepStats {
        use crate::profile::PipelineStep as Ps;
        use std::time::Instant;
        let mut last = Instant::now();
        macro_rules! lap {
            ($step:expr) => {
                if let Some(t) = timer.as_deref_mut() {
                    let now = Instant::now();
                    t.add($step, now - last);
                    last = now;
                }
            };
        }
        let update_density = self.density_schedule.should_update(self.iter);
        let update_color = match self.model.topology() {
            GridTopology::Coupled => update_density,
            GridTopology::Decoupled => self.color_schedule.should_update(self.iter),
        };

        // Step ①: pixel batch (same RNG stream as the scalar path).
        sample_pixel_batch_into(
            &self.cameras,
            &self.images,
            self.cfg.rays_per_batch,
            rng,
            &mut self.ray_scratch,
        );
        self.grads.zero();
        lap!(Ps::SamplePixels);

        // Step ② + ③ sampling: stratified segments and occupancy culling,
        // filling the SoA buffers ray by ray (RNG order matches scalar).
        // The workspace is taken out of its slot for the step so the
        // pipeline stages can borrow model and scratch independently; a
        // missing workspace (first step, or detached into the serve pool)
        // is allocated fresh and counted.
        let mut bws = match self.bws.take() {
            Some(ws) => ws,
            None => {
                self.bws_allocated += 1;
                BatchWorkspace::new(&self.model)
            }
        };
        let aabb = self.model.aabb();
        bws.clear();
        bws.reserve_rays(self.ray_scratch.len());
        for (r, tr) in self.ray_scratch.iter().enumerate() {
            sample_segments_into(
                &tr.ray,
                &aabb,
                self.cfg.samples_per_ray,
                Some(rng),
                &mut self.seg_scratch,
            );
            self.model.encode_dir(tr.ray.dir, bws.sh_row_mut(r));
            for &(t, dt) in &self.seg_scratch {
                let p = tr.ray.at(t);
                if let Some(occ) = &self.occupancy {
                    if !occ.occupied_at(p) {
                        continue;
                    }
                }
                bws.rays.push_sample(t, dt);
                bws.positions.push(p);
                bws.point_ray.push(r as u32);
            }
            bws.rays.end_ray();
        }
        let total_points = bws.num_points();
        lap!(Ps::MapRays);

        // Step ③ forward, batched.
        bws.encode(&self.model, obs);
        lap!(Ps::GridForward);
        bws.heads_forward(&self.model);
        lap!(Ps::MlpForward);

        // Step ④: composite; Step ⑤: loss.
        bws.composite_all(self.background);
        lap!(Ps::VolumeRender);
        let inv_batch = 1.0 / self.ray_scratch.len().max(1) as f32;
        let mut total_loss = 0.0f32;
        for (r, tr) in self.ray_scratch.iter().enumerate() {
            let (loss, d_raw) = pixel_loss(bws.output(r).color, tr.target);
            total_loss += loss;
            bws.d_color[r] = d_raw * inv_batch;
        }
        lap!(Ps::ComputeLoss);

        // Step ⑥: backward through rendering, heads and grids.
        bws.render_backward(self.background);
        lap!(Ps::VolumeRender);
        bws.heads_backward(&self.model, &mut self.grads);
        lap!(Ps::MlpBackward);
        bws.scatter(&self.model, &mut self.grads, obs, update_color);
        lap!(Ps::GridBackward);
        self.bws = Some(bws);

        let rays = self.ray_scratch.len();
        self.post_step(
            update_density,
            update_color,
            rays,
            total_points,
            timer,
            last,
        );
        StepStats {
            loss: total_loss * inv_batch,
            rays,
            points: total_points,
            density_updated: update_density,
            color_updated: update_color,
        }
    }

    #[allow(unused_assignments)] // the lap! clock's final store is unread
    fn step_impl<R: Rng + ?Sized, O: BranchObserver + ?Sized>(
        &mut self,
        rng: &mut R,
        obs: &mut O,
        mut timer: Option<&mut crate::timing::StepTimer>,
    ) -> StepStats {
        use crate::profile::PipelineStep as Ps;
        use std::time::Instant;
        // Lap clock: charges elapsed time to a step when timing is on.
        let mut last = Instant::now();
        macro_rules! lap {
            ($step:expr) => {
                if let Some(t) = timer.as_deref_mut() {
                    let now = Instant::now();
                    t.add($step, now - last);
                    last = now;
                }
            };
        }
        let update_density = self.density_schedule.should_update(self.iter);
        let update_color = match self.model.topology() {
            GridTopology::Coupled => update_density,
            GridTopology::Decoupled => self.color_schedule.should_update(self.iter),
        };

        // Steps ① + ②: pixel batch → rays.
        let batch = sample_pixel_batch(&self.cameras, &self.images, self.cfg.rays_per_batch, rng);
        self.grads.zero();
        lap!(Ps::SamplePixels);

        let emb_d_dim = self.model.density_grid().output_dim();
        let emb_c_dim = self.ws.emb_c.len();
        let mut sh = vec![0.0; self.model.sh_dim()];
        let mut samples: Vec<RaySample> = Vec::with_capacity(self.cfg.samples_per_ray);
        let mut positions: Vec<Vec3> = Vec::with_capacity(self.cfg.samples_per_ray);
        let mut emb_d_cache: Vec<f32> = Vec::new();
        let mut emb_c_cache: Vec<f32> = Vec::new();
        let mut cache = RenderCache::default();

        let mut total_loss = 0.0f32;
        let mut total_points = 0usize;
        let inv_batch = 1.0 / batch.len().max(1) as f32;

        for tr in &batch {
            // Step ③ sampling: stratified + occupancy culling.
            let segs = sample_segments(
                &tr.ray,
                &self.model.aabb(),
                self.cfg.samples_per_ray,
                Some(rng),
            );
            samples.clear();
            positions.clear();
            emb_d_cache.clear();
            emb_c_cache.clear();
            self.model.encode_dir(tr.ray.dir, &mut sh);
            lap!(Ps::MapRays);

            for &(t, dt) in &segs {
                let p = tr.ray.at(t);
                if let Some(occ) = &self.occupancy {
                    if !occ.occupied_at(p) {
                        continue;
                    }
                }
                // Step ③-① forward: grid reads.
                self.model.encode_point(p, &mut self.ws, obs);
                lap!(Ps::GridForward);
                // Step ③-② forward: MLP heads.
                let (sigma, rgb) = self.model.heads_forward(&sh, &mut self.ws);
                samples.push(RaySample { t, dt, sigma, rgb });
                positions.push(p);
                emb_d_cache.extend_from_slice(&self.ws.emb_d);
                emb_c_cache.extend_from_slice(&self.ws.emb_c);
                lap!(Ps::MlpForward);
            }
            total_points += samples.len();

            // Step ④: composite; Step ⑤: loss.
            let out = composite(&samples, self.background, Some(&mut cache));
            lap!(Ps::VolumeRender);
            let (loss, d_color_raw) = pixel_loss(out.color, tr.target);
            total_loss += loss;
            let d_color = d_color_raw * inv_batch;
            lap!(Ps::ComputeLoss);

            // Step ⑥: backward through rendering, heads and grids.
            let sample_grads = composite_backward(&samples, self.background, &cache, &out, d_color);
            lap!(Ps::VolumeRender);
            for (k, p) in positions.iter().enumerate() {
                self.model.heads_backward(
                    &emb_d_cache[k * emb_d_dim..(k + 1) * emb_d_dim],
                    &emb_c_cache[k * emb_c_dim..(k + 1) * emb_c_dim],
                    &sh,
                    sample_grads.d_sigma[k],
                    sample_grads.d_rgb[k],
                    &mut self.ws,
                    &mut self.grads,
                );
                lap!(Ps::MlpBackward);
                self.model
                    .scatter_grids(*p, &mut self.ws, &mut self.grads, obs, update_color);
                lap!(Ps::GridBackward);
            }
        }

        self.post_step(
            update_density,
            update_color,
            batch.len(),
            total_points,
            timer,
            last,
        );
        StepStats {
            loss: total_loss * inv_batch,
            rays: batch.len(),
            points: total_points,
            density_updated: update_density,
            color_updated: update_color,
        }
    }

    /// The shared iteration tail: optimizer steps (gated by the update
    /// schedules), occupancy refresh, learning-rate decay, workload
    /// accounting and the iteration counter. Both the batched and the
    /// scalar path end here, so their side effects are identical.
    ///
    /// Grid-Adam and occupancy time is charged to Step ③-① backward,
    /// MLP-Adam to ③-② backward.
    #[allow(unused_assignments)] // the lap! clock's final store is unread
    fn post_step(
        &mut self,
        update_density: bool,
        update_color: bool,
        rays: usize,
        total_points: usize,
        mut timer: Option<&mut crate::timing::StepTimer>,
        mut last: std::time::Instant,
    ) {
        use crate::profile::PipelineStep as Ps;
        use std::time::Instant;
        macro_rules! lap {
            ($step:expr) => {
                if let Some(t) = timer.as_deref_mut() {
                    let now = Instant::now();
                    t.add($step, now - last);
                    last = now;
                }
            };
        }
        if update_density {
            Self::apply_grid_step(
                self.model.density_grid_mut(),
                &self.grads.density_grid,
                &mut self.grid_d_opt,
                &mut self.touched_scratch,
            );
        }
        if update_color {
            if let (Some(grid), Some(opt), Some(grads)) = (
                self.model.color_grid_mut(),
                self.grid_c_opt.as_mut(),
                self.grads.color_grid.as_ref(),
            ) {
                Self::apply_grid_step(grid, grads, opt, &mut self.touched_scratch);
            }
        }
        lap!(Ps::GridBackward);
        {
            let mut idx = 0;
            let opts = &mut self.sigma_mlp_opts;
            self.model.sigma_mlp_mut().for_each_param_mut(
                &self.grads.sigma_mlp,
                |params, grads| {
                    opts[idx].step(params, grads);
                    idx += 1;
                },
            );
        }
        {
            let mut idx = 0;
            let opts = &mut self.color_mlp_opts;
            self.model.color_mlp_mut().for_each_param_mut(
                &self.grads.color_mlp,
                |params, grads| {
                    opts[idx].step(params, grads);
                    idx += 1;
                },
            );
        }
        lap!(Ps::MlpBackward);

        // Occupancy refresh (decayed density EMA, thresholded), through
        // the batched occupancy subsystem: embeddings come from the
        // persistent per-level-versioned cache, only this round's cell
        // subset is re-probed, and the kernels dispatch on the configured
        // backend — bit-identical bits for every backend and worker count.
        let mut occ_refresh: Option<OccupancyRefreshStats> = None;
        if let Some(occ) = &mut self.occupancy {
            if self.iter % self.cfg.occupancy_update_every as u64
                == (self.cfg.occupancy_update_every as u64 - 1)
            {
                occ_refresh = Some(self.occ_ws.refresh(
                    occ,
                    self.model.density_grid(),
                    self.model.sigma_mlp(),
                    self.model.aabb(),
                    self.cfg.occupancy_threshold,
                    RefreshMode::DecayedEma,
                    self.cfg.occupancy_subset,
                ));
            }
        }
        lap!(Ps::GridBackward);

        // Learning-rate schedule: exponential decay every N iterations.
        if self.cfg.lr_decay_factor < 1.0
            && (self.iter + 1).is_multiple_of(self.cfg.lr_decay_every as u64)
        {
            let f = self.cfg.lr_decay_factor;
            let lr = self.grid_d_opt.config().lr * f;
            self.grid_d_opt.set_lr(lr);
            if let Some(opt) = self.grid_c_opt.as_mut() {
                let lr = opt.config().lr * f;
                opt.set_lr(lr);
            }
            for opt in self
                .sigma_mlp_opts
                .iter_mut()
                .chain(self.color_mlp_opts.iter_mut())
            {
                let lr = opt.config().lr * f;
                opt.set_lr(lr);
            }
        }

        // Workload accounting.
        let rd = self.model.density_grid().reads_per_point() as u64;
        let rc = self
            .model
            .color_grid()
            .map_or(0, |g| g.reads_per_point() as u64);
        let pts = total_points as u64;
        let mlp_ff = self.model.mlp_flops_per_point() as u64 * pts;
        self.stats.merge(&WorkloadStats {
            backend: self.stats.backend,
            tier: self.stats.tier,
            iterations: 1,
            rays: rays as u64,
            points: pts,
            density_reads_ff: rd * pts,
            color_reads_ff: rc * pts,
            density_writes_bp: if update_density || self.model.topology() == GridTopology::Coupled {
                rd * pts
            } else {
                0
            },
            color_writes_bp: if update_color { rc * pts } else { 0 },
            mlp_flops_ff: mlp_ff,
            mlp_flops_bp: 2 * mlp_ff,
            render_samples: pts,
            occupancy_refreshes: occ_refresh.is_some() as u64,
            occupancy_probes: occ_refresh.map_or(0, |r| r.cells_probed as u64),
            occupancy_reads_ff: occ_refresh.map_or(0, |r| r.grid_reads),
            // Workspace-pool counters belong to the serve layer; the
            // trainer keeps them 0 so engine-vs-engine golden stats match.
            workspaces_allocated: 0,
            workspaces_recycled: 0,
        });

        self.iter += 1;
    }

    fn apply_grid_step(
        grid: &mut instant3d_nerf::grid::HashGrid,
        grads: &instant3d_nerf::grid::GridGradients,
        opt: &mut Adam,
        touched: &mut Vec<usize>,
    ) {
        touched.clear();
        touched.extend(
            grads
                .values
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(|(i, _)| i),
        );
        // Sparse Adam + fp16 re-quantisation + precise per-level version
        // bumps: levels no step touched keep their cached occupancy
        // embeddings valid.
        grid.apply_sparse_step(opt, &grads.values, touched);
    }

    /// Trains for `iterations` steps and evaluates once at the end.
    pub fn train<R: Rng + ?Sized>(&mut self, iterations: u64, rng: &mut R) -> TrainReport {
        self.train_with_eval(iterations, 0, None, rng)
    }

    /// Trains for `iterations` steps, evaluating every `eval_every`
    /// iterations (0 = only at the end) against `dataset` (defaults to the
    /// training dataset's test views if provided).
    pub fn train_with_eval<R: Rng + ?Sized>(
        &mut self,
        iterations: u64,
        eval_every: u64,
        dataset: Option<&Dataset>,
        rng: &mut R,
    ) -> TrainReport {
        let mut history = Vec::new();
        let mut last_loss = 0.0;
        for i in 0..iterations {
            let s = self.step(rng);
            last_loss = s.loss;
            if eval_every > 0 && (i + 1) % eval_every == 0 {
                if let Some(ds) = dataset {
                    let e = self.evaluate(ds);
                    history.push(PsnrPoint {
                        iteration: self.iter,
                        rgb_psnr: e.rgb_psnr,
                        depth_psnr: e.depth_psnr,
                    });
                }
            }
        }
        let (final_psnr, final_depth) = match dataset {
            Some(ds) => {
                let e = self.evaluate(ds);
                (e.rgb_psnr, e.depth_psnr)
            }
            None => {
                let last = history.last();
                (
                    last.map_or(f32::NAN, |p| p.rgb_psnr),
                    last.map_or(f32::NAN, |p| p.depth_psnr),
                )
            }
        };
        TrainReport {
            iterations: self.iter,
            final_psnr,
            final_depth_psnr: final_depth,
            final_loss: last_loss,
            psnr_history: history,
            stats: self.stats,
        }
    }

    /// Evaluates the current model on a dataset's test views. With
    /// `TrainConfig::eval_occupancy` set (off by default — the default
    /// preserves historical metrics bit-for-bit), sampling is guided by
    /// the trainer's occupancy grid.
    pub fn evaluate(&self, dataset: &Dataset) -> EvalResult {
        let occ = if self.cfg.eval_occupancy {
            self.occupancy.as_ref()
        } else {
            None
        };
        crate::eval::evaluate_with(&self.model, dataset, self.cfg.eval_samples_per_ray, occ)
    }

    /// Evaluates with occupancy-guided sampling regardless of the config
    /// flag (no-op difference when occupancy is disabled).
    pub fn evaluate_with_occupancy(&self, dataset: &Dataset) -> EvalResult {
        crate::eval::evaluate_with(
            &self.model,
            dataset,
            self.cfg.eval_samples_per_ray,
            self.occupancy.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_scenes::SceneLibrary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_dataset(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        SceneLibrary::synthetic_scene(0, 16, 4, &mut rng)
    }

    #[test]
    fn single_step_runs_and_counts() {
        let ds = quick_dataset(1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);
        let s = t.step(&mut rng);
        assert_eq!(s.rays, t.config().rays_per_batch);
        assert!(s.points > 0, "some samples must survive");
        assert!(s.loss.is_finite() && s.loss >= 0.0);
        assert_eq!(t.iteration(), 1);
        assert_eq!(t.stats().iterations, 1);
        assert!(t.stats().density_reads_ff > 0);
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = quick_dataset(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);
        let first: f32 = (0..5).map(|_| t.step(&mut rng).loss).sum::<f32>() / 5.0;
        for _ in 0..60 {
            t.step(&mut rng);
        }
        let last: f32 = (0..5).map(|_| t.step(&mut rng).loss).sum::<f32>() / 5.0;
        assert!(
            last < first * 0.8,
            "loss should drop substantially: {first} → {last}"
        );
    }

    #[test]
    fn color_schedule_gates_color_updates() {
        let ds = quick_dataset(5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = TrainConfig::fast_preview();
        cfg.color_update_every = 2;
        let mut t = Trainer::new(cfg, &ds, &mut rng);
        let s0 = t.step(&mut rng);
        let s1 = t.step(&mut rng);
        assert!(s0.color_updated);
        assert!(!s1.color_updated);
        assert!(s0.density_updated && s1.density_updated);
        // BP write accounting reflects the skipped color iteration.
        let per_point_c = t.model().color_grid().unwrap().reads_per_point() as u64;
        assert!(t.stats().color_writes_bp < per_point_c * t.stats().points);
    }

    #[test]
    fn coupled_topology_trains_too() {
        let ds = quick_dataset(7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut cfg = TrainConfig::fast_preview();
        cfg.topology = GridTopology::Coupled;
        let mut t = Trainer::new(cfg, &ds, &mut rng);
        let s = t.step(&mut rng);
        assert!(s.loss.is_finite());
        assert_eq!(t.stats().color_reads_ff, 0, "coupled model has one grid");
    }

    #[test]
    fn train_report_contains_history() {
        let ds = quick_dataset(9);
        let mut rng = StdRng::seed_from_u64(10);
        let mut t = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);
        let report = t.train_with_eval(6, 3, Some(&ds), &mut rng);
        assert_eq!(report.iterations, 6);
        assert_eq!(report.psnr_history.len(), 2);
        assert!(report.final_psnr.is_finite());
        assert!(report.stats.points > 0);
    }

    #[test]
    fn timed_step_matches_untimed_semantics_and_profiles_grid() {
        let ds = quick_dataset(21);
        let mut rng = StdRng::seed_from_u64(22);
        let mut t = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);
        let mut timer = crate::timing::StepTimer::new();
        for _ in 0..8 {
            let s = t.step_timed(&mut rng, &mut timer);
            assert!(s.loss.is_finite());
        }
        assert_eq!(timer.iterations(), 8);
        assert!(timer.total().as_nanos() > 0);
        // Grid interpolation should be a major share of the native runtime
        // too (the paper's Fig. 4 claim holds for this implementation).
        let g = timer.grid_interpolation_fraction();
        assert!(
            g > 0.2,
            "grid interpolation share {g:.2} unexpectedly small natively"
        );
        // Timing must not change semantics: same iteration counter path.
        assert_eq!(t.iteration(), 8);
    }

    #[test]
    fn lr_decay_shrinks_learning_rates() {
        let ds = quick_dataset(31);
        let mut rng = StdRng::seed_from_u64(32);
        let mut cfg = TrainConfig::fast_preview();
        cfg.lr_decay_factor = 0.5;
        cfg.lr_decay_every = 4;
        let grid_lr0 = cfg.grid_lr;
        let mut t = Trainer::new(cfg, &ds, &mut rng);
        for _ in 0..8 {
            t.step(&mut rng);
        }
        // Two decay events fired → lr quartered.
        let lr_now = t.grid_d_opt.config().lr;
        assert!(
            (lr_now - grid_lr0 * 0.25).abs() < 1e-6,
            "lr {lr_now} vs expected {}",
            grid_lr0 * 0.25
        );
    }

    #[test]
    fn occupancy_eventually_culls_empty_space() {
        let ds = quick_dataset(11);
        let mut rng = StdRng::seed_from_u64(12);
        let mut cfg = TrainConfig::fast_preview();
        cfg.occupancy_update_every = 8;
        let mut t = Trainer::new(cfg, &ds, &mut rng);
        assert_eq!(t.occupancy_fraction(), 1.0);
        for _ in 0..60 {
            t.step(&mut rng);
        }
        assert!(
            t.occupancy_fraction() < 1.0,
            "occupancy should cull something after training"
        );
        // Refresh telemetry: 60 iterations at update_every = 8 → 7
        // refreshes, each probing the full grid (subset stride 1).
        let cells = 12u64 * 12 * 12; // fast_preview occupancy_resolution = 12
        assert_eq!(t.stats().occupancy_refreshes, 7);
        assert_eq!(t.stats().occupancy_probes, 7 * cells);
        assert!(t.stats().occupancy_reads_ff > 0);
    }

    #[test]
    fn occupancy_subset_refresh_still_culls_and_amortizes() {
        let ds = quick_dataset(13);
        let mut rng = StdRng::seed_from_u64(14);
        let mut cfg = TrainConfig::fast_preview();
        cfg.occupancy_update_every = 4;
        cfg.occupancy_subset = 4;
        let mut t = Trainer::new(cfg, &ds, &mut rng);
        for _ in 0..64 {
            t.step(&mut rng);
        }
        assert!(
            t.occupancy_fraction() < 1.0,
            "subset refreshes should still cull empty space"
        );
        // Each refresh probes ~1/4 of the cells.
        let cells = 12u64 * 12 * 12;
        let refreshes = t.stats().occupancy_refreshes;
        assert_eq!(refreshes, 16);
        assert!(
            t.stats().occupancy_probes <= refreshes * cells.div_ceil(4),
            "probes {} exceed the subset budget",
            t.stats().occupancy_probes
        );
    }
}
