//! Per-step runtime breakdowns — the Fig. 4 / Fig. 7 bar charts.

use crate::perf::DeviceModel;
use instant3d_core::{PipelineStep, PipelineWorkload};

/// A device's per-step runtime share for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StepBreakdown {
    /// Device name.
    pub device: String,
    /// `(step, seconds-per-iteration, fraction-of-total)` rows in
    /// pipeline order.
    pub steps: Vec<(PipelineStep, f64, f64)>,
    /// Seconds per iteration, all steps.
    pub total_per_iter: f64,
}

impl StepBreakdown {
    /// Computes the breakdown of `w` on `device`.
    pub fn compute(device: &DeviceModel, w: &PipelineWorkload) -> StepBreakdown {
        let times = device.step_times(w);
        let total: f64 = times.iter().map(|(_, t)| t).sum();
        StepBreakdown {
            device: device.spec().name.to_string(),
            steps: times
                .into_iter()
                .map(|(s, t)| (s, t, if total > 0.0 { t / total } else { 0.0 }))
                .collect(),
            total_per_iter: total,
        }
    }

    /// The combined share of Step ③-① (grid interpolation, fwd + bwd) —
    /// the paper's headline "~80 %" number.
    pub fn grid_interpolation_fraction(&self) -> f64 {
        self.steps
            .iter()
            .filter(|(s, _, _)| s.is_grid_interpolation())
            .map(|(_, _, f)| f)
            .sum()
    }

    /// Renders an ASCII stacked-bar row (for the fig04/fig07 binaries).
    pub fn to_ascii(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} — {:.1} ms/iter (grid interpolation {:.1} %)",
            self.device,
            self.total_per_iter * 1e3,
            self.grid_interpolation_fraction() * 100.0
        );
        for (step, t, f) in &self.steps {
            let bar = "#".repeat((f * width as f64).round() as usize);
            let _ = writeln!(
                s,
                "  {:<22} {:>8.3} ms {:>6.2} % |{bar}",
                step.label(),
                t * 1e3,
                f * 100.0
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::ITERS_TO_PSNR26;

    fn bd() -> StepBreakdown {
        StepBreakdown::compute(
            &DeviceModel::xavier_nx(),
            &PipelineWorkload::paper_scale_instant_ngp(ITERS_TO_PSNR26),
        )
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = bd();
        let sum: f64 = b.steps.iter().map(|(_, _, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(b.steps.len(), PipelineStep::ALL.len());
    }

    #[test]
    fn grid_share_matches_fig4() {
        let b = bd();
        let g = b.grid_interpolation_fraction();
        assert!((0.7..=0.9).contains(&g), "grid share {g}");
    }

    #[test]
    fn ascii_contains_all_steps() {
        let art = bd().to_ascii(40);
        for s in PipelineStep::ALL {
            assert!(art.contains(s.label()), "missing {}", s.label());
        }
        assert!(art.contains("Xavier NX"));
    }
}
