//! Workload construction: mapping training configurations (and measured
//! training runs) onto paper-scale [`PipelineWorkload`]s for the device
//! and accelerator models.
//!
//! Convention (§5.1, with the density/color entry-count typo corrected —
//! see DESIGN.md): a branch at size factor 1.0 owns a 2¹⁸-entry table
//! (1 MB at 2×fp16); the coupled Instant-NGP grid owns 2¹⁹ entries (2 MB).
//! Per-iteration interpolation counts are pinned at the paper's ~200 000
//! points × 16 levels.

use instant3d_core::{GridTopology, PipelineWorkload, TrainConfig};

/// Paper-scale points per training iteration ("> 200,000 times per
/// training iteration", §1).
pub const PAPER_POINTS_PER_ITER: f64 = 200_000.0;

/// Paper-scale hash-grid levels.
pub const PAPER_LEVELS: u32 = 16;

/// Bytes of a decomposed branch's table at size factor 1.0 (2¹⁸ entries ×
/// 2 features × fp16 = 1 MB).
pub const BRANCH_BYTES_AT_FACTOR_1: f64 = (1 << 20) as f64;

/// Bytes of the coupled Instant-NGP table (2¹⁹ entries = 2 MB).
pub const COUPLED_BYTES: f64 = (2 << 20) as f64;

/// MLP multiply-accumulate-pairs per point per iteration (fwd ≈ 12 k
/// FLOPs/point; backward ≈ 2×).
pub const MLP_FLOPS_PER_POINT: f64 = 12_000.0 * 3.0;

/// Builds the paper-scale workload a [`TrainConfig`] induces, for
/// `iterations` training iterations.
pub fn paper_workload(cfg: &TrainConfig, iterations: f64) -> PipelineWorkload {
    let points = PAPER_POINTS_PER_ITER;
    let reads_per_grid = points * PAPER_LEVELS as f64 * 8.0;
    match cfg.topology {
        GridTopology::Coupled => PipelineWorkload {
            iterations,
            rays_per_iter: 4096.0,
            points_per_iter: points,
            levels: PAPER_LEVELS,
            grid_reads_ff_per_iter: reads_per_grid,
            grid_writes_bp_per_iter: reads_per_grid / cfg.density_update_every as f64,
            mlp_flops_per_iter: points * MLP_FLOPS_PER_POINT,
            density_table_bytes: (COUPLED_BYTES * cfg.density_size_factor) as usize,
            color_table_bytes: 0,
            bytes_per_access: 4,
        },
        GridTopology::Decoupled => PipelineWorkload {
            iterations,
            rays_per_iter: 4096.0,
            points_per_iter: points,
            levels: PAPER_LEVELS,
            grid_reads_ff_per_iter: 2.0 * reads_per_grid,
            grid_writes_bp_per_iter: reads_per_grid / cfg.density_update_every as f64
                + reads_per_grid / cfg.color_update_every as f64,
            mlp_flops_per_iter: points * MLP_FLOPS_PER_POINT,
            density_table_bytes: (BRANCH_BYTES_AT_FACTOR_1 * cfg.density_size_factor) as usize,
            color_table_bytes: (BRANCH_BYTES_AT_FACTOR_1 * cfg.color_size_factor) as usize,
            bytes_per_access: 4,
        },
    }
}

/// The laptop-scale training configuration used by the measured
/// experiments (Tabs. 1/2/4, Figs. 5/8/9/10/18): small enough that a
/// few-hundred-iteration run finishes in seconds, while keeping the
/// paper's structure (multi-level grids, decoupled branches, occupancy).
pub fn bench_config(base: TrainConfig, quick: bool) -> TrainConfig {
    let mut cfg = base;
    if quick {
        cfg.rays_per_batch = 96;
        cfg.samples_per_ray = 32;
    }
    cfg
}

/// Training iteration budget for measured runs.
pub fn train_iters(quick: bool) -> u64 {
    if quick {
        60
    } else {
        300
    }
}

/// Scenes to cover in multi-scene experiments.
pub fn scene_indices(quick: bool) -> Vec<usize> {
    if quick {
        vec![0, 2]
    } else {
        (0..8).collect()
    }
}

/// Image resolution / training views for dataset generation.
pub fn dataset_shape(quick: bool) -> (u32, usize) {
    if quick {
        (24, 8)
    } else {
        (40, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_workload_matches_ngp_scale() {
        let w = paper_workload(&TrainConfig::instant_ngp(), 400.0);
        assert_eq!(w.color_table_bytes, 0);
        assert_eq!(w.density_table_bytes, 2 << 20);
        assert_eq!(w.grid_reads_ff_per_iter, 200_000.0 * 128.0);
        assert_eq!(w.grid_writes_bp_per_iter, w.grid_reads_ff_per_iter);
    }

    #[test]
    fn instant3d_workload_matches_preset_builder() {
        let w = paper_workload(&TrainConfig::instant3d(), 256.0);
        let reference = PipelineWorkload::paper_scale_instant3d(256.0);
        assert_eq!(w.density_table_bytes, reference.density_table_bytes);
        assert_eq!(w.color_table_bytes, reference.color_table_bytes);
        assert_eq!(w.grid_reads_ff_per_iter, reference.grid_reads_ff_per_iter);
        assert_eq!(w.grid_writes_bp_per_iter, reference.grid_writes_bp_per_iter);
    }

    #[test]
    fn update_periods_scale_bp_writes() {
        let every1 = paper_workload(&TrainConfig::decoupled(1.0, 1.0, 1, 1), 1.0);
        let every2 = paper_workload(&TrainConfig::decoupled(1.0, 1.0, 1, 2), 1.0);
        assert!(every2.grid_writes_bp_per_iter < every1.grid_writes_bp_per_iter);
        let expect = every1.grid_writes_bp_per_iter * 0.75; // color halved
        assert!((every2.grid_writes_bp_per_iter - expect).abs() < 1.0);
    }

    #[test]
    fn size_factors_scale_tables() {
        let w = paper_workload(&TrainConfig::decoupled(0.25, 1.0, 1, 1), 1.0);
        assert_eq!(w.density_table_bytes, 256 << 10);
        assert_eq!(w.color_table_bytes, 1 << 20);
    }

    #[test]
    fn quick_budgets_are_smaller() {
        assert!(train_iters(true) < train_iters(false));
        assert!(scene_indices(true).len() < scene_indices(false).len());
        let (rq, vq) = dataset_shape(true);
        let (rf, vf) = dataset_shape(false);
        assert!(rq < rf && vq < vf);
    }
}
