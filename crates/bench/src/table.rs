//! Plain-text table rendering for experiment output.

/// A simple left-padded text table.
///
/// # Example
///
/// ```
/// use instant3d_bench::table::Table;
/// let mut t = Table::new(&["scene", "psnr"]);
/// t.row(&["lego", "26.0"]);
/// let s = t.render();
/// assert!(s.contains("lego"));
/// assert!(s.contains("psnr"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (c, width) in widths.iter_mut().enumerate() {
                let w = r.get(c).map(String::len).unwrap_or(0);
                *width = (*width).max(w);
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, col_width) in widths.iter().enumerate() {
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<col_width$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total.min(100)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with `digits` decimal places.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The header row pads "a" to the width of "xxxxxx".
        assert!(lines[0].starts_with("a       "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3", "4"]);
        let s = t.render();
        assert!(s.contains('1'));
        assert!(!s.contains('4'), "extra cells are dropped");
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.234_5, 2), "1.23");
        assert_eq!(pct(0.805), "80.5%");
    }
}
