//! Quickstart: train an Instant-3D model on a procedural object scene and
//! watch the reconstruction quality climb.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use instant3d::core::{TrainConfig, Trainer};
use instant3d::scenes::SceneLibrary;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);

    // 1. Build a dataset: the "lego"-like procedural scene captured by an
    //    orbiting rig (16 training views at 40×40).
    println!("rendering ground-truth views of the 'lego' substitute scene...");
    let dataset = SceneLibrary::synthetic_scene(4, 40, 16, &mut rng);
    println!(
        "  {} train views, {} test views, scene AABB {}",
        dataset.train_views.len(),
        dataset.test_views.len(),
        dataset.aabb
    );

    // 2. Train with the paper's operating point: decoupled grids with
    //    S_D : S_C = 1 : 0.25 and F_D : F_C = 1 : 0.5. Kernel backends
    //    resolve by name through the open registry — the default is the
    //    SIMD backend; set `cfg.kernel_backend = kernels::resolve("scalar")`
    //    (or export INSTANT3D_KERNEL_BACKEND) to pick another.
    let cfg = TrainConfig::instant3d();
    println!(
        "\ntraining Instant-3D (decoupled grids, color table {}x smaller, \
         color updated every {} iterations, '{}' kernels ({} tier); \
         registered backends: {:?}, available here: {:?})...",
        (1.0 / cfg.color_size_factor) as u32,
        cfg.color_update_every,
        cfg.kernel_backend,
        cfg.kernel_backend.tier(),
        instant3d::nerf::kernels::names(),
        instant3d::nerf::kernels::available_names()
    );
    let mut trainer = Trainer::new(cfg, &dataset, &mut rng);
    for round in 1..=6 {
        for _ in 0..50 {
            trainer.step(&mut rng);
        }
        let eval = trainer.evaluate(&dataset);
        println!(
            "  iter {:>3}: RGB {:.2} dB | depth {:.2} dB | occupancy {:.0}% of volume",
            round * 50,
            eval.rgb_psnr,
            eval.depth_psnr,
            trainer.occupancy_fraction() * 100.0
        );
    }

    // 3. Report the workload the accelerator would see.
    let stats = trainer.stats();
    println!(
        "\nworkload: {:.0} points/iter, {} grid reads, {} gradient scatters",
        stats.points_per_iter(),
        stats.grid_reads_ff(),
        stats.grid_writes_bp()
    );
    println!("done — see examples/object_capture.rs for a full AR-style capture.");
}
