//! A large-volume indoor scene standing in for SILVR.
//!
//! SILVR (Courteaux et al. 2022) is a synthetic *large-volume* plenoptic
//! dataset: cameras move through sizeable interior spaces rather than
//! orbiting a single object. This substitute builds a hall an order of
//! magnitude larger than the object scenes — mostly empty space, which
//! exercises the occupancy-grid skipping and the larger-AABB code paths.

use crate::primitives::{Primitive, Shape};
use crate::scene::AnalyticScene;
use instant3d_nerf::math::{Aabb, Vec3};

/// Half extent of the hall in x/z (world units). The object scenes span
/// roughly ±0.7, so the hall's ±4 makes the volume ~150× larger.
pub const HALL_HALF_EXTENT: f32 = 4.0;

/// Builds the SILVR-like hall scene.
pub fn build_hall() -> AnalyticScene {
    let h = HALL_HALF_EXTENT;
    let wall_color = Vec3::new(0.75, 0.73, 0.7);
    let mut prims = vec![
        // Floor.
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(0.0, -1.1, 0.0),
                half: Vec3::new(h, 0.1, h),
            },
            60.0,
            Vec3::new(0.5, 0.45, 0.4),
        ),
        // Ceiling.
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(0.0, 2.1, 0.0),
                half: Vec3::new(h, 0.1, h),
            },
            60.0,
            wall_color,
        ),
        // Two side walls (leave the other two open for cameras).
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(-h, 0.5, 0.0),
                half: Vec3::new(0.1, 1.7, h),
            },
            60.0,
            wall_color * 0.95,
        ),
        Primitive::matte(
            Shape::Box {
                center: Vec3::new(h, 0.5, 0.0),
                half: Vec3::new(0.1, 1.7, h),
            },
            60.0,
            wall_color * 0.9,
        ),
    ];
    // Columns along the hall.
    for i in 0..4 {
        let z = -3.0 + 2.0 * i as f32;
        for sx in [-1.0f32, 1.0] {
            prims.push(Primitive::matte(
                Shape::Cylinder {
                    center: Vec3::new(2.2 * sx, 0.5, z),
                    radius: 0.25,
                    half_height: 1.5,
                },
                55.0,
                Vec3::new(0.65, 0.6, 0.55),
            ));
        }
    }
    // A few exhibits down the middle.
    let exhibits = [
        (Vec3::new(0.0, -0.4, -2.0), Vec3::new(0.9, 0.3, 0.2)),
        (Vec3::new(0.5, -0.5, 0.0), Vec3::new(0.2, 0.6, 0.3)),
        (Vec3::new(-0.5, -0.35, 2.0), Vec3::new(0.25, 0.35, 0.8)),
    ];
    for &(c, col) in &exhibits {
        prims.push(Primitive::glossy(
            Shape::Sphere {
                center: c,
                radius: 0.45,
            },
            40.0,
            col,
            0.35,
        ));
    }
    let aabb = Aabb::new(
        Vec3::new(-(h + 0.3), -1.3, -(h + 0.3)),
        Vec3::new(h + 0.3, 2.3, h + 0.3),
    );
    AnalyticScene::with_aabb("silvr-hall", prims, aabb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_nerf::field::RadianceField;

    #[test]
    fn hall_is_large_volume() {
        let s = build_hall();
        assert!(s.aabb().extent().max_component() > 6.0);
    }

    #[test]
    fn hall_is_mostly_empty_space() {
        // The defining property of a large-volume scene: low fill factor.
        let s = build_hall();
        let aabb = s.aabb();
        let n = 16;
        let mut dense = 0u32;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let u = Vec3::new(
                        (i as f32 + 0.5) / n as f32,
                        (j as f32 + 0.5) / n as f32,
                        (k as f32 + 0.5) / n as f32,
                    );
                    if s.density(aabb.from_unit(u)) > 0.5 {
                        dense += 1;
                    }
                }
            }
        }
        let fill = dense as f32 / (n * n * n) as f32;
        assert!(fill < 0.35, "hall fill factor {fill} should be low");
        assert!(fill > 0.0, "hall should not be completely empty");
    }

    #[test]
    fn floor_and_exhibits_are_present() {
        let s = build_hall();
        assert!(s.density(Vec3::new(0.0, -1.1, 0.0)) > 0.0, "floor");
        assert!(s.density(Vec3::new(0.0, -0.4, -2.0)) > 0.0, "exhibit");
        assert_eq!(s.density(Vec3::new(0.0, 1.0, 0.0)), 0.0, "open air");
    }
}
