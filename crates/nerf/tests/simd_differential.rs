//! The differential harness pinning every registered strict-tier kernel
//! backend to the scalar reference kernels, bit for bit.
//!
//! Every hot kernel (grid encode, grid backward-scatter, MLP forward /
//! backward, per-ray compositing, the axpy sweep) is run on **every
//! strict backend in the registry**
//! (`instant3d_nerf::kernels::registered_strict()` — scalar, simd,
//! instrumented, plus anything registered at runtime; a strict backend
//! cannot register without entering this harness; lossy-tier backends
//! are gated by `tolerance_differential.rs` instead) over batch
//! sizes that exercise the remainder tails
//! (`N % 8 != 0`), the empty batch, single points, lane-exact batches and
//! multi-chunk batches — plus adversarial table contents: fp16-quantized
//! features including subnormals and signed zeros, and tiny hash tables
//! that force lane-internal address collisions. Equality is asserted on
//! raw bits (`assert_eq!` on `f32` is bitwise up to `0.0 == -0.0`; sign
//! checks cover the zero cases explicitly where they matter).

use instant3d_nerf::activation::Activation;
use instant3d_nerf::fp16;
use instant3d_nerf::grid::{HashGrid, HashGridConfig};
use instant3d_nerf::kernels::{self, BackendHandle};
use instant3d_nerf::math::Vec3;
use instant3d_nerf::mlp::{Mlp, MlpConfig};
use instant3d_nerf::render::{composite_slices, composite_slices_with};
use instant3d_nerf::simd;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch sizes that cover N=0, N=1, sub-lane, lane-exact, lane+tail and
/// multi-chunk (the parallel dispatch chunks at 256) shapes.
const BATCH_SIZES: [usize; 10] = [0, 1, 3, 7, 8, 9, 15, 64, 257, 300];

fn grid(cfg: HashGridConfig, seed: u64) -> HashGrid {
    let mut rng = StdRng::seed_from_u64(seed);
    HashGrid::new_random(cfg, &mut rng)
}

fn points(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
        .collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Default-shaped grid (dense + hashed levels, fp16 storage like training).
fn training_grid(seed: u64) -> HashGrid {
    grid(
        HashGridConfig {
            levels: 4,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 64,
            store_fp16: true,
            ..HashGridConfig::default()
        },
        seed,
    )
}

/// A grid whose hashed levels are tiny, so every 8-point lane aliases
/// table entries both across corners and across lanes.
fn colliding_grid(seed: u64) -> HashGrid {
    grid(
        HashGridConfig {
            levels: 3,
            log2_table_size: 4, // 16 entries vs 35937 fine-level vertices
            base_resolution: 4,
            max_resolution: 32,
            store_fp16: false,
            init_scale: 0.3,
            ..HashGridConfig::default()
        },
        seed,
    )
}

/// Overwrites some grid features with fp16 edge values the lane kernels
/// must reproduce exactly: subnormals, ±0 and values that round under
/// fp16 re-quantisation.
fn poison_with_fp16_edges(g: &mut HashGrid) {
    let edges = [
        f32::from_bits(0x0000_0001),  // would underflow fp16 to +0
        -f32::from_bits(0x0000_0001), // → −0
        (2.0f32).powi(-24),           // smallest positive fp16 subnormal
        -(2.0f32).powi(-24),
        (2.0f32).powi(-14) - (2.0f32).powi(-24), // largest fp16 subnormal
        0.0,
        -0.0,
        0.1, // not fp16-representable → rounds
        -65504.0,
    ];
    let n = g.num_params();
    for (k, &v) in edges.iter().cycle().take(n.min(4096)).enumerate() {
        g.params_mut()[k * 97 % n] = v;
    }
    g.quantize_storage();
}

#[test]
fn grid_encode_backends_bit_equal_scalar_across_batch_shapes() {
    let g = training_grid(7);
    let w = g.output_dim();
    for &n in &BATCH_SIZES {
        let pts = points(n, 1000 + n as u64);
        let mut scalar = vec![0.0f32; n * w];
        let mut lanes = vec![0.0f32; n * w];
        g.encode_batch_level_major(&pts, &mut scalar);
        g.encode_batch_simd(&pts, &mut lanes);
        assert_eq!(bits(&scalar), bits(&lanes), "encode n={n}");
        // And through the backend dispatcher (chunked parallel path), for
        // every registered backend.
        for backend in kernels::registered_strict() {
            let mut dispatched = vec![0.0f32; n * w];
            g.par_encode_batch_with(&backend, &pts, &mut dispatched);
            assert_eq!(
                bits(&scalar),
                bits(&dispatched),
                "par encode {backend} n={n}"
            );
        }
    }
}

#[test]
fn grid_backward_backends_bit_equal_scalar_across_batch_shapes() {
    let g = training_grid(11);
    let w = g.output_dim();
    for &n in &BATCH_SIZES {
        let pts = points(n, 2000 + n as u64);
        let d_out: Vec<f32> = (0..n * w).map(|i| 0.37 * ((i % 11) as f32 - 5.0)).collect();
        let mut scalar = g.zero_grads();
        g.par_backward_batch_with(&kernels::scalar(), &pts, &d_out, &mut scalar);
        for backend in kernels::registered_strict() {
            let mut lanes = g.zero_grads();
            g.par_backward_batch_with(&backend, &pts, &d_out, &mut lanes);
            assert_eq!(
                bits(&scalar.values),
                bits(&lanes.values),
                "scatter {backend} n={n}"
            );
            assert_eq!(scalar.count, lanes.count);
        }
    }
}

#[test]
fn grid_kernels_agree_under_hash_collision_aliasing() {
    // Tiny hashed tables: lanes repeatedly hit the same entries, so any
    // reordering of the scatter accumulation (or of gather arithmetic)
    // would change bits here first.
    let g = colliding_grid(13);
    let w = g.output_dim();
    for &n in &[1usize, 8, 9, 41, 128] {
        let pts = points(n, 3000 + n as u64);
        let mut a = vec![0.0f32; n * w];
        let mut b = vec![0.0f32; n * w];
        g.encode_batch_level_major(&pts, &mut a);
        g.encode_batch_simd(&pts, &mut b);
        assert_eq!(bits(&a), bits(&b), "colliding encode n={n}");

        let d_out: Vec<f32> = (0..n * w).map(|i| ((i % 5) as f32 - 2.0) * 0.51).collect();
        let mut ga = g.zero_grads();
        let mut gb = g.zero_grads();
        g.par_backward_batch_with(&kernels::scalar(), &pts, &d_out, &mut ga);
        g.par_backward_batch_with(&kernels::simd(), &pts, &d_out, &mut gb);
        assert_eq!(
            bits(&ga.values),
            bits(&gb.values),
            "colliding scatter n={n}"
        );
    }
}

#[test]
fn grid_encode_agrees_on_fp16_edge_features() {
    for seed in 0..4u64 {
        let mut g = training_grid(100 + seed);
        poison_with_fp16_edges(&mut g);
        let w = g.output_dim();
        let pts = points(57, 4000 + seed); // 57 = 7×8 + 1 tail
        let mut a = vec![0.0f32; pts.len() * w];
        let mut b = vec![0.0f32; pts.len() * w];
        g.encode_batch_level_major(&pts, &mut a);
        g.encode_batch_simd(&pts, &mut b);
        assert_eq!(bits(&a), bits(&b), "fp16-edge encode seed={seed}");
    }
}

#[test]
fn fp16_quantize_edge_cases_roundtrip() {
    // ±0 keep their sign through storage quantisation.
    assert_eq!(fp16::quantize(0.0).to_bits(), 0.0f32.to_bits());
    assert_eq!(fp16::quantize(-0.0).to_bits(), (-0.0f32).to_bits());
    // Sub-fp16 magnitudes underflow to a signed zero.
    assert_eq!(fp16::quantize(1e-10).to_bits(), 0.0f32.to_bits());
    assert_eq!(fp16::quantize(-1e-10).to_bits(), (-0.0f32).to_bits());
    // fp16 subnormals are exact and idempotent.
    for e in -24..=-15 {
        let v = (2.0f32).powi(e);
        assert_eq!(fp16::quantize(v), v, "2^{e} must be exact");
        assert_eq!(fp16::quantize(-v), -v);
        assert_eq!(fp16::quantize(fp16::quantize(v)), fp16::quantize(v));
    }
    // Largest subnormal and smallest normal straddle 2^-14.
    let largest_sub = (2.0f32).powi(-14) - (2.0f32).powi(-24);
    assert_eq!(fp16::quantize(largest_sub), largest_sub);
    // quantize_slice matches scalar quantize on edge values, bitwise.
    let mut xs = vec![0.0, -0.0, 1e-10, -1e-10, (2.0f32).powi(-24), 0.1, -65504.0];
    let expect: Vec<u32> = xs.iter().map(|&x| fp16::quantize(x).to_bits()).collect();
    fp16::quantize_slice(&mut xs);
    assert_eq!(bits(&xs), expect);
}

#[test]
fn grid_quantize_storage_with_subnormal_features_is_stable() {
    let mut g = training_grid(31);
    poison_with_fp16_edges(&mut g);
    let before = bits(g.params());
    g.quantize_storage(); // second quantisation must be a no-op…
    assert_eq!(bits(g.params()), before);
    // …and the encode of the quantised table is backend-independent even
    // where interpolation touches the poisoned (subnormal/±0) entries.
    let w = g.output_dim();
    let pts = points(33, 5000);
    let mut a = vec![0.0f32; pts.len() * w];
    let mut b = vec![0.0f32; pts.len() * w];
    g.encode_batch_level_major(&pts, &mut a);
    g.encode_batch_simd(&pts, &mut b);
    assert_eq!(bits(&a), bits(&b));
}

#[test]
fn mlp_forward_backends_bit_equal_scalar_across_widths_and_batches() {
    // Output widths exercising every lane-tail shape (ow % 8 ∈ {0,1,3,5}).
    for (hidden, out_dim) in [
        (vec![64usize], 64usize),
        (vec![16], 1),
        (vec![8, 8], 3),
        (vec![13], 5),
    ] {
        let mut rng = StdRng::seed_from_u64(7 + out_dim as u64);
        let mlp = Mlp::new(
            MlpConfig::new(6, &hidden, out_dim, Activation::Relu, Activation::Sigmoid),
            &mut rng,
        );
        for &n in &BATCH_SIZES {
            let inputs: Vec<f32> = (0..n * 6).map(|i| ((i % 17) as f32 - 8.0) * 0.13).collect();
            let mut ws_a = mlp.batch_workspace(n);
            let a = mlp
                .forward_batch_with(&kernels::scalar(), &inputs, &mut ws_a)
                .to_vec();
            for backend in kernels::registered_strict() {
                let mut ws_b = mlp.batch_workspace(n);
                let b = mlp
                    .forward_batch_with(&backend, &inputs, &mut ws_b)
                    .to_vec();
                assert_eq!(bits(&a), bits(&b), "mlp fwd {backend} out={out_dim} n={n}");
            }
        }
    }
}

#[test]
fn mlp_backward_backends_bit_equal_scalar() {
    let mut rng = StdRng::seed_from_u64(23);
    let mlp = Mlp::new(
        MlpConfig::new(10, &[64], 3, Activation::Relu, Activation::None),
        &mut rng,
    );
    for &n in &BATCH_SIZES {
        let inputs: Vec<f32> = (0..n * 10)
            .map(|i| ((i % 13) as f32 - 6.0) * 0.21)
            .collect();
        let d_out: Vec<f32> = (0..n * 3).map(|i| ((i % 7) as f32 - 3.0) * 0.33).collect();
        let run = |backend: &BackendHandle| {
            let mut ws = mlp.batch_workspace(n);
            mlp.forward_batch_with(backend, &inputs, &mut ws);
            let mut grads = mlp.zero_grads();
            let mut d_in = vec![0.0f32; n * 10];
            mlp.backward_batch_with(backend, &d_out, &mut ws, &mut grads, &mut d_in);
            (grads, d_in)
        };
        let (ga, da) = run(&kernels::scalar());
        for backend in kernels::registered_strict() {
            let (gb, db) = run(&backend);
            assert_eq!(ga.count, gb.count);
            for (li, ((wa, ba), (wb, bb))) in ga.layers.iter().zip(&gb.layers).enumerate() {
                assert_eq!(
                    bits(wa),
                    bits(wb),
                    "{backend} layer {li} weight grads n={n}"
                );
                assert_eq!(bits(ba), bits(bb), "{backend} layer {li} bias grads n={n}");
            }
            assert_eq!(bits(&da), bits(&db), "{backend} input grads n={n}");
        }
    }
}

#[test]
fn composite_backends_bit_equal_scalar_including_early_termination() {
    let mut rng = StdRng::seed_from_u64(5);
    for &n in &BATCH_SIZES {
        for &dense in &[0.5f32, 50.0, 5000.0] {
            // High densities terminate early (mid-lane for n >= 8).
            let t: Vec<f32> = (0..n).map(|k| (k as f32 + 0.5) / n.max(1) as f32).collect();
            let dt = vec![1.0 / n.max(1) as f32; n];
            let sigma: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() * dense).collect();
            let rgb: Vec<Vec3> = (0..n)
                .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
                .collect();
            let bg = Vec3::new(0.2, 0.4, 0.8);
            let mut cw_a = vec![0.0f32; n];
            let mut ct_a = vec![0.0f32; n];
            let mut co_a = vec![0.0f32; n];
            let (out_a, act_a) = composite_slices(
                &t,
                &dt,
                &sigma,
                &rgb,
                bg,
                Some((&mut cw_a, &mut ct_a, &mut co_a)),
            );
            for backend in kernels::registered_strict() {
                let mut cw_b = vec![0.0f32; n];
                let mut ct_b = vec![0.0f32; n];
                let mut co_b = vec![0.0f32; n];
                let (out_b, act_b) = composite_slices_with(
                    &backend,
                    &t,
                    &dt,
                    &sigma,
                    &rgb,
                    bg,
                    Some((&mut cw_b, &mut ct_b, &mut co_b)),
                );
                assert_eq!(out_a, out_b, "{backend} render output n={n} dense={dense}");
                assert_eq!(act_a, act_b, "{backend} active count n={n} dense={dense}");
                assert_eq!(bits(&cw_a), bits(&cw_b), "{backend} weights cache n={n}");
                assert_eq!(bits(&ct_a), bits(&ct_b), "{backend} trans cache n={n}");
                assert_eq!(bits(&co_a), bits(&co_b), "{backend} alpha cache n={n}");
            }
        }
    }
}

#[test]
fn axpy_simd_bit_equals_scalar_on_tails() {
    for &n in &[0usize, 1, 5, 8, 13, 16, 31] {
        let x: Vec<f32> = (0..n).map(|i| ((i % 9) as f32 - 4.0) * 0.77).collect();
        let mut ya: Vec<f32> = (0..n).map(|i| (i as f32) * 0.11 - 1.0).collect();
        let mut yb = ya.clone();
        simd::axpy(false, &mut ya, -0.625, &x);
        simd::axpy(true, &mut yb, -0.625, &x);
        assert_eq!(bits(&ya), bits(&yb), "axpy n={n}");
    }
}

proptest! {
    /// Random batch sizes (biased around lane multiples), random points,
    /// random seeds: encode and scatter agree bitwise on both a
    /// training-shaped grid and a collision-heavy grid.
    #[test]
    fn prop_grid_kernels_backend_invariant(
        n in 0usize..70,
        seed in 0u64..24,
        colliding in any::<bool>())
    {
        let g = if colliding { colliding_grid(seed) } else { training_grid(seed) };
        let w = g.output_dim();
        let pts = points(n, seed.wrapping_mul(31) + n as u64);
        let mut a = vec![0.0f32; n * w];
        let mut b = vec![0.0f32; n * w];
        g.encode_batch_level_major(&pts, &mut a);
        g.encode_batch_simd(&pts, &mut b);
        prop_assert_eq!(bits(&a), bits(&b));

        let d_out: Vec<f32> = (0..n * w).map(|i| ((i % 23) as f32 - 11.0) * 0.17).collect();
        let mut ga = g.zero_grads();
        let mut gb = g.zero_grads();
        g.par_backward_batch_with(&kernels::scalar(), &pts, &d_out, &mut ga);
        g.par_backward_batch_with(&kernels::simd(), &pts, &d_out, &mut gb);
        prop_assert_eq!(bits(&ga.values), bits(&gb.values));
    }

    /// Random MLP shapes and batch sizes: forward and backward agree
    /// bitwise across backends.
    #[test]
    fn prop_mlp_backend_invariant(
        n in 0usize..40,
        hidden in 1usize..70,
        out_dim in 1usize..12,
        seed in 0u64..16)
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            MlpConfig::new(5, &[hidden], out_dim, Activation::Relu, Activation::Sigmoid),
            &mut rng,
        );
        let inputs: Vec<f32> = (0..n * 5).map(|i| ((i % 19) as f32 - 9.0) * 0.09).collect();
        let d_out: Vec<f32> = (0..n * out_dim).map(|i| ((i % 7) as f32 - 3.0) * 0.41).collect();
        let run = |backend: &BackendHandle| {
            let mut ws = mlp.batch_workspace(n);
            let out = mlp.forward_batch_with(backend, &inputs, &mut ws).to_vec();
            let mut grads = mlp.zero_grads();
            let mut d_in = vec![0.0f32; n * 5];
            mlp.backward_batch_with(backend, &d_out, &mut ws, &mut grads, &mut d_in);
            (out, grads, d_in)
        };
        let (oa, ga, da) = run(&kernels::scalar());
        let (ob, gb, db) = run(&kernels::simd());
        prop_assert_eq!(bits(&oa), bits(&ob));
        prop_assert_eq!(bits(&da), bits(&db));
        for ((wa, ba), (wb, bb)) in ga.layers.iter().zip(&gb.layers) {
            prop_assert_eq!(bits(wa), bits(wb));
            prop_assert_eq!(bits(ba), bits(bb));
        }
    }

    /// Random rays: compositing agrees bitwise across backends, cache
    /// included, for densities spanning transparent to early-terminating.
    #[test]
    fn prop_composite_backend_invariant(
        sigmas in prop::collection::vec(0.0f32..200.0, 0..40),
        bg in (0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0))
    {
        let n = sigmas.len();
        let t: Vec<f32> = (0..n).map(|k| (k as f32 + 0.5) / n.max(1) as f32).collect();
        let dt = vec![1.0 / n.max(1) as f32; n];
        let rgb: Vec<Vec3> = (0..n)
            .map(|k| Vec3::new(k as f32 / n.max(1) as f32, 0.5, 0.9))
            .collect();
        let background = Vec3::new(bg.0, bg.1, bg.2);
        let mut cw_a = vec![0.0f32; n];
        let mut ct_a = vec![0.0f32; n];
        let mut co_a = vec![0.0f32; n];
        let (oa, aa) = composite_slices(
            &t, &dt, &sigmas, &rgb, background,
            Some((&mut cw_a, &mut ct_a, &mut co_a)),
        );
        let mut cw_b = vec![0.0f32; n];
        let mut ct_b = vec![0.0f32; n];
        let mut co_b = vec![0.0f32; n];
        let (ob, ab) = composite_slices_with(
            &kernels::simd(), &t, &dt, &sigmas, &rgb, background,
            Some((&mut cw_b, &mut ct_b, &mut co_b)),
        );
        prop_assert_eq!(oa, ob);
        prop_assert_eq!(aa, ab);
        prop_assert_eq!(bits(&cw_a), bits(&cw_b));
        prop_assert_eq!(bits(&ct_a), bits(&ct_b));
        prop_assert_eq!(bits(&co_a), bits(&co_b));
    }
}
