//! Fleet preview streaming: with `preview_tiles_per_slice` set, every
//! job renders a budgeted tile frame of its test view after each slice —
//! and because the preview consumes no job randomness and never touches
//! the trainer, the determinism contract (fleet checkpoint ==
//! [`train_solo`]) must hold with previews on.

use instant3d_core::TrainConfig;
use instant3d_serve::{train_solo, Fleet, FleetConfig, JobSpec, SceneSpec};

fn specs() -> Vec<JobSpec> {
    let cfg = TrainConfig::fast_preview();
    vec![
        JobSpec {
            name: "syn0".into(),
            scene: SceneSpec::Synthetic {
                index: 0,
                resolution: 12,
                train_views: 3,
            },
            config: cfg.clone(),
            seed: 51,
            iterations: 12,
            checkpoint_every: 0,
        },
        JobSpec {
            name: "syn2".into(),
            scene: SceneSpec::Synthetic {
                index: 2,
                resolution: 16,
                train_views: 3,
            },
            config: cfg,
            seed: 52,
            iterations: 9,
            checkpoint_every: 4,
        },
    ]
}

#[test]
fn previews_stream_tiles_without_perturbing_training() {
    let specs = specs();
    let slice = 4u64;
    let report = Fleet::new(FleetConfig {
        concurrency: 2,
        slice_iters: slice,
        preview_tiles_per_slice: 2,
        threads: Some(4),
        ..FleetConfig::default()
    })
    .run(&specs);

    for (job, spec) in report.jobs.iter().zip(&specs) {
        // One preview frame per slice, each rendering some (budgeted,
        // progressively cached) number of tiles. Training steps bump the
        // grid versions between slices, so tiles keep going stale and
        // every frame has work to do.
        let slices = spec.iterations.div_ceil(slice);
        assert_eq!(
            job.preview_frames, slices,
            "{}: one frame per slice",
            spec.name
        );
        assert!(
            job.preview_tiles >= job.preview_frames,
            "{}: budgeted frames must render tiles ({} tiles / {} frames)",
            spec.name,
            job.preview_tiles,
            job.preview_frames
        );
        assert!(
            job.preview_tiles <= 2 * job.preview_frames,
            "budget is 2 tiles"
        );

        // The load-bearing half: previews must not perturb training.
        assert_eq!(
            job.final_checkpoint,
            train_solo(spec),
            "{}: preview rendering changed the training bits",
            spec.name
        );
    }

    // Fleet totals aggregate the per-job counters.
    let frames: u64 = report.jobs.iter().map(|j| j.preview_frames).sum();
    let tiles: u64 = report.jobs.iter().map(|j| j.preview_tiles).sum();
    assert_eq!(report.stats.preview_frames, frames);
    assert_eq!(report.stats.preview_tiles, tiles);
    assert!(frames > 0 && tiles > 0);
}

#[test]
fn previews_default_off() {
    let specs = specs();
    let report = Fleet::new(FleetConfig {
        concurrency: 2,
        slice_iters: 4,
        threads: Some(2),
        ..FleetConfig::default()
    })
    .run(&specs);
    assert_eq!(report.stats.preview_frames, 0);
    assert_eq!(report.stats.preview_tiles, 0);
}
