//! Job specs and the per-job training state machine.

use crate::pool::WorkspacePool;
use instant3d_core::render::{FrameBudget, FrameScheduler, RenderOptions};
use instant3d_core::{checkpoint, TrainConfig, Trainer};
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which scene substrate a job reconstructs — the demo fleet mixes all
/// three of the paper's dataset families plus size variation within them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneSpec {
    /// One of the eight NeRF-Synthetic-like primitive scenes.
    Synthetic {
        /// Scene index in `0..8`.
        index: usize,
        /// Square image resolution.
        resolution: u32,
        /// Training cameras on the orbit rig.
        train_views: usize,
    },
    /// The SILVR-like large-volume hall.
    Silvr {
        /// Square image resolution.
        resolution: u32,
        /// Training cameras.
        train_views: usize,
    },
    /// The ScanNet-like room with a walking trajectory and sensor noise.
    Scannet {
        /// Square image resolution.
        resolution: u32,
        /// Training cameras.
        train_views: usize,
    },
}

impl SceneSpec {
    /// Builds the dataset, drawing any scene randomness from `rng` (part
    /// of the job's seeded stream, so the dataset is a pure function of
    /// the spec + seed).
    pub fn build(&self, rng: &mut StdRng) -> Dataset {
        match *self {
            SceneSpec::Synthetic {
                index,
                resolution,
                train_views,
            } => SceneLibrary::synthetic_scene(index, resolution, train_views, rng),
            SceneSpec::Silvr {
                resolution,
                train_views,
            } => SceneLibrary::silvr_scene(resolution, train_views, rng),
            SceneSpec::Scannet {
                resolution,
                train_views,
            } => SceneLibrary::scannet_scene(resolution, train_views, rng),
        }
    }
}

/// Everything that determines a job's results: scene, training config,
/// seed and budgets. Two runs of the same spec — solo or co-scheduled in
/// any fleet — produce bit-identical checkpoints (see the crate docs).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Checkpoint-store key and report label; unique within a fleet.
    pub name: String,
    /// The scene to reconstruct.
    pub scene: SceneSpec,
    /// Training configuration (including the kernel backend).
    pub config: TrainConfig,
    /// Seed for the job's private RNG (dataset build + training stream).
    pub seed: u64,
    /// Total training iterations.
    pub iterations: u64,
    /// Checkpoint cadence in iterations (0 = only the final checkpoint).
    pub checkpoint_every: u64,
}

/// A booted job: trainer + private RNG + progress counters. Owned by one
/// fleet runner at a time, parked in the queue between slices.
pub(crate) struct SceneJob {
    pub(crate) spec: JobSpec,
    pub(crate) trainer: Trainer,
    pub(crate) rng: StdRng,
    /// Iterations executed so far.
    pub(crate) done: u64,
    /// Checkpoints written so far (cadence + final).
    pub(crate) checkpoints_written: u64,
    /// Loss of the last executed step.
    pub(crate) last_loss: f32,
    /// Batch workspaces this job received from the reuse pool.
    pub(crate) batch_recycled: u64,
    /// Whether the job's occupancy workspace came from the reuse pool.
    pub(crate) occ_recycled: bool,
    /// The job's progressive preview of its first test view (present
    /// when the fleet's `preview_tiles_per_slice` is non-zero and the
    /// dataset has a test view). Converged tiles persist across slices;
    /// each training step's grid-version bumps invalidate them.
    pub(crate) preview: Option<Box<FrameScheduler>>,
    /// Budgeted preview frames rendered (≤ one per slice).
    pub(crate) preview_frames: u64,
    /// Preview tiles rendered across all slices.
    pub(crate) preview_tiles: u64,
    /// Wall-clock nanoseconds the job spent owned by a fleet runner
    /// (training slices + previews). Telemetry only: the value is
    /// reported, never fed back into scheduling or training, so it does
    /// not perturb the determinism contract.
    pub(crate) busy_nanos: u64,
}

impl JobSpec {
    /// Boots the job: dataset and trainer built from the job's own
    /// seeded RNG, which then continues as the training stream. This is
    /// the *entire* source of job randomness — the scheduler never
    /// touches it.
    pub(crate) fn boot(&self) -> SceneJob {
        self.boot_with_preview(false)
    }

    /// [`boot`](JobSpec::boot), optionally wiring up a tile-renderer
    /// preview of the dataset's first test view. The preview consumes no
    /// job randomness and never touches the trainer, so it cannot
    /// perturb the determinism contract.
    pub(crate) fn boot_with_preview(&self, preview: bool) -> SceneJob {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dataset = self.scene.build(&mut rng);
        let trainer = Trainer::new(self.config.clone(), &dataset, &mut rng);
        let preview = (preview && !dataset.test_views.is_empty()).then(|| {
            Box::new(FrameScheduler::new(
                dataset.test_views[0].camera,
                RenderOptions::new(self.config.eval_samples_per_ray, dataset.background),
            ))
        });
        SceneJob {
            spec: self.clone(),
            trainer,
            rng,
            done: 0,
            checkpoints_written: 0,
            last_loss: f32::NAN,
            batch_recycled: 0,
            occ_recycled: false,
            preview,
            preview_frames: 0,
            preview_tiles: 0,
            busy_nanos: 0,
        }
    }
}

impl SceneJob {
    /// Iterations still to run.
    pub(crate) fn remaining(&self) -> u64 {
        self.spec.iterations.saturating_sub(self.done)
    }

    /// Runs one training step on the job's private stream.
    pub(crate) fn step(&mut self) {
        let s = self.trainer.step(&mut self.rng);
        self.last_loss = s.loss;
        self.done += 1;
    }

    /// Whether the cadence says to checkpoint after the step just run.
    pub(crate) fn due_checkpoint(&self) -> bool {
        self.spec.checkpoint_every > 0
            && self.done < self.spec.iterations
            && self.done.is_multiple_of(self.spec.checkpoint_every)
    }

    /// Serializes the current model.
    pub(crate) fn checkpoint(&mut self) -> Vec<u8> {
        self.checkpoints_written += 1;
        checkpoint::save(self.trainer.model())
    }

    /// Renders one budgeted, occupancy-guided preview frame of the job's
    /// test view through the shared workspace pool. Training steps bump
    /// the grids' level versions, so the scheduler re-renders stale tiles
    /// round-robin — the fleet's fixed-latency progress feed.
    pub(crate) fn render_preview(&mut self, pool: &WorkspacePool, tile_budget: usize) {
        if let Some(sched) = self.preview.as_deref_mut() {
            let progress = sched.render_frame(
                self.trainer.model(),
                self.trainer.occupancy_grid(),
                FrameBudget::tiles(tile_budget),
                pool,
            );
            self.preview_frames += 1;
            self.preview_tiles += progress.tiles_rendered as u64;
        }
    }
}

/// Trains `spec` start-to-finish in isolation — no fleet, no workspace
/// pool — and returns the final checkpoint. The reference side of the
/// determinism contract: a fleet-trained job's final checkpoint must be
/// bit-identical to this, at the same kernel backend and worker count.
pub fn train_solo(spec: &JobSpec) -> Vec<u8> {
    let mut job = spec.boot();
    while job.remaining() > 0 {
        job.step();
    }
    checkpoint::save(job.trainer.model())
}
