//! Classical volume rendering (the paper's Eq. 1) — forward and backward.
//!
//! For samples `k = 1..N` along a ray with densities `σ_k`, colors `c_k`
//! and segment lengths `δ_k = t_{k+1} − t_k`:
//!
//! ```text
//! α_k = 1 − exp(−σ_k δ_k)
//! T_k = Π_{j<k} (1 − α_j)          (accumulated transmittance)
//! w_k = T_k α_k                     (compositing weight)
//! Ĉ   = Σ_k w_k c_k + T_end · bg    (Step ④, with background)
//! ```
//!
//! The backward pass implements the analytic gradients used by Step ⑥:
//!
//! ```text
//! ∂Ĉ/∂c_k = w_k
//! ∂Ĉ/∂σ_k = δ_k · ( T_k (1−α_k) c_k − S_k )
//! S_k     = Σ_{j>k} w_j c_j + T_end · bg    (suffix color)
//! ```

use crate::kernels::BackendHandle;
use crate::math::Vec3;
use crate::simd::F32x8;

/// One integration sample along a ray: position parameters and the queried
/// features (density σ and color c) from Step ③.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaySample {
    /// Distance from the ray origin.
    pub t: f32,
    /// Segment length δ to the next sample.
    pub dt: f32,
    /// Volume density σ ≥ 0.
    pub sigma: f32,
    /// Emitted RGB color.
    pub rgb: Vec3,
}

/// Output of compositing one ray.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RenderOutput {
    /// Predicted pixel color Ĉ (Eq. 1, plus background).
    pub color: Vec3,
    /// Expected termination depth Σ w_k t_k (used for the Fig. 5 depth maps).
    pub depth: f32,
    /// Total opacity Σ w_k = 1 − T_end.
    pub opacity: f32,
    /// Transmittance remaining after the last sample.
    pub transmittance: f32,
}

/// Per-sample state retained for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct RenderCache {
    /// Compositing weight w_k per sample.
    pub weights: Vec<f32>,
    /// Transmittance T_k entering each sample.
    pub trans: Vec<f32>,
    /// 1 − α_k per sample.
    pub one_minus_alpha: Vec<f32>,
}

/// Transmittance below which integration stops early (matches Instant-NGP's
/// 1e-4 early-ray-termination threshold).
pub const EARLY_STOP_TRANSMITTANCE: f32 = 1e-4;

/// Composites samples front-to-back (Eq. 1). The cache enables
/// [`composite_backward`]; pass `None` when only rendering.
pub fn composite(
    samples: &[RaySample],
    background: Vec3,
    mut cache: Option<&mut RenderCache>,
) -> RenderOutput {
    if let Some(c) = cache.as_deref_mut() {
        c.weights.clear();
        c.trans.clear();
        c.one_minus_alpha.clear();
    }
    let mut color = Vec3::ZERO;
    let mut depth = 0.0f32;
    let mut opacity = 0.0f32;
    let mut trans = 1.0f32;
    for s in samples {
        debug_assert!(s.sigma >= 0.0, "density must be non-negative");
        let one_minus_alpha = (-s.sigma * s.dt).exp();
        let alpha = 1.0 - one_minus_alpha;
        let w = trans * alpha;
        if let Some(c) = cache.as_deref_mut() {
            c.weights.push(w);
            c.trans.push(trans);
            c.one_minus_alpha.push(one_minus_alpha);
        }
        color += s.rgb * w;
        depth += s.t * w;
        opacity += w;
        trans *= one_minus_alpha;
        if trans < EARLY_STOP_TRANSMITTANCE {
            // Early termination: remaining samples contribute ~nothing.
            // The cache stays truncated; backward treats them as zero-weight.
            break;
        }
    }
    color += background * trans;
    RenderOutput {
        color,
        depth,
        opacity,
        transmittance: trans,
    }
}

/// Gradients of a scalar loss w.r.t. each sample's density and color.
#[derive(Debug, Clone, Default)]
pub struct SampleGradients {
    /// dL/dσ_k per sample (zero for early-terminated samples).
    pub d_sigma: Vec<f32>,
    /// dL/dc_k per sample.
    pub d_rgb: Vec<Vec3>,
}

/// Backward pass of [`composite`] for the color output.
///
/// `d_color` is dL/dĈ; returns dL/dσ_k and dL/dc_k for every sample
/// (samples past the early-termination point receive zero gradient, exactly
/// as in Instant-NGP's CUDA kernels).
///
/// # Panics
///
/// Panics if the cache does not correspond to `samples` (it must come from
/// a [`composite`] call on the same sample list).
pub fn composite_backward(
    samples: &[RaySample],
    background: Vec3,
    cache: &RenderCache,
    out: &RenderOutput,
    d_color: Vec3,
) -> SampleGradients {
    let n_active = cache.weights.len();
    assert!(
        n_active <= samples.len(),
        "cache has more samples than the ray"
    );
    let mut grads = SampleGradients {
        d_sigma: vec![0.0; samples.len()],
        d_rgb: vec![Vec3::ZERO; samples.len()],
    };
    // Suffix color S_k = Σ_{j>k} w_j c_j + T_end·bg, built in reverse.
    let mut suffix = background * out.transmittance;
    for k in (0..n_active).rev() {
        let s = &samples[k];
        let w = cache.weights[k];
        grads.d_rgb[k] = d_color * w;
        // ∂Ĉ/∂σ_k = δ_k (T_k (1−α_k) c_k − S_k); chain with dL/dĈ.
        let dc_dsigma = (s.rgb * (cache.trans[k] * cache.one_minus_alpha[k]) - suffix) * s.dt;
        grads.d_sigma[k] = d_color.dot(dc_dsigma);
        suffix += s.rgb * w;
    }
    grads
}

// ---------------------------------------------------------------------------
// Batched (SoA) compositing
// ---------------------------------------------------------------------------

/// A batch of rays in structure-of-arrays form: per-sample attributes live
/// in flat arrays, with `offsets` marking each ray's sample range. This is
/// the zero-allocation replacement for per-ray `Vec<RaySample>` lists in
/// the batched training engine — buffers are cleared and refilled each
/// iteration, growing once to the high-water mark.
#[derive(Debug, Clone, Default)]
pub struct RayBatch {
    /// Ray `r` owns samples `offsets[r]..offsets[r+1]`. Always non-empty;
    /// starts as `[0]`.
    offsets: Vec<usize>,
    /// Distance from the ray origin, per sample.
    pub t: Vec<f32>,
    /// Segment length δ, per sample.
    pub dt: Vec<f32>,
    /// Volume density σ, per sample (filled by the model's batched heads).
    pub sigma: Vec<f32>,
    /// Emitted RGB, per sample (filled by the model's batched heads).
    pub rgb: Vec<Vec3>,
}

impl RayBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RayBatch {
            offsets: vec![0],
            ..RayBatch::default()
        }
    }

    /// Clears all rays and samples, keeping buffer capacity.
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.t.clear();
        self.dt.clear();
        self.sigma.clear();
        self.rgb.clear();
    }

    /// Appends a sample to the ray currently being built.
    #[inline]
    pub fn push_sample(&mut self, t: f32, dt: f32) {
        self.t.push(t);
        self.dt.push(dt);
        self.sigma.push(0.0);
        self.rgb.push(Vec3::ZERO);
    }

    /// Finishes the ray currently being built (possibly with no samples).
    #[inline]
    pub fn end_ray(&mut self) {
        self.offsets.push(self.t.len());
    }

    /// Number of completed rays.
    pub fn num_rays(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total samples across all completed rays.
    pub fn num_samples(&self) -> usize {
        self.t.len()
    }

    /// The flat sample range of ray `r`.
    #[inline]
    pub fn ray_range(&self, r: usize) -> std::ops::Range<usize> {
        self.offsets[r]..self.offsets[r + 1]
    }
}

/// Flat per-sample compositing state for a whole [`RayBatch`], retained for
/// the backward pass (the SoA counterpart of [`RenderCache`]).
#[derive(Debug, Clone, Default)]
pub struct RayBatchCache {
    /// Compositing weight w_k, per sample (valid up to each ray's `active`).
    pub weights: Vec<f32>,
    /// Transmittance entering each sample.
    pub trans: Vec<f32>,
    /// `1 − α_k` per sample.
    pub one_minus_alpha: Vec<f32>,
    /// Samples actually integrated per ray (early termination truncates).
    pub active: Vec<usize>,
    /// Forward output per ray.
    pub outputs: Vec<RenderOutput>,
}

impl RayBatchCache {
    /// Resizes every buffer for `batch`, keeping capacity across calls.
    pub fn reserve_for(&mut self, batch: &RayBatch) {
        let n = batch.num_samples();
        self.weights.resize(n, 0.0);
        self.trans.resize(n, 0.0);
        self.one_minus_alpha.resize(n, 0.0);
        self.active.resize(batch.num_rays(), 0);
        self.outputs
            .resize(batch.num_rays(), RenderOutput::default());
    }
}

/// The sequential per-ray compositing recurrence, shared verbatim by both
/// kernel backends of [`composite_slices_with`] — the backends only differ
/// in how `one_minus_alpha` values are *produced* (per sample vs a
/// lane-batched `−σδ` precompute); every consuming operation lives here,
/// so the loop body cannot drift between backends.
struct CompositeAccum {
    color: Vec3,
    depth: f32,
    opacity: f32,
    trans: f32,
    active: usize,
}

impl CompositeAccum {
    fn new() -> Self {
        CompositeAccum {
            color: Vec3::ZERO,
            depth: 0.0,
            opacity: 0.0,
            trans: 1.0,
            active: 0,
        }
    }

    /// Integrates sample `k`; returns `true` when the ray early-terminates.
    #[inline(always)]
    fn step(
        &mut self,
        k: usize,
        one_minus_alpha: f32,
        t: &[f32],
        rgb: &[Vec3],
        cache: &mut Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> bool {
        let alpha = 1.0 - one_minus_alpha;
        let w = self.trans * alpha;
        if let Some((cw, ct, co)) = cache.as_mut() {
            cw[k] = w;
            ct[k] = self.trans;
            co[k] = one_minus_alpha;
        }
        self.color += rgb[k] * w;
        self.depth += t[k] * w;
        self.opacity += w;
        self.trans *= one_minus_alpha;
        self.active = k + 1;
        self.trans < EARLY_STOP_TRANSMITTANCE
    }

    /// Fused-tier variant of [`CompositeAccum::step`]: the color/depth
    /// accumulations fold their multiply into the add with a single
    /// rounding (`f32::mul_add`). Weight, cache and early-termination
    /// logic are shared verbatim; only the accumulation rounding differs,
    /// bounded by the lossy backend's declared tolerance.
    // CONTRACT: lossy-tier — fused compositing step backing `FastKernels`.
    #[inline(always)]
    fn step_fused(
        &mut self,
        k: usize,
        one_minus_alpha: f32,
        t: &[f32],
        rgb: &[Vec3],
        cache: &mut Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> bool {
        let alpha = 1.0 - one_minus_alpha;
        let w = self.trans * alpha;
        if let Some((cw, ct, co)) = cache.as_mut() {
            cw[k] = w;
            ct[k] = self.trans;
            co[k] = one_minus_alpha;
        }
        self.color.x = rgb[k].x.mul_add(w, self.color.x);
        self.color.y = rgb[k].y.mul_add(w, self.color.y);
        self.color.z = rgb[k].z.mul_add(w, self.color.z);
        self.depth = t[k].mul_add(w, self.depth);
        self.opacity += w;
        self.trans *= one_minus_alpha;
        self.active = k + 1;
        self.trans < EARLY_STOP_TRANSMITTANCE
    }

    fn finish(mut self, background: Vec3) -> (RenderOutput, usize) {
        self.color += background * self.trans;
        (
            RenderOutput {
                color: self.color,
                depth: self.depth,
                opacity: self.opacity,
                transmittance: self.trans,
            },
            self.active,
        )
    }
}

/// Composites one ray given as SoA slices; cache slices (same length as the
/// sample slices) receive per-sample state and the integrated sample count.
/// Arithmetic is identical to [`composite`] — outputs agree bit-for-bit.
pub fn composite_slices(
    t: &[f32],
    dt: &[f32],
    sigma: &[f32],
    rgb: &[Vec3],
    background: Vec3,
    mut cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
) -> (RenderOutput, usize) {
    let mut acc = CompositeAccum::new();
    for k in 0..t.len() {
        debug_assert!(sigma[k] >= 0.0, "density must be non-negative");
        let one_minus_alpha = (-sigma[k] * dt[k]).exp();
        if acc.step(k, one_minus_alpha, t, rgb, &mut cache) {
            break;
        }
    }
    acc.finish(background)
}

/// [`composite_slices`] with an explicit kernel backend
/// ([`crate::kernels`]): dispatches to the backend's
/// [`crate::kernels::Kernels::composite_ray`]. Outputs, cache contents and
/// the integrated sample count are bit-identical across backends.
pub fn composite_slices_with(
    backend: &BackendHandle,
    t: &[f32],
    dt: &[f32],
    sigma: &[f32],
    rgb: &[Vec3],
    background: Vec3,
    cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
) -> (RenderOutput, usize) {
    backend.composite_ray(t, dt, sigma, rgb, background, cache)
}

/// The SIMD compositing kernel: precomputes the per-sample `(−σ·δ)`
/// products in lanes of 8 (the `exp` stays scalar per lane — vector exp
/// approximations would break bit-equality) and keeps the transmittance
/// recurrence, cache writes and early termination sequential, so outputs,
/// cache contents and the integrated sample count are bit-identical to
/// [`composite_slices`].
pub fn composite_slices_simd(
    t: &[f32],
    dt: &[f32],
    sigma: &[f32],
    rgb: &[Vec3],
    background: Vec3,
    mut cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
) -> (RenderOutput, usize) {
    const LANES: usize = F32x8::LANES;
    let n = t.len();
    let mut acc = CompositeAccum::new();
    let mut oma = [0.0f32; LANES];
    'rays: for c0 in (0..n).step_by(LANES) {
        let m = (n - c0).min(LANES);
        if m == LANES {
            let mut negs = [0.0f32; LANES];
            for (k, s) in sigma[c0..c0 + LANES].iter().enumerate() {
                negs[k] = -s;
            }
            let prod = F32x8(negs) * F32x8::from_slice(&dt[c0..]);
            for (k, o) in oma.iter_mut().enumerate() {
                *o = prod[k].exp();
            }
        } else {
            for k in 0..m {
                oma[k] = (-sigma[c0 + k] * dt[c0 + k]).exp();
            }
        }
        for (k, &one_minus_alpha) in oma.iter().enumerate().take(m) {
            let kk = c0 + k;
            debug_assert!(sigma[kk] >= 0.0, "density must be non-negative");
            if acc.step(kk, one_minus_alpha, t, rgb, &mut cache) {
                break 'rays;
            }
        }
    }
    acc.finish(background)
}

#[inline(always)]
fn composite_slices_fast_body(
    t: &[f32],
    dt: &[f32],
    sigma: &[f32],
    rgb: &[Vec3],
    background: Vec3,
    mut cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
) -> (RenderOutput, usize) {
    const LANES: usize = F32x8::LANES;
    let n = t.len();
    let mut acc = CompositeAccum::new();
    let mut oma = [0.0f32; LANES];
    'rays: for c0 in (0..n).step_by(LANES) {
        let m = (n - c0).min(LANES);
        if m == LANES {
            let mut negs = [0.0f32; LANES];
            for (k, s) in sigma[c0..c0 + LANES].iter().enumerate() {
                negs[k] = -s;
            }
            let prod = F32x8(negs) * F32x8::from_slice(&dt[c0..]);
            for (k, o) in oma.iter_mut().enumerate() {
                *o = prod[k].exp();
            }
        } else {
            for k in 0..m {
                oma[k] = (-sigma[c0 + k] * dt[c0 + k]).exp();
            }
        }
        for (k, &one_minus_alpha) in oma.iter().enumerate().take(m) {
            let kk = c0 + k;
            debug_assert!(sigma[kk] >= 0.0, "density must be non-negative");
            if acc.step_fused(kk, one_minus_alpha, t, rgb, &mut cache) {
                break 'rays;
            }
        }
    }
    acc.finish(background)
}

// CALLER: `composite_slices_fast` gates this behind
// `simd::avx2_fma_available()` runtime detection.
// SAFETY: only safe slice code inside; the sole obligation is the
// AVX2+FMA target features, established by the caller's guard.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn composite_slices_fast_avx2(
    t: &[f32],
    dt: &[f32],
    sigma: &[f32],
    rgb: &[Vec3],
    background: Vec3,
    cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
) -> (RenderOutput, usize) {
    composite_slices_fast_body(t, dt, sigma, rgb, background, cache)
}

/// The fused (lossy-tier) compositing kernel: the `(−σ·δ)` lane precompute
/// and scalar `exp` mirror [`composite_slices_simd`], but the color/depth
/// accumulations use `f32::mul_add`, so outputs differ from the strict
/// kernels by bounded rounding (one rounding per accumulate instead of
/// two). `f32::mul_add` is correctly rounded on every path, so results are
/// identical whether the AVX2/FMA specialization or the portable fallback
/// runs — feature detection only picks the faster encoding.
pub fn composite_slices_fast(
    t: &[f32],
    dt: &[f32],
    sigma: &[f32],
    rgb: &[Vec3],
    background: Vec3,
    cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
) -> (RenderOutput, usize) {
    #[cfg(target_arch = "x86_64")]
    if crate::simd::avx2_fma_available() {
        // SAFETY: AVX2+FMA presence was just verified at runtime.
        return unsafe { composite_slices_fast_avx2(t, dt, sigma, rgb, background, cache) };
    }
    composite_slices_fast_body(t, dt, sigma, rgb, background, cache)
}

/// Backward pass of [`composite_slices`]: writes dL/dσ and dL/dc for every
/// sample into the SoA gradient slices (zeros past `active`, exactly like
/// [`composite_backward`]).
#[allow(clippy::too_many_arguments)]
pub fn composite_backward_slices(
    dt: &[f32],
    rgb: &[Vec3],
    background: Vec3,
    weights: &[f32],
    trans: &[f32],
    one_minus_alpha: &[f32],
    active: usize,
    out: &RenderOutput,
    d_color: Vec3,
    d_sigma: &mut [f32],
    d_rgb: &mut [Vec3],
) {
    debug_assert!(active <= dt.len());
    d_sigma.fill(0.0);
    d_rgb.fill(Vec3::ZERO);
    let mut suffix = background * out.transmittance;
    for k in (0..active).rev() {
        let w = weights[k];
        d_rgb[k] = d_color * w;
        let dc_dsigma = (rgb[k] * (trans[k] * one_minus_alpha[k]) - suffix) * dt[k];
        d_sigma[k] = d_color.dot(dc_dsigma);
        suffix += rgb[k] * w;
    }
}

/// The declared [`WritePlan`](crate::kernels::WritePlan) of the per-ray
/// compositing cache writes (`RayBatchCache::{weights, trans,
/// one_minus_alpha}`): one task per ray, ray `r` owning
/// `[offsets[r], offsets[r+1])` of each flat per-sample buffer — a cut
/// partition over the batch's monotone sample-offset table
/// ([`RayBatch::ray_range`]), verified disjoint and gap-free for all
/// shapes by the conformance prover. The batched compositing dispatches
/// ([`composite_batch`] and the engine's `BatchWorkspace::composite_all`)
/// instantiate it per buffer under plan conformance.
pub fn composite_cache_write_plan() -> crate::kernels::WritePlan {
    crate::kernels::WritePlan::cut_partition(
        concat!(file!(), ":", line!(), " composite_batch"),
        "ray compositing cache",
        "ray_offsets",
        "rays",
        "samples",
    )
}

/// Composites every ray of `batch` front-to-back, filling `cache`.
pub fn composite_batch(batch: &RayBatch, background: Vec3, cache: &mut RayBatchCache) {
    cache.reserve_for(batch);
    for r in 0..batch.num_rays() {
        let range = batch.ray_range(r);
        let (out, active) = composite_slices(
            &batch.t[range.clone()],
            &batch.dt[range.clone()],
            &batch.sigma[range.clone()],
            &batch.rgb[range.clone()],
            background,
            Some((
                &mut cache.weights[range.clone()],
                &mut cache.trans[range.clone()],
                &mut cache.one_minus_alpha[range],
            )),
        );
        cache.outputs[r] = out;
        cache.active[r] = active;
    }
}

/// Squared-error loss between a predicted and ground-truth pixel (Eq. 2
/// contribution of one ray) and its gradient dL/dĈ.
#[inline]
pub fn pixel_loss(pred: Vec3, truth: Vec3) -> (f32, Vec3) {
    let diff = pred - truth;
    (diff.norm_squared(), diff * 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_samples(n: usize, sigma: f32, rgb: Vec3) -> Vec<RaySample> {
        let dt = 1.0 / n as f32;
        (0..n)
            .map(|i| RaySample {
                t: (i as f32 + 0.5) * dt,
                dt,
                sigma,
                rgb,
            })
            .collect()
    }

    #[test]
    fn empty_ray_returns_background() {
        let bg = Vec3::new(0.2, 0.4, 0.6);
        let out = composite(&[], bg, None);
        assert_eq!(out.color, bg);
        assert_eq!(out.opacity, 0.0);
        assert_eq!(out.transmittance, 1.0);
    }

    #[test]
    fn zero_density_is_transparent() {
        let bg = Vec3::new(1.0, 0.0, 0.0);
        let samples = uniform_samples(16, 0.0, Vec3::ONE);
        let out = composite(&samples, bg, None);
        assert_eq!(out.color, bg);
        assert_eq!(out.opacity, 0.0);
    }

    #[test]
    fn opaque_wall_returns_surface_color() {
        let bg = Vec3::ZERO;
        let c = Vec3::new(0.3, 0.6, 0.9);
        let samples = uniform_samples(64, 1e4, c);
        let out = composite(&samples, bg, None);
        assert!((out.color - c).norm() < 1e-3);
        assert!(out.opacity > 0.999);
        // Depth concentrates at the first sample for an opaque medium.
        assert!(out.depth < samples[1].t);
    }

    #[test]
    fn analytic_homogeneous_medium() {
        // For constant σ over [0,1]: opacity = 1 − e^{−σ}.
        let sigma = 2.0f32;
        let samples = uniform_samples(1000, sigma, Vec3::ONE);
        let out = composite(&samples, Vec3::ZERO, None);
        let expect = 1.0 - (-sigma).exp();
        assert!(
            (out.opacity - expect).abs() < 1e-3,
            "opacity {} vs analytic {expect}",
            out.opacity
        );
    }

    #[test]
    fn weights_sum_to_opacity_and_match_transmittance() {
        let samples = uniform_samples(32, 3.0, Vec3::ONE);
        let mut cache = RenderCache::default();
        let out = composite(&samples, Vec3::ZERO, Some(&mut cache));
        let wsum: f32 = cache.weights.iter().sum();
        assert!((wsum - out.opacity).abs() < 1e-5);
        assert!((out.opacity + out.transmittance - 1.0).abs() < 1e-5);
    }

    #[test]
    fn early_termination_truncates_cache() {
        let samples = uniform_samples(1000, 1e4, Vec3::ONE);
        let mut cache = RenderCache::default();
        let _ = composite(&samples, Vec3::ZERO, Some(&mut cache));
        assert!(
            cache.weights.len() < 20,
            "opaque ray should terminate quickly, used {} samples",
            cache.weights.len()
        );
    }

    #[test]
    fn backward_color_gradient_is_weight() {
        let samples = uniform_samples(8, 1.5, Vec3::splat(0.5));
        let mut cache = RenderCache::default();
        let out = composite(&samples, Vec3::ZERO, Some(&mut cache));
        let d_color = Vec3::new(1.0, 0.0, 0.0);
        let grads = composite_backward(&samples, Vec3::ZERO, &cache, &out, d_color);
        for k in 0..cache.weights.len() {
            assert!((grads.d_rgb[k].x - cache.weights[k]).abs() < 1e-6);
            assert_eq!(grads.d_rgb[k].y, 0.0);
        }
    }

    #[test]
    fn backward_sigma_matches_finite_difference() {
        let mut samples = uniform_samples(12, 2.0, Vec3::ZERO);
        // Give each sample a distinct color so the gradient is nontrivial.
        for (i, s) in samples.iter_mut().enumerate() {
            s.rgb = Vec3::new(i as f32 / 12.0, 0.5, 1.0 - i as f32 / 12.0);
            s.sigma = 0.5 + 0.2 * i as f32;
        }
        let bg = Vec3::new(0.1, 0.2, 0.3);
        let d_color = Vec3::new(0.7, -0.4, 0.2);
        let mut cache = RenderCache::default();
        let out = composite(&samples, bg, Some(&mut cache));
        let grads = composite_backward(&samples, bg, &cache, &out, d_color);

        let loss = |ss: &[RaySample]| -> f32 {
            let o = composite(ss, bg, None);
            d_color.dot(o.color)
        };
        let eps = 1e-3;
        for k in 0..samples.len() {
            let mut sp = samples.clone();
            sp[k].sigma += eps;
            let lp = loss(&sp);
            let mut sm = samples.clone();
            sm[k].sigma -= eps;
            let lm = loss(&sm);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads.d_sigma[k]).abs() < 1e-3,
                "sample {k}: fd {fd} vs analytic {}",
                grads.d_sigma[k]
            );
        }
    }

    #[test]
    fn backward_includes_background_through_sigma() {
        // A single translucent sample in front of a bright background: more
        // density blocks background light, so dĈ/dσ must be negative when
        // the sample is darker than the background.
        let samples = vec![RaySample {
            t: 0.5,
            dt: 0.5,
            sigma: 1.0,
            rgb: Vec3::ZERO,
        }];
        let bg = Vec3::ONE;
        let mut cache = RenderCache::default();
        let out = composite(&samples, bg, Some(&mut cache));
        let grads = composite_backward(&samples, bg, &cache, &out, Vec3::ONE);
        assert!(grads.d_sigma[0] < 0.0);
    }

    #[test]
    fn pixel_loss_gradient() {
        let pred = Vec3::new(0.5, 0.5, 0.5);
        let truth = Vec3::new(0.25, 0.75, 0.5);
        let (l, g) = pixel_loss(pred, truth);
        assert!((l - (0.0625 + 0.0625)).abs() < 1e-6);
        assert_eq!(g, Vec3::new(0.5, -0.5, 0.0));
        let (l0, g0) = pixel_loss(truth, truth);
        assert_eq!(l0, 0.0);
        assert_eq!(g0, Vec3::ZERO);
    }
}
