//! Completion latches for the work-stealing scheduler.
//!
//! Two latch flavours, distinguished by *how the waiting side waits*:
//!
//! * [`SpinLatch`] — waited on by a **pool worker**, which never blocks:
//!   it keeps popping/stealing jobs until the latch is set (see
//!   `Registry::wait_until`). `set` is therefore a bare atomic store and
//!   the latch can live on the waiting worker's stack frame.
//! * [`LockLatch`] — waited on by an **external** (non-pool) thread,
//!   which has no deque to drain and simply blocks on a condvar. Always
//!   shared behind an `Arc` so neither side can outlive the other's
//!   accesses.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// A set-once flag a pool worker waits on by *executing other jobs*.
///
/// Because `set` is the executing side's single, final access, the owner
/// may pop the latch's stack frame the instant it observes the flag —
/// the store itself is the synchronisation point.
pub(crate) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        SpinLatch {
            set: AtomicBool::new(false),
        }
    }

    /// True once [`SpinLatch::set`] has run; `Acquire` so everything the
    /// setter wrote before the store (the job's result) is visible.
    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Signals completion. **Must be the executing side's last access to
    /// the job**: the owner frees the job's frame as soon as it sees the
    /// flag.
    #[inline]
    pub(crate) fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A latch an external thread blocks on (mutex + condvar).
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        LockLatch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn set(&self) {
        *self.done.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Blocks the calling thread until [`LockLatch::set`] runs.
    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.cv.wait(done).unwrap();
        }
    }
}
