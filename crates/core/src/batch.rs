//! The batched SoA execution engine (the training hot path).
//!
//! Where the scalar reference path walks one point at a time through
//! encode → heads → composite → backward, this module runs each pipeline
//! stage once over the *whole ray batch*, on structure-of-arrays buffers
//! owned by a [`BatchWorkspace`] that is allocated once and reused every
//! iteration — zero steady-state allocation.
//!
//! Stage parallelism (via `rayon`) is organised so every concurrent write
//! targets a disjoint region and every per-parameter accumulation runs in
//! point order:
//!
//! * grid encode — point chunks, each writing its own embedding rows;
//! * MLP forward/backward — item chunks (activations) and output-row
//!   chunks (parameter gradients) inside `instant3d-nerf`;
//! * grid scatter — one task per grid level, each owning that level's
//!   slice of the gradient buffer.
//!
//! Consequences, both load-bearing for the test suite:
//!
//! 1. **Scalar equivalence** — batched results are bit-identical to the
//!    scalar reference path (same per-point arithmetic, same accumulation
//!    order per parameter).
//! 2. **Thread-count determinism** — results are bit-identical for any
//!    worker count, because no reduction order depends on scheduling.
//!
//! When an access observer is attached (trace capture), the grid stages
//! run sequentially point-major, which reproduces the scalar path's
//! capture stream exactly; all other stages stay batched.

use crate::config::GridTopology;
use crate::model::{BranchObserver, ModelGradients, NerfModel, Tagged};
use instant3d_nerf::grid::GridBranch;
use instant3d_nerf::kernels::BackendHandle;
use instant3d_nerf::math::Vec3;
use instant3d_nerf::mlp::MlpBatchWorkspace;
use instant3d_nerf::render::{composite_backward_slices, RayBatch, RayBatchCache, RenderOutput};

/// Preallocated SoA buffers for one training/eval iteration of the batched
/// engine. Create once per trainer (or per eval worker) with
/// [`BatchWorkspace::new`]; every buffer grows to its high-water mark and
/// is then reused.
#[derive(Debug)]
pub struct BatchWorkspace {
    /// Per-ray sample SoA (`t`, `dt`, `σ`, `rgb` + ray offsets).
    pub rays: RayBatch,
    /// World-space position per sample.
    pub positions: Vec<Vec3>,
    /// Owning ray index per sample.
    pub point_ray: Vec<u32>,
    /// SH direction encoding per *ray* (`rays × sh_dim`).
    pub sh: Vec<f32>,
    /// Compositing state + per-ray outputs, retained for backward.
    pub cache: RayBatchCache,
    /// dL/dĈ per ray (filled by the loss stage).
    pub d_color: Vec<Vec3>,

    pub(crate) unit_positions: Vec<Vec3>,
    pub(crate) emb_d: Vec<f32>,
    pub(crate) emb_c: Vec<f32>,
    pub(crate) color_in: Vec<f32>,
    pub(crate) ws_sigma: MlpBatchWorkspace,
    pub(crate) ws_color: MlpBatchWorkspace,
    pub(crate) d_sigma: Vec<f32>,
    pub(crate) d_rgb: Vec<Vec3>,
    pub(crate) d_rgb_flat: Vec<f32>,
    pub(crate) d_emb_d: Vec<f32>,
    pub(crate) d_emb_c: Vec<f32>,
    pub(crate) d_color_in: Vec<f32>,
    /// Per-ray `(t, δt)` segment scratch for occupancy-guided sampling
    /// (the tile renderer's `sample_segments_occupancy_into` buffer).
    /// Rides with the workspace so pooled reuse keeps its capacity.
    pub(crate) seg_scratch: Vec<(f32, f32)>,

    sh_dim: usize,
    emb_d_dim: usize,
    emb_c_dim: usize,
    color_in_dim: usize,
    sigma_layers: usize,
    color_layers: usize,
    backend: BackendHandle,
}

/// Structural compatibility key for sharing a [`BatchWorkspace`] across
/// models — the serve layer's workspace reuse pool hands a parked
/// workspace to any job whose model has the same shape. Every internal
/// buffer is (re)sized per call from these dimensions (and the per-layer
/// scratch vector counts), so equal shapes ⇒ safe reuse; the buffers
/// themselves carry no cross-iteration state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkspaceShape {
    /// Kernel-backend registry name (the dispatch handle is baked into
    /// the workspace, so shape compatibility includes the backend).
    pub backend: &'static str,
    /// SH direction-encoding width.
    pub sh_dim: usize,
    /// Density-grid embedding width.
    pub emb_d_dim: usize,
    /// Color-branch embedding width.
    pub emb_c_dim: usize,
    /// Color-head input width.
    pub color_in_dim: usize,
    /// Sigma-head layer count (the MLP scratch holds per-layer buffers).
    pub sigma_layers: usize,
    /// Color-head layer count.
    pub color_layers: usize,
}

impl WorkspaceShape {
    /// The shape a workspace for `model` (on the model's backend) has.
    pub fn of(model: &NerfModel) -> Self {
        WorkspaceShape {
            backend: model.kernel_backend().name(),
            sh_dim: model.sh_dim(),
            emb_d_dim: model.density_grid().output_dim(),
            emb_c_dim: model.color_mlp().in_dim() - model.sh_dim(),
            color_in_dim: model.color_mlp().in_dim(),
            sigma_layers: model.sigma_mlp().layers().len(),
            color_layers: model.color_mlp().layers().len(),
        }
    }
}

impl BatchWorkspace {
    /// Allocates a workspace shaped for `model`, running the model's
    /// kernel backend ([`NerfModel::kernel_backend`]).
    pub fn new(model: &NerfModel) -> Self {
        Self::with_backend(model, model.kernel_backend().clone())
    }

    /// Allocates a workspace with an explicit kernel backend (tests and
    /// benches; trainers use [`BatchWorkspace::new`]).
    pub fn with_backend(model: &NerfModel, backend: BackendHandle) -> Self {
        let emb_c_dim = model.color_mlp().in_dim() - model.sh_dim();
        BatchWorkspace {
            rays: RayBatch::new(),
            positions: Vec::new(),
            point_ray: Vec::new(),
            sh: Vec::new(),
            cache: RayBatchCache::default(),
            d_color: Vec::new(),
            unit_positions: Vec::new(),
            emb_d: Vec::new(),
            emb_c: Vec::new(),
            color_in: Vec::new(),
            ws_sigma: model.sigma_mlp().batch_workspace(0),
            ws_color: model.color_mlp().batch_workspace(0),
            d_sigma: Vec::new(),
            d_rgb: Vec::new(),
            d_rgb_flat: Vec::new(),
            d_emb_d: Vec::new(),
            d_emb_c: Vec::new(),
            d_color_in: Vec::new(),
            seg_scratch: Vec::new(),
            sh_dim: model.sh_dim(),
            emb_d_dim: model.density_grid().output_dim(),
            emb_c_dim,
            color_in_dim: model.color_mlp().in_dim(),
            sigma_layers: model.sigma_mlp().layers().len(),
            color_layers: model.color_mlp().layers().len(),
            backend,
        }
    }

    /// The kernel backend this workspace dispatches to.
    pub fn backend(&self) -> &BackendHandle {
        &self.backend
    }

    /// This workspace's structural shape (see [`WorkspaceShape`]).
    pub fn shape(&self) -> WorkspaceShape {
        WorkspaceShape {
            backend: self.backend.name(),
            sh_dim: self.sh_dim,
            emb_d_dim: self.emb_d_dim,
            emb_c_dim: self.emb_c_dim,
            color_in_dim: self.color_in_dim,
            sigma_layers: self.sigma_layers,
            color_layers: self.color_layers,
        }
    }

    /// Whether this workspace can serve `model` (equal shapes, same
    /// backend) — the reuse-pool compatibility predicate.
    pub fn fits(&self, model: &NerfModel) -> bool {
        self.shape() == WorkspaceShape::of(model)
    }

    /// Samples currently in the batch.
    pub fn num_points(&self) -> usize {
        self.rays.num_samples()
    }

    /// Completed rays currently in the batch.
    pub fn num_rays(&self) -> usize {
        self.rays.num_rays()
    }

    /// Resets all per-iteration state (buffer capacity is kept).
    pub fn clear(&mut self) {
        self.rays.clear();
        self.positions.clear();
        self.point_ray.clear();
        self.sh.clear();
        self.seg_scratch.clear();
    }

    /// Reserves the per-ray SH rows for `rays` rays and returns the flat
    /// buffer (callers fill row `r` via [`NerfModel::encode_dir`]).
    pub fn reserve_rays(&mut self, rays: usize) {
        self.sh.resize(rays * self.sh_dim, 0.0);
        self.d_color.resize(rays, Vec3::ZERO);
    }

    /// The SH row of ray `r`.
    #[inline]
    pub fn sh_row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.sh[r * self.sh_dim..(r + 1) * self.sh_dim]
    }

    /// Stage ③-① forward, batched: maps every sampled position into the
    /// unit cube and encodes the grid embeddings. With a consuming
    /// observer the kernels run sequentially point-major (capture order
    /// identical to the scalar path); otherwise they run on the rayon
    /// pool. Results are bit-identical either way.
    pub fn encode<O: BranchObserver + ?Sized>(&mut self, model: &NerfModel, obs: &mut O) {
        let n = self.positions.len();
        let aabb = model.aabb();
        self.unit_positions.clear();
        self.unit_positions
            .extend(self.positions.iter().map(|p| aabb.to_unit(*p)));
        self.emb_d.resize(n * self.emb_d_dim, 0.0);
        self.emb_c.resize(n * self.emb_c_dim, 0.0);
        let decoupled = model.topology() == GridTopology::Decoupled && model.color_grid().is_some();
        if obs.wants_accesses() {
            // Point-major, density and color interleaved per point — the
            // exact access order of the scalar `encode_point` loop.
            for (i, unit) in self.unit_positions.iter().enumerate() {
                let row_d = &mut self.emb_d[i * self.emb_d_dim..(i + 1) * self.emb_d_dim];
                model.density_grid().encode_into(
                    *unit,
                    row_d,
                    &mut Tagged {
                        branch: GridBranch::Density,
                        inner: obs,
                    },
                );
                let row_c = &mut self.emb_c[i * self.emb_c_dim..(i + 1) * self.emb_c_dim];
                if decoupled {
                    // PANICS: `decoupled` requires `color_grid().is_some()`.
                    model.color_grid().unwrap().encode_into(
                        *unit,
                        row_c,
                        &mut Tagged {
                            branch: GridBranch::Color,
                            inner: obs,
                        },
                    );
                } else {
                    row_c
                        .copy_from_slice(&self.emb_d[i * self.emb_d_dim..(i + 1) * self.emb_d_dim]);
                }
            }
        } else {
            model.density_grid().par_encode_batch_with(
                &self.backend,
                &self.unit_positions,
                &mut self.emb_d,
            );
            if decoupled {
                // PANICS: `decoupled` requires `color_grid().is_some()`.
                model.color_grid().unwrap().par_encode_batch_with(
                    &self.backend,
                    &self.unit_positions,
                    &mut self.emb_c,
                );
            } else {
                self.emb_c.copy_from_slice(&self.emb_d);
            }
        }
    }

    /// Stage ③-② forward, batched: evaluates both MLP heads over every
    /// sample and writes `σ` / `rgb` into [`BatchWorkspace::rays`].
    /// Activations stay in the MLP batch workspaces for the backward pass.
    pub fn heads_forward(&mut self, model: &NerfModel) {
        let n = self.positions.len();
        debug_assert_eq!(self.point_ray.len(), n);
        // Assemble the color-head input rows: [emb_c ‖ sh(ray)].
        let (ec, cw, sd) = (self.emb_c_dim, self.color_in_dim, self.sh_dim);
        self.color_in.resize(n * cw, 0.0);
        for i in 0..n {
            let row = &mut self.color_in[i * cw..(i + 1) * cw];
            row[..ec].copy_from_slice(&self.emb_c[i * ec..(i + 1) * ec]);
            let r = self.point_ray[i] as usize;
            row[ec..].copy_from_slice(&self.sh[r * sd..(r + 1) * sd]);
        }
        let sigma_out =
            model
                .sigma_mlp()
                .forward_batch_with(&self.backend, &self.emb_d, &mut self.ws_sigma);
        self.rays.sigma[..n].copy_from_slice(sigma_out);
        let rgb_out =
            model
                .color_mlp()
                .forward_batch_with(&self.backend, &self.color_in, &mut self.ws_color);
        for (i, chunk) in rgb_out.chunks_exact(3).enumerate() {
            self.rays.rgb[i] = Vec3::new(chunk[0], chunk[1], chunk[2]);
        }
    }

    /// Stage ④, batched: composites every ray front-to-back into
    /// [`BatchWorkspace::cache`].
    pub fn composite_all(&mut self, background: Vec3) {
        self.cache.reserve_for(&self.rays);
        // Under plan conformance, register the per-ray cut partition as
        // the declared plan for all three cache buffers: every cache
        // write the checked backend records must stay inside its ray's
        // declared sample range.
        let _plan_guards = self.backend.plan_conformance().then(|| {
            let nrays = self.rays.num_rays();
            let mut cuts: Vec<i128> = Vec::with_capacity(nrays + 1);
            cuts.push(0);
            for r in 0..nrays {
                cuts.push(self.rays.ray_range(r).end as i128);
            }
            let plan = instant3d_nerf::render::composite_cache_write_plan().instantiate(
                &[
                    ("rays", nrays as i128),
                    ("samples", self.rays.num_samples() as i128),
                ],
                &[&cuts],
            );
            let ledger = instant3d_nerf::kernels::WriteLedger::global();
            [
                ledger.expect_plan(&plan, self.cache.weights.as_ptr()),
                ledger.expect_plan(&plan, self.cache.trans.as_ptr()),
                ledger.expect_plan(&plan, self.cache.one_minus_alpha.as_ptr()),
            ]
        });
        for r in 0..self.rays.num_rays() {
            let range = self.rays.ray_range(r);
            let (out, active) = self.backend.composite_ray(
                &self.rays.t[range.clone()],
                &self.rays.dt[range.clone()],
                &self.rays.sigma[range.clone()],
                &self.rays.rgb[range.clone()],
                background,
                Some((
                    &mut self.cache.weights[range.clone()],
                    &mut self.cache.trans[range.clone()],
                    &mut self.cache.one_minus_alpha[range],
                )),
            );
            self.cache.outputs[r] = out;
            self.cache.active[r] = active;
        }
    }

    /// The forward render output of ray `r` (valid after
    /// [`BatchWorkspace::composite_all`]).
    #[inline]
    pub fn output(&self, r: usize) -> &RenderOutput {
        &self.cache.outputs[r]
    }

    /// Stage ⑥ through the renderer, batched: converts the per-ray color
    /// gradients in [`BatchWorkspace::d_color`] into per-sample `dσ` /
    /// `drgb` SoA buffers.
    pub fn render_backward(&mut self, background: Vec3) {
        let n = self.rays.num_samples();
        self.d_sigma.resize(n, 0.0);
        self.d_rgb.resize(n, Vec3::ZERO);
        for r in 0..self.rays.num_rays() {
            let range = self.rays.ray_range(r);
            composite_backward_slices(
                &self.rays.dt[range.clone()],
                &self.rays.rgb[range.clone()],
                background,
                &self.cache.weights[range.clone()],
                &self.cache.trans[range.clone()],
                &self.cache.one_minus_alpha[range.clone()],
                self.cache.active[r],
                &self.cache.outputs[r],
                self.d_color[r],
                &mut self.d_sigma[range.clone()],
                &mut self.d_rgb[range],
            );
        }
    }

    /// Stage ③-② backward, batched: backpropagates the per-sample
    /// gradients through both heads (reusing the retained forward
    /// activations — no re-forward), leaving the embedding gradients in
    /// the workspace for [`BatchWorkspace::scatter`].
    pub fn heads_backward(&mut self, model: &NerfModel, grads: &mut ModelGradients) {
        let n = self.rays.num_samples();
        // Color head backward → gradient w.r.t. [emb_c ‖ sh].
        self.d_rgb_flat.resize(n * 3, 0.0);
        for (i, g) in self.d_rgb[..n].iter().enumerate() {
            self.d_rgb_flat[i * 3] = g.x;
            self.d_rgb_flat[i * 3 + 1] = g.y;
            self.d_rgb_flat[i * 3 + 2] = g.z;
        }
        self.d_color_in.resize(n * self.color_in_dim, 0.0);
        model.color_mlp().backward_batch_with(
            &self.backend,
            &self.d_rgb_flat,
            &mut self.ws_color,
            &mut grads.color_mlp,
            &mut self.d_color_in,
        );
        // Density head backward → gradient w.r.t. emb_d.
        self.d_emb_d.resize(n * self.emb_d_dim, 0.0);
        model.sigma_mlp().backward_batch_with(
            &self.backend,
            &self.d_sigma[..n],
            &mut self.ws_sigma,
            &mut grads.sigma_mlp,
            &mut self.d_emb_d,
        );
        // Pack the emb_c part of the color-input gradient rows.
        let (ec, cw) = (self.emb_c_dim, self.color_in_dim);
        self.d_emb_c.resize(n * ec, 0.0);
        for i in 0..n {
            self.d_emb_c[i * ec..(i + 1) * ec]
                .copy_from_slice(&self.d_color_in[i * cw..i * cw + ec]);
        }
    }

    /// Stage ③-① backward, batched: scatters the embedding gradients into
    /// the grid gradient buffers. With a consuming observer the scatter is
    /// sequential point-major (capture order identical to the scalar
    /// path); otherwise it runs level-parallel over disjoint gradient
    /// slices. Per-parameter accumulation is point-ordered either way.
    pub fn scatter<O: BranchObserver + ?Sized>(
        &mut self,
        model: &NerfModel,
        grads: &mut ModelGradients,
        obs: &mut O,
        update_color: bool,
    ) {
        let n = self.rays.num_samples();
        let (ed, ec) = (self.emb_d_dim, self.emb_c_dim);
        let coupled = model.topology() == GridTopology::Coupled;
        if coupled {
            // Shared grid: both heads' embedding gradients sum.
            debug_assert_eq!(ed, ec);
            for (d, c) in self.d_emb_d[..n * ed]
                .iter_mut()
                .zip(&self.d_emb_c[..n * ec])
            {
                *d += *c;
            }
        }
        let scatter_color = !coupled && update_color;
        if obs.wants_accesses() {
            for i in 0..n {
                let unit = self.unit_positions[i];
                model.density_grid().backward_into(
                    unit,
                    &self.d_emb_d[i * ed..(i + 1) * ed],
                    &mut grads.density_grid,
                    &mut Tagged {
                        branch: GridBranch::Density,
                        inner: obs,
                    },
                );
                if scatter_color {
                    if let (Some(cg), Some(cgrads)) =
                        (model.color_grid(), grads.color_grid.as_mut())
                    {
                        cg.backward_into(
                            unit,
                            &self.d_emb_c[i * ec..(i + 1) * ec],
                            cgrads,
                            &mut Tagged {
                                branch: GridBranch::Color,
                                inner: obs,
                            },
                        );
                    }
                }
            }
        } else {
            model.density_grid().par_backward_batch_with(
                &self.backend,
                &self.unit_positions,
                &self.d_emb_d[..n * ed],
                &mut grads.density_grid,
            );
            if scatter_color {
                if let (Some(cg), Some(cgrads)) = (model.color_grid(), grads.color_grid.as_mut()) {
                    cg.par_backward_batch_with(
                        &self.backend,
                        &self.unit_positions,
                        &self.d_emb_c[..n * ec],
                        cgrads,
                    );
                }
            }
        }
    }

    /// Batched density probe: returns `σ` for every position, reusing this
    /// workspace's buffers. Values are identical to per-point
    /// [`NerfModel::density_at`] calls.
    ///
    /// The trainer's occupancy refresh no longer routes through here — it
    /// runs on `instant3d_nerf::occupancy::OccupancyWorkspace`, which adds
    /// a persistent per-level-versioned cell→embedding cache on top of the
    /// same kernel seams. This probe remains for ad-hoc density sweeps
    /// (field visualisation, tests).
    pub fn density_batch(&mut self, model: &NerfModel, positions: &[Vec3]) -> &[f32] {
        let aabb = model.aabb();
        self.unit_positions.clear();
        self.unit_positions
            .extend(positions.iter().map(|p| aabb.to_unit(*p)));
        self.emb_d.resize(positions.len() * self.emb_d_dim, 0.0);
        model.density_grid().par_encode_batch_with(
            &self.backend,
            &self.unit_positions,
            &mut self.emb_d,
        );
        model
            .sigma_mlp()
            .forward_batch_with(&self.backend, &self.emb_d, &mut self.ws_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::model::NullBranchObserver;
    use instant3d_nerf::math::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(topology: GridTopology) -> NerfModel {
        let mut cfg = TrainConfig::fast_preview();
        cfg.topology = topology;
        let mut rng = StdRng::seed_from_u64(11);
        NerfModel::new(&cfg, Aabb::UNIT, &mut rng)
    }

    /// Fills a tiny 2-ray batch with fixed geometry.
    fn fill_batch(ws: &mut BatchWorkspace, model: &NerfModel) {
        ws.clear();
        ws.reserve_rays(2);
        for r in 0..2usize {
            let dir = if r == 0 { Vec3::Z } else { Vec3::X };
            model.encode_dir(dir, ws.sh_row_mut(r));
            for k in 0..4 {
                let t = 0.1 + 0.2 * k as f32;
                ws.rays.push_sample(t, 0.2);
                ws.positions
                    .push(Vec3::splat(0.2 + 0.15 * k as f32 + 0.05 * r as f32));
                ws.point_ray.push(r as u32);
            }
            ws.rays.end_ray();
        }
    }

    #[test]
    fn batched_forward_matches_scalar_model_queries() {
        for topo in [GridTopology::Coupled, GridTopology::Decoupled] {
            let m = model(topo);
            let mut ws = BatchWorkspace::new(&m);
            fill_batch(&mut ws, &m);
            ws.encode(&m, &mut NullBranchObserver);
            ws.heads_forward(&m);

            let mut sws = m.workspace();
            let mut sh = vec![0.0; m.sh_dim()];
            for i in 0..ws.num_points() {
                let r = ws.point_ray[i] as usize;
                let dir = if r == 0 { Vec3::Z } else { Vec3::X };
                m.encode_dir(dir, &mut sh);
                let (sigma, rgb) =
                    m.query_train(ws.positions[i], &sh, &mut sws, &mut NullBranchObserver);
                assert_eq!(ws.rays.sigma[i], sigma, "{topo:?} sigma {i}");
                assert_eq!(ws.rays.rgb[i], rgb, "{topo:?} rgb {i}");
            }
        }
    }

    #[test]
    fn observed_and_unobserved_encode_agree_bitwise() {
        let m = model(GridTopology::Decoupled);
        // The observer-forced point-major path runs the strict sequential
        // kernels, so the bit-identity claim only holds for strict-tier
        // backends: fall back to the default when the environment selects
        // a lossy one (lossy parity is covered by the tolerance suites).
        let backend = crate::kernels::strict_from_env_or_default();
        let mut a = BatchWorkspace::with_backend(&m, backend.clone());
        let mut b = BatchWorkspace::with_backend(&m, backend);
        fill_batch(&mut a, &m);
        fill_batch(&mut b, &m);
        // A counting observer forces the sequential point-major kernels.
        struct Counting(usize);
        impl BranchObserver for Counting {
            fn on_branch_access(
                &mut self,
                _: GridBranch,
                _: instant3d_nerf::grid::AccessPhase,
                _: u32,
                _: u8,
                _: u32,
            ) {
                self.0 += 1;
            }
        }
        let mut obs = Counting(0);
        a.encode(&m, &mut obs);
        b.encode(&m, &mut NullBranchObserver);
        assert!(obs.0 > 0);
        assert_eq!(a.emb_d, b.emb_d);
        assert_eq!(a.emb_c, b.emb_c);
    }

    #[test]
    fn density_batch_matches_density_at() {
        let m = model(GridTopology::Decoupled);
        let mut ws = BatchWorkspace::new(&m);
        let mut sws = m.workspace();
        let positions: Vec<Vec3> = (0..17)
            .map(|i| Vec3::splat(0.05 + 0.05 * i as f32))
            .collect();
        let batched = ws.density_batch(&m, &positions).to_vec();
        for (p, b) in positions.iter().zip(batched) {
            assert_eq!(m.density_at(*p, &mut sws), b);
        }
    }
}
