//! Corner-group clustering analysis (Figs. 8 and 9 of the paper).
//!
//! Each interpolation cube reads 8 corner addresses. Clustering them by
//! shared (y, z) gives 4 groups of 2 x-adjacent vertices. Because the
//! spatial hash multiplies x by π₁ = 1 but y/z by large primes, intra-group
//! address distances are tiny (locality) and inter-group distances huge
//! (remoteness) — the property the FRM unit's banking exploits.

use crate::record::{AccessRecord, Trace};
use instant3d_nerf::grid::{AccessPhase, GridBranch};

/// One reconstructed interpolation burst: the 8 corner addresses of a
/// single (point, level) query, indexed by corner id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CornerBurst {
    /// Training iteration of the burst.
    pub iter: u32,
    /// Grid level.
    pub level: u32,
    /// Corner addresses, index = corner id (bit0 = dx, bit1 = dy, bit2 = dz).
    pub addrs: [u32; 8],
}

impl CornerBurst {
    /// The 4 corner groups: pairs of x-adjacent corners sharing (y, z).
    /// Group g contains corners 2g and 2g+1.
    pub fn groups(&self) -> [[u32; 2]; 4] {
        [
            [self.addrs[0], self.addrs[1]],
            [self.addrs[2], self.addrs[3]],
            [self.addrs[4], self.addrs[5]],
            [self.addrs[6], self.addrs[7]],
        ]
    }

    /// Signed intra-group distances (4 per burst): `addr(x+1) − addr(x)`.
    pub fn intra_group_distances(&self) -> [i64; 4] {
        let g = self.groups();
        [
            g[0][1] as i64 - g[0][0] as i64,
            g[1][1] as i64 - g[1][0] as i64,
            g[2][1] as i64 - g[2][0] as i64,
            g[3][1] as i64 - g[3][0] as i64,
        ]
    }

    /// Absolute pairwise distances between the 4 group anchors (6 pairs).
    pub fn inter_group_distances(&self) -> [u64; 6] {
        let a = [self.addrs[0], self.addrs[2], self.addrs[4], self.addrs[6]];
        let d = |x: u32, y: u32| (x as i64 - y as i64).unsigned_abs();
        [
            d(a[0], a[1]),
            d(a[0], a[2]),
            d(a[0], a[3]),
            d(a[1], a[2]),
            d(a[1], a[3]),
            d(a[2], a[3]),
        ]
    }
}

/// Reconstructs interpolation bursts from a trace: consecutive runs of 8
/// same-phase, same-branch, same-level records with corners 0..7 in order.
///
/// Hashed levels only (`min_level` filters out dense levels, whose
/// addressing is trivially local and not what Fig. 8/9 measure — pass 0 to
/// keep everything).
pub fn bursts(
    trace: &Trace,
    phase: AccessPhase,
    branch: GridBranch,
    min_level: u32,
) -> Vec<CornerBurst> {
    let recs: Vec<&AccessRecord> = trace
        .records
        .iter()
        .filter(|r| r.phase == phase && r.branch == branch && r.level >= min_level)
        .collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 8 <= recs.len() {
        let window = &recs[i..i + 8];
        let aligned = window.iter().enumerate().all(|(k, r)| {
            r.corner as usize == k && r.level == window[0].level && r.iter == window[0].iter
        });
        if aligned {
            let mut addrs = [0u32; 8];
            for (k, r) in window.iter().enumerate() {
                addrs[k] = r.addr;
            }
            out.push(CornerBurst {
                iter: window[0].iter,
                level: window[0].level,
                addrs,
            });
            i += 8;
        } else {
            i += 1;
        }
    }
    out
}

/// Summary of the Fig. 8 / Fig. 9 measurements over a set of bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSummary {
    /// Bursts analysed.
    pub bursts: usize,
    /// Mean |intra-group| distance (paper: ~1-5).
    pub mean_intra_abs: f64,
    /// Fraction of intra-group distances within [-5, 5] (paper: > 90 %).
    pub frac_intra_within_5: f64,
    /// Mean inter-group distance (paper: ~60 000 at paper-scale tables).
    pub mean_inter: f64,
}

/// Computes the Fig. 8/9 summary over bursts.
pub fn summarize(bursts: &[CornerBurst]) -> ClusterSummary {
    if bursts.is_empty() {
        return ClusterSummary {
            bursts: 0,
            mean_intra_abs: 0.0,
            frac_intra_within_5: 0.0,
            mean_inter: 0.0,
        };
    }
    let mut intra_abs_sum = 0.0f64;
    let mut intra_within = 0u64;
    let mut intra_n = 0u64;
    let mut inter_sum = 0.0f64;
    let mut inter_n = 0u64;
    for b in bursts {
        for d in b.intra_group_distances() {
            intra_abs_sum += d.unsigned_abs() as f64;
            if d.abs() <= 5 {
                intra_within += 1;
            }
            intra_n += 1;
        }
        for d in b.inter_group_distances() {
            inter_sum += d as f64;
            inter_n += 1;
        }
    }
    ClusterSummary {
        bursts: bursts.len(),
        mean_intra_abs: intra_abs_sum / intra_n as f64,
        frac_intra_within_5: intra_within as f64 / intra_n as f64,
        mean_inter: inter_sum / inter_n as f64,
    }
}

/// All signed intra-group distances from a burst set (Fig. 9's histogram
/// raw data).
pub fn all_intra_distances(bursts: &[CornerBurst]) -> Vec<i64> {
    bursts
        .iter()
        .flat_map(|b| b.intra_group_distances())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant3d_nerf::hash::{spatial_hash, CORNER_OFFSETS};

    fn synthetic_burst(ix: u32, iy: u32, iz: u32, t: u32) -> CornerBurst {
        let mut addrs = [0u32; 8];
        for (c, &(dx, dy, dz)) in CORNER_OFFSETS.iter().enumerate() {
            addrs[c] = spatial_hash(ix + dx, iy + dy, iz + dz, t);
        }
        CornerBurst {
            iter: 0,
            level: 5,
            addrs,
        }
    }

    fn burst_records(ix: u32, iy: u32, iz: u32, t: u32, seq0: u64) -> Vec<AccessRecord> {
        CORNER_OFFSETS
            .iter()
            .enumerate()
            .map(|(c, &(dx, dy, dz))| AccessRecord {
                seq: seq0 + c as u64,
                iter: 0,
                branch: GridBranch::Density,
                phase: AccessPhase::FeedForward,
                level: 5,
                corner: c as u8,
                addr: spatial_hash(ix + dx, iy + dy, iz + dz, t),
            })
            .collect()
    }

    #[test]
    fn burst_reconstruction_roundtrip() {
        let t = 1 << 16;
        let mut records = burst_records(10, 20, 30, t, 0);
        records.extend(burst_records(11, 21, 31, t, 8));
        let trace = Trace { records };
        let bs = bursts(&trace, AccessPhase::FeedForward, GridBranch::Density, 0);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0], synthetic_burst(10, 20, 30, t));
        assert_eq!(bs[1], synthetic_burst(11, 21, 31, t));
    }

    #[test]
    fn misaligned_records_are_skipped() {
        let t = 1 << 16;
        let mut records = burst_records(10, 20, 30, t, 0);
        records.remove(0); // drop corner 0 → no aligned burst until realigned
        let trace = Trace { records };
        let bs = bursts(&trace, AccessPhase::FeedForward, GridBranch::Density, 0);
        assert!(bs.is_empty());
    }

    #[test]
    fn intra_distances_are_small_for_even_x() {
        // Even x: the x+1 neighbour flips only bit 0 → distance ±1.
        let b = synthetic_burst(10, 20, 30, 1 << 18);
        for d in b.intra_group_distances() {
            assert_eq!(d.abs(), 1);
        }
    }

    #[test]
    fn inter_distances_dwarf_intra_distances() {
        // Aggregate over many bursts: remoteness vs locality (Fig. 8).
        let t = 1 << 18;
        let bs: Vec<CornerBurst> = (0..200)
            .map(|i| synthetic_burst(2 * i, 3 * i + 1, 5 * i + 2, t))
            .collect();
        let s = summarize(&bs);
        assert_eq!(s.bursts, 200);
        assert!(
            s.mean_inter > 1000.0 * s.mean_intra_abs.max(1.0),
            "inter {} should dwarf intra {}",
            s.mean_inter,
            s.mean_intra_abs
        );
    }

    #[test]
    fn fig9_property_over_90_percent_within_5() {
        let t = 1 << 18;
        let bs: Vec<CornerBurst> = (0..500)
            .map(|i| synthetic_burst(i % 61, (i * 7) % 53, (i * 13) % 47, t))
            .collect();
        let s = summarize(&bs);
        assert!(
            s.frac_intra_within_5 > 0.85,
            "fraction within [-5,5] was {}",
            s.frac_intra_within_5
        );
    }

    #[test]
    fn groups_pair_x_neighbours() {
        let b = synthetic_burst(4, 6, 8, 1 << 16);
        let g = b.groups();
        // Group 0 holds corners 0 (000) and 1 (100): same y/z, differing x.
        assert_eq!(g[0][0], b.addrs[0]);
        assert_eq!(g[0][1], b.addrs[1]);
    }

    #[test]
    fn empty_input_summary_is_zeroed() {
        let s = summarize(&[]);
        assert_eq!(s.bursts, 0);
        assert_eq!(s.mean_inter, 0.0);
    }

    #[test]
    fn all_intra_distances_count() {
        let bs: Vec<CornerBurst> = (0..10).map(|i| synthetic_burst(i, i, i, 1 << 16)).collect();
        assert_eq!(all_intra_distances(&bs).len(), 40);
    }
}
