//! Golden tests gating the batched SoA engine against the scalar
//! point-at-a-time reference implementation.
//!
//! The batched engine is constructed so that per-point arithmetic and
//! per-parameter accumulation order match the scalar path exactly; these
//! tests pin that contract (and the acceptance tolerance of 1e-5 per
//! pixel) across topologies, workload counters, rendering, and rayon
//! worker counts.

use instant3d_core::eval::render_model_view;
use instant3d_core::{GridTopology, TrainConfig, Trainer};
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    SceneLibrary::synthetic_scene(0, 16, 4, &mut rng)
}

fn config(topology: GridTopology) -> TrainConfig {
    let mut cfg = TrainConfig::fast_preview();
    cfg.topology = topology;
    cfg
}

/// Runs `steps` iterations on two same-seeded trainers — one batched, one
/// scalar — and asserts losses, workload counters and rendered pixels
/// agree.
fn check_equivalence(topology: GridTopology, steps: usize) {
    let ds = dataset(42);
    let mut rng_a = StdRng::seed_from_u64(7);
    let mut rng_b = StdRng::seed_from_u64(7);
    let mut seed_rng_a = StdRng::seed_from_u64(3);
    let mut seed_rng_b = StdRng::seed_from_u64(3);
    let mut batched = Trainer::new(config(topology), &ds, &mut seed_rng_a);
    let mut scalar = Trainer::new(config(topology), &ds, &mut seed_rng_b);

    for i in 0..steps {
        let sb = batched.step(&mut rng_a);
        let ss = scalar.step_scalar(&mut rng_b);
        assert_eq!(sb.rays, ss.rays, "{topology:?} step {i}: ray count");
        assert_eq!(sb.points, ss.points, "{topology:?} step {i}: point count");
        assert_eq!(
            sb.density_updated, ss.density_updated,
            "{topology:?} step {i}: density schedule"
        );
        assert_eq!(
            sb.color_updated, ss.color_updated,
            "{topology:?} step {i}: color schedule"
        );
        assert!(
            (sb.loss - ss.loss).abs() <= 1e-5 * (1.0 + ss.loss.abs()),
            "{topology:?} step {i}: loss {} vs {}",
            sb.loss,
            ss.loss
        );
    }

    // Identical WorkloadStats counters — the accounting the accelerator
    // simulator consumes must not depend on the execution engine.
    assert_eq!(
        batched.stats(),
        scalar.stats(),
        "{topology:?}: WorkloadStats"
    );

    // Per-pixel agreement of the trained models within 1e-5.
    let view = &ds.test_views[0].camera;
    let (rgb_b, depth_b) = render_model_view(batched.model(), view, 24, ds.background);
    let (rgb_s, depth_s) = render_model_view(scalar.model(), view, 24, ds.background);
    for (pb, ps) in rgb_b.pixels().iter().zip(rgb_s.pixels()) {
        for k in 0..3 {
            assert!(
                (pb[k] - ps[k]).abs() <= 1e-5,
                "{topology:?}: pixel {pb:?} vs {ps:?}"
            );
        }
    }
    for (db, ds_) in depth_b.depths().iter().zip(depth_s.depths()) {
        assert!(
            (db - ds_).abs() <= 1e-4,
            "{topology:?}: depth {db} vs {ds_}"
        );
    }
}

#[test]
fn batched_matches_scalar_decoupled() {
    check_equivalence(GridTopology::Decoupled, 4);
}

#[test]
fn batched_matches_scalar_coupled() {
    check_equivalence(GridTopology::Coupled, 4);
}

#[test]
fn batched_matches_scalar_through_occupancy_refresh() {
    // Long enough to cross an occupancy-grid refresh (every 16 iters in
    // fast_preview) and a skipped color iteration.
    let ds = dataset(11);
    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_b = StdRng::seed_from_u64(5);
    let mut seed_a = StdRng::seed_from_u64(9);
    let mut seed_b = StdRng::seed_from_u64(9);
    let mut batched = Trainer::new(TrainConfig::fast_preview(), &ds, &mut seed_a);
    let mut scalar = Trainer::new(TrainConfig::fast_preview(), &ds, &mut seed_b);
    for i in 0..20 {
        let sb = batched.step(&mut rng_a);
        let ss = scalar.step_scalar(&mut rng_b);
        assert_eq!(sb.points, ss.points, "step {i}: occupancy culling diverged");
        assert!(
            (sb.loss - ss.loss).abs() <= 1e-5 * (1.0 + ss.loss.abs()),
            "step {i}: loss {} vs {}",
            sb.loss,
            ss.loss
        );
    }
    assert_eq!(batched.occupancy_fraction(), scalar.occupancy_fraction());
    assert_eq!(batched.stats(), scalar.stats());
}

#[test]
fn train_report_is_thread_count_invariant() {
    // Same seed → same TrainReport, regardless of rayon worker count: all
    // parallel writes are disjoint and all reductions run in fixed order.
    let ds = dataset(23);
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut seed = StdRng::seed_from_u64(1);
            let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut seed);
            let mut rng = StdRng::seed_from_u64(2);
            trainer.train_with_eval(8, 4, Some(&ds), &mut rng)
        })
    };
    let single = run(1);
    let multi = run(8);
    assert_eq!(
        single, multi,
        "TrainReport must be bit-identical across thread counts"
    );
}

#[test]
fn batched_is_deterministic_across_runs() {
    let ds = dataset(31);
    let run = || {
        let mut seed = StdRng::seed_from_u64(4);
        let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut seed);
        let mut rng = StdRng::seed_from_u64(6);
        (0..6)
            .map(|_| trainer.step(&mut rng).loss)
            .collect::<Vec<f32>>()
    };
    assert_eq!(run(), run());
}
