//! One module per paper table/figure. Every module exposes
//! `run(quick: bool)`, printing the regenerated rows/series.

pub mod common;

pub mod ablation_depth;

pub mod fig04;
pub mod fig05;
pub mod fig07;
pub mod fig08_09;
pub mod fig10;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod sec21_vanilla;
pub mod sec51_grid_search;
pub mod sec6_related;
pub mod tab01;
pub mod tab02;
pub mod tab03;
pub mod tab04;
pub mod tab05;
