//! Progressive tile-streaming preview demo: train a scene while a
//! [`FrameScheduler`] keeps a budgeted preview of the test view flowing.
//!
//! Each round runs a few training steps (whose sparse optimizer updates
//! bump the hash grids' `level_versions`), then renders at most a handful
//! of tiles: the scheduler invalidates exactly the tiles whose rays
//! sampled the bumped grids, re-renders the stalest ones round-robin, and
//! keeps the rest cached. After training stops, the same budget converges
//! the frame to bits identical to the one-shot full renderer — the
//! progressive path is a schedule, not an approximation.
//!
//! ```text
//! cargo run --release --example tile_preview
//! ```

use instant3d::core::pool::WorkspacePool;
use instant3d::core::render::{render_view, FrameBudget, FrameScheduler, RenderOptions};
use instant3d::core::{TrainConfig, Trainer};
use instant3d::scenes::SceneLibrary;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES_PER_RAY: usize = 24;
const TILES_PER_ROUND: usize = 6;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let ds = SceneLibrary::synthetic_scene(0, 48, 6, &mut rng);
    let mut trainer = Trainer::new(TrainConfig::fast_preview(), &ds, &mut rng);

    let cam = ds.test_views[0].camera;
    let pool = WorkspacePool::new();
    let mut sched = FrameScheduler::new(
        cam,
        RenderOptions {
            samples_per_ray: SAMPLES_PER_RAY,
            background: ds.background,
            tile_size: 8,
        },
    );
    println!(
        "streaming a {}x{} preview as {} tiles, {} per round\n",
        cam.width,
        cam.height,
        sched.layout().tile_count(),
        TILES_PER_ROUND
    );

    // Interleave training and budgeted preview frames.
    for round in 0..10 {
        for _ in 0..8 {
            trainer.step(&mut rng);
        }
        let p = sched.render_frame(
            trainer.model(),
            trainer.occupancy_grid(),
            FrameBudget::tiles(TILES_PER_ROUND),
            &pool,
        );
        println!(
            "round {round:>2}: rendered {:>2} tiles, {:>2} cached, {:>2} still stale{}",
            p.tiles_rendered,
            p.tiles_cached,
            p.tiles_stale,
            if p.complete {
                " — frame complete"
            } else {
                ""
            },
        );
    }

    // Training stopped: the same budget now converges the frame.
    let mut frames = 0;
    loop {
        let p = sched.render_frame(
            trainer.model(),
            trainer.occupancy_grid(),
            FrameBudget::tiles(TILES_PER_ROUND),
            &pool,
        );
        frames += 1;
        if p.complete {
            break;
        }
    }
    println!("\nconverged {} rounds after training stopped", frames);

    // The progressive frame is bit-identical to a one-shot render of the
    // same model + occupancy grid.
    let (rgb, depth) = sched.frame();
    let (ref_rgb, ref_depth) = render_view(
        trainer.model(),
        &cam,
        SAMPLES_PER_RAY,
        ds.background,
        trainer.occupancy_grid(),
    );
    assert_eq!(
        rgb.pixels(),
        ref_rgb.pixels(),
        "progressive RGB must match one-shot bits"
    );
    assert_eq!(
        depth.depths(),
        ref_depth.depths(),
        "progressive depth must match"
    );
    println!("progressive frame bit-identical to the one-shot renderer");

    let t = sched.telemetry();
    println!(
        "telemetry: {} frames, {} tiles rendered, {} cache hits, {} invalidated, \
         {} workspaces minted / {} recycled",
        t.frames,
        t.tiles_rendered,
        t.tiles_cached,
        t.tiles_invalidated,
        t.workspaces_minted,
        t.workspaces_recycled
    );
}
