//! The tolerance harness gating every registered **lossy-tier** kernel
//! backend (`instant3d_nerf::kernels::registered_lossy()`) against the
//! scalar reference kernels.
//!
//! Lossy backends are exempt from the strict tier's bit-identity
//! contract, but not from correctness: every hot kernel (grid encode,
//! grid backward-scatter, MLP forward / backward, per-ray compositing)
//! must stay within the backend's *declared* [`Tolerance`] of the scalar
//! reference — the same fixtures the strict differential suite uses
//! (remainder-tail batch shapes, fp16 edge features, collision-heavy
//! hash tables), checked with `Tolerance::check_slices` instead of
//! `assert_eq!` on bits. A backend cannot register as lossy without
//! entering this harness, so "lossy" can never silently mean "wrong".
//!
//! Lossy ≠ nondeterministic: the suite also pins each lossy backend to
//! *itself*, bitwise — repeated runs and re-chunked batches must agree
//! exactly, because `f32::mul_add` is correctly rounded everywhere and
//! the fast kernels run the identical per-point fused sequence on the
//! lane path and the scalar tail.

use instant3d_nerf::activation::Activation;
use instant3d_nerf::grid::{HashGrid, HashGridConfig};
use instant3d_nerf::kernels::{self, BackendHandle, Tolerance};
use instant3d_nerf::math::Vec3;
use instant3d_nerf::mlp::{Mlp, MlpConfig};
use instant3d_nerf::render::{composite_slices, composite_slices_with};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch sizes that cover N=0, N=1, sub-lane, lane-exact, lane+tail and
/// multi-chunk (the parallel dispatch chunks at 256) shapes.
const BATCH_SIZES: [usize; 10] = [0, 1, 3, 7, 8, 9, 15, 64, 257, 300];

fn grid(cfg: HashGridConfig, seed: u64) -> HashGrid {
    let mut rng = StdRng::seed_from_u64(seed);
    HashGrid::new_random(cfg, &mut rng)
}

fn points(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
        .collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Default-shaped grid (dense + hashed levels, fp16 storage like training).
fn training_grid(seed: u64) -> HashGrid {
    grid(
        HashGridConfig {
            levels: 4,
            log2_table_size: 10,
            base_resolution: 4,
            max_resolution: 64,
            store_fp16: true,
            ..HashGridConfig::default()
        },
        seed,
    )
}

/// A grid whose hashed levels are tiny, so every 8-point lane aliases
/// table entries both across corners and across lanes.
fn colliding_grid(seed: u64) -> HashGrid {
    grid(
        HashGridConfig {
            levels: 3,
            log2_table_size: 4,
            base_resolution: 4,
            max_resolution: 32,
            store_fp16: false,
            init_scale: 0.3,
            ..HashGridConfig::default()
        },
        seed,
    )
}

/// The backend's declared tolerance — registering as lossy without one
/// is impossible by construction, so `expect` documents the invariant.
fn declared(backend: &BackendHandle) -> Tolerance {
    backend
        .tier()
        .tolerance()
        .expect("lossy backends carry a declared tolerance")
}

/// `Tolerance::check_slices` with panic-on-violation and a test-site
/// context string.
fn check(tol: &Tolerance, label: &str, lossy: &[f32], reference: &[f32]) {
    if let Err(msg) = tol.check_slices(label, lossy, reference) {
        panic!("{msg}");
    }
}

#[test]
fn lossy_tier_is_populated() {
    // The harness is only meaningful if the in-tree lossy backend is
    // actually registered and declares a tolerance.
    let lossy = kernels::registered_lossy();
    assert!(
        lossy.iter().any(|b| b.name() == "fast"),
        "the fast backend must register in the lossy tier"
    );
    for backend in &lossy {
        let tol = declared(backend);
        assert!(tol.max_rel_error > 0.0 && tol.max_psnr_drop_db > 0.0);
    }
}

#[test]
fn grid_encode_within_declared_tolerance_across_batch_shapes() {
    for (gname, g) in [
        ("training", training_grid(7)),
        ("colliding", colliding_grid(13)),
    ] {
        let w = g.output_dim();
        for &n in &BATCH_SIZES {
            let pts = points(n, 1000 + n as u64);
            let mut scalar = vec![0.0f32; n * w];
            g.encode_batch_level_major(&pts, &mut scalar);
            for backend in kernels::registered_lossy() {
                let tol = declared(&backend);
                let mut lossy = vec![0.0f32; n * w];
                g.par_encode_batch_with(&backend, &pts, &mut lossy);
                check(
                    &tol,
                    &format!("encode {backend} {gname} n={n}"),
                    &lossy,
                    &scalar,
                );
            }
        }
    }
}

#[test]
fn grid_scatter_within_declared_tolerance_across_batch_shapes() {
    for (gname, g) in [
        ("training", training_grid(11)),
        ("colliding", colliding_grid(17)),
    ] {
        let w = g.output_dim();
        for &n in &BATCH_SIZES {
            let pts = points(n, 2000 + n as u64);
            let d_out: Vec<f32> = (0..n * w).map(|i| 0.37 * ((i % 11) as f32 - 5.0)).collect();
            let mut scalar = g.zero_grads();
            g.par_backward_batch_with(&kernels::scalar(), &pts, &d_out, &mut scalar);
            for backend in kernels::registered_lossy() {
                let tol = declared(&backend);
                let mut lossy = g.zero_grads();
                g.par_backward_batch_with(&backend, &pts, &d_out, &mut lossy);
                assert_eq!(scalar.count, lossy.count, "{backend} {gname} n={n}");
                check(
                    &tol,
                    &format!("scatter {backend} {gname} n={n}"),
                    &lossy.values,
                    &scalar.values,
                );
            }
        }
    }
}

#[test]
fn mlp_forward_within_declared_tolerance_across_widths_and_batches() {
    for (hidden, out_dim) in [
        (vec![64usize], 64usize),
        (vec![16], 1),
        (vec![8, 8], 3),
        (vec![13], 5),
    ] {
        let mut rng = StdRng::seed_from_u64(7 + out_dim as u64);
        let mlp = Mlp::new(
            MlpConfig::new(6, &hidden, out_dim, Activation::Relu, Activation::Sigmoid),
            &mut rng,
        );
        for &n in &BATCH_SIZES {
            let inputs: Vec<f32> = (0..n * 6).map(|i| ((i % 17) as f32 - 8.0) * 0.13).collect();
            let mut ws_a = mlp.batch_workspace(n);
            let a = mlp
                .forward_batch_with(&kernels::scalar(), &inputs, &mut ws_a)
                .to_vec();
            for backend in kernels::registered_lossy() {
                let tol = declared(&backend);
                let mut ws_b = mlp.batch_workspace(n);
                let b = mlp
                    .forward_batch_with(&backend, &inputs, &mut ws_b)
                    .to_vec();
                check(
                    &tol,
                    &format!("mlp fwd {backend} out={out_dim} n={n}"),
                    &b,
                    &a,
                );
            }
        }
    }
}

#[test]
fn mlp_backward_within_declared_tolerance() {
    let mut rng = StdRng::seed_from_u64(23);
    let mlp = Mlp::new(
        MlpConfig::new(10, &[64], 3, Activation::Relu, Activation::None),
        &mut rng,
    );
    for &n in &BATCH_SIZES {
        let inputs: Vec<f32> = (0..n * 10)
            .map(|i| ((i % 13) as f32 - 6.0) * 0.21)
            .collect();
        let d_out: Vec<f32> = (0..n * 3).map(|i| ((i % 7) as f32 - 3.0) * 0.33).collect();
        let run = |backend: &BackendHandle| {
            let mut ws = mlp.batch_workspace(n);
            mlp.forward_batch_with(backend, &inputs, &mut ws);
            let mut grads = mlp.zero_grads();
            let mut d_in = vec![0.0f32; n * 10];
            mlp.backward_batch_with(backend, &d_out, &mut ws, &mut grads, &mut d_in);
            (grads, d_in)
        };
        let (ga, da) = run(&kernels::scalar());
        for backend in kernels::registered_lossy() {
            let tol = declared(&backend);
            let (gb, db) = run(&backend);
            assert_eq!(ga.count, gb.count);
            for (li, ((wa, ba), (wb, bb))) in ga.layers.iter().zip(&gb.layers).enumerate() {
                check(&tol, &format!("{backend} layer {li} dW n={n}"), wb, wa);
                check(&tol, &format!("{backend} layer {li} db n={n}"), bb, ba);
            }
            check(&tol, &format!("{backend} d_input n={n}"), &db, &da);
        }
    }
}

#[test]
fn composite_within_declared_tolerance_including_early_termination() {
    let mut rng = StdRng::seed_from_u64(5);
    for &n in &BATCH_SIZES {
        for &dense in &[0.5f32, 50.0, 5000.0] {
            let t: Vec<f32> = (0..n).map(|k| (k as f32 + 0.5) / n.max(1) as f32).collect();
            let dt = vec![1.0 / n.max(1) as f32; n];
            let sigma: Vec<f32> = (0..n).map(|_| rng.gen::<f32>() * dense).collect();
            let rgb: Vec<Vec3> = (0..n)
                .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
                .collect();
            let bg = Vec3::new(0.2, 0.4, 0.8);
            let mut cw_a = vec![0.0f32; n];
            let mut ct_a = vec![0.0f32; n];
            let mut co_a = vec![0.0f32; n];
            let (out_a, act_a) = composite_slices(
                &t,
                &dt,
                &sigma,
                &rgb,
                bg,
                Some((&mut cw_a, &mut ct_a, &mut co_a)),
            );
            for backend in kernels::registered_lossy() {
                let tol = declared(&backend);
                let mut cw_b = vec![0.0f32; n];
                let mut ct_b = vec![0.0f32; n];
                let mut co_b = vec![0.0f32; n];
                let (out_b, act_b) = composite_slices_with(
                    &backend,
                    &t,
                    &dt,
                    &sigma,
                    &rgb,
                    bg,
                    Some((&mut cw_b, &mut ct_b, &mut co_b)),
                );
                // Early termination compares the rounded transmittance
                // against a fixed threshold; these fixtures sit far from
                // the knife edge, so the active counts must agree.
                assert_eq!(act_a, act_b, "{backend} active n={n} dense={dense}");
                let ctx = format!("{backend} n={n} dense={dense}");
                let flat_a = [
                    out_a.color.x,
                    out_a.color.y,
                    out_a.color.z,
                    out_a.depth,
                    out_a.opacity,
                    out_a.transmittance,
                ];
                let flat_b = [
                    out_b.color.x,
                    out_b.color.y,
                    out_b.color.z,
                    out_b.depth,
                    out_b.opacity,
                    out_b.transmittance,
                ];
                check(&tol, &format!("composite out {ctx}"), &flat_b, &flat_a);
                check(&tol, &format!("weights cache {ctx}"), &cw_b, &cw_a);
                check(&tol, &format!("trans cache {ctx}"), &ct_b, &ct_a);
                check(&tol, &format!("alpha cache {ctx}"), &co_b, &co_a);
            }
        }
    }
}

#[test]
fn lossy_backends_are_deterministic_and_chunking_invariant_tolerance_tier() {
    // Lossy relative to scalar, but bit-exact relative to themselves:
    // repeated runs and arbitrary re-chunkings of the same batch must
    // produce identical bits, because every fast kernel runs the same
    // per-point fused sequence regardless of lane/tail placement.
    let g = training_grid(41);
    let w = g.output_dim();
    let n = 300;
    let pts = points(n, 9000);
    for backend in kernels::registered_lossy() {
        let mut whole = vec![0.0f32; n * w];
        backend.grid_encode_chunk(&g, &pts, &mut whole);
        // Rerun: identical bits.
        let mut again = vec![0.0f32; n * w];
        backend.grid_encode_chunk(&g, &pts, &mut again);
        assert_eq!(bits(&whole), bits(&again), "{backend} rerun");
        // Re-chunked (including splits off the lane boundary): identical
        // bits to the single-chunk encode.
        for split in [1usize, 7, 8, 137, 256, 299] {
            let mut chunked = vec![0.0f32; n * w];
            let (head_p, tail_p) = pts.split_at(split);
            let (head_o, tail_o) = chunked.split_at_mut(split * w);
            backend.grid_encode_chunk(&g, head_p, head_o);
            backend.grid_encode_chunk(&g, tail_p, tail_o);
            assert_eq!(
                bits(&whole),
                bits(&chunked),
                "{backend} chunk split at {split}"
            );
        }
        // Scatter determinism across runs.
        let d_out: Vec<f32> = (0..n * w)
            .map(|i| ((i % 23) as f32 - 11.0) * 0.17)
            .collect();
        let mut ga = g.zero_grads();
        let mut gb = g.zero_grads();
        g.par_backward_batch_with(&backend, &pts, &d_out, &mut ga);
        g.par_backward_batch_with(&backend, &pts, &d_out, &mut gb);
        assert_eq!(
            bits(&ga.values),
            bits(&gb.values),
            "{backend} scatter rerun"
        );
    }
}

#[test]
fn fast_backend_diverges_from_scalar_somewhere_tolerance_tier() {
    // Meta-check on the harness itself: the fast backend must actually
    // produce *different* bits from the scalar reference on a generic
    // workload — if it didn't, it would belong in the strict tier and
    // this suite would be vacuous (comparing identical numbers proves
    // nothing about the tolerance machinery).
    let g = colliding_grid(29);
    let w = g.output_dim();
    let n = 128;
    let pts = points(n, 7000);
    let mut scalar = vec![0.0f32; n * w];
    let mut fast = vec![0.0f32; n * w];
    g.encode_batch_level_major(&pts, &mut scalar);
    kernels::fast().grid_encode_chunk(&g, &pts, &mut fast);
    assert_ne!(
        bits(&scalar),
        bits(&fast),
        "fused encode should differ from the scalar reference in at least one bit"
    );
}
