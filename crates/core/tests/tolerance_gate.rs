//! The end-to-end quality gate for **lossy-tier** kernel backends: a
//! full training run on the lossy backend must land within the backend's
//! declared PSNR/SSIM tolerance of the same-seeded scalar golden run.
//!
//! The per-kernel bounds live in the nerf crate's
//! `tolerance_differential.rs`; this suite closes the loop the ISSUE's
//! acceptance criterion asks for — per-step rounding differences are
//! allowed to *accumulate* across optimizer updates, occupancy
//! refreshes and compositing, but the reconstruction the user sees must
//! stay within `max_psnr_drop_db` / `max_ssim_drop` of the strict
//! result. Every backend in `kernels::registered_lossy()` passes
//! through; a lossy backend cannot register without being gated here.

use instant3d_core::{kernels, BackendHandle, TrainConfig, Trainer};
use instant3d_scenes::{Dataset, SceneLibrary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    SceneLibrary::synthetic_scene(0, 16, 4, &mut rng)
}

/// Trains `steps` iterations on `backend` with fixed seeds and returns
/// the held-out evaluation (PSNR/SSIM are computed by shared
/// `nerf::metrics` / `nerf::ssim` code, not by the backend under test).
fn train_and_eval(
    ds: &Dataset,
    backend: &BackendHandle,
    steps: usize,
) -> instant3d_core::eval::EvalResult {
    let mut cfg = TrainConfig::fast_preview();
    cfg.kernel_backend = backend.clone();
    let mut seed_rng = StdRng::seed_from_u64(3);
    let mut trainer = Trainer::new(cfg, ds, &mut seed_rng);
    let mut step_rng = StdRng::seed_from_u64(7);
    for _ in 0..steps {
        trainer.step(&mut step_rng);
    }
    trainer.evaluate(ds)
}

#[test]
fn lossy_backends_hold_declared_psnr_and_ssim_tolerance_end_to_end() {
    let ds = dataset(42);
    let steps = 40;
    let golden = train_and_eval(&ds, &kernels::scalar(), steps);
    // The golden run must have learned something, or the gate compares
    // noise to noise.
    assert!(
        golden.rgb_psnr > 10.0,
        "scalar golden run failed to train (PSNR {:.2} dB)",
        golden.rgb_psnr
    );
    for backend in kernels::registered_lossy() {
        let tol = backend
            .tier()
            .tolerance()
            .expect("lossy backends carry a declared tolerance");
        let lossy = train_and_eval(&ds, &backend, steps);
        let psnr_drop = golden.rgb_psnr - lossy.rgb_psnr;
        let ssim_drop = golden.rgb_ssim - lossy.rgb_ssim;
        assert!(
            psnr_drop <= tol.max_psnr_drop_db,
            "{backend}: RGB PSNR dropped {psnr_drop:.4} dB vs the scalar golden \
             ({:.3} → {:.3}), declared bound {} dB",
            golden.rgb_psnr,
            lossy.rgb_psnr,
            tol.max_psnr_drop_db
        );
        assert!(
            ssim_drop <= tol.max_ssim_drop,
            "{backend}: RGB SSIM dropped {ssim_drop:.6} vs the scalar golden \
             ({:.5} → {:.5}), declared bound {}",
            golden.rgb_ssim,
            lossy.rgb_ssim,
            tol.max_ssim_drop
        );
    }
}

#[test]
fn lossy_training_is_deterministic_across_runs_tolerance_tier() {
    // The lossy tier relaxes equality to the *scalar reference*, never
    // run-to-run reproducibility: two same-seeded training runs on a
    // lossy backend must produce bit-identical losses.
    let ds = dataset(18);
    for backend in kernels::registered_lossy() {
        let run = || {
            let mut cfg = TrainConfig::fast_preview();
            cfg.kernel_backend = backend.clone();
            let mut seed_rng = StdRng::seed_from_u64(11);
            let mut trainer = Trainer::new(cfg, &ds, &mut seed_rng);
            let mut step_rng = StdRng::seed_from_u64(13);
            (0..6)
                .map(|_| trainer.step(&mut step_rng).loss.to_bits())
                .collect::<Vec<u32>>()
        };
        assert_eq!(run(), run(), "{backend} same-seed training runs");
    }
}

#[test]
fn workload_stats_report_the_backend_tier() {
    // Config/stats plumbing: perf records must say which contract the
    // numbers were produced under.
    let ds = dataset(5);
    for (backend, want) in [(kernels::simd(), "strict"), (kernels::fast(), "lossy")] {
        let mut cfg = TrainConfig::fast_preview();
        cfg.kernel_backend = backend.clone();
        let mut seed_rng = StdRng::seed_from_u64(1);
        let mut trainer = Trainer::new(cfg, &ds, &mut seed_rng);
        let mut step_rng = StdRng::seed_from_u64(2);
        trainer.step(&mut step_rng);
        let stats = trainer.stats();
        assert_eq!(stats.backend, backend.name());
        assert_eq!(stats.tier, want, "{backend}");
    }
}
