//! The NeRF model: hash grid(s) plus the two small MLP heads, with full
//! hand-derived backpropagation (Steps ③-① and ③-② of the pipeline).
//!
//! Two topologies share one code path:
//!
//! * **Coupled** (Instant-NGP): a single grid is encoded once per point and
//!   its embedding feeds both the density and color heads.
//! * **Decoupled** (Instant-3D, Fig. 6): a density grid feeds the density
//!   head and a separate (typically smaller) color grid feeds the color
//!   head.
//!
//! The backward pass mirrors Instant-NGP's CUDA implementation: grid
//! *feature* values are not re-read during back-propagation (trilinear
//! scatter weights depend only on the sample position), so the BP access
//! stream seen by observers consists of gradient-scatter writes — the
//! stream the paper's BUM unit merges.

use crate::config::{GridTopology, TrainConfig};
use instant3d_nerf::activation::Activation;
use instant3d_nerf::field::RadianceField;
use instant3d_nerf::grid::{
    AccessPhase, GridAccessObserver, GridGradients, HashGrid, NullObserver,
};
use instant3d_nerf::kernels::BackendHandle;
use instant3d_nerf::math::{Aabb, Vec3};
use instant3d_nerf::mlp::{Mlp, MlpConfig, MlpGradients, MlpWorkspace};
use instant3d_nerf::sh::{sh_basis_size, sh_encode_into};
use rand::Rng;

pub use instant3d_nerf::grid::{BranchObserver, GridBranch, NullBranchObserver};

/// Adapter: forwards grid accesses to a [`BranchObserver`] with a fixed tag.
pub(crate) struct Tagged<'a, O: BranchObserver + ?Sized> {
    pub(crate) branch: GridBranch,
    pub(crate) inner: &'a mut O,
}

impl<O: BranchObserver + ?Sized> GridAccessObserver for Tagged<'_, O> {
    #[inline]
    fn on_access(&mut self, phase: AccessPhase, level: u32, corner: u8, addr: u32) {
        self.inner
            .on_branch_access(self.branch, phase, level, corner, addr);
    }
}

/// Scratch buffers for per-point forward/backward evaluation.
#[derive(Debug, Clone)]
pub struct ModelWorkspace {
    /// Density-grid embedding of the current point.
    pub emb_d: Vec<f32>,
    /// Color-grid embedding (aliases `emb_d` content when coupled).
    pub emb_c: Vec<f32>,
    color_in: Vec<f32>,
    ws_sigma: MlpWorkspace,
    ws_color: MlpWorkspace,
    d_emb_d: Vec<f32>,
    d_color_in: Vec<f32>,
}

/// Gradient buffers for every trainable tensor in the model.
#[derive(Debug, Clone)]
pub struct ModelGradients {
    /// Density (or shared) grid gradients.
    pub density_grid: GridGradients,
    /// Color grid gradients (decoupled only).
    pub color_grid: Option<GridGradients>,
    /// Density head gradients.
    pub sigma_mlp: MlpGradients,
    /// Color head gradients.
    pub color_mlp: MlpGradients,
}

impl ModelGradients {
    /// Zeroes every buffer.
    pub fn zero(&mut self) {
        self.density_grid.zero();
        if let Some(g) = &mut self.color_grid {
            g.zero();
        }
        self.sigma_mlp.zero();
        self.color_mlp.zero();
    }

    /// Scales every gradient by `s` (batch-mean reduction).
    pub fn scale(&mut self, s: f32) {
        self.density_grid.scale(s);
        if let Some(g) = &mut self.color_grid {
            g.scale(s);
        }
        self.sigma_mlp.scale(s);
        self.color_mlp.scale(s);
    }
}

/// The trainable radiance-field model.
#[derive(Debug, Clone)]
pub struct NerfModel {
    topology: GridTopology,
    aabb: Aabb,
    density_grid: HashGrid,
    color_grid: Option<HashGrid>,
    sigma_mlp: Mlp,
    color_mlp: Mlp,
    sh_degree: usize,
    kernel_backend: BackendHandle,
}

impl NerfModel {
    /// Builds a model from a training config for a scene with the given
    /// bounding volume.
    ///
    /// # Panics
    ///
    /// Panics if the config fails [`TrainConfig::validate`].
    pub fn new<R: Rng + ?Sized>(cfg: &TrainConfig, aabb: Aabb, rng: &mut R) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid TrainConfig: {e}");
        }
        let density_grid = HashGrid::new_random(cfg.density_grid_config(), rng);
        let (color_grid, color_emb_dim) = match cfg.topology {
            GridTopology::Coupled => (None, density_grid.output_dim()),
            GridTopology::Decoupled => {
                let g = HashGrid::new_random(cfg.color_grid_config(), rng);
                let dim = g.output_dim();
                (Some(g), dim)
            }
        };
        let hidden: Vec<usize> = vec![cfg.mlp_hidden_dim; cfg.mlp_hidden_layers];
        let sigma_mlp = Mlp::new(
            MlpConfig::new(
                density_grid.output_dim(),
                &hidden,
                1,
                Activation::Relu,
                Activation::TruncExp,
            ),
            rng,
        );
        let color_mlp = Mlp::new(
            MlpConfig::new(
                color_emb_dim + sh_basis_size(cfg.sh_degree),
                &hidden,
                3,
                Activation::Relu,
                Activation::Sigmoid,
            ),
            rng,
        );
        NerfModel {
            topology: cfg.topology,
            aabb,
            density_grid,
            color_grid,
            sigma_mlp,
            color_mlp,
            sh_degree: cfg.sh_degree,
            kernel_backend: cfg.kernel_backend.clone(),
        }
    }

    /// The kernel backend the batched engine runs for this model — the
    /// handle threaded from [`TrainConfig::kernel_backend`] into every
    /// [`crate::batch::BatchWorkspace`].
    pub fn kernel_backend(&self) -> &BackendHandle {
        &self.kernel_backend
    }

    /// Coupled or decoupled.
    pub fn topology(&self) -> GridTopology {
        self.topology
    }

    /// The scene volume the grids cover.
    pub fn aabb(&self) -> Aabb {
        self.aabb
    }

    /// The density (or shared) grid.
    pub fn density_grid(&self) -> &HashGrid {
        &self.density_grid
    }

    /// The color grid, when decoupled.
    pub fn color_grid(&self) -> Option<&HashGrid> {
        self.color_grid.as_ref()
    }

    /// Mutable access for the optimizer.
    pub fn density_grid_mut(&mut self) -> &mut HashGrid {
        &mut self.density_grid
    }

    /// Mutable access for the optimizer.
    pub fn color_grid_mut(&mut self) -> Option<&mut HashGrid> {
        self.color_grid.as_mut()
    }

    /// The density MLP head.
    pub fn sigma_mlp(&self) -> &Mlp {
        &self.sigma_mlp
    }

    /// The color MLP head.
    pub fn color_mlp(&self) -> &Mlp {
        &self.color_mlp
    }

    /// Mutable density head (optimizer).
    pub fn sigma_mlp_mut(&mut self) -> &mut Mlp {
        &mut self.sigma_mlp
    }

    /// Mutable color head (optimizer).
    pub fn color_mlp_mut(&mut self) -> &mut Mlp {
        &mut self.color_mlp
    }

    /// SH degree of the direction encoding.
    pub fn sh_degree(&self) -> usize {
        self.sh_degree
    }

    /// Width of the direction encoding.
    pub fn sh_dim(&self) -> usize {
        sh_basis_size(self.sh_degree)
    }

    /// Allocates a workspace for this model.
    pub fn workspace(&self) -> ModelWorkspace {
        let emb_c_dim = self.color_mlp.in_dim() - self.sh_dim();
        ModelWorkspace {
            emb_d: vec![0.0; self.density_grid.output_dim()],
            emb_c: vec![0.0; emb_c_dim],
            color_in: vec![0.0; self.color_mlp.in_dim()],
            ws_sigma: self.sigma_mlp.workspace(),
            ws_color: self.color_mlp.workspace(),
            d_emb_d: vec![0.0; self.density_grid.output_dim()],
            d_color_in: vec![0.0; self.color_mlp.in_dim()],
        }
    }

    /// Allocates gradient buffers shaped like this model.
    pub fn zero_grads(&self) -> ModelGradients {
        ModelGradients {
            density_grid: self.density_grid.zero_grads(),
            color_grid: self.color_grid.as_ref().map(HashGrid::zero_grads),
            sigma_mlp: self.sigma_mlp.zero_grads(),
            color_mlp: self.color_mlp.zero_grads(),
        }
    }

    /// Encodes the direction `dir` into its SH basis (cached once per ray
    /// by the trainer).
    pub fn encode_dir(&self, dir: Vec3, out: &mut [f32]) {
        sh_encode_into(dir, self.sh_degree, out);
    }

    /// Step ③-① — reads the grid(s) for a world-space point, filling
    /// `ws.emb_d` / `ws.emb_c`. Observers see the feed-forward reads.
    pub fn encode_point<O: BranchObserver + ?Sized>(
        &self,
        pos: Vec3,
        ws: &mut ModelWorkspace,
        obs: &mut O,
    ) {
        let unit = self.aabb.to_unit(pos);
        self.density_grid.encode_into(
            unit,
            &mut ws.emb_d,
            &mut Tagged {
                branch: GridBranch::Density,
                inner: obs,
            },
        );
        match (&self.color_grid, self.topology) {
            (Some(cg), GridTopology::Decoupled) => {
                cg.encode_into(
                    unit,
                    &mut ws.emb_c,
                    &mut Tagged {
                        branch: GridBranch::Color,
                        inner: obs,
                    },
                );
            }
            _ => ws.emb_c.copy_from_slice(&ws.emb_d),
        }
    }

    /// Step ③-② — evaluates the MLP heads from the embeddings currently in
    /// `ws` plus the SH-encoded direction. Returns `(σ, rgb)`.
    ///
    /// # Panics
    ///
    /// Panics if `sh.len() != self.sh_dim()`.
    pub fn heads_forward(&self, sh: &[f32], ws: &mut ModelWorkspace) -> (f32, Vec3) {
        assert_eq!(sh.len(), self.sh_dim(), "sh width mismatch");
        let sigma = self.sigma_mlp.forward(&ws.emb_d, &mut ws.ws_sigma)[0];
        let emb_len = ws.emb_c.len();
        ws.color_in[..emb_len].copy_from_slice(&ws.emb_c);
        ws.color_in[emb_len..].copy_from_slice(sh);
        let rgb_slice = self.color_mlp.forward(&ws.color_in, &mut ws.ws_color);
        let rgb = Vec3::new(rgb_slice[0], rgb_slice[1], rgb_slice[2]);
        (sigma, rgb)
    }

    /// Full forward query for training: encode + heads.
    pub fn query_train<O: BranchObserver + ?Sized>(
        &self,
        pos: Vec3,
        sh: &[f32],
        ws: &mut ModelWorkspace,
        obs: &mut O,
    ) -> (f32, Vec3) {
        self.encode_point(pos, ws, obs);
        self.heads_forward(sh, ws)
    }

    /// Backward pass for one point, starting from cached embeddings (saved
    /// by the trainer during the forward pass — no grid re-reads, exactly
    /// like Instant-NGP's CUDA backward).
    ///
    /// Re-runs the cheap MLP forwards to rebuild activations, then
    /// backpropagates `d_sigma`/`d_rgb` into all parameter gradients. Grid
    /// scatter writes are reported to `obs` as [`AccessPhase::BackProp`].
    ///
    /// When `update_color_grid` is false (a skipped color-grid iteration,
    /// §3.3), the color-grid scatter is skipped entirely; the color MLP
    /// still receives gradients.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_point<O: BranchObserver + ?Sized>(
        &self,
        pos: Vec3,
        emb_d: &[f32],
        emb_c: &[f32],
        sh: &[f32],
        d_sigma: f32,
        d_rgb: Vec3,
        ws: &mut ModelWorkspace,
        grads: &mut ModelGradients,
        obs: &mut O,
        update_color_grid: bool,
    ) {
        self.heads_backward(emb_d, emb_c, sh, d_sigma, d_rgb, ws, grads);
        self.scatter_grids(pos, ws, grads, obs, update_color_grid);
    }

    /// Step ③-② backward: rebuilds the head activations from cached
    /// embeddings and backpropagates `d_sigma`/`d_rgb` into the MLP
    /// gradients, leaving the embedding gradients in the workspace for
    /// [`NerfModel::scatter_grids`].
    #[allow(clippy::too_many_arguments)]
    pub fn heads_backward(
        &self,
        emb_d: &[f32],
        emb_c: &[f32],
        sh: &[f32],
        d_sigma: f32,
        d_rgb: Vec3,
        ws: &mut ModelWorkspace,
        grads: &mut ModelGradients,
    ) {
        // Rebuild MLP activations from the cached embeddings.
        ws.emb_d.copy_from_slice(emb_d);
        ws.emb_c.copy_from_slice(emb_c);
        let _ = self.heads_forward(sh, ws);

        // Color head backward → gradient w.r.t. [emb_c ++ sh].
        let d_out_color = [d_rgb.x, d_rgb.y, d_rgb.z];
        self.color_mlp.backward(
            &d_out_color,
            &mut ws.ws_color,
            &mut grads.color_mlp,
            &mut ws.d_color_in,
        );

        // Density head backward → gradient w.r.t. emb_d.
        self.sigma_mlp.backward(
            &[d_sigma],
            &mut ws.ws_sigma,
            &mut grads.sigma_mlp,
            &mut ws.d_emb_d,
        );
    }

    /// Step ③-① backward: scatters the embedding gradients currently in
    /// `ws` (left by [`NerfModel::heads_backward`]) into the grid gradient
    /// buffers. Observers see the scatter writes.
    pub fn scatter_grids<O: BranchObserver + ?Sized>(
        &self,
        pos: Vec3,
        ws: &mut ModelWorkspace,
        grads: &mut ModelGradients,
        obs: &mut O,
        update_color_grid: bool,
    ) {
        let unit = self.aabb.to_unit(pos);
        let emb_len = ws.emb_c.len();
        match self.topology {
            GridTopology::Coupled => {
                // Shared grid: sum both heads' embedding gradients.
                for i in 0..ws.d_emb_d.len() {
                    ws.d_emb_d[i] += ws.d_color_in[i];
                }
                self.density_grid.backward_into(
                    unit,
                    &ws.d_emb_d,
                    &mut grads.density_grid,
                    &mut Tagged {
                        branch: GridBranch::Density,
                        inner: obs,
                    },
                );
            }
            GridTopology::Decoupled => {
                self.density_grid.backward_into(
                    unit,
                    &ws.d_emb_d,
                    &mut grads.density_grid,
                    &mut Tagged {
                        branch: GridBranch::Density,
                        inner: obs,
                    },
                );
                if update_color_grid {
                    if let (Some(cg), Some(cgrads)) = (&self.color_grid, &mut grads.color_grid) {
                        cg.backward_into(
                            unit,
                            &ws.d_color_in[..emb_len],
                            cgrads,
                            &mut Tagged {
                                branch: GridBranch::Color,
                                inner: obs,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Density-only query (occupancy-grid refresh).
    pub fn density_at(&self, pos: Vec3, ws: &mut ModelWorkspace) -> f32 {
        let unit = self.aabb.to_unit(pos);
        self.density_grid
            .encode_into(unit, &mut ws.emb_d, &mut NullObserver);
        self.sigma_mlp.forward(&ws.emb_d, &mut ws.ws_sigma)[0]
    }

    /// Grid table reads per point during feed-forward (density + color).
    pub fn grid_reads_per_point(&self) -> usize {
        let d = self.density_grid.reads_per_point();
        match (&self.color_grid, self.topology) {
            (Some(cg), GridTopology::Decoupled) => d + cg.reads_per_point(),
            _ => d,
        }
    }

    /// MLP multiply-accumulates per point (both heads, forward only).
    pub fn mlp_flops_per_point(&self) -> usize {
        self.sigma_mlp.flops() + self.color_mlp.flops()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.density_grid.num_params()
            + self.color_grid.as_ref().map_or(0, HashGrid::num_params)
            + self.sigma_mlp.num_params()
            + self.color_mlp.num_params()
    }
}

impl RadianceField for NerfModel {
    fn aabb(&self) -> Aabb {
        self.aabb
    }

    /// Convenience query allocating a fresh workspace per call. Hot paths
    /// (training, evaluation rendering) use the workspace APIs instead.
    fn query(&self, pos: Vec3, dir: Vec3) -> (f32, Vec3) {
        let mut ws = self.workspace();
        let mut sh = vec![0.0; self.sh_dim()];
        self.encode_dir(dir, &mut sh);
        self.query_train(pos, &sh, &mut ws, &mut NullBranchObserver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg(topology: GridTopology) -> TrainConfig {
        let mut cfg = TrainConfig::fast_preview();
        cfg.topology = topology;
        cfg
    }

    fn model(topology: GridTopology) -> NerfModel {
        let mut rng = StdRng::seed_from_u64(17);
        NerfModel::new(&tiny_cfg(topology), Aabb::UNIT, &mut rng)
    }

    #[test]
    fn coupled_model_has_no_color_grid() {
        let m = model(GridTopology::Coupled);
        assert!(m.color_grid().is_none());
        let d = m.density_grid().reads_per_point();
        assert_eq!(m.grid_reads_per_point(), d);
    }

    #[test]
    fn decoupled_model_reads_both_grids() {
        let m = model(GridTopology::Decoupled);
        assert!(m.color_grid().is_some());
        let d = m.density_grid().reads_per_point();
        let c = m.color_grid().unwrap().reads_per_point();
        assert_eq!(m.grid_reads_per_point(), d + c);
    }

    #[test]
    fn forward_outputs_are_sane() {
        for topo in [GridTopology::Coupled, GridTopology::Decoupled] {
            let m = model(topo);
            let mut ws = m.workspace();
            let mut sh = vec![0.0; m.sh_dim()];
            m.encode_dir(Vec3::new(0.0, 0.0, 1.0), &mut sh);
            let (sigma, rgb) =
                m.query_train(Vec3::splat(0.4), &sh, &mut ws, &mut NullBranchObserver);
            assert!(sigma >= 0.0, "TruncExp density must be non-negative");
            assert!(sigma.is_finite());
            for k in 0..3 {
                assert!((0.0..=1.0).contains(&rgb[k]), "sigmoid rgb in range");
            }
        }
    }

    #[test]
    fn radiance_field_impl_matches_workspace_path() {
        let m = model(GridTopology::Decoupled);
        let pos = Vec3::new(0.3, 0.6, 0.2);
        let dir = Vec3::new(0.6, 0.64, 0.48).normalized();
        let (s1, c1) = m.query(pos, dir);
        let mut ws = m.workspace();
        let mut sh = vec![0.0; m.sh_dim()];
        m.encode_dir(dir, &mut sh);
        let (s2, c2) = m.query_train(pos, &sh, &mut ws, &mut NullBranchObserver);
        assert_eq!(s1, s2);
        assert_eq!(c1, c2);
    }

    /// End-to-end gradient check: L = a·σ + b·rgb for one point.
    fn check_model_gradients(topo: GridTopology, update_color: bool) {
        let mut m = model(topo);
        let pos = Vec3::new(0.37, 0.21, 0.66);
        let dir = Vec3::new(0.0, 0.6, 0.8);
        let mut sh = vec![0.0; m.sh_dim()];
        m.encode_dir(dir, &mut sh);
        let d_sigma = 0.3f32;
        let d_rgb = Vec3::new(1.0, -0.5, 0.25);

        let mut ws = m.workspace();
        let mut grads = m.zero_grads();
        let (_, _) = m.query_train(pos, &sh, &mut ws, &mut NullBranchObserver);
        let emb_d = ws.emb_d.clone();
        let emb_c = ws.emb_c.clone();
        m.backward_point(
            pos,
            &emb_d,
            &emb_c,
            &sh,
            d_sigma,
            d_rgb,
            &mut ws,
            &mut grads,
            &mut NullBranchObserver,
            update_color,
        );

        let loss = |m: &NerfModel| -> f32 {
            let mut ws = m.workspace();
            let mut sh2 = vec![0.0; m.sh_dim()];
            m.encode_dir(dir, &mut sh2);
            let (s, c) = m.query_train(pos, &sh2, &mut ws, &mut NullBranchObserver);
            d_sigma * s + d_rgb.dot(c)
        };

        // Finite-difference check on a few touched density-grid params.
        // eps is small to avoid crossing ReLU kinks inside the heads.
        let eps = 1e-4;
        let touched: Vec<usize> = grads
            .density_grid
            .values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() > 1e-7)
            .map(|(i, _)| i)
            .take(6)
            .collect();
        assert!(!touched.is_empty(), "density grid got no gradient");
        for i in touched {
            let orig = m.density_grid().params()[i];
            m.density_grid_mut().params_mut()[i] = orig + eps;
            let lp = loss(&m);
            m.density_grid_mut().params_mut()[i] = orig - eps;
            let lm = loss(&m);
            m.density_grid_mut().params_mut()[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            let an = grads.density_grid.values[i];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + an.abs()),
                "{topo:?} density param {i}: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn coupled_gradients_match_finite_difference() {
        check_model_gradients(GridTopology::Coupled, true);
    }

    #[test]
    fn decoupled_gradients_match_finite_difference() {
        check_model_gradients(GridTopology::Decoupled, true);
    }

    #[test]
    fn skipped_color_update_leaves_color_grid_grads_zero() {
        let m = model(GridTopology::Decoupled);
        let pos = Vec3::splat(0.5);
        let mut sh = vec![0.0; m.sh_dim()];
        m.encode_dir(Vec3::Z, &mut sh);
        let mut ws = m.workspace();
        let mut grads = m.zero_grads();
        m.query_train(pos, &sh, &mut ws, &mut NullBranchObserver);
        let emb_d = ws.emb_d.clone();
        let emb_c = ws.emb_c.clone();
        m.backward_point(
            pos,
            &emb_d,
            &emb_c,
            &sh,
            1.0,
            Vec3::ONE,
            &mut ws,
            &mut grads,
            &mut NullBranchObserver,
            false, // skipped color iteration
        );
        let cg = grads.color_grid.as_ref().unwrap();
        assert!(
            cg.values.iter().all(|&v| v == 0.0),
            "color grid must be untouched"
        );
        // But the color MLP still learned.
        let any_mlp_grad = grads
            .color_mlp
            .layers
            .iter()
            .any(|(w, _)| w.iter().any(|&v| v != 0.0));
        assert!(any_mlp_grad, "color MLP should still receive gradients");
    }

    #[test]
    fn observer_sees_branch_tagged_accesses() {
        #[derive(Default)]
        struct Counts {
            ff_d: usize,
            ff_c: usize,
            bp_d: usize,
            bp_c: usize,
        }
        impl BranchObserver for Counts {
            fn on_branch_access(
                &mut self,
                branch: GridBranch,
                phase: AccessPhase,
                _: u32,
                _: u8,
                _: u32,
            ) {
                match (branch, phase) {
                    (GridBranch::Density, AccessPhase::FeedForward) => self.ff_d += 1,
                    (GridBranch::Color, AccessPhase::FeedForward) => self.ff_c += 1,
                    (GridBranch::Density, AccessPhase::BackProp) => self.bp_d += 1,
                    (GridBranch::Color, AccessPhase::BackProp) => self.bp_c += 1,
                }
            }
        }
        let m = model(GridTopology::Decoupled);
        let mut obs = Counts::default();
        let mut ws = m.workspace();
        let mut sh = vec![0.0; m.sh_dim()];
        m.encode_dir(Vec3::Z, &mut sh);
        let pos = Vec3::splat(0.5);
        m.query_train(pos, &sh, &mut ws, &mut obs);
        let rd = m.density_grid().reads_per_point();
        let rc = m.color_grid().unwrap().reads_per_point();
        assert_eq!(obs.ff_d, rd);
        assert_eq!(obs.ff_c, rc);
        let emb_d = ws.emb_d.clone();
        let emb_c = ws.emb_c.clone();
        let mut grads = m.zero_grads();
        m.backward_point(
            pos,
            &emb_d,
            &emb_c,
            &sh,
            1.0,
            Vec3::ONE,
            &mut ws,
            &mut grads,
            &mut obs,
            true,
        );
        assert_eq!(obs.bp_d, rd, "BP writes mirror the corner count");
        assert_eq!(obs.bp_c, rc);
    }

    #[test]
    fn param_count_is_positive_and_topology_dependent() {
        let c = model(GridTopology::Coupled).num_params();
        let d = model(GridTopology::Decoupled).num_params();
        assert!(c > 0);
        assert!(d > c, "decoupled adds a color grid");
    }
}
