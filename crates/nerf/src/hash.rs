//! The spatial hash of the paper's Eq. 3.
//!
//! `h(x, y, z) = (π₁·x ⊕ π₂·y ⊕ π₃·z) mod T` with
//! `π₁ = 1`, `π₂ = 2 654 435 761`, `π₃ = 805 459 861`
//! (Teschner et al. optimized spatial hashing, as used by Instant-NGP).
//!
//! The identity multiplier on the x axis is what produces the *locality*
//! the Instant-3D accelerator exploits: two vertices that differ only in x
//! map to nearby table addresses (Fig. 9), while differences in y or z are
//! amplified into distant addresses (Fig. 8).

/// Multiplier for the x coordinate (identity — preserves x locality).
pub const PI_1: u32 = 1;
/// Multiplier for the y coordinate.
pub const PI_2: u32 = 2_654_435_761;
/// Multiplier for the z coordinate.
pub const PI_3: u32 = 805_459_861;

/// Computes the hash-table index of grid vertex `(x, y, z)` in a table of
/// `table_size` entries (Eq. 3 of the paper).
///
/// # Panics
///
/// Panics if `table_size` is zero.
///
/// # Example
///
/// ```
/// use instant3d_nerf::hash::spatial_hash;
/// let h = spatial_hash(3, 5, 7, 1 << 14);
/// assert!(h < (1 << 14));
/// // π₁ = 1 keeps x-adjacent vertices close in the table:
/// let h1 = spatial_hash(4, 5, 7, 1 << 14);
/// assert!((h as i64 - h1 as i64).abs() <= 7);
/// ```
#[inline]
pub fn spatial_hash(x: u32, y: u32, z: u32, table_size: u32) -> u32 {
    assert!(table_size > 0, "hash table size must be non-zero");
    (x.wrapping_mul(PI_1) ^ y.wrapping_mul(PI_2) ^ z.wrapping_mul(PI_3)) % table_size
}

/// Dense (collision-free) index for levels whose full grid fits the table:
/// plain row-major `x + y·n + z·n²`, as Instant-NGP uses for coarse levels.
#[inline]
pub fn dense_index(x: u32, y: u32, z: u32, resolution: u32) -> u32 {
    let n = resolution + 1; // vertices per axis = resolution + 1
    x + y * n + z * n * n
}

/// How a level maps vertex coordinates to table entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressMode {
    /// Collision-free row-major addressing (coarse levels).
    Dense,
    /// The Eq. 3 spatial hash (fine levels).
    Hashed,
}

/// Computes a vertex address under the given mode.
#[inline]
pub fn vertex_address(
    mode: AddressMode,
    x: u32,
    y: u32,
    z: u32,
    resolution: u32,
    table_size: u32,
) -> u32 {
    match mode {
        AddressMode::Dense => dense_index(x, y, z, resolution),
        AddressMode::Hashed => spatial_hash(x, y, z, table_size),
    }
}

/// The eight corner offsets of a grid cell, ordered `000, 001, ..., 111`
/// where the bits are `(dx, dy, dz)` — the order the paper uses when it
/// clusters corners into four groups of two x-adjacent vertices.
pub const CORNER_OFFSETS: [(u32, u32, u32); 8] = [
    (0, 0, 0),
    (1, 0, 0),
    (0, 1, 0),
    (1, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (0, 1, 1),
    (1, 1, 1),
];

/// Index of the corner-*group* (shared y and z, differing x) a corner
/// belongs to. Fig. 8 clusters the 8 corners into these 4 groups.
#[inline]
pub fn corner_group(corner: usize) -> usize {
    debug_assert!(corner < 8);
    corner >> 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_in_range() {
        for t in [1u32, 2, 16, 1 << 10, 1 << 19] {
            for s in 0..200u32 {
                let h = spatial_hash(s, s.wrapping_mul(7), s.wrapping_mul(13), t);
                assert!(h < t);
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_table_size_panics() {
        let _ = spatial_hash(1, 2, 3, 0);
    }

    #[test]
    fn hash_matches_eq3_definition() {
        let (x, y, z, t) = (12u32, 34u32, 56u32, 1 << 16);
        let expect = (x ^ y.wrapping_mul(PI_2) ^ z.wrapping_mul(PI_3)) % t;
        assert_eq!(spatial_hash(x, y, z, t), expect);
    }

    #[test]
    fn x_locality_small_distance() {
        // Case 2 of §4.2: differences on the x axis are not amplified.
        // For even x the XOR flip is exactly the low bit → distance 1.
        let t = 1 << 18;
        for y in 0..32 {
            for z in 0..32 {
                let a = spatial_hash(10, y, z, t) as i64;
                let b = spatial_hash(11, y, z, t) as i64;
                assert_eq!((a - b).abs(), 1, "even-x neighbours must differ by 1");
            }
        }
    }

    #[test]
    fn x_locality_statistics() {
        // >85% of x-adjacent pairs across all parities land within [-5, 5]
        // (paper Fig. 9 reports >90% including its sampling distribution).
        let t = 1 << 18;
        let mut within = 0u32;
        let mut total = 0u32;
        for x in 0..64u32 {
            for y in 0..16 {
                for z in 0..16 {
                    let a = spatial_hash(x, y, z, t) as i64;
                    let b = spatial_hash(x + 1, y, z, t) as i64;
                    if (a - b).abs() <= 5 {
                        within += 1;
                    }
                    total += 1;
                }
            }
        }
        let frac = within as f64 / total as f64;
        assert!(frac > 0.85, "x-locality fraction {frac} too low");
    }

    #[test]
    fn yz_remoteness_large_distance() {
        // Case 1 of §4.2: y/z differences are amplified by π₂/π₃.
        let t = 1 << 18;
        let mut sum = 0f64;
        let mut n = 0u32;
        for x in 0..16u32 {
            for y in 0..16 {
                for z in 0..16 {
                    let a = spatial_hash(x, y, z, t) as i64;
                    let b = spatial_hash(x, y + 1, z, t) as i64;
                    sum += (a - b).abs() as f64;
                    n += 1;
                }
            }
        }
        let avg = sum / n as f64;
        assert!(
            avg > 10_000.0,
            "inter-group avg distance {avg} should be large"
        );
    }

    #[test]
    fn dense_index_is_bijective_on_small_grid() {
        let res = 7u32;
        let n = res + 1;
        let mut seen = vec![false; (n * n * n) as usize];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let i = dense_index(x, y, z, res) as usize;
                    assert!(!seen[i], "dense index collision at ({x},{y},{z})");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn corner_groups_pair_x_neighbours() {
        for (c, &(dx0, dy0, dz0)) in CORNER_OFFSETS.iter().enumerate() {
            let g = corner_group(c);
            // The two corners in a group share (dy, dz).
            let partner = c ^ 1;
            let (dx1, dy1, dz1) = CORNER_OFFSETS[partner];
            assert_eq!(corner_group(partner), g);
            assert_eq!((dy0, dz0), (dy1, dz1));
            assert_ne!(dx0, dx1);
        }
    }

    #[test]
    fn vertex_address_dispatch() {
        assert_eq!(
            vertex_address(AddressMode::Dense, 1, 2, 3, 4, 999),
            dense_index(1, 2, 3, 4)
        );
        assert_eq!(
            vertex_address(AddressMode::Hashed, 1, 2, 3, 4, 999),
            spatial_hash(1, 2, 3, 999)
        );
    }
}
