//! Regenerates the paper's Fig. 18fig18 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::fig18::run(instant3d_bench::quick_requested());
}
