//! Regenerates the §5.1 FRM/BUM depth ablation. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::ablation_depth::run(instant3d_bench::quick_requested());
}
