//! Fig. 5 — color and density evolve at different paces during training.
//!
//! The paper renders RGB and depth images along the training trajectory
//! and shows color PSNR leading density (depth) PSNR. We reproduce the
//! trajectory on the synthetic scenes and report both absolute PSNRs and
//! each signal's *convergence fraction* (PSNR as a fraction of its final
//! value), which isolates the pace difference from the two metrics'
//! different scales.

use super::common::{run_on_dataset, synthetic_dataset};
use crate::table::Table;
use instant3d_core::TrainConfig;

/// Trains on the synthetic scenes and prints the RGB/depth PSNR
/// trajectories averaged across scenes.
pub fn run(quick: bool) {
    crate::banner(
        "Fig. 5",
        "Color (RGB PSNR) vs density (depth PSNR) learning pace during training",
    );
    let cfg = crate::workloads::bench_config(TrainConfig::instant_ngp(), quick);
    let iters = crate::workloads::train_iters(quick);
    let eval_every = if quick { 15 } else { 25 };
    let scenes = crate::workloads::scene_indices(quick);

    let runs: Vec<_> = scenes
        .iter()
        .map(|&i| {
            let ds = synthetic_dataset(i, quick, 100 + i as u64);
            run_on_dataset(&cfg, &ds, iters, eval_every, 200 + i as u64)
        })
        .collect();

    // Average trajectories across scenes (they share the eval cadence).
    let n_points = runs.iter().map(|r| r.history.len()).min().unwrap_or(0);
    let mut t = Table::new(&[
        "iteration",
        "avg RGB PSNR (dB)",
        "avg depth PSNR (dB)",
        "RGB conv. frac",
        "depth conv. frac",
    ]);
    let final_rgb: Vec<f32> = runs
        .iter()
        .map(|r| r.history.last().map(|h| h.1).unwrap_or(1.0))
        .collect();
    let final_depth: Vec<f32> = runs
        .iter()
        .map(|r| r.history.last().map(|h| h.2).unwrap_or(1.0))
        .collect();
    let mut rgb_lead_count = 0usize;
    for k in 0..n_points {
        let iter = runs[0].history[k].0;
        let rgb: f32 = runs.iter().map(|r| r.history[k].1).sum::<f32>() / runs.len() as f32;
        let depth: f32 = runs.iter().map(|r| r.history[k].2).sum::<f32>() / runs.len() as f32;
        let rgb_frac: f32 = runs
            .iter()
            .zip(&final_rgb)
            .map(|(r, f)| r.history[k].1 / f.max(1e-3))
            .sum::<f32>()
            / runs.len() as f32;
        let depth_frac: f32 = runs
            .iter()
            .zip(&final_depth)
            .map(|(r, f)| r.history[k].2 / f.max(1e-3))
            .sum::<f32>()
            / runs.len() as f32;
        if rgb_frac >= depth_frac {
            rgb_lead_count += 1;
        }
        t.row_owned(vec![
            iter.to_string(),
            format!("{rgb:.2}"),
            format!("{depth:.2}"),
            format!("{rgb_frac:.3}"),
            format!("{depth_frac:.3}"),
        ]);
    }
    t.print();

    println!(
        "\nColor led density in {rgb_lead_count}/{n_points} evaluation points \
         (convergence-fraction comparison)."
    );
    println!(
        "Paper: color reaches a given quality in fewer iterations than density\n\
         (e.g. 160 vs 200 iterations to 24 dB on NeRF-Synthetic) because the\n\
         loss (Eq. 2) supervises color directly."
    );
}
