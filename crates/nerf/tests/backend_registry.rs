//! Tests of the open kernel-backend API itself: runtime registration of a
//! third-party backend, name resolution, engine dispatch through foreign
//! handles, and the instrumented co-sim backend's stream capture.

use instant3d_nerf::grid::{AccessPhase, GridAccessObserver, HashGrid, HashGridConfig};
use instant3d_nerf::kernels::{self, BackendHandle, InstrumentedKernels, Kernels, ScalarKernels};
use instant3d_nerf::math::Vec3;
use instant3d_nerf::mlp::{Mlp, MlpBatchWorkspace, MlpConfig, MlpGradients};
use instant3d_nerf::render::RenderOutput;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A third-party backend: delegates every kernel to the scalar reference
/// (thereby upholding the bit-identity contract) while counting calls.
#[derive(Debug, Default)]
struct CountingKernels {
    inner: ScalarKernels,
    grid_calls: AtomicUsize,
    mlp_calls: AtomicUsize,
    composite_calls: AtomicUsize,
}

impl Kernels for CountingKernels {
    fn name(&self) -> &'static str {
        "mock-counting"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn grid_encode_chunk(&self, grid: &HashGrid, pts: &[Vec3], out: &mut [f32]) {
        self.grid_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.grid_encode_chunk(grid, pts, out);
    }

    fn grid_encode_levels_chunk(
        &self,
        grid: &HashGrid,
        levels: &[usize],
        pts: &[Vec3],
        out: &mut [f32],
    ) {
        self.grid_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.grid_encode_levels_chunk(grid, levels, pts, out);
    }

    fn grid_scatter_level(
        &self,
        grid: &HashGrid,
        level: usize,
        level_grads: &mut [f32],
        pts: &[Vec3],
        d_out: &[f32],
    ) {
        self.grid_calls.fetch_add(1, Ordering::Relaxed);
        self.inner
            .grid_scatter_level(grid, level, level_grads, pts, d_out);
    }

    fn mlp_forward_batch<'w>(
        &self,
        mlp: &Mlp,
        inputs: &[f32],
        ws: &'w mut MlpBatchWorkspace,
    ) -> &'w [f32] {
        self.mlp_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.mlp_forward_batch(mlp, inputs, ws)
    }

    fn mlp_backward_batch(
        &self,
        mlp: &Mlp,
        d_output: &[f32],
        ws: &mut MlpBatchWorkspace,
        grads: &mut MlpGradients,
        d_input: &mut [f32],
    ) {
        self.mlp_calls.fetch_add(1, Ordering::Relaxed);
        self.inner
            .mlp_backward_batch(mlp, d_output, ws, grads, d_input);
    }

    fn composite_ray(
        &self,
        t: &[f32],
        dt: &[f32],
        sigma: &[f32],
        rgb: &[Vec3],
        background: Vec3,
        cache: Option<(&mut [f32], &mut [f32], &mut [f32])>,
    ) -> (RenderOutput, usize) {
        self.composite_calls.fetch_add(1, Ordering::Relaxed);
        self.inner
            .composite_ray(t, dt, sigma, rgb, background, cache)
    }
}

fn test_grid(seed: u64) -> HashGrid {
    HashGrid::new_random(
        HashGridConfig {
            levels: 3,
            log2_table_size: 9,
            base_resolution: 4,
            max_resolution: 32,
            ..HashGridConfig::default()
        },
        &mut StdRng::seed_from_u64(seed),
    )
}

fn test_points(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vec3::new(rng.gen(), rng.gen(), rng.gen()))
        .collect()
}

#[test]
fn registered_mock_backend_resolves_and_dispatches() {
    // Registering makes the name resolvable everywhere a backend can be
    // named (config, env var, bench IDs)…
    let registered =
        kernels::register(CountingKernels::default()).expect("first registration of the mock name");
    assert_eq!(kernels::resolve("mock-counting"), registered);
    assert!(kernels::names().contains(&"mock-counting"));
    assert!(kernels::registered().contains(&registered));
    // …and a second registration under the same name is rejected.
    assert!(kernels::register(CountingKernels::default()).is_err());

    // The engine seams dispatch through the foreign backend and produce
    // the scalar reference's exact bits.
    let g = test_grid(3);
    let pts = test_points(33, 4);
    let w = g.output_dim();
    let mut expect = vec![0.0f32; pts.len() * w];
    g.par_encode_batch_with(&kernels::scalar(), &pts, &mut expect);
    let mut got = vec![0.0f32; pts.len() * w];
    g.par_encode_batch_with(&registered, &pts, &mut got);
    assert_eq!(expect, got);

    let mock = registered.downcast_ref::<CountingKernels>().unwrap();
    assert!(
        mock.grid_calls.load(Ordering::Relaxed) > 0,
        "the mock's kernels must actually have run"
    );
}

#[test]
fn unregistered_handles_drive_the_engine_without_registration() {
    // A handle is usable without touching the global registry — openness
    // does not force global state on tests.
    let private = BackendHandle::new(CountingKernels::default());
    assert!(kernels::get("definitely-not-registered").is_none());

    let g = test_grid(5);
    let pts = test_points(20, 6);
    let d_out: Vec<f32> = (0..pts.len() * g.output_dim())
        .map(|i| ((i % 7) as f32 - 3.0) * 0.23)
        .collect();
    let mut expect = g.zero_grads();
    g.par_backward_batch_with(&kernels::scalar(), &pts, &d_out, &mut expect);
    let mut got = g.zero_grads();
    g.par_backward_batch_with(&private, &pts, &d_out, &mut got);
    assert_eq!(expect.values, got.values);

    let mlp = Mlp::new(
        MlpConfig::new(
            g.output_dim(),
            &[8],
            1,
            instant3d_nerf::activation::Activation::Relu,
            instant3d_nerf::activation::Activation::TruncExp,
        ),
        &mut StdRng::seed_from_u64(7),
    );
    let inputs = vec![0.25f32; 5 * g.output_dim()];
    let mut ws_a = mlp.batch_workspace(5);
    let mut ws_b = mlp.batch_workspace(5);
    let a = mlp
        .forward_batch_with(&kernels::scalar(), &inputs, &mut ws_a)
        .to_vec();
    let b = mlp
        .forward_batch_with(&private, &inputs, &mut ws_b)
        .to_vec();
    assert_eq!(a, b);
    let mock = private.downcast_ref::<CountingKernels>().unwrap();
    assert_eq!(mock.mlp_calls.load(Ordering::Relaxed), 1);
}

/// Collects the expected address stream by running the observed scalar
/// kernels directly.
struct Collect<'a> {
    grid: &'a HashGrid,
    reads: Vec<u32>,
    updates: Vec<u64>,
}

impl GridAccessObserver for Collect<'_> {
    fn on_access(&mut self, phase: AccessPhase, level: u32, _corner: u8, addr: u32) {
        match phase {
            AccessPhase::FeedForward => self
                .reads
                .push(self.grid.entry_offset(level as usize) + addr),
            AccessPhase::BackProp => self.updates.push(((level as u64) << 32) | addr as u64),
        }
    }
}

#[test]
fn instrumented_backend_records_the_exact_kernel_address_streams() {
    let backend = BackendHandle::new(InstrumentedKernels::new());
    let rec = backend.downcast_ref::<InstrumentedKernels>().unwrap();
    let g = test_grid(11);
    let w = g.output_dim();
    let pts = test_points(41, 12); // lane tails included
    let d_out: Vec<f32> = (0..pts.len() * w).map(|i| (i % 5) as f32 * 0.11).collect();

    // Expected streams: the observed scalar kernels in the same
    // level-major / level-ordered execution order the drivers use.
    let mut expect = Collect {
        grid: &g,
        reads: Vec::new(),
        updates: Vec::new(),
    };
    let mut expect_out = vec![0.0f32; pts.len() * w];
    for l in 0..g.levels().len() {
        g.encode_level_observed(l, &pts, &mut expect_out, &mut expect);
    }
    let mut expect_grads = g.zero_grads();
    {
        let mut rest: &mut [f32] = &mut expect_grads.values;
        for l in 0..g.levels().len() {
            let len = g.levels()[l].table_size as usize * g.config().features_per_entry;
            let (head, tail) = rest.split_at_mut(len);
            g.scatter_level_observed(l, head, &pts, &d_out, &mut expect);
            rest = tail;
        }
    }

    // Recording off: nothing captured, output identical to simd.
    let mut quiet = vec![0.0f32; pts.len() * w];
    g.par_encode_batch_with(&backend, &pts, &mut quiet);
    assert!(rec.take_streams().is_empty(), "off by default");
    assert_eq!(quiet, expect_out, "instrumented numerics = scalar bits");

    // Recording on: streams match the observed kernels exactly.
    rec.start_recording();
    assert!(
        backend.sequential_grid(),
        "recording forces sequential grids"
    );
    let mut out = vec![0.0f32; pts.len() * w];
    g.par_encode_batch_with(&backend, &pts, &mut out);
    let mut grads = g.zero_grads();
    g.par_backward_batch_with(&backend, &pts, &d_out, &mut grads);
    rec.stop_recording();
    let streams = rec.take_streams();

    assert_eq!(out, expect_out);
    assert_eq!(grads.values, expect_grads.values);
    assert_eq!(streams.reads_flat_for(&g), expect.reads);
    assert_eq!(streams.updates_for(&g), expect.updates);
    assert_eq!(
        streams.len(),
        expect.reads.len() + expect.updates.len(),
        "no stray segments"
    );
    // Draining leaves the recorder empty for the next session.
    assert!(rec.take_streams().is_empty());
}

#[test]
fn instrumented_level_subset_encode_records_only_those_levels() {
    let backend = BackendHandle::new(InstrumentedKernels::new());
    let rec = backend.downcast_ref::<InstrumentedKernels>().unwrap();
    let g = test_grid(21);
    let pts = test_points(9, 22);
    let mut out = vec![0.0f32; pts.len() * g.output_dim()];
    rec.start_recording();
    g.par_encode_batch_levels_with(&backend, &[1], &pts, &mut out);
    g.par_encode_batch_levels_with(&backend, &[], &pts, &mut out);
    rec.stop_recording();
    let streams = rec.take_streams();
    let reads = streams.reads_flat_for(&g);
    assert_eq!(
        reads.len(),
        8 * pts.len(),
        "one level × 8 corners per point"
    );
    let lo = g.entry_offset(1);
    let hi = g.entry_offset(2);
    assert!(
        reads.iter().all(|&a| a >= lo && a < hi),
        "all reads land in level 1's table slice"
    );
    assert_eq!(streams.segments.len(), 1, "empty level set records nothing");
}
