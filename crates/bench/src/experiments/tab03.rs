//! Tab. 3 — device specification summary.

use crate::table::Table;
use instant3d_accel::AccelConfig;
use instant3d_devices::spec::all_specs;

/// Prints the Tab. 3 specification table.
pub fn run(_quick: bool) {
    crate::banner(
        "Tab. 3",
        "Summary of the considered devices' specifications",
    );
    let mut t = Table::new(&[
        "Device",
        "Technology",
        "SRAM",
        "Area",
        "Frequency",
        "DRAM",
        "Bandwidth",
        "Typical Power",
    ]);
    for s in all_specs() {
        t.row_owned(vec![
            s.name.to_string(),
            format!("{} nm", s.technology_nm),
            format!("{:.1} MB", s.sram_bytes as f64 / (1024.0 * 1024.0)),
            s.area_mm2
                .map(|a| format!("{a:.1} mm^2"))
                .unwrap_or_else(|| "N/A".to_string()),
            format!("{:.1} GHz", s.frequency_ghz),
            s.dram.to_string(),
            format!("{:.1} GB/s", s.dram_bandwidth / 1e9),
            format!("{:.1} W", s.typical_power_w),
        ]);
    }
    t.print();

    let c = AccelConfig::default();
    println!(
        "\nInstant-3D microarchitecture: {} grid cores x {} banks ({} KB/core), \
         reorder depth {}, BUM entries {}, {}x{} systolic + {}-wide tree.",
        c.grid_cores,
        c.banks_per_core,
        c.bytes_per_core() / 1024,
        c.reorder_depth,
        c.bum_entries,
        c.systolic_rows,
        c.systolic_cols,
        c.tree_width,
    );
}
