//! End-to-end training-iteration benchmark: one full six-step pipeline
//! iteration (sample → rays → grid+MLP → render → loss → backward) for the
//! coupled (Instant-NGP) and decoupled (Instant-3D) topologies.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_core::{TrainConfig, Trainer};
use instant3d_scenes::SceneLibrary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_step(c: &mut Criterion, name: &str, cfg: TrainConfig) {
    let mut rng = StdRng::seed_from_u64(5);
    let ds = SceneLibrary::synthetic_scene(0, 24, 6, &mut rng);
    let mut trainer = Trainer::new(cfg, &ds, &mut rng);
    let mut step_rng = StdRng::seed_from_u64(7);
    c.bench_function(name, |b| {
        b.iter(|| black_box(trainer.step(&mut step_rng)))
    });
}

fn bench_train_iters(c: &mut Criterion) {
    let mut small = TrainConfig::fast_preview();
    small.rays_per_batch = 64;
    bench_step(c, "train/step_instant3d_preview", small.clone());
    let mut ngp = small;
    ngp.topology = instant3d_core::GridTopology::Coupled;
    bench_step(c, "train/step_instant_ngp_preview", ngp);
}

criterion_group!(benches, bench_train_iters);
criterion_main!(benches);
