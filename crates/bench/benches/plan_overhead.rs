//! Write-plan conformance overhead: a full training iteration on the
//! `checked` backend — whose [`plan_conformance`] hook makes every
//! parallel dispatch instantiate its declared `WritePlan` and assert
//! each dynamically ledgered write range inside the declared interval —
//! against the plain `simd` backend the checked backend wraps.
//!
//! The delta quantifies what the *dynamic* half of the write-plan
//! contract costs (the static prover runs offline in the conformance
//! suite and costs the engine nothing). The checked backend also pays
//! for its write ledger and scalar shadow execution, so the arm bounds
//! plan conformance from above: plan checks are a strict subset of the
//! measured gap.
//!
//! IDs are stamped `{backend}/t{N}` like every other bench, so the
//! merged `CRITERION_JSON` trajectory keys stay uniform.
//!
//! [`plan_conformance`]: instant3d_nerf::kernels::Kernels::plan_conformance

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_core::{kernels, TrainConfig, Trainer};
use instant3d_scenes::SceneLibrary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_step(c: &mut Criterion, name: &str, cfg: TrainConfig) {
    let id = format!(
        "{name}/{}/t{}",
        cfg.kernel_backend,
        rayon::current_num_threads()
    );
    let mut rng = StdRng::seed_from_u64(5);
    let ds = SceneLibrary::synthetic_scene(0, 24, 6, &mut rng);
    let mut trainer = Trainer::new(cfg, &ds, &mut rng);
    let mut step_rng = StdRng::seed_from_u64(7);
    c.bench_function(&id, |b| b.iter(|| black_box(trainer.step(&mut step_rng))));
}

fn bench_plan_overhead(c: &mut Criterion) {
    let mut cfg = TrainConfig::fast_preview();
    cfg.rays_per_batch = 1024;
    // simd = baseline (plan conformance off), checked = every dispatch
    // verifies its ledgered writes against the declared plan.
    for backend in [kernels::simd(), kernels::checked()] {
        cfg.kernel_backend = backend;
        for threads in [1, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| bench_step(c, "plan_overhead/step_rays1024", cfg.clone()));
        }
    }
}

criterion_group!(benches, bench_plan_overhead);
criterion_main!(benches);
