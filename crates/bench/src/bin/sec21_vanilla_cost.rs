//! Regenerates the §2.1 vanilla-NeRF cost analysis. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::sec21_vanilla::run(instant3d_bench::quick_requested());
}
