// Fixture: undocumented unsafe + missing CALLER note. Not compiled.

fn undocumented() {
    // VIOLATION: unsafe block with no SAFETY comment above it.
    let x = unsafe { core::ptr::read(core::ptr::null::<u8>()) };
    let _ = x;
}

fn documented() {
    let v = 1u8;
    // SAFETY: reads a valid, initialized local through its own pointer.
    let x = unsafe { core::ptr::read(&v) };
    let _ = x;
}

// VIOLATION: #[target_feature] with no CALLER note.
#[target_feature(enable = "avx2")]
unsafe fn missing_caller() {}

// CALLER: dispatcher checks is_x86_feature_detected!("avx2") first.
// SAFETY: no pointer arithmetic; AVX2 availability is the only contract.
#[target_feature(enable = "avx2")]
unsafe fn guarded() {}
