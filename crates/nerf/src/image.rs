//! Minimal RGB / depth image containers plus PPM/PGM export for inspection.

use crate::math::Vec3;
use std::fmt::Write as _;

/// A floating-point RGB image with row-major pixel storage.
///
/// # Example
///
/// ```
/// use instant3d_nerf::image::RgbImage;
/// use instant3d_nerf::math::Vec3;
/// let mut img = RgbImage::new(4, 2);
/// img.set(3, 1, Vec3::ONE);
/// assert_eq!(img.get(3, 1), Vec3::ONE);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    width: u32,
    height: u32,
    pixels: Vec<Vec3>,
}

impl RgbImage {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        RgbImage {
            width,
            height,
            pixels: vec![Vec3::ZERO; (width * height) as usize],
        }
    }

    /// Builds an image from a closure evaluated at every pixel.
    pub fn from_fn<F: FnMut(u32, u32) -> Vec3>(width: u32, height: u32, mut f: F) -> Self {
        let mut img = RgbImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixels.
    pub fn num_pixels(&self) -> usize {
        self.pixels.len()
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height, "pixel out of bounds");
        (y * self.width + x) as usize
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Vec3 {
        self.pixels[self.idx(x, y)]
    }

    /// Writes pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, c: Vec3) {
        let i = self.idx(x, y);
        self.pixels[i] = c;
    }

    /// All pixels, row-major.
    pub fn pixels(&self) -> &[Vec3] {
        &self.pixels
    }

    /// Mutable pixel access, row-major.
    pub fn pixels_mut(&mut self) -> &mut [Vec3] {
        &mut self.pixels
    }

    /// Mean per-channel squared error against another image.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mse(&self, other: &RgbImage) -> f32 {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.height, other.height, "height mismatch");
        let mut acc = 0.0f64;
        for (a, b) in self.pixels.iter().zip(&other.pixels) {
            let d = *a - *b;
            acc += d.norm_squared() as f64;
        }
        (acc / (self.pixels.len() as f64 * 3.0)) as f32
    }

    /// Serialises as ASCII PPM (P3), clamping to [0, 1].
    pub fn to_ppm(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "P3\n{} {}\n255", self.width, self.height);
        for p in &self.pixels {
            let c = p.clamp(0.0, 1.0) * 255.0;
            let _ = writeln!(s, "{} {} {}", c.x as u8, c.y as u8, c.z as u8);
        }
        s
    }
}

/// A single-channel depth image (distance along the ray, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct DepthImage {
    width: u32,
    height: u32,
    depths: Vec<f32>,
}

impl DepthImage {
    /// Creates a zero-depth image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        DepthImage {
            width,
            height,
            depths: vec![0.0; (width * height) as usize],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Reads depth at `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.depths[(y * self.width + x) as usize]
    }

    /// Writes depth at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, d: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.depths[(y * self.width + x) as usize] = d;
    }

    /// All depths, row-major.
    pub fn depths(&self) -> &[f32] {
        &self.depths
    }

    /// The largest finite depth (used to normalise for PSNR).
    pub fn max_depth(&self) -> f32 {
        self.depths
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f32::max)
    }

    /// Mean squared error against another depth image, with both images
    /// normalised by `scale` (pass the shared max depth so PSNR is on a
    /// [0, 1]-like range, mirroring how the paper scores depth maps).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `scale <= 0`.
    pub fn mse_normalized(&self, other: &DepthImage, scale: f32) -> f32 {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.height, other.height, "height mismatch");
        assert!(scale > 0.0, "scale must be positive");
        let inv = 1.0 / scale;
        let mut acc = 0.0f64;
        for (a, b) in self.depths.iter().zip(&other.depths) {
            let d = (a - b) * inv;
            acc += (d * d) as f64;
        }
        (acc / self.depths.len() as f64) as f32
    }

    /// Serialises as ASCII PGM (P2), normalised to the max depth.
    pub fn to_pgm(&self) -> String {
        let max = self.max_depth().max(1e-6);
        let mut s = String::new();
        let _ = writeln!(s, "P2\n{} {}\n255", self.width, self.height);
        for d in &self.depths {
            let v = (d / max).clamp(0.0, 1.0) * 255.0;
            let _ = writeln!(s, "{}", v as u8);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_roundtrip_set_get() {
        let mut img = RgbImage::new(3, 2);
        img.set(2, 1, Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(img.get(2, 1), Vec3::new(0.1, 0.2, 0.3));
        assert_eq!(img.get(0, 0), Vec3::ZERO);
        assert_eq!(img.num_pixels(), 6);
    }

    #[test]
    fn from_fn_row_major_layout() {
        let img = RgbImage::from_fn(2, 2, |x, y| Vec3::new(x as f32, y as f32, 0.0));
        assert_eq!(img.pixels()[1], Vec3::new(1.0, 0.0, 0.0)); // (1, 0)
        assert_eq!(img.pixels()[2], Vec3::new(0.0, 1.0, 0.0)); // (0, 1)
    }

    #[test]
    fn mse_of_identical_images_is_zero() {
        let img = RgbImage::from_fn(4, 4, |x, y| Vec3::splat((x + y) as f32 / 8.0));
        assert_eq!(img.mse(&img), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = RgbImage::new(2, 1);
        let mut b = RgbImage::new(2, 1);
        b.set(0, 0, Vec3::splat(1.0));
        // one pixel differs by 1 in each of 3 channels over 2 pixels:
        // mse = 3 / (2*3) = 0.5
        assert!((a.mse(&b) - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn mse_dimension_mismatch_panics() {
        let a = RgbImage::new(2, 2);
        let b = RgbImage::new(3, 2);
        let _ = a.mse(&b);
    }

    #[test]
    fn ppm_header_and_length() {
        let img = RgbImage::new(2, 2);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with("P3\n2 2\n255\n"));
        assert_eq!(ppm.lines().count(), 3 + 4);
    }

    #[test]
    fn depth_roundtrip_and_max() {
        let mut d = DepthImage::new(2, 2);
        d.set(1, 1, 4.0);
        d.set(0, 1, 2.0);
        assert_eq!(d.get(1, 1), 4.0);
        assert_eq!(d.max_depth(), 4.0);
    }

    #[test]
    fn depth_mse_normalised() {
        let mut a = DepthImage::new(1, 1);
        let mut b = DepthImage::new(1, 1);
        a.set(0, 0, 2.0);
        b.set(0, 0, 4.0);
        // diff 2 normalised by 4 → 0.5² = 0.25
        assert!((a.mse_normalized(&b, 4.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn pgm_serialises() {
        let mut d = DepthImage::new(2, 1);
        d.set(0, 0, 1.0);
        d.set(1, 0, 0.5);
        let pgm = d.to_pgm();
        assert!(pgm.starts_with("P2\n2 1\n255\n"));
    }
}
