//! Frequency (positional) encoding — vanilla NeRF's input featurisation.
//!
//! Vanilla NeRF (§2.1 of the paper) feeds `γ(p) = [sin(2^k π p),
//! cos(2^k π p)]_{k<L}` per coordinate to a large MLP instead of looking
//! features up in a grid. Instant-NGP replaced this with the hash grid;
//! this module exists so the repository can train the vanilla baseline the
//! paper compares against.

use crate::math::Vec3;

/// Output width of [`freq_encode_into`] for a 3-vector: `3 × 2L` (+3 when
/// `include_input`).
pub const fn freq_encoding_dim(levels: usize, include_input: bool) -> usize {
    3 * 2 * levels + if include_input { 3 } else { 0 }
}

/// Encodes `v` with `levels` octaves of sin/cos features, optionally
/// prepending the raw input (as vanilla NeRF does).
///
/// Layout: `[v?, sin(2⁰πv), cos(2⁰πv), sin(2¹πv), cos(2¹πv), ...]`, each
/// block covering x, y, z.
///
/// # Panics
///
/// Panics if `out.len() != freq_encoding_dim(levels, include_input)`.
pub fn freq_encode_into(v: Vec3, levels: usize, include_input: bool, out: &mut [f32]) {
    assert_eq!(
        out.len(),
        freq_encoding_dim(levels, include_input),
        "output buffer size mismatch"
    );
    let mut k = 0;
    if include_input {
        out[0] = v.x;
        out[1] = v.y;
        out[2] = v.z;
        k = 3;
    }
    let mut freq = std::f32::consts::PI;
    for _ in 0..levels {
        for c in [v.x, v.y, v.z] {
            out[k] = (freq * c).sin();
            k += 1;
        }
        for c in [v.x, v.y, v.z] {
            out[k] = (freq * c).cos();
            k += 1;
        }
        freq *= 2.0;
    }
}

/// Allocating convenience wrapper around [`freq_encode_into`].
pub fn freq_encode(v: Vec3, levels: usize, include_input: bool) -> Vec<f32> {
    let mut out = vec![0.0; freq_encoding_dim(levels, include_input)];
    freq_encode_into(v, levels, include_input, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_match_vanilla_nerf() {
        // Vanilla NeRF: L=10 for positions (60 dims), L=4 for directions (24).
        assert_eq!(freq_encoding_dim(10, false), 60);
        assert_eq!(freq_encoding_dim(4, false), 24);
        assert_eq!(freq_encoding_dim(10, true), 63);
    }

    #[test]
    fn zero_input_gives_zero_sines_unit_cosines() {
        let e = freq_encode(Vec3::ZERO, 3, false);
        for block in 0..3 {
            for i in 0..3 {
                assert_eq!(e[block * 6 + i], 0.0, "sin block");
                assert_eq!(e[block * 6 + 3 + i], 1.0, "cos block");
            }
        }
    }

    #[test]
    fn include_input_prepends_raw_coordinates() {
        let v = Vec3::new(0.1, -0.2, 0.3);
        let e = freq_encode(v, 2, true);
        assert_eq!(&e[..3], &[0.1, -0.2, 0.3]);
        let no_input = freq_encode(v, 2, false);
        assert_eq!(&e[3..], &no_input[..]);
    }

    #[test]
    fn features_are_bounded_by_one() {
        for &v in &[
            Vec3::new(0.5, 0.25, 0.75),
            Vec3::new(-3.2, 7.9, 0.01),
            Vec3::splat(123.456),
        ] {
            for f in freq_encode(v, 8, false) {
                assert!(f.abs() <= 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn octaves_double_in_frequency() {
        // sin(2^k π x) at x = 0.5: k=0 → sin(π/2)=1, k=1 → sin(π)=0.
        let e = freq_encode(Vec3::new(0.5, 0.0, 0.0), 2, false);
        assert!((e[0] - 1.0).abs() < 1e-6, "octave 0 sin(π/2)");
        assert!(e[6].abs() < 1e-5, "octave 1 sin(π)");
    }

    #[test]
    fn distinct_points_get_distinct_codes() {
        let a = freq_encode(Vec3::new(0.1, 0.2, 0.3), 6, false);
        let b = freq_encode(Vec3::new(0.11, 0.2, 0.3), 6, false);
        assert_ne!(a, b);
    }
}
