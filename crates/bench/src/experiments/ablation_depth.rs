//! Design-space ablation: FRM window depth and BUM buffer size.
//!
//! §5.1: "we set the reordering pipeline depth of our proposed FRM and
//! BUM units to be 16, based on empirical observations and find it to be
//! generally applicable to all datasets". This ablation regenerates those
//! empirical observations on real training traces: sweep the FRM window
//! and BUM entry count and show 16 is the knee of both curves.

use super::common::{capture_trace, flat_stream, synthetic_dataset};
use crate::table::Table;
use instant3d_accel::{simulate_bum, simulate_frm, BumConfig};
use instant3d_core::TrainConfig;
use instant3d_nerf::grid::{AccessPhase, GridBranch};

/// Sweeps FRM depth and BUM entries on a captured trace.
pub fn run(quick: bool) {
    crate::banner(
        "§5.1 ablation",
        "FRM window depth & BUM buffer size sweeps (why 16)",
    );
    let cfg = crate::workloads::bench_config(TrainConfig::instant3d(), quick);
    let budget = if quick { 10 } else { 24 };
    let capture: Vec<u64> = vec![budget - 2, budget - 1];
    let ds = synthetic_dataset(4, quick, 3100);
    let (trace, trainer) = capture_trace(&cfg, &ds, &capture, budget, 2_000_000, 3200);

    let ff = flat_stream(
        &trace,
        &trainer,
        AccessPhase::FeedForward,
        GridBranch::Density,
    );
    println!(
        "FRM window-depth sweep ({} captured reads, 8 banks):",
        ff.len()
    );
    let mut t = Table::new(&["window depth", "cycles", "bank utilisation", "vs depth 16"]);
    let ref_cycles = simulate_frm(&ff, 8, 16).cycles.max(1);
    for depth in [1usize, 2, 4, 8, 16, 32, 64] {
        let r = simulate_frm(&ff, 8, depth);
        t.row_owned(vec![
            format!("{depth}{}", if depth == 16 { "  <- paper" } else { "" }),
            r.cycles.to_string(),
            format!("{:.2}", r.utilization),
            format!("{:.2}x", r.cycles as f64 / ref_cycles as f64),
        ]);
    }
    t.print();

    let bp = trace.bp_stream_level_major();
    println!("\nBUM buffer-size sweep ({} captured updates):", bp.len());
    let mut t = Table::new(&["entries", "SRAM writes", "writes/update", "merge ratio"]);
    for entries in [2usize, 4, 8, 16, 32, 64] {
        let r = simulate_bum(
            &bp,
            BumConfig {
                entries,
                timeout: 64,
            },
        );
        t.row_owned(vec![
            format!("{entries}{}", if entries == 16 { "  <- paper" } else { "" }),
            r.sram_writes.to_string(),
            format!("{:.2}", r.write_ratio()),
            format!("{:.2}", r.merge_ratio()),
        ]);
    }
    t.print();
    println!(
        "\nBoth curves should flatten near 16: deeper FRM windows stop finding\n\
         extra conflict-free reads, and larger BUM buffers stop finding extra\n\
         mergeable updates — the paper's \"generally applicable\" choice."
    );
}
