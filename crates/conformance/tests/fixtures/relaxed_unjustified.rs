// Fixture: linted as if it were vendor/rayon/src/fake.rs. Not compiled.

use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn unjustified() {
    // VIOLATION: Relaxed with no ORDERING justification.
    COUNTER.fetch_add(1, Ordering::Relaxed);
}

fn justified() {
    // ORDERING: Relaxed — debug counter, never synchronizes anything.
    COUNTER.fetch_add(1, Ordering::Relaxed);
}

fn unlisted_protocol() {
    // VIOLATION (atomics-protocol): SeqCst site absent from the manifest.
    COUNTER.fetch_add(1, Ordering::SeqCst);
}
