//! Wall-clock per-step instrumentation of the training pipeline.
//!
//! The paper's Fig. 4 comes from profiling Instant-NGP on real devices.
//! This module profiles *this repository's* trainer the same way: each of
//! the six pipeline steps (with Step ③ split and backward separated) is
//! timed with a monotonic clock, giving a native measured breakdown to set
//! beside the modelled device breakdowns.

use crate::profile::PipelineStep;
use std::time::Duration;

/// Accumulated wall-clock time per pipeline step.
#[derive(Debug, Clone, Default)]
pub struct StepTimer {
    totals: [Duration; PipelineStep::ALL.len()],
    iterations: u64,
}

impl StepTimer {
    /// A zeroed timer.
    pub fn new() -> Self {
        StepTimer::default()
    }

    fn index(step: PipelineStep) -> usize {
        PipelineStep::ALL
            .iter()
            .position(|s| *s == step)
            .expect("step is in ALL")
    }

    /// Adds `d` to `step`'s total.
    pub fn add(&mut self, step: PipelineStep, d: Duration) {
        self.totals[Self::index(step)] += d;
    }

    /// Times `f` and charges it to `step`, returning `f`'s output.
    pub fn time<T, F: FnOnce() -> T>(&mut self, step: PipelineStep, f: F) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.add(step, t0.elapsed());
        out
    }

    /// Marks the end of one training iteration.
    pub fn end_iteration(&mut self) {
        self.iterations += 1;
    }

    /// Iterations recorded.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Total time across all steps.
    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// `(step, total, fraction)` rows in pipeline order.
    pub fn breakdown(&self) -> Vec<(PipelineStep, Duration, f64)> {
        let total = self.total().as_secs_f64().max(1e-12);
        PipelineStep::ALL
            .iter()
            .map(|&s| {
                let d = self.totals[Self::index(s)];
                (s, d, d.as_secs_f64() / total)
            })
            .collect()
    }

    /// The combined fraction spent in Step ③-① (grid interpolation,
    /// forward + backward) — the paper's headline bottleneck number.
    pub fn grid_interpolation_fraction(&self) -> f64 {
        self.breakdown()
            .iter()
            .filter(|(s, _, _)| s.is_grid_interpolation())
            .map(|(_, _, f)| f)
            .sum()
    }

    /// Renders an ASCII breakdown like the Fig. 4 bars.
    pub fn to_ascii(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "native trainer breakdown over {} iterations ({:.1} ms/iter):",
            self.iterations,
            self.total().as_secs_f64() * 1e3 / self.iterations.max(1) as f64
        );
        for (step, d, f) in self.breakdown() {
            let bar = "#".repeat((f * width as f64).round() as usize);
            let _ = writeln!(
                out,
                "  {:<22} {:>9.3} ms {:>6.2} % |{bar}",
                step.label(),
                d.as_secs_f64() * 1e3,
                f * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_fractions_sum_to_one() {
        let mut t = StepTimer::new();
        t.add(PipelineStep::GridForward, Duration::from_millis(30));
        t.add(PipelineStep::GridBackward, Duration::from_millis(50));
        t.add(PipelineStep::MlpForward, Duration::from_millis(20));
        t.end_iteration();
        assert_eq!(t.iterations(), 1);
        assert_eq!(t.total(), Duration::from_millis(100));
        let frac_sum: f64 = t.breakdown().iter().map(|(_, _, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
        assert!((t.grid_interpolation_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn time_closure_charges_the_step() {
        let mut t = StepTimer::new();
        let v = t.time(PipelineStep::ComputeLoss, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        let loss_row = t
            .breakdown()
            .into_iter()
            .find(|(s, _, _)| *s == PipelineStep::ComputeLoss)
            .unwrap();
        assert!(loss_row.1 >= Duration::from_millis(1));
    }

    #[test]
    fn ascii_contains_all_labels() {
        let mut t = StepTimer::new();
        t.add(PipelineStep::GridForward, Duration::from_millis(1));
        t.end_iteration();
        let art = t.to_ascii(30);
        for s in PipelineStep::ALL {
            assert!(art.contains(s.label()));
        }
    }

    #[test]
    fn empty_timer_is_safe() {
        let t = StepTimer::new();
        assert_eq!(t.total(), Duration::ZERO);
        assert_eq!(t.grid_interpolation_fraction(), 0.0);
        let _ = t.to_ascii(10);
    }
}
