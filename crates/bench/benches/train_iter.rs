//! End-to-end training-iteration benchmark: one full six-step pipeline
//! iteration (sample → rays → grid+MLP → render → loss → backward) for the
//! coupled (Instant-NGP) and decoupled (Instant-3D) topologies, comparing
//! the scalar point-at-a-time reference path against the batched SoA
//! engine — per kernel backend, single-threaded (SoA batching alone) and
//! on the full rayon pool (thread scaling), at batch sizes 256 / 1024 /
//! 4096 rays.
//!
//! Every bench ID is stamped with the backend's **registry name** and the
//! rayon worker count active while it ran (`…/simd/t4`), so recorded
//! numbers always say which kernels and how many workers produced them.
//! The backend axis iterates every registered backend — including the
//! `instrumented` co-sim backend, whose arm quantifies the
//! observation-off overhead vs the plain SIMD backend (target: ≤10%; it
//! is one relaxed atomic load per kernel call).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use instant3d_core::{kernels, TrainConfig, Trainer};
use instant3d_scenes::SceneLibrary;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Clone, Copy)]
enum Path {
    Scalar,
    Batched,
}

/// `backend/threads` suffix for bench IDs. The scalar reference *path* is
/// a serial point-at-a-time loop: it always runs scalar kernels on one
/// thread regardless of the configured backend or ambient pool, and its
/// stamp records that.
fn stamp(cfg: &TrainConfig, path: Path) -> String {
    match path {
        Path::Scalar => "scalar/t1".to_string(),
        Path::Batched => format!("{}/t{}", cfg.kernel_backend, rayon::current_num_threads()),
    }
}

fn bench_step(c: &mut Criterion, name: &str, cfg: TrainConfig, path: Path) {
    let id = format!("{name}/{}", stamp(&cfg, path));
    let mut rng = StdRng::seed_from_u64(5);
    let ds = SceneLibrary::synthetic_scene(0, 24, 6, &mut rng);
    let mut trainer = Trainer::new(cfg, &ds, &mut rng);
    let mut step_rng = StdRng::seed_from_u64(7);
    c.bench_function(&id, |b| {
        b.iter(|| match path {
            Path::Scalar => black_box(trainer.step_scalar(&mut step_rng)),
            Path::Batched => black_box(trainer.step(&mut step_rng)),
        })
    });
}

/// Scalar path vs batched engine (each backend; 1 thread, then full pool)
/// at one batch size.
fn bench_batch_size(c: &mut Criterion, rays: usize) {
    let mut cfg = TrainConfig::fast_preview();
    cfg.rays_per_batch = rays;
    cfg.kernel_backend = kernels::scalar();
    bench_step(
        c,
        &format!("train/scalar_rays{rays}"),
        cfg.clone(),
        Path::Scalar,
    );
    for backend in kernels::registered() {
        cfg.kernel_backend = backend.clone();
        // Explicit worker-count arms: `install` pins the apparent count
        // and grows the shared work-stealing pool to match, so thread
        // scaling is measurable regardless of the ambient pool size.
        for threads in [1, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                bench_step(
                    c,
                    &format!("train/batched_rays{rays}"),
                    cfg.clone(),
                    Path::Batched,
                );
            });
        }
    }
}

fn bench_train_iters(c: &mut Criterion) {
    // Topology comparison on the default (batched) path.
    let mut small = TrainConfig::fast_preview();
    small.rays_per_batch = 64;
    bench_step(
        c,
        "train/step_instant3d_preview",
        small.clone(),
        Path::Batched,
    );
    let mut ngp = small;
    ngp.topology = instant3d_core::GridTopology::Coupled;
    bench_step(c, "train/step_instant_ngp_preview", ngp, Path::Batched);

    // Scalar vs batched scaling sweep, per backend.
    for rays in [256, 1024, 4096] {
        bench_batch_size(c, rays);
    }
}

criterion_group!(benches, bench_train_iters);
criterion_main!(benches);
