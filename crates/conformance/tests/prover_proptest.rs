//! Property tests of the write-plan prover: the symbolic verdict is
//! checked against brute-force concrete enumeration.
//!
//! The load-bearing property is **soundness**: whenever the prover says
//! `Proved`, every concrete instantiation of the plan must have pairwise
//! disjoint task intervals whose union is exactly `[0, len)`. Random
//! perturbed chunk plans (many of them genuinely racy or gappy) drive
//! the contrapositive for free: a concretely invalid plan must never
//! prove. Knife-edge shapes — empty dispatches, single-element
//! intervals, remainder tails — are pinned deterministically.

use instant3d_conformance::prover::{concrete_check, prove_plan};
use instant3d_nerf::kernels::plan::{con, par, WritePlan};
use proptest::prelude::*;

/// A chunk-partition plan with its `end` expression perturbed by `d`
/// elements and `a` phantom tasks appended:
/// `end(t) = min((t+1)·chunk + d, n)`, `count = ceil((n+a)/chunk)`.
/// `d == 0` is the real pattern (valid for every `a ≥ 0` — the phantom
/// tasks are empty); `d > 0` overlaps the successor; `d < 0` leaves a
/// gap (or an inverted interval the instantiator rejects).
fn perturbed_chunk_plan(a: i128, d: i128) -> WritePlan {
    let mut plan = WritePlan::chunked(
        "proptest.rs:1 fixture::perturbed",
        "fixture buffer",
        "n",
        "chunk",
        None,
    );
    if a != 0 {
        let tasks = plan
            .params
            .iter()
            .position(|p| p.name == "tasks")
            .expect("chunked plans derive a `tasks` param");
        plan.params[tasks].derive =
            instant3d_nerf::kernels::plan::Derive::DivCeil(par(0).add(con(a)), par(1));
    }
    if d != 0 {
        plan.end = par(plan.task)
            .add(con(1))
            .mul(par(1))
            .add(con(d))
            .min(par(0));
    }
    plan
}

/// Brute-force model: instantiates at a deterministic grid of shapes
/// (remainder tails, exact multiples, empty and unit cases included) and
/// returns the first violation. An instantiation error on an in-bounds
/// shape also counts as invalid — a plan must instantiate everywhere the
/// dispatch can run.
fn concrete_sweep(plan: &WritePlan, extra: &[(i128, i128)]) -> Result<(), String> {
    let grid: Vec<(i128, i128)> = [0i128, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31]
        .iter()
        .flat_map(|&n| [1i128, 2, 3, 4, 8].map(|chunk| (n, chunk)))
        .chain(extra.iter().copied())
        .collect();
    for (n, chunk) in grid {
        if n < 0 || chunk < 1 {
            continue;
        }
        let c = plan
            .try_instantiate(&[("n", n), ("chunk", chunk)], &[])
            .map_err(|e| format!("shape {{n={n}, chunk={chunk}}}: {e}"))?;
        concrete_check(&c).map_err(|e| format!("shape {{n={n}, chunk={chunk}}}: {e}"))?;
    }
    Ok(())
}

proptest! {
    /// Soundness on randomly perturbed plans: `Proved` implies every
    /// concrete shape (deterministic grid + a random large shape) is
    /// disjoint and covering; equivalently, a concretely broken plan
    /// never proves.
    #[test]
    fn proved_plans_are_concretely_valid(
        a in 0i64..3,
        d in -2i64..=2,
        n in 0i64..2_000,
        chunk in 1i64..64,
    ) {
        let plan = perturbed_chunk_plan(a as i128, d as i128);
        let proved = prove_plan(&plan).is_ok();
        let concrete = concrete_sweep(&plan, &[(n as i128, chunk as i128)]);
        prop_assert!(
            !proved || concrete.is_ok(),
            "prover accepted a concretely invalid plan (a={}, d={}): {:?}",
            a, d, concrete
        );
        // The unperturbed pattern is exactly the engine's dispatch shape:
        // it must both prove and sweep clean, phantom tasks or not.
        if d == 0 {
            prop_assert!(proved, "real chunk pattern failed to prove (a={a})");
            prop_assert!(concrete.is_ok(), "real chunk pattern concretely invalid: {concrete:?}");
        }
    }

    /// Cut-partition plans against random monotone tables: instantiation
    /// accepts exactly the axiom-satisfying tables, and every accepted
    /// table yields disjoint, covering intervals.
    #[test]
    fn cut_partitions_accept_exactly_monotone_tables(
        widths in prop::collection::vec(0u32..5, 0..6),
        tamper in 0usize..4,
    ) {
        let plan = WritePlan::cut_partition(
            "proptest.rs:2 fixture::cuts",
            "fixture buffer",
            "offsets",
            "count",
            "total",
        );
        let mut table: Vec<i128> = vec![0];
        for w in &widths {
            table.push(table.last().copied().unwrap() + i128::from(*w));
        }
        let total = *table.last().unwrap();
        let count = widths.len() as i128;
        let c = plan
            .try_instantiate(&[("count", count), ("total", total)], &[&table])
            .expect("axiom-satisfying table accepted");
        concrete_check(&c).expect("cut partition is disjoint and covering");

        // Tampering with an axiom must be rejected at instantiation.
        let mut bad = table.clone();
        let rejected = match tamper {
            0 => {
                bad.push(total); // wrong length
                true
            }
            1 if count > 0 => {
                bad[0] = -1; // first cut not 0
                true
            }
            2 => {
                *bad.last_mut().unwrap() = total + 1; // top cut != total
                true
            }
            3 if count >= 2 && bad[1] > 0 => {
                let j = 2.min(bad.len() - 1);
                bad.swap(1, j); // break monotonicity…
                bad[1] > bad[j] // …if the swap reordered
            }
            _ => false,
        };
        if rejected {
            prop_assert!(
                plan.try_instantiate(&[("count", count), ("total", total)], &[&bad]).is_err(),
                "tampered cut table {:?} (tamper {}) was accepted", bad, tamper
            );
        }
    }
}

#[test]
fn knife_edge_shapes_are_exact() {
    let plan = perturbed_chunk_plan(0, 0);
    prove_plan(&plan).expect("real chunk pattern proves");

    // Empty dispatch: no tasks, zero-length coverage.
    let c = plan
        .try_instantiate(&[("n", 0), ("chunk", 4)], &[])
        .unwrap();
    assert!(c.tasks.is_empty());
    assert_eq!(c.len, 0);
    concrete_check(&c).unwrap();

    // Single-element intervals: chunk = 1 over n = 3.
    let c = plan
        .try_instantiate(&[("n", 3), ("chunk", 1)], &[])
        .unwrap();
    assert_eq!(c.tasks, vec![(0, 1), (1, 2), (2, 3)]);
    concrete_check(&c).unwrap();

    // Remainder tail: 17 = 2×8 + 1.
    let c = plan
        .try_instantiate(&[("n", 17), ("chunk", 8)], &[])
        .unwrap();
    assert_eq!(c.tasks, vec![(0, 8), (8, 16), (16, 17)]);
    concrete_check(&c).unwrap();

    // Exact multiple: no tail task.
    let c = plan
        .try_instantiate(&[("n", 16), ("chunk", 8)], &[])
        .unwrap();
    assert_eq!(c.tasks, vec![(0, 8), (8, 16)]);
    concrete_check(&c).unwrap();

    // Chunk larger than the batch: one clipped task.
    let c = plan
        .try_instantiate(&[("n", 5), ("chunk", 64)], &[])
        .unwrap();
    assert_eq!(c.tasks, vec![(0, 5)]);
    concrete_check(&c).unwrap();

    // Cut partition with empty interior intervals.
    let cut = WritePlan::cut_partition(
        "proptest.rs:3 fixture::cuts",
        "fixture buffer",
        "offsets",
        "count",
        "total",
    );
    prove_plan(&cut).expect("cut partition proves");
    let c = cut
        .try_instantiate(&[("count", 3), ("total", 4)], &[&[0, 0, 4, 4]])
        .unwrap();
    assert_eq!(c.tasks, vec![(0, 0), (0, 4), (4, 4)]);
    concrete_check(&c).unwrap();
    // All-empty partition of a zero-length buffer.
    let c = cut
        .try_instantiate(&[("count", 2), ("total", 0)], &[&[0, 0, 0]])
        .unwrap();
    concrete_check(&c).unwrap();
}

/// Every real declared plan instantiates cleanly at knife-edge shapes of
/// its own parameters (each parameter at its lower bound and at small
/// remainder-producing values), and the result is always disjoint and
/// covering — the concrete face of the prover's universal claim.
#[test]
fn real_plans_instantiate_at_edge_shapes() {
    use instant3d_nerf::kernels::plan::Derive;
    for plan in instant3d_conformance::plan::all_plans() {
        prove_plan(&plan).unwrap_or_else(|e| panic!("{}: {e}", plan.site));
        if !plan.cuts.is_empty() {
            continue; // cut tables are data-dependent; covered above
        }
        let free: Vec<_> = plan
            .params
            .iter()
            .enumerate()
            .filter(|&(i, p)| i != plan.task && p.derive == Derive::Free)
            .collect();
        // Every combination of {lo, lo+1, 7, 17} per free parameter.
        let choices = [0i128, 1, 7, 17];
        let mut idx = vec![0usize; free.len()];
        loop {
            let values: Vec<(&str, i128)> = free
                .iter()
                .zip(&idx)
                .map(|(&(_, p), &k)| (p.name, p.lo.max(choices[k])))
                .collect();
            if let Ok(c) = plan.try_instantiate(&values, &[]) {
                concrete_check(&c).unwrap_or_else(|e| panic!("{} at {values:?}: {e}", plan.site));
            }
            let mut carry = 0;
            while carry < idx.len() {
                idx[carry] += 1;
                if idx[carry] < choices.len() {
                    break;
                }
                idx[carry] = 0;
                carry += 1;
            }
            if carry == idx.len() {
                break;
            }
        }
    }
}
