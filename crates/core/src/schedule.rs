//! Update-frequency schedules for the decomposed branches (§3.3).
//!
//! The accelerator is "naturally scalable to different update frequencies
//! by skipping one back-propagation process every 1/(1−F) iterations"; on
//! the algorithm side this module decides, per iteration, whether each
//! branch's grid receives its gradient scatter and optimizer step.

/// Periodic update schedule: fire on iterations where `iter % every == 0`.
///
/// # Example
///
/// ```
/// use instant3d_core::UpdateSchedule;
/// let color = UpdateSchedule::every(2); // F_C = 0.5
/// assert!(color.should_update(0));
/// assert!(!color.should_update(1));
/// assert!(color.should_update(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateSchedule {
    every: u32,
}

impl UpdateSchedule {
    /// Updates every `every` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn every(every: u32) -> Self {
        assert!(every > 0, "update period must be >= 1");
        UpdateSchedule { every }
    }

    /// The period in iterations.
    pub fn period(&self) -> u32 {
        self.every
    }

    /// The update frequency `F` as a fraction of iterations (1/period).
    pub fn frequency(&self) -> f64 {
        1.0 / self.every as f64
    }

    /// Whether the branch updates at `iter` (0-based).
    #[inline]
    pub fn should_update(&self, iter: u64) -> bool {
        iter.is_multiple_of(self.every as u64)
    }

    /// Number of updates that fire over `iters` iterations starting at 0.
    pub fn updates_in(&self, iters: u64) -> u64 {
        iters.div_ceil(self.every as u64)
    }
}

impl Default for UpdateSchedule {
    /// Every iteration (`F = 1`), the Instant-NGP behaviour.
    fn default() -> Self {
        UpdateSchedule::every(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_iteration_always_fires() {
        let s = UpdateSchedule::default();
        for i in 0..10 {
            assert!(s.should_update(i));
        }
        assert_eq!(s.updates_in(10), 10);
        assert_eq!(s.frequency(), 1.0);
    }

    #[test]
    fn half_frequency_fires_alternate_iterations() {
        let s = UpdateSchedule::every(2);
        let fired: Vec<bool> = (0..6).map(|i| s.should_update(i)).collect();
        assert_eq!(fired, [true, false, true, false, true, false]);
        assert_eq!(s.updates_in(6), 3);
        assert_eq!(s.updates_in(5), 3);
        assert_eq!(s.frequency(), 0.5);
    }

    #[test]
    fn period_accessor() {
        assert_eq!(UpdateSchedule::every(4).period(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let _ = UpdateSchedule::every(0);
    }
}
