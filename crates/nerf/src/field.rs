//! The radiance-field abstraction shared by analytic ground-truth scenes
//! and learned models, plus reference renderers built on [`crate::render`].

use crate::camera::Camera;
use crate::image::{DepthImage, RgbImage};
use crate::math::{Aabb, Ray, Vec3};
use crate::render::{composite, RaySample, RenderOutput};

/// Anything that can answer "what is the density and emitted color at this
/// point, viewed from this direction" — Step ③ of the pipeline.
///
/// Implemented by the analytic scenes in `instant3d-scenes` (ground truth)
/// and by the learned models in `instant3d-core`.
pub trait RadianceField {
    /// The bounding volume containing all non-zero density.
    fn aabb(&self) -> Aabb;

    /// Queries density σ ≥ 0 and view-dependent RGB color at `pos`/`dir`.
    fn query(&self, pos: Vec3, dir: Vec3) -> (f32, Vec3);

    /// Density only (some callers don't need color; default delegates).
    fn density(&self, pos: Vec3) -> f32 {
        self.query(pos, Vec3::X).0
    }
}

impl<F: RadianceField + ?Sized> RadianceField for &F {
    fn aabb(&self) -> Aabb {
        (**self).aabb()
    }
    fn query(&self, pos: Vec3, dir: Vec3) -> (f32, Vec3) {
        (**self).query(pos, dir)
    }
    fn density(&self, pos: Vec3) -> f32 {
        (**self).density(pos)
    }
}

/// Renders one ray through a field with `n_samples` uniform samples across
/// the field's AABB intersection. Returns the background when the ray
/// misses the AABB.
pub fn render_ray<F: RadianceField + ?Sized>(
    field: &F,
    ray: &Ray,
    n_samples: usize,
    background: Vec3,
) -> RenderOutput {
    let aabb = field.aabb();
    let Some((t0, t1)) = aabb.intersect(ray) else {
        return RenderOutput {
            color: background,
            depth: 0.0,
            opacity: 0.0,
            transmittance: 1.0,
        };
    };
    if t1 <= t0 || n_samples == 0 {
        return RenderOutput {
            color: background,
            depth: 0.0,
            opacity: 0.0,
            transmittance: 1.0,
        };
    }
    let dt = (t1 - t0) / n_samples as f32;
    let mut samples = Vec::with_capacity(n_samples);
    for k in 0..n_samples {
        let t = t0 + (k as f32 + 0.5) * dt;
        let p = ray.at(t);
        let (sigma, rgb) = field.query(p, ray.dir);
        samples.push(RaySample { t, dt, sigma, rgb });
    }
    composite(&samples, background, None)
}

/// Renders a full RGB + depth image from a field (the ground-truth path for
/// the procedural datasets, and the evaluation path for learned models).
///
/// Rows are rendered in parallel with scoped threads.
pub fn render_image<F: RadianceField + Sync + ?Sized>(
    field: &F,
    camera: &Camera,
    n_samples: usize,
    background: Vec3,
) -> (RgbImage, DepthImage) {
    let w = camera.width;
    let h = camera.height;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(h as usize)
        .max(1);

    let mut rows: Vec<(Vec<Vec3>, Vec<f32>)> = Vec::with_capacity(h as usize);
    rows.resize_with(h as usize, || (Vec::new(), Vec::new()));
    let rows_ref = &mut rows[..];

    std::thread::scope(|scope| {
        let chunk = h.div_ceil(threads as u32);
        for (tid, rows_chunk) in rows_ref.chunks_mut(chunk as usize).enumerate() {
            let y0 = tid as u32 * chunk;
            scope.spawn(move || {
                for (dy, row) in rows_chunk.iter_mut().enumerate() {
                    let y = y0 + dy as u32;
                    let mut colors = Vec::with_capacity(w as usize);
                    let mut depths = Vec::with_capacity(w as usize);
                    for x in 0..w {
                        let ray = camera.pixel_center_ray(x, y);
                        let out = render_ray(field, &ray, n_samples, background);
                        colors.push(out.color);
                        depths.push(out.depth);
                    }
                    *row = (colors, depths);
                }
            });
        }
    });

    let mut rgb = RgbImage::new(w, h);
    let mut depth = DepthImage::new(w, h);
    for (y, (colors, depths)) in rows.into_iter().enumerate() {
        for x in 0..w as usize {
            rgb.set(x as u32, y as u32, colors[x]);
            depth.set(x as u32, y as u32, depths[x]);
        }
    }
    (rgb, depth)
}

/// A trivially simple field used in tests: a constant-density ball.
#[derive(Debug, Clone, Copy)]
pub struct BallField {
    /// Ball center.
    pub center: Vec3,
    /// Ball radius.
    pub radius: f32,
    /// Density inside the ball.
    pub sigma: f32,
    /// Uniform albedo.
    pub color: Vec3,
}

impl RadianceField for BallField {
    fn aabb(&self) -> Aabb {
        Aabb::cube(self.center, self.radius * 1.5)
    }

    fn query(&self, pos: Vec3, _dir: Vec3) -> (f32, Vec3) {
        if pos.distance(self.center) <= self.radius {
            (self.sigma, self.color)
        } else {
            (0.0, Vec3::ZERO)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball() -> BallField {
        BallField {
            center: Vec3::ZERO,
            radius: 0.5,
            sigma: 50.0,
            color: Vec3::new(0.9, 0.2, 0.1),
        }
    }

    #[test]
    fn ray_through_ball_sees_ball_color() {
        let f = ball();
        let ray = Ray::new(Vec3::new(0.0, 0.0, 2.0), -Vec3::Z);
        let out = render_ray(&f, &ray, 128, Vec3::ZERO);
        assert!(out.opacity > 0.9, "opacity {}", out.opacity);
        assert!((out.color.x - 0.9).abs() < 0.05);
        // Depth lands near the front surface (t = 1.5).
        assert!((out.depth - 1.5).abs() < 0.2, "depth {}", out.depth);
    }

    #[test]
    fn ray_missing_aabb_returns_background() {
        let f = ball();
        let bg = Vec3::new(0.0, 0.0, 1.0);
        let ray = Ray::new(Vec3::new(5.0, 5.0, 2.0), -Vec3::Z);
        let out = render_ray(&f, &ray, 32, bg);
        assert_eq!(out.color, bg);
        assert_eq!(out.opacity, 0.0);
    }

    #[test]
    fn rendered_image_has_ball_in_center_background_at_edges() {
        let f = ball();
        let cam = Camera::look_at(
            Vec3::new(0.0, 0.0, 2.5),
            Vec3::ZERO,
            Vec3::Y,
            60f32.to_radians(),
            17,
            17,
        );
        let bg = Vec3::splat(1.0);
        let (rgb, depth) = render_image(&f, &cam, 96, bg);
        let center = rgb.get(8, 8);
        assert!(center.x > 0.5 && center.y < 0.5, "center pixel {center}");
        let corner = rgb.get(0, 0);
        assert_eq!(corner, bg);
        assert!(depth.get(8, 8) > 0.0);
        assert_eq!(depth.get(0, 0), 0.0);
    }

    #[test]
    fn density_default_delegates_to_query() {
        let f = ball();
        assert_eq!(f.density(Vec3::ZERO), 50.0);
        assert_eq!(f.density(Vec3::splat(2.0)), 0.0);
    }

    #[test]
    fn reference_field_impl_works() {
        // &F must also be a RadianceField.
        fn takes_field<F: RadianceField>(f: F) -> f32 {
            f.density(Vec3::ZERO)
        }
        let b = ball();
        assert_eq!(takes_field(b), 50.0);
    }
}
