//! Multi-scene training service demo: a fleet of mixed-size capture jobs
//! trained concurrently over one shared work-stealing pool.
//!
//! Nine jobs — synthetic objects at several capture sizes plus the SILVR
//! hall and the ScanNet room — are multiplexed by `instant3d::serve`:
//! round-robin slices so the big scenes never starve the small ones,
//! pooled training workspaces (allocations stop after warmup), periodic
//! checkpoints into an LRU cache, and per-backend fleet telemetry. One
//! job is re-trained solo afterwards to demonstrate the determinism
//! contract: its checkpoint is bit-identical to the fleet's.
//!
//! ```text
//! cargo run --release --example serve_fleet
//! ```

use instant3d::core::TrainConfig;
use instant3d::serve::{train_solo, Fleet, FleetConfig, JobSpec, SceneSpec};

fn main() {
    let cfg = TrainConfig::fast_preview();
    let mut specs = Vec::new();
    // Six synthetic object captures of graded size…
    for (i, (res, views, iters)) in [
        (16, 4, 40u64),
        (24, 6, 60),
        (16, 3, 30),
        (32, 8, 80),
        (20, 5, 50),
        (16, 4, 35),
    ]
    .into_iter()
    .enumerate()
    {
        specs.push(JobSpec {
            name: format!("object-{i}"),
            scene: SceneSpec::Synthetic {
                index: i,
                resolution: res,
                train_views: views,
            },
            config: cfg.clone(),
            seed: 100 + i as u64,
            iterations: iters,
            checkpoint_every: 16,
        });
    }
    // …plus the two big-scene substrates.
    specs.push(JobSpec {
        name: "silvr-hall".into(),
        scene: SceneSpec::Silvr {
            resolution: 24,
            train_views: 6,
        },
        config: cfg.clone(),
        seed: 200,
        iterations: 90,
        checkpoint_every: 25,
    });
    specs.push(JobSpec {
        name: "scannet-room".into(),
        scene: SceneSpec::Scannet {
            resolution: 24,
            train_views: 6,
        },
        config: cfg.clone(),
        seed: 300,
        iterations: 70,
        checkpoint_every: 25,
    });
    specs.push(JobSpec {
        name: "object-hero".into(),
        scene: SceneSpec::Synthetic {
            index: 6,
            resolution: 32,
            train_views: 10,
        },
        config: cfg,
        seed: 400,
        iterations: 100,
        checkpoint_every: 32,
    });

    let fleet = Fleet::new(FleetConfig {
        concurrency: 4,
        slice_iters: 10,
        max_resident_checkpoints: 4,
        threads: Some(8),
        // Each job streams a budgeted tile preview of its test view after
        // every slice — progress frames without perturbing training.
        preview_tiles_per_slice: 2,
    });
    println!("training {} jobs over one shared pool…\n", specs.len());
    let t0 = std::time::Instant::now();
    let report = fleet.run(&specs);
    let wall = t0.elapsed().as_secs_f32();

    for job in &report.jobs {
        println!(
            "{:>14}: {:>3} iters, final loss {:.4}, {} checkpoints, \
             ws {} minted / {} recycled",
            job.name,
            job.iterations,
            job.final_loss,
            job.checkpoints_written,
            job.batch_allocated + u64::from(!job.occ_recycled),
            job.batch_recycled + u64::from(job.occ_recycled),
        );
    }

    let s = &report.stats;
    println!(
        "\nfleet: {} jobs, {} iters, {:.1} s wall",
        s.jobs, s.total.iterations, wall
    );
    println!(
        "grid traffic: {} FF reads, {} BP writes; {} MLP MACs",
        s.total.grid_reads_ff(),
        s.total.grid_writes_bp(),
        s.total.mlp_flops_ff + s.total.mlp_flops_bp,
    );
    for g in &s.per_backend {
        println!(
            "backend {:>12} [{}]: {} iters, {} points",
            g.backend, g.tier, g.iterations, g.points
        );
    }
    println!(
        "workspaces: {} batch minted (≤ concurrency), {} slices recycled; \
         {} occupancy minted (≤ jobs), {} recycled",
        s.batch_allocated, s.batch_recycled, s.occ_allocated, s.occ_recycled
    );
    println!(
        "checkpoints: {} written, {} evicted, resident: {:?}",
        s.checkpoints_written, s.checkpoints_evicted, report.resident_checkpoints
    );
    println!(
        "previews: {} frames, {} tiles streamed alongside training",
        s.preview_frames, s.preview_tiles
    );

    // The determinism contract, demonstrated live: re-train one job solo.
    let hero = &report.jobs[report.jobs.len() - 1];
    let solo = train_solo(&specs[specs.len() - 1]);
    assert_eq!(
        hero.final_checkpoint, solo,
        "fleet checkpoint must be bit-identical to solo training"
    );
    println!(
        "\ndeterminism: '{}' re-trained solo -> checkpoint bit-identical \
         ({} bytes)",
        hero.name,
        solo.len()
    );
}
