//! Regenerates the §5.1 operating-point grid search. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::sec51_grid_search::run(instant3d_bench::quick_requested());
}
