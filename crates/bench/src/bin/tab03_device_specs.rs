//! Regenerates the paper's tab03Tab. 03 experiment. Pass `--quick` for a smoke run.
fn main() {
    instant3d_bench::experiments::tab03::run(instant3d_bench::quick_requested());
}
