//! Regenerates the §6 related-work comparison.
fn main() {
    instant3d_bench::experiments::sec6_related::run(instant3d_bench::quick_requested());
}
