//! Property-based tests of the algorithm layer's invariants.

use instant3d_core::{GridTopology, PipelineWorkload, TrainConfig, UpdateSchedule, WorkloadStats};
use proptest::prelude::*;

proptest! {
    // ---------- schedules ----------

    #[test]
    fn schedule_fires_expected_count(every in 1u32..16, horizon in 1u64..500) {
        let s = UpdateSchedule::every(every);
        let fired = (0..horizon).filter(|&i| s.should_update(i)).count() as u64;
        prop_assert_eq!(fired, s.updates_in(horizon));
        // Frequency × horizon approximates the fired count.
        let expect = (s.frequency() * horizon as f64).ceil() as u64;
        prop_assert!(fired.abs_diff(expect) <= 1);
    }

    #[test]
    fn schedule_period_one_is_always(iter in 0u64..10_000) {
        prop_assert!(UpdateSchedule::every(1).should_update(iter));
    }

    // ---------- config ----------

    #[test]
    fn decoupled_configs_validate_for_power_of_two_factors(
        d_exp in -3i32..1, c_exp in -3i32..1,
        d_every in 1u32..4, c_every in 1u32..4)
    {
        let cfg = TrainConfig::decoupled(
            (2.0f64).powi(d_exp),
            (2.0f64).powi(c_exp),
            d_every,
            c_every,
        );
        prop_assert!(cfg.validate().is_ok());
        // Size factors shift the table log2 as expected.
        let base = cfg.grid.log2_table_size as i64;
        prop_assert_eq!(
            cfg.density_grid_config().log2_table_size as i64,
            base + d_exp as i64
        );
        prop_assert_eq!(
            cfg.color_grid_config().log2_table_size as i64,
            base + c_exp as i64
        );
    }

    // ---------- workload accounting ----------

    #[test]
    fn workload_stats_merge_is_commutative_monoid(
        a_iters in 1u64..10, a_pts in 0u64..10_000,
        b_iters in 1u64..10, b_pts in 0u64..10_000)
    {
        let mk = |iters, pts| WorkloadStats {
            iterations: iters,
            rays: pts / 8,
            points: pts,
            density_reads_ff: pts * 64,
            color_reads_ff: pts * 64,
            density_writes_bp: pts * 64,
            color_writes_bp: pts * 32,
            mlp_flops_ff: pts * 1000,
            mlp_flops_bp: pts * 2000,
            render_samples: pts,
            ..WorkloadStats::default()
        };
        let mut ab = mk(a_iters, a_pts);
        ab.merge(&mk(b_iters, b_pts));
        let mut ba = mk(b_iters, b_pts);
        ba.merge(&mk(a_iters, a_pts));
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.points, a_pts + b_pts);
        // Identity: merging a zeroed stats (0 iterations) changes nothing
        // but the iteration count stays the sum.
        let mut with_zero = ab;
        with_zero.merge(&WorkloadStats::default());
        prop_assert_eq!(with_zero, ab);
    }

    #[test]
    fn workload_from_stats_is_scale_invariant(reps in 1u64..20) {
        // N copies of the same per-iteration work give the same
        // per-iteration workload.
        let one = WorkloadStats {
            iterations: 1,
            rays: 100,
            points: 2_000,
            density_reads_ff: 128_000,
            color_reads_ff: 64_000,
            density_writes_bp: 128_000,
            color_writes_bp: 32_000,
            mlp_flops_ff: 1_000_000,
            mlp_flops_bp: 2_000_000,
            render_samples: 2_000,
            ..WorkloadStats::default()
        };
        let mut many = WorkloadStats::default();
        for _ in 0..reps {
            many.merge(&one);
        }
        let w1 = PipelineWorkload::from_stats(&one, 8, 1 << 20, 1 << 18, 4);
        let wn = PipelineWorkload::from_stats(&many, 8, 1 << 20, 1 << 18, 4);
        prop_assert!((w1.points_per_iter - wn.points_per_iter).abs() < 1e-6);
        prop_assert!((w1.grid_reads_ff_per_iter - wn.grid_reads_ff_per_iter).abs() < 1e-6);
        prop_assert!((w1.mlp_flops_per_iter - wn.mlp_flops_per_iter).abs() < 1e-6);
        prop_assert_eq!(wn.iterations as u64, reps);
    }

    #[test]
    fn grid_bytes_scale_linearly_with_access_size(bytes in 1usize..16) {
        let mut w = PipelineWorkload::paper_scale_instant3d(100.0);
        let base = w.grid_bytes_per_iter() / w.bytes_per_access as f64;
        w.bytes_per_access = bytes;
        prop_assert!((w.grid_bytes_per_iter() - base * bytes as f64).abs() < 1.0);
    }

    // ---------- topology invariants ----------

    #[test]
    fn coupled_and_decoupled_models_share_head_shapes(seed in 0u64..50) {
        use instant3d_core::NerfModel;
        use instant3d_nerf::math::Aabb;
        use rand::SeedableRng;
        let mut cfg = TrainConfig::fast_preview();
        cfg.topology = GridTopology::Coupled;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let coupled = NerfModel::new(&cfg, Aabb::UNIT, &mut rng);
        cfg.topology = GridTopology::Decoupled;
        cfg.color_size_factor = 1.0;
        let decoupled = NerfModel::new(&cfg, Aabb::UNIT, &mut rng);
        // Same-size branches ⇒ identical head dimensions.
        prop_assert_eq!(coupled.sigma_mlp().in_dim(), decoupled.sigma_mlp().in_dim());
        prop_assert_eq!(coupled.color_mlp().in_dim(), decoupled.color_mlp().in_dim());
        // Decoupled adds exactly one grid's parameters.
        let extra = decoupled.num_params() - coupled.num_params();
        prop_assert_eq!(extra, decoupled.color_grid().unwrap().num_params());
    }
}
